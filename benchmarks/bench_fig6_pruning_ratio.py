"""Fig. 6 — impact of pruning ratio on final accuracy.

The paper sweeps the pruning ratio from 0.0 to 0.99 for VGG19, ResNet18,
ResNet152 and ViT-Base-16 on CIFAR-10 and reports the final accuracy, observing
that accuracy degradation is minimal below ~80 % pruning and that ResNet-152
loses less than 2 points at 80 %.  This benchmark performs the same sweep on
the mini stand-ins as a per-model campaign whose method axis enumerates one
PacTrain variant per pruning ratio (GSE on whenever pruning is), and prints
the accuracy matrix.
"""

from __future__ import annotations

import pytest

from benchmarks.common import PAPER_MODELS, bench_base, print_table, run_bench_campaign
from repro.campaign import CampaignSpec
from repro.simulation import MethodSpec

#: Pruning ratios from the paper's Fig. 6 x-axis (subsampled to keep CPU time
#: reasonable; the end points and the 0.8 knee are all included).
PRUNING_RATIOS = (0.0, 0.3, 0.5, 0.7, 0.8, 0.9, 0.99)
EPOCHS = 6


def _ratio_method(ratio: float) -> MethodSpec:
    return MethodSpec(
        name=f"pactrain-{ratio:g}",
        compressor="pactrain" if ratio > 0 else "allreduce",
        pruning_ratio=ratio,
        gse=ratio > 0,
        quantize=False,
    )


def fig6_campaign(model: str) -> CampaignSpec:
    methods = {f"pactrain-{ratio:g}": _ratio_method(ratio) for ratio in PRUNING_RATIOS}
    return CampaignSpec(
        name=f"fig6-{model}",
        base=bench_base(bandwidth="1Gbps", epochs=EPOCHS, model=model, target_accuracy=None),
        axes={"method": list(methods)},
        methods=methods,
    )


def run_model_sweep(model: str) -> dict:
    report = run_bench_campaign(fig6_campaign(model))
    by_name = {result.method: result for result in report.results()}
    return {ratio: by_name[f"pactrain-{ratio:g}"] for ratio in PRUNING_RATIOS}


@pytest.mark.parametrize("model", PAPER_MODELS)
def bench_fig6_pruning_ratio_vs_accuracy(benchmark, model):
    results = benchmark.pedantic(run_model_sweep, args=(model,), rounds=1, iterations=1)

    dense_accuracy = results[0.0].final_accuracy
    rows = []
    for ratio in PRUNING_RATIOS:
        result = results[ratio]
        rows.append(
            (
                f"{ratio:.2f}",
                f"{result.final_accuracy:.3f}",
                f"{result.final_accuracy - dense_accuracy:+.3f}",
                f"{result.weight_sparsity:.3f}",
                f"{result.comm_bytes_per_worker / 1e6:.2f}",
            )
        )
    print_table(
        f"Fig. 6 ({model}): final accuracy vs pruning ratio",
        ("pruning ratio", "final acc", "delta vs dense", "weight sparsity", "MB/worker"),
        rows,
    )
    benchmark.extra_info.update(
        {f"acc@{ratio:g}": round(results[ratio].final_accuracy, 4) for ratio in PRUNING_RATIOS}
    )

    # Qualitative shape: moderate pruning is benign, extreme pruning is not.
    # The tolerance is loose (0.3): the mini models have far less redundancy
    # than the paper's full-size networks and the test split is only 64 images,
    # so per-run accuracy noise is a few points by itself.
    assert results[0.5].final_accuracy >= dense_accuracy - 0.3, (
        f"{model}: 50% pruning should not collapse accuracy"
    )
    assert results[0.99].final_accuracy <= results[0.5].final_accuracy + 0.05, (
        f"{model}: 99% pruning should not beat 50% pruning"
    )
