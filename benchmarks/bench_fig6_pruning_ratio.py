"""Fig. 6 — impact of pruning ratio on final accuracy.

The paper sweeps the pruning ratio from 0.0 to 0.99 for VGG19, ResNet18,
ResNet152 and ViT-Base-16 on CIFAR-10 and reports the final accuracy, observing
that accuracy degradation is minimal below ~80 % pruning and that ResNet-152
loses less than 2 points at 80 %.  This benchmark performs the same sweep on
the mini stand-ins (PacTrain training with GSE at every ratio) and prints the
accuracy matrix.
"""

from __future__ import annotations

import pytest

from benchmarks.common import PAPER_MODELS, experiment_config, print_table
from repro.simulation import MethodSpec, run_experiment

#: Pruning ratios from the paper's Fig. 6 x-axis (subsampled to keep CPU time
#: reasonable; the end points and the 0.8 knee are all included).
PRUNING_RATIOS = (0.0, 0.3, 0.5, 0.7, 0.8, 0.9, 0.99)
EPOCHS = 6


def run_model_sweep(model: str) -> dict:
    config = experiment_config(
        model,
        bandwidth="1Gbps",
        epochs=EPOCHS,
        target_accuracy=None,
    )
    results = {}
    for ratio in PRUNING_RATIOS:
        method = MethodSpec(
            name=f"pactrain-{ratio:g}",
            compressor="pactrain" if ratio > 0 else "allreduce",
            pruning_ratio=ratio,
            gse=ratio > 0,
            quantize=False,
        )
        results[ratio] = run_experiment(config, method)
    return results


@pytest.mark.parametrize("model", PAPER_MODELS)
def bench_fig6_pruning_ratio_vs_accuracy(benchmark, model):
    results = benchmark.pedantic(run_model_sweep, args=(model,), rounds=1, iterations=1)

    dense_accuracy = results[0.0].final_accuracy
    rows = []
    for ratio in PRUNING_RATIOS:
        result = results[ratio]
        rows.append(
            (
                f"{ratio:.2f}",
                f"{result.final_accuracy:.3f}",
                f"{result.final_accuracy - dense_accuracy:+.3f}",
                f"{result.weight_sparsity:.3f}",
                f"{result.comm_bytes_per_worker / 1e6:.2f}",
            )
        )
    print_table(
        f"Fig. 6 ({model}): final accuracy vs pruning ratio",
        ("pruning ratio", "final acc", "delta vs dense", "weight sparsity", "MB/worker"),
        rows,
    )
    benchmark.extra_info.update(
        {f"acc@{ratio:g}": round(results[ratio].final_accuracy, 4) for ratio in PRUNING_RATIOS}
    )

    # Qualitative shape: moderate pruning is benign, extreme pruning is not.
    # The tolerance is loose (0.3): the mini models have far less redundancy
    # than the paper's full-size networks and the test split is only 64 images,
    # so per-run accuracy noise is a few points by itself (see EXPERIMENTS.md).
    assert results[0.5].final_accuracy >= dense_accuracy - 0.3, (
        f"{model}: 50% pruning should not collapse accuracy"
    )
    assert results[0.99].final_accuracy <= results[0.5].final_accuracy + 0.05, (
        f"{model}: 99% pruning should not beat 50% pruning"
    )
