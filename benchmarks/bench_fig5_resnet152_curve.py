"""Fig. 5 — accuracy-versus-time curves for ResNet-152 at 1 Gbps.

The paper plots test accuracy against wall-clock minutes for the CIFAR-10 /
ResNet-152 workload at 1 Gbps and reports PacTrain reaching the 84 % target
5.64x faster than all-reduce and 3.28x faster than fp16.  This benchmark is a
one-axis campaign (the method axis) over the ResNet-152 stand-in: it prints
the accuracy trace (one row per epoch: simulated time, accuracy) for each
method and reports the measured speedups at the scaled target accuracy.
"""

from __future__ import annotations

from benchmarks.common import (
    bench_base,
    print_table,
    run_bench_campaign,
    summarise_for_extra_info,
    tta_label,
)
from repro.campaign import CampaignSpec

METHOD_ORDER = ("all-reduce", "fp16", "topk-0.1", "topk-0.01", "pactrain")
TARGET_ACCURACY = 0.6
EPOCHS = 8


def fig5_campaign() -> CampaignSpec:
    return CampaignSpec(
        name="fig5-resnet152",
        base=bench_base(
            bandwidth="1Gbps",
            epochs=EPOCHS,
            model="resnet152",
            target_accuracy=TARGET_ACCURACY,
        ),
        axes={"method": list(METHOD_ORDER)},
    )


def run_fig5() -> dict:
    report = run_bench_campaign(fig5_campaign())
    return {result.method: result for result in report.results()}


def bench_fig5_resnet152_time_to_accuracy(benchmark):
    results = benchmark.pedantic(run_fig5, rounds=1, iterations=1)

    # Accuracy-vs-time traces (the curves of Fig. 5).
    rows = []
    for name in METHOD_ORDER:
        for time, accuracy in results[name].accuracy_trace:
            rows.append((name, f"{time:.3f}", f"{accuracy:.3f}"))
    print_table(
        f"Fig. 5: ResNet-152 @ 1 Gbps, accuracy vs simulated time (target {TARGET_ACCURACY:.0%})",
        ("method", "sim time (s)", "test accuracy"),
        rows,
    )

    # Headline speedups at the target accuracy.
    summary_rows = []
    baseline = results["all-reduce"]
    for name in METHOD_ORDER:
        result = results[name]
        if result.tta is not None and baseline.tta is not None:
            speedup = f"{baseline.tta / result.tta:.2f}x"
        else:
            speedup = "DNC"
        summary_rows.append((name, tta_label(result), f"{result.best_accuracy:.3f}", speedup))
    print_table(
        "Fig. 5 summary: time to target and speedup over all-reduce",
        ("method", "TTA (s)", "best acc", "speedup"),
        summary_rows,
    )
    benchmark.extra_info.update(summarise_for_extra_info(results))

    # Qualitative claims: PacTrain reaches the target and does so no slower
    # than the all-reduce baseline (the paper reports 5.64x faster).
    assert results["pactrain"].tta is not None, "PacTrain did not reach the target accuracy"
    if baseline.tta is not None:
        assert results["pactrain"].tta <= baseline.tta
