"""Table 1 — impact of acceleration methods on training metrics.

The paper's Table 1 is a qualitative comparison of PacTrain against other
gradient-compression / sparse-collective methods along three axes: convergence
speed, all-reduce compatibility, and whether the method improves
Time-To-Accuracy.  This benchmark measures those three properties empirically
on a common workload (the ResNet-18 stand-in at 100 Mbps, declared as a
one-axis campaign over the method table) and prints the resulting table.

* Convergence — final accuracy after a fixed number of epochs, compared to the
  all-reduce baseline (within 2 points = "OK", below = "worse").
* Compatibility — whether the compressor's aggregation uses all-reduce
  (a static property of the implementation, asserted against Table 1).
* TTA — simulated time to the target accuracy, relative to all-reduce.
"""

from __future__ import annotations

from benchmarks.common import (
    bench_base,
    model_target,
    print_table,
    run_bench_campaign,
    summarise_for_extra_info,
    tta_label,
)
from repro.campaign import CampaignSpec
from repro.simulation import MethodSpec

#: Methods included in our reproduction of Table 1.  THC, OmniReduce and Zen
#: have no open implementations to port in this environment; DGC and TernGrad
#: (both named in Table 1) plus the paper's evaluation baselines are included.
TABLE1_METHODS = {
    "pactrain": MethodSpec(
        name="pactrain", compressor="pactrain", pruning_ratio=0.5, gse=True, quantize=True
    ),
    "terngrad": MethodSpec(name="terngrad", compressor="terngrad"),
    "dgc-0.01": MethodSpec(name="dgc-0.01", compressor="dgc-0.01"),
    "topk-0.01": MethodSpec(name="topk-0.01", compressor="topk-0.01"),
    "fp16": MethodSpec(name="fp16", compressor="fp16"),
    "all-reduce": MethodSpec(name="all-reduce", compressor="allreduce"),
}

#: All-reduce compatibility as stated by the paper's Table 1 (for the methods
#: we implement).  The benchmark asserts our implementations agree.
PAPER_COMPATIBILITY = {
    "pactrain": True,
    "terngrad": True,
    "dgc-0.01": False,
    "topk-0.01": False,
    "fp16": True,
    "all-reduce": True,
}


def table1_campaign() -> CampaignSpec:
    return CampaignSpec(
        name="table1",
        base=bench_base(
            bandwidth="100Mbps",
            model="resnet18",
            target_accuracy=model_target("resnet18"),
        ),
        axes={"method": list(TABLE1_METHODS)},
        methods=TABLE1_METHODS,
    )


def run_table1() -> dict:
    report = run_bench_campaign(table1_campaign())
    return {result.method: result for result in report.results()}


def bench_table1_method_properties(benchmark):
    results = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    baseline = results["all-reduce"]

    rows = []
    for name, result in results.items():
        compressor = TABLE1_METHODS[name].build_compressor()
        compatible = compressor.allreduce_compatible
        assert compatible == PAPER_COMPATIBILITY[name], (
            f"{name}: implementation compatibility {compatible} disagrees with Table 1"
        )
        convergence = "good" if result.final_accuracy >= baseline.final_accuracy - 0.02 else "worse"
        if result.tta is not None and baseline.tta is not None:
            tta_benefit = "yes" if result.tta <= baseline.tta * 1.01 else "no"
        else:
            tta_benefit = "n/a" if result.tta is None else "yes"
        rows.append(
            (
                name,
                convergence,
                "allreduce" if compatible else "allgather",
                f"{result.final_accuracy:.3f}",
                tta_label(result),
                tta_benefit,
            )
        )

    print_table(
        "Table 1 (reproduced): impact of acceleration methods",
        ("method", "convergence", "collective", "final acc", "TTA (s)", "TTA benefit"),
        rows,
    )
    benchmark.extra_info.update(summarise_for_extra_info(results))

    # Headline qualitative claims of Table 1.  Accuracy tolerance is one test
    # batch's worth of noise (the evaluation split has 64 images).
    assert results["pactrain"].final_accuracy >= baseline.final_accuracy - 0.10
    if results["pactrain"].tta is not None and baseline.tta is not None:
        assert results["pactrain"].tta <= baseline.tta
