"""Tracked perf microbenchmarks as a pytest-runnable benchmark module.

Runs the quick variant of the :mod:`repro.perf` suite (the same one
``python -m repro perf --quick`` executes) and prints the timing table, plus a
regression check against the committed ``BENCH_perf.json`` baseline with the
CI noise margin.

Usage::

    PYTHONPATH=src python -m pytest benchmarks/perf/bench_perf.py \
        -o python_functions='bench_*' -q -s
"""

from __future__ import annotations

import json
import os

from repro.perf import check_regressions, run_suite

#: Committed baseline at the repository root.
BASELINE_PATH = os.path.join(os.path.dirname(__file__), "..", "..", "BENCH_perf.json")

#: Generous noise margin — CI machines are slower and noisier than the
#: machine that produced the committed baseline.
MAX_REGRESSION = 0.25


def bench_perf_suite_quick():
    results = run_suite(quick=True)
    width = max(len(name) for name in results)
    print()
    for name, result in sorted(results.items()):
        print(f"{name:<{width}}  median {result.median_s * 1e3:9.3f} ms  "
              f"(min {result.min_s * 1e3:.3f}, k={result.repeats})")
    assert results, "perf suite produced no results"
    for result in results.values():
        assert result.median_s > 0.0


def bench_perf_no_regression_vs_committed_baseline():
    with open(BASELINE_PATH, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    # The train-step bench runs the same workload in quick mode (only fewer
    # repeats), so its medians are directly comparable to the committed
    # full-mode baseline.
    results = run_suite(quick=True, only=["train_step"])
    regressions = check_regressions(results, baseline, max_regression=MAX_REGRESSION)
    assert not regressions, f"perf regressions vs committed baseline: {regressions}"
