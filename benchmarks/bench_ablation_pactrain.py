"""Ablation — which pieces of PacTrain matter (our addition, not a paper figure).

Three design choices whose contribution is worth isolating:

* **GSE** (Eq. 2): without it, pruned weights regrow and the gradient sparsity
  pattern never stabilises, so the compressor stays on the full-sync path.
* **Ternary quantisation** (§III.D): trades a small accuracy/variance cost for
  ~16x fewer payload bits on the compacted gradient.
* **Mask-stability threshold**: how many unchanged iterations the Mask Tracker
  waits before trusting a pattern — lower switches to compact mode sooner but
  risks resyncs, higher wastes full-precision iterations.

All variants train the ResNet-18 stand-in at 500 Mbps, declared as a one-axis
campaign over the variant table.
"""

from __future__ import annotations

from benchmarks.common import (
    bench_base,
    model_target,
    print_table,
    run_bench_campaign,
    summarise_for_extra_info,
    tta_label,
)
from repro.campaign import CampaignSpec
from repro.simulation import MethodSpec

EPOCHS = 6

#: Variant label -> method.  Labels are what the printed table shows; the
#: MethodSpec names are what the result store records.
VARIANTS = {
    "pactrain (full)": MethodSpec(
        name="pactrain", compressor="pactrain", pruning_ratio=0.5, gse=True, quantize=True
    ),
    "no quantisation": MethodSpec(
        name="pactrain-fp32", compressor="pactrain", pruning_ratio=0.5, gse=True, quantize=False
    ),
    "no GSE": MethodSpec(
        name="pactrain-nogse", compressor="pactrain", pruning_ratio=0.5, gse=False, quantize=True
    ),
    "no pruning": MethodSpec(
        name="pactrain-dense", compressor="pactrain", pruning_ratio=0.0, gse=False, quantize=True
    ),
    "threshold=1": MethodSpec(
        name="pactrain-t1", compressor="pactrain", pruning_ratio=0.5, gse=True, quantize=True,
        stability_threshold=1,
    ),
    "threshold=8": MethodSpec(
        name="pactrain-t8", compressor="pactrain", pruning_ratio=0.5, gse=True, quantize=True,
        stability_threshold=8,
    ),
    "all-reduce baseline": MethodSpec(name="all-reduce", compressor="allreduce"),
}


def ablation_campaign() -> CampaignSpec:
    return CampaignSpec(
        name="ablation-pactrain",
        base=bench_base(
            bandwidth="500Mbps",
            epochs=EPOCHS,
            model="resnet18",
            target_accuracy=model_target("resnet18"),
        ),
        axes={"method": list(VARIANTS)},
        methods=VARIANTS,
    )


def run_ablation() -> dict:
    report = run_bench_campaign(ablation_campaign())
    by_name = {result.method: result for result in report.results()}
    return {label: by_name[spec.name] for label, spec in VARIANTS.items()}


def bench_ablation_pactrain_components(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    rows = []
    for label, result in results.items():
        rows.append(
            (
                label,
                f"{result.final_accuracy:.3f}",
                tta_label(result),
                f"{result.comm_time:.3f}",
                f"{result.comm_bytes_per_worker / 1e6:.2f}",
                f"{result.extra.get('compact_fraction', 0.0):.2f}",
            )
        )
    print_table(
        "PacTrain ablation (ResNet-18, 500 Mbps)",
        ("variant", "final acc", "TTA (s)", "comm (s)", "MB/worker", "compact frac"),
        rows,
    )
    benchmark.extra_info.update(summarise_for_extra_info(results))

    full = results["pactrain (full)"]
    # GSE is what creates the stable sparse pattern: without it the compact
    # path is used for (at most) a sliver of iterations.
    assert full.extra["compact_fraction"] >= results["no GSE"].extra["compact_fraction"]
    # Quantisation reduces bytes on the wire.
    assert full.comm_bytes_per_worker <= results["no quantisation"].comm_bytes_per_worker
    # Every PacTrain variant communicates less than the dense fp32 baseline.
    assert full.comm_time < results["all-reduce baseline"].comm_time
