"""Ablation — which pieces of PacTrain matter (our addition, not a paper figure).

DESIGN.md calls out three design choices whose contribution is worth isolating:

* **GSE** (Eq. 2): without it, pruned weights regrow and the gradient sparsity
  pattern never stabilises, so the compressor stays on the full-sync path.
* **Ternary quantisation** (§III.D): trades a small accuracy/variance cost for
  ~16x fewer payload bits on the compacted gradient.
* **Mask-stability threshold**: how many unchanged iterations the Mask Tracker
  waits before trusting a pattern — lower switches to compact mode sooner but
  risks resyncs, higher wastes full-precision iterations.

All variants train the ResNet-18 stand-in at 500 Mbps.
"""

from __future__ import annotations

from benchmarks.common import experiment_config, print_table, summarise_for_extra_info, tta_label
from repro.simulation import MethodSpec, run_experiment

EPOCHS = 6


def _variants() -> dict:
    return {
        "pactrain (full)": MethodSpec(
            name="pactrain", compressor="pactrain", pruning_ratio=0.5, gse=True, quantize=True
        ),
        "no quantisation": MethodSpec(
            name="pactrain-fp32", compressor="pactrain", pruning_ratio=0.5, gse=True, quantize=False
        ),
        "no GSE": MethodSpec(
            name="pactrain-nogse", compressor="pactrain", pruning_ratio=0.5, gse=False, quantize=True
        ),
        "no pruning": MethodSpec(
            name="pactrain-dense", compressor="pactrain", pruning_ratio=0.0, gse=False, quantize=True
        ),
        "threshold=1": MethodSpec(
            name="pactrain-t1", compressor="pactrain", pruning_ratio=0.5, gse=True, quantize=True,
            stability_threshold=1,
        ),
        "threshold=8": MethodSpec(
            name="pactrain-t8", compressor="pactrain", pruning_ratio=0.5, gse=True, quantize=True,
            stability_threshold=8,
        ),
        "all-reduce baseline": MethodSpec(name="all-reduce", compressor="allreduce"),
    }


def run_ablation() -> dict:
    config = experiment_config("resnet18", bandwidth="500Mbps", epochs=EPOCHS)
    return {label: run_experiment(config, spec) for label, spec in _variants().items()}


def bench_ablation_pactrain_components(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    rows = []
    for label, result in results.items():
        rows.append(
            (
                label,
                f"{result.final_accuracy:.3f}",
                tta_label(result),
                f"{result.comm_time:.3f}",
                f"{result.comm_bytes_per_worker / 1e6:.2f}",
                f"{result.extra.get('compact_fraction', 0.0):.2f}",
            )
        )
    print_table(
        "PacTrain ablation (ResNet-18, 500 Mbps)",
        ("variant", "final acc", "TTA (s)", "comm (s)", "MB/worker", "compact frac"),
        rows,
    )
    benchmark.extra_info.update(summarise_for_extra_info(results))

    full = results["pactrain (full)"]
    # GSE is what creates the stable sparse pattern: without it the compact
    # path is used for (at most) a sliver of iterations.
    assert full.extra["compact_fraction"] >= results["no GSE"].extra["compact_fraction"]
    # Quantisation reduces bytes on the wire.
    assert full.comm_bytes_per_worker <= results["no quantisation"].comm_bytes_per_worker
    # Every PacTrain variant communicates less than the dense fp32 baseline.
    assert full.comm_time < results["all-reduce baseline"].comm_time
