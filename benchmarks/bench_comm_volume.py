"""Communication volume and collective cost per method (measured, no training).

Supports §IV.C.2's discussion ("PacTrain, being compatible with all-reduce,
ensures communication cost scales proportionally to the pruning ratio", and
TopK-0.1 "causing network congestion" through its all-gather exchange): for a
fixed gradient size this benchmark reports, per method, the bytes each worker
puts on the wire for one synchronisation and the modeled collective time at
each paper bandwidth.  The byte counts come from the process-group event log,
where the collective layer charges each operation from the encoded
``WirePayload.nbytes`` — they are measured off the wire representation, not
asserted by the compressors.  Because no training is involved this also serves
as a fast micro-benchmark of the compressor implementations themselves.

Beyond the paper's named methods, two *composed* codec pipelines
(``topk0.01+terngrad``, ``randomk0.1+fp16``) demonstrate that arbitrary stage
compositions flow through the same driver and accounting, and the
signSGD / PowerSGD / error-feedback families added on top of the codec driver
report their measured wire formats alongside: one bit per coordinate plus a
scale for ``signsgd``, ``(m+n)*rank`` fp32 factors for ``powersgd-rank4``, and
byte-for-byte parity between ``ef+topk0.01`` and plain top-k (the residual
state never touches the network).
"""

from __future__ import annotations

import numpy as np

from benchmarks.common import print_table
from repro.comm import NetworkModel, ProcessGroup
from repro.compression import build_compressor
from repro.ddp.bucket import Bucket, BucketSlice, GradBucket
from repro.pactrain import PacTrainCompressor

WORLD_SIZE = 8
NUMEL = 200_000          # gradient elements per synchronisation
PRUNING_DENSITY = 0.5    # fraction of non-zero gradient coordinates under PacTrain

METHODS = (
    "allreduce",
    "fp16",
    "topk-0.1",
    "topk-0.01",
    "terngrad",
    "dgc-0.01",
    "pactrain",
    "pactrain-terngrad",
    "topk0.01+terngrad",
    "randomk0.1+fp16",
    "signsgd",
    "powersgd-rank4",
    "ef+topk0.01",
    "ef+signsgd",
)


def _bucket(rng: np.random.Generator, mask: np.ndarray) -> GradBucket:
    layout = Bucket(index=0, slices=[BucketSlice("w", 0, NUMEL, (NUMEL,))])
    buffers = [rng.standard_normal(NUMEL) * mask for _ in range(WORLD_SIZE)]
    return GradBucket(layout, buffers)


def run_volume_analysis() -> dict:
    rng = np.random.default_rng(0)
    # One fixed pruning mask, shared across iterations — what GSE guarantees.
    pruned_mask = rng.random(NUMEL) < PRUNING_DENSITY
    dense_mask = np.ones(NUMEL, dtype=bool)
    report = {}
    for name in METHODS:
        compressor = build_compressor(name)
        sparse = isinstance(compressor, PacTrainCompressor)
        mask = pruned_mask if sparse else dense_mask
        if sparse:
            # Let the Mask Tracker reach stability before measuring the steady state.
            warm_group = ProcessGroup(WORLD_SIZE)
            for _ in range(compressor.tracker.stability_threshold + 1):
                compressor.aggregate(_bucket(rng, mask), warm_group)

        groups = {}
        for setting in ("100Mbps", "500Mbps", "1Gbps"):
            group = ProcessGroup(WORLD_SIZE, NetworkModel.from_paper_setting(WORLD_SIZE, setting))
            compressor.aggregate(_bucket(rng, mask), group)
            groups[setting] = group
        report[name] = {
            "bytes": groups["1Gbps"].total_bytes_per_worker,
            "time_100Mbps": groups["100Mbps"].total_time,
            "time_500Mbps": groups["500Mbps"].total_time,
            "time_1Gbps": groups["1Gbps"].total_time,
            "allreduce_compatible": compressor.allreduce_compatible,
        }
    return report


def bench_comm_volume_per_method(benchmark):
    report = benchmark.pedantic(run_volume_analysis, rounds=1, iterations=1)

    baseline_bytes = report["allreduce"]["bytes"]
    rows = []
    for name in METHODS:
        entry = report[name]
        rows.append(
            (
                name,
                "allreduce" if entry["allreduce_compatible"] else "allgather",
                f"{entry['bytes'] / 1e6:.3f}",
                f"{baseline_bytes / entry['bytes']:.1f}x" if entry["bytes"] else "inf",
                f"{entry['time_100Mbps'] * 1e3:.1f}",
                f"{entry['time_500Mbps'] * 1e3:.1f}",
                f"{entry['time_1Gbps'] * 1e3:.1f}",
            )
        )
    print_table(
        f"Per-sync communication cost ({NUMEL} gradient elements, {WORLD_SIZE} workers, "
        f"PacTrain density {PRUNING_DENSITY})",
        ("method", "collective", "MB/worker", "reduction", "ms@100Mbps", "ms@500Mbps", "ms@1Gbps"),
        rows,
    )
    benchmark.extra_info.update(
        {f"{name}/mb_per_worker": round(entry["bytes"] / 1e6, 4) for name, entry in report.items()}
    )

    # Steady-state PacTrain must beat the fp32 baseline and TopK-0.1 on the wire.
    # At pruning density 0.5 the un-quantised variant sends ~2 bytes/element,
    # i.e. on par with fp16 (but losslessly); with ternary quantisation it is
    # far below fp16.
    assert report["pactrain"]["bytes"] < report["allreduce"]["bytes"]
    assert report["pactrain"]["bytes"] < report["fp16"]["bytes"] * 1.05
    assert report["pactrain"]["bytes"] < report["topk-0.1"]["bytes"]
    assert report["pactrain-terngrad"]["bytes"] < report["fp16"]["bytes"]
    assert report["pactrain-terngrad"]["bytes"] < report["pactrain"]["bytes"]
    # TopK-0.1's all-gather exchange costs more time at 100 Mbps than PacTrain's
    # compact all-reduce — the congestion effect called out in §IV.C.1.
    assert report["pactrain"]["time_100Mbps"] < report["topk-0.1"]["time_100Mbps"]
    # Composed pipelines: ternarising the top-k values shrinks the per-element
    # value cost from 4 to 0.25 bytes (indices still travel), and fp16-casting
    # the random-k values halves their wire size.
    assert report["topk0.01+terngrad"]["bytes"] < report["topk-0.01"]["bytes"]
    assert report["randomk0.1+fp16"]["bytes"] < report["fp16"]["bytes"]
    # signSGD moves one bit per coordinate (plus one fp32 scale per sync):
    # ~32x below the fp32 baseline, measured off the packed payload.
    assert report["signsgd"]["bytes"] < report["allreduce"]["bytes"] / 25
    # PowerSGD rank 4 moves (m+n)*rank fp32 factors per sync.
    assert report["powersgd-rank4"]["bytes"] < report["allreduce"]["bytes"] / 25
    # Error feedback changes convergence, never wire bytes.
    assert report["ef+topk0.01"]["bytes"] == report["topk-0.01"]["bytes"]
    assert report["ef+signsgd"]["bytes"] == report["signsgd"]["bytes"]
