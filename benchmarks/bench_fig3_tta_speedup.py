"""Fig. 3 — end-to-end relative TTA under different WAN bandwidths.

The paper's headline figure: for VGG19, ResNet18, ResNet152 and ViT-Base-16,
the time to reach a target accuracy is measured under five synchronisation
methods (all-reduce, fp16, topk-0.1, topk-0.01, PacTrain) at 100 Mbps, 500 Mbps
and 1 Gbps bottleneck bandwidth, and reported relative to native all-reduce
(log-scale bars in the paper; a table of the same ratios here).

One benchmark case per bandwidth (Fig. 3a / 3b / 3c).  Each case is a campaign
declaration: the model axis (zipped with its per-model TTA target) crossed
with the method axis, executed through the shared result store — unchanged
cells are cache hits on re-runs.  The printed table also includes the speedup
matrix from which the paper's "1.25–8.72x" abstract claim is derived.
"""

from __future__ import annotations

import pytest

from benchmarks.common import (
    PAPER_MODELS,
    bench_base,
    model_target,
    print_table,
    relative_tta_label,
    report_line,
    run_bench_campaign,
    speedup_label,
    summarise_for_extra_info,
)
from repro.campaign import CampaignSpec

METHOD_ORDER = ("all-reduce", "fp16", "topk-0.1", "topk-0.01", "pactrain")


def fig3_campaign(bandwidth: str) -> CampaignSpec:
    """Every (model, method) pair at one bottleneck bandwidth."""
    return CampaignSpec(
        name=f"fig3-{bandwidth}",
        base=bench_base(bandwidth=bandwidth),
        zipped={
            "model": list(PAPER_MODELS),
            "target_accuracy": [model_target(model) for model in PAPER_MODELS],
        },
        axes={"method": list(METHOD_ORDER)},
    )


def run_bandwidth(bandwidth: str) -> dict:
    report = run_bench_campaign(fig3_campaign(bandwidth))
    return {f"{r.model}/{r.method}": r for r in report.results()}


def _report(bandwidth: str, results: dict, benchmark) -> None:
    rows = []
    speedups = []
    for model in PAPER_MODELS:
        baseline = results[f"{model}/all-reduce"]
        for method_name in METHOD_ORDER:
            result = results[f"{model}/{method_name}"]
            rows.append(
                (
                    model,
                    method_name,
                    f"{result.final_accuracy:.3f}",
                    f"{result.comm_time:.3f}",
                    relative_tta_label(result, baseline),
                    speedup_label(result, baseline),
                )
            )
            if method_name == "pactrain" and result.tta is not None and baseline.tta is not None:
                speedups.append(baseline.tta / result.tta)
    print_table(
        f"Fig. 3 ({bandwidth}): relative TTA (normalised to all-reduce; DNC = target not reached)",
        ("model", "method", "final acc", "comm (s)", "relative TTA", "speedup"),
        rows,
    )
    if speedups:
        report_line(
            f"PacTrain speedup over all-reduce at {bandwidth}: "
            f"min {min(speedups):.2f}x, max {max(speedups):.2f}x"
        )
    benchmark.extra_info.update(summarise_for_extra_info(results))

    # Qualitative shape check: PacTrain must not lose to the dense baselines on
    # communication time for any model at this bandwidth.
    for model in PAPER_MODELS:
        assert (
            results[f"{model}/pactrain"].comm_time
            < results[f"{model}/all-reduce"].comm_time
        ), f"PacTrain should reduce communication time for {model} at {bandwidth}"


@pytest.mark.parametrize("bandwidth", ["100Mbps", "500Mbps", "1Gbps"])
def bench_fig3_tta_speedup(benchmark, bandwidth):
    results = benchmark.pedantic(run_bandwidth, args=(bandwidth,), rounds=1, iterations=1)
    _report(bandwidth, results, benchmark)
