"""Per-bucket compute/comm overlap and straggler scenarios (event-driven engine).

The seed time model serialised all compute before all communication, so the
mechanism DDP's reverse-order bucketing exists for — overlapping late-bucket
collectives with early-layer backward compute — was invisible.  This benchmark
quantifies what the event-driven engine recovers: for each paper method it
runs the same training twice (overlap off / on) on a multi-bucket layout and
reports the simulated-time saving and the fraction of communication hidden
behind backward compute, then adds a straggler row showing how a single slow
worker stretches the iteration critical path.

Two invariants are asserted (the PR's acceptance criteria): with overlap off,
``simulated_time == compute + comm`` exactly; with overlap on, iteration time
is strictly below ``compute + comm`` whenever communication is nonzero.
"""

from __future__ import annotations

from benchmarks.common import (
    BENCH_NOISE_STD,
    experiment_config,
    print_table,
    summarise_for_extra_info,
)
from repro.simulation import ClusterSpec, PAPER_METHODS, run_experiment

MODEL = "resnet18"
BANDWIDTH = "100Mbps"
WORLD_SIZE = 8
#: Small bucket cap so the mini models span several buckets (the 25 MiB
#: PyTorch default would keep them in one bucket, where overlap is impossible).
BUCKET_CAP_BYTES = 8 * 1024
STRAGGLER_FACTOR = 2.0

METHOD_ORDER = ("all-reduce", "fp16", "topk-0.1", "topk-0.01", "pactrain")


def _config(cluster: ClusterSpec):
    config = experiment_config(
        MODEL,
        bandwidth=BANDWIDTH,
        epochs=2,
        world_size=WORLD_SIZE,
        target_accuracy=None,
    )
    config.cluster = cluster
    config.bucket_cap_bytes = BUCKET_CAP_BYTES
    config.noise_std = BENCH_NOISE_STD
    return config


def run_overlap_study() -> dict:
    results = {}
    for name in METHOD_ORDER:
        method = PAPER_METHODS[name]
        serial = run_experiment(
            _config(ClusterSpec(world_size=WORLD_SIZE, bandwidth=BANDWIDTH)), method
        )
        overlapped = run_experiment(
            _config(ClusterSpec(world_size=WORLD_SIZE, bandwidth=BANDWIDTH, overlap=True)),
            method,
        )
        results[name] = {"serial": serial, "overlap": overlapped}
    # The straggler row gets its own serial baseline (same straggler cluster,
    # overlap off) so the speedup column isolates the overlap effect.
    results["all-reduce+straggler"] = {
        "serial": run_experiment(
            _config(
                ClusterSpec(
                    world_size=WORLD_SIZE, bandwidth=BANDWIDTH, straggler=STRAGGLER_FACTOR
                )
            ),
            PAPER_METHODS["all-reduce"],
        ),
        "overlap": run_experiment(
            _config(
                ClusterSpec(
                    world_size=WORLD_SIZE,
                    bandwidth=BANDWIDTH,
                    overlap=True,
                    straggler=STRAGGLER_FACTOR,
                )
            ),
            PAPER_METHODS["all-reduce"],
        ),
    }
    return results


def bench_overlap_speedup(benchmark):
    results = benchmark.pedantic(run_overlap_study, rounds=1, iterations=1)

    rows = []
    for name, pair in results.items():
        serial, overlapped = pair["serial"], pair["overlap"]
        rows.append(
            (
                name,
                f"{serial.simulated_time:.3f}",
                f"{overlapped.simulated_time:.3f}",
                f"{serial.simulated_time / overlapped.simulated_time:.2f}x"
                if overlapped.simulated_time
                else "inf",
                f"{overlapped.overlap_fraction * 100:.1f}%",
                f"{overlapped.straggler_time:.3f}",
            )
        )
    print_table(
        f"Per-bucket overlap on {MODEL} @ {BANDWIDTH}, {WORLD_SIZE} workers "
        f"(bucket cap {BUCKET_CAP_BYTES // 1024} KiB, straggler x{STRAGGLER_FACTOR})",
        ("method", "serial s", "overlap s", "speedup", "comm hidden", "straggler s"),
        rows,
    )
    benchmark.extra_info.update(
        summarise_for_extra_info({name: pair["overlap"] for name, pair in results.items()})
    )

    for name in METHOD_ORDER:
        serial, overlapped = results[name]["serial"], results[name]["overlap"]
        # Acceptance criteria: the serial schedule reproduces the seed model
        # exactly; the overlapped schedule strictly beats compute + comm.
        assert serial.simulated_time == serial.compute_time + serial.comm_time
        assert serial.overlap_fraction == 0.0
        assert overlapped.comm_time > 0
        assert overlapped.simulated_time < overlapped.compute_time + overlapped.comm_time
        assert overlapped.overlap_fraction > 0.0
    # A straggler stretches the critical path of the otherwise-identical run,
    # and overlap still helps within the straggler cluster.
    straggler = results["all-reduce+straggler"]["overlap"]
    assert straggler.simulated_time > results["all-reduce"]["overlap"].simulated_time
    assert straggler.simulated_time < results["all-reduce+straggler"]["serial"].simulated_time
    assert straggler.straggler_time > 0.0
