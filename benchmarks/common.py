"""Shared configuration and reporting helpers for the benchmark harness.

Every benchmark regenerates one table or figure from the paper's evaluation.
The workloads are CPU-scale stand-ins (mini model variants, synthetic CIFAR);
the quantities reported — relative TTA, accuracy-vs-time traces,
accuracy-vs-pruning-ratio, wire bytes — are the same ones the paper plots.

Since the campaign refactor the training benchmarks are thin declarations over
:mod:`repro.campaign`: each one states its sweep as a :class:`CampaignSpec`
and executes it through :func:`run_bench_campaign`, which runs against the
persistent result store under ``benchmarks/results/`` — re-running a benchmark
with unchanged code serves every cell from cache, and ``REPRO_BENCH_JOBS=N``
trains pending cells in N worker processes.

The benchmark functions use ``benchmark.pedantic(..., rounds=1)``: a "round" is
an entire experiment sweep (many training runs), so repeating it for timing
statistics would add minutes for no insight.  The interesting output is the
printed table plus the ``extra_info`` attached to the benchmark record.
"""

from __future__ import annotations

import os
import subprocess
from datetime import datetime, timezone
from typing import Dict, Iterable, Optional, Sequence, Union

from repro.campaign import CampaignReport, CampaignSpec, ResultStore, run_campaign
from repro.simulation import ClusterSpec, ExperimentConfig, ExperimentResult

#: Every table printed by a benchmark is also appended to this report file so
#: the figures survive pytest's output capturing.  The directory is gitignored
#: (``benchmarks/results/``); each run prepends a timestamp + git SHA header
#: (see :func:`_ensure_run_header`), so the append-only file stays
#: attributable per run.
REPORT_PATH = os.path.join(os.path.dirname(__file__), "results", "benchmark_report.txt")

#: Campaign result store shared by all training benchmarks (same directory,
#: also gitignored).  Delete the file to force full re-runs.
CAMPAIGN_STORE_PATH = os.path.join(os.path.dirname(__file__), "results", "campaign_store.jsonl")

#: Worker processes for benchmark campaigns: 1 = in-process (default, keeps
#: timing comparable), N = parallel training, 0 = one worker per CPU.
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))

#: Models evaluated in the paper's figures, in presentation order.
PAPER_MODELS = ("vgg19", "resnet18", "resnet152", "vit-base-16")

#: Bottleneck bandwidths evaluated in Fig. 3.
PAPER_BANDWIDTHS = ("100Mbps", "500Mbps", "1Gbps")

#: Sentinel for ``experiment_config(target_accuracy=...)``: resolve the target
#: from :data:`MODEL_TARGET_ACCURACY` by model name.
PER_MODEL = "per-model"

#: Target accuracies used for TTA on the synthetic CIFAR-10 stand-in.  The
#: paper uses per-model targets on real CIFAR (e.g. 84 % for ResNet-152); the
#: synthetic task saturates at different levels per mini model, so per-model
#: targets are used here as well — relative TTA is what the figures compare.
MODEL_TARGET_ACCURACY = {
    "vgg19": 0.60,
    "resnet18": 0.80,
    "resnet152": 0.60,
    "vit-base-16": 0.55,
    "mlp": 0.80,
}
DEFAULT_TARGET_ACCURACY = 0.6

#: Dataset difficulty used by the benchmarks.  The default synthetic noise
#: (0.6) is learnable in a couple of epochs; 0.8 stretches convergence over the
#: whole benchmark run so convergence-speed differences are visible.
BENCH_NOISE_STD = 0.8

#: Single-worker warm-up steps before pruning.  The paper starts from a
#: pre-trained model (Fig. 1); this stands in for that checkpoint and is not
#: charged to the simulated TTA clock.
BENCH_PRETRAIN_ITERATIONS = 15


def model_target(model: str) -> float:
    """The per-model TTA target used throughout the figures."""
    return MODEL_TARGET_ACCURACY.get(model, DEFAULT_TARGET_ACCURACY)


def bench_base(
    bandwidth: str = "1Gbps",
    epochs: int = 8,
    world_size: int = 8,
    batch_size: int = 16,
    dataset: str = "cifar10",
    dataset_samples: int = 256,
    max_iterations_per_epoch: Optional[int] = 2,
    seed: int = 0,
    **extra,
) -> Dict:
    """Benchmark-scale campaign ``base`` axes (CPU-friendly defaults).

    The campaign analogue of :func:`experiment_config`: cells built from this
    base are identical to the configs the pre-campaign benchmarks constructed,
    so cached results and table values carry over run to run.
    """
    base: Dict = {
        "bandwidth": bandwidth,
        "epochs": epochs,
        "world_size": world_size,
        "batch_size": batch_size,
        "dataset": dataset,
        "dataset_samples": dataset_samples,
        "max_iterations_per_epoch": max_iterations_per_epoch,
        "noise_std": BENCH_NOISE_STD,
        "pretrain_iterations": BENCH_PRETRAIN_ITERATIONS,
        "seed": seed,
    }
    base.update(extra)
    return base


def campaign_store() -> ResultStore:
    """The persistent store benchmark campaigns cache into."""
    return ResultStore(CAMPAIGN_STORE_PATH)


def run_bench_campaign(spec: CampaignSpec) -> CampaignReport:
    """Execute a benchmark campaign against the shared store (fail-fast)."""
    report = run_campaign(
        spec,
        store=campaign_store(),
        jobs=None if BENCH_JOBS == 0 else BENCH_JOBS,
    )
    report.raise_failures()
    report_line(f"[campaign] {report.summary()}")
    return report


def experiment_config(
    model: str,
    bandwidth: str = "1Gbps",
    epochs: int = 8,
    world_size: int = 8,
    batch_size: int = 16,
    dataset: str = "cifar10",
    dataset_samples: int = 256,
    max_iterations_per_epoch: Optional[int] = 2,
    target_accuracy: Union[float, str, None] = PER_MODEL,
    seed: int = 0,
) -> ExperimentConfig:
    """Benchmark-scale experiment configuration (CPU-friendly defaults).

    ``target_accuracy`` accepts a float, ``None`` (no TTA target) or the
    :data:`PER_MODEL` sentinel, which resolves the target from
    :data:`MODEL_TARGET_ACCURACY` by model name; any other string is an error.
    """
    if isinstance(target_accuracy, str):
        if target_accuracy != PER_MODEL:
            raise ValueError(
                f"target_accuracy must be a float, None or {PER_MODEL!r}, "
                f"got {target_accuracy!r}"
            )
        target_accuracy = model_target(model)
    return ExperimentConfig(
        model=model,
        dataset=dataset,
        cluster=ClusterSpec(world_size=world_size, bandwidth=bandwidth),
        epochs=epochs,
        batch_size=batch_size,
        dataset_samples=dataset_samples,
        max_iterations_per_epoch=max_iterations_per_epoch,
        target_accuracy=target_accuracy,
        noise_std=BENCH_NOISE_STD,
        pretrain_iterations=BENCH_PRETRAIN_ITERATIONS,
        seed=seed,
    )


# --------------------------------------------------------------------------- #
# Report file
# --------------------------------------------------------------------------- #
_run_header_written = False


def _git_sha() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=os.path.dirname(__file__),
            capture_output=True,
            text=True,
            timeout=5,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def _ensure_run_header(handle) -> None:
    """Stamp the first append of this process with a run header.

    The report file is append-only across runs; the timestamp + git SHA header
    makes every block of tables attributable to the run (and code revision)
    that produced it.
    """
    global _run_header_written
    if _run_header_written:
        return
    _run_header_written = True
    stamp = datetime.now(timezone.utc).isoformat(timespec="seconds")
    handle.write(f"\n##### benchmark run {stamp} (git {_git_sha()}) #####\n")


def _append_report(text: str) -> None:
    os.makedirs(os.path.dirname(REPORT_PATH), exist_ok=True)
    with open(REPORT_PATH, "a", encoding="utf-8") as handle:
        _ensure_run_header(handle)
        handle.write(text + "\n")


def format_row(columns: Sequence[str], widths: Sequence[int]) -> str:
    return "  ".join(str(col).ljust(width) for col, width in zip(columns, widths))


def print_table(title: str, header: Sequence[str], rows: Iterable[Sequence[str]]) -> None:
    """Print a plain-text table (the benchmark harness's analogue of a figure).

    The table goes to stdout and is appended to ``benchmarks/results/``, so it
    is preserved even when pytest captures the output of passing tests.
    """
    rows = [list(map(str, row)) for row in rows]
    widths = [len(h) for h in header]
    for row in rows:
        widths = [max(w, len(col)) for w, col in zip(widths, row)]
    lines = [f"\n=== {title} ===",
             format_row(header, widths),
             format_row(["-" * w for w in widths], widths)]
    lines.extend(format_row(row, widths) for row in rows)
    text = "\n".join(lines)
    print(text)
    _append_report(text)


def report_line(text: str) -> None:
    """Print a line and append it to the benchmark report file."""
    print(text)
    _append_report(text)


# --------------------------------------------------------------------------- #
# Result labels
# --------------------------------------------------------------------------- #
def tta_label(result: ExperimentResult) -> str:
    """Human-readable TTA: the simulated seconds, or DNC if the target was missed."""
    if result.target_accuracy is None:
        return f"{result.simulated_time:.3f}"
    if result.tta is None:
        return "DNC"
    return f"{result.tta:.3f}"


def relative_tta_label(result: ExperimentResult, baseline: ExperimentResult) -> str:
    """Relative TTA (method / baseline), the y-axis of Fig. 3 — DNC if unreached."""
    if result.tta is None or baseline.tta is None:
        return "DNC"
    return f"{result.tta / baseline.tta:.3f}"


def speedup_label(result: ExperimentResult, baseline: ExperimentResult) -> str:
    if result.tta is None or baseline.tta is None:
        return "DNC"
    return f"{baseline.tta / result.tta:.2f}x"


def summarise_for_extra_info(results: Dict[str, ExperimentResult]) -> Dict[str, float]:
    """Flatten a result dict into numbers pytest-benchmark can store as extra_info."""
    info: Dict[str, float] = {}
    for key, result in results.items():
        info[f"{key}/final_accuracy"] = round(result.final_accuracy, 4)
        info[f"{key}/simulated_time"] = round(result.simulated_time, 4)
        info[f"{key}/comm_time"] = round(result.comm_time, 4)
        if result.tta is not None:
            info[f"{key}/tta"] = round(result.tta, 4)
    return info
