"""Shared configuration and reporting helpers for the benchmark harness.

Every benchmark regenerates one table or figure from the paper's evaluation
(see DESIGN.md, "Experiment index").  The workloads are the CPU-scale stand-ins
described in DESIGN.md (mini model variants, synthetic CIFAR); the quantities
reported — relative TTA, accuracy-vs-time traces, accuracy-vs-pruning-ratio,
wire bytes — are the same ones the paper plots, and EXPERIMENTS.md records the
paper-vs-measured comparison for each.

The benchmark functions use ``benchmark.pedantic(..., rounds=1)``: a "round" is
an entire experiment sweep (many training runs), so repeating it for timing
statistics would add minutes for no insight.  The interesting output is the
printed table plus the ``extra_info`` attached to the benchmark record.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, Optional, Sequence

from repro.simulation import ClusterSpec, ExperimentConfig, ExperimentResult

#: Every table printed by a benchmark is also appended to this report file so
#: the figures survive pytest's output capturing; EXPERIMENTS.md points here.
REPORT_PATH = os.path.join(os.path.dirname(__file__), "results", "benchmark_report.txt")

#: Models evaluated in the paper's figures, in presentation order.
PAPER_MODELS = ("vgg19", "resnet18", "resnet152", "vit-base-16")

#: Bottleneck bandwidths evaluated in Fig. 3.
PAPER_BANDWIDTHS = ("100Mbps", "500Mbps", "1Gbps")

#: Target accuracies used for TTA on the synthetic CIFAR-10 stand-in.  The
#: paper uses per-model targets on real CIFAR (e.g. 84 % for ResNet-152); the
#: synthetic task saturates at different levels per mini model, so per-model
#: targets are used here as well — relative TTA is what the figures compare.
MODEL_TARGET_ACCURACY = {
    "vgg19": 0.60,
    "resnet18": 0.80,
    "resnet152": 0.60,
    "vit-base-16": 0.55,
    "mlp": 0.80,
}
DEFAULT_TARGET_ACCURACY = 0.6

#: Dataset difficulty used by the benchmarks.  The default synthetic noise
#: (0.6) is learnable in a couple of epochs; 0.8 stretches convergence over the
#: whole benchmark run so convergence-speed differences are visible.
BENCH_NOISE_STD = 0.8

#: Single-worker warm-up steps before pruning.  The paper starts from a
#: pre-trained model (Fig. 1); this stands in for that checkpoint and is not
#: charged to the simulated TTA clock.
BENCH_PRETRAIN_ITERATIONS = 15


def experiment_config(
    model: str,
    bandwidth: str = "1Gbps",
    epochs: int = 8,
    world_size: int = 8,
    batch_size: int = 16,
    dataset: str = "cifar10",
    dataset_samples: int = 256,
    max_iterations_per_epoch: Optional[int] = 2,
    target_accuracy: Optional[float] = "per-model",
    seed: int = 0,
) -> ExperimentConfig:
    """Benchmark-scale experiment configuration (CPU-friendly defaults)."""
    if target_accuracy == "per-model":
        target_accuracy = MODEL_TARGET_ACCURACY.get(model, DEFAULT_TARGET_ACCURACY)
    return ExperimentConfig(
        model=model,
        dataset=dataset,
        cluster=ClusterSpec(world_size=world_size, bandwidth=bandwidth),
        epochs=epochs,
        batch_size=batch_size,
        dataset_samples=dataset_samples,
        max_iterations_per_epoch=max_iterations_per_epoch,
        target_accuracy=target_accuracy,
        noise_std=BENCH_NOISE_STD,
        pretrain_iterations=BENCH_PRETRAIN_ITERATIONS,
        seed=seed,
    )


def format_row(columns: Sequence[str], widths: Sequence[int]) -> str:
    return "  ".join(str(col).ljust(width) for col, width in zip(columns, widths))


def print_table(title: str, header: Sequence[str], rows: Iterable[Sequence[str]]) -> None:
    """Print a plain-text table (the benchmark harness's analogue of a figure).

    The table goes to stdout and is appended to ``benchmarks/results/``, so it
    is preserved even when pytest captures the output of passing tests.
    """
    rows = [list(map(str, row)) for row in rows]
    widths = [len(h) for h in header]
    for row in rows:
        widths = [max(w, len(col)) for w, col in zip(widths, row)]
    lines = [f"\n=== {title} ===",
             format_row(header, widths),
             format_row(["-" * w for w in widths], widths)]
    lines.extend(format_row(row, widths) for row in rows)
    text = "\n".join(lines)
    print(text)
    os.makedirs(os.path.dirname(REPORT_PATH), exist_ok=True)
    with open(REPORT_PATH, "a", encoding="utf-8") as handle:
        handle.write(text + "\n")


def report_line(text: str) -> None:
    """Print a line and append it to the benchmark report file."""
    print(text)
    os.makedirs(os.path.dirname(REPORT_PATH), exist_ok=True)
    with open(REPORT_PATH, "a", encoding="utf-8") as handle:
        handle.write(text + "\n")


def tta_label(result: ExperimentResult) -> str:
    """Human-readable TTA: the simulated seconds, or DNC if the target was missed."""
    if result.target_accuracy is None:
        return f"{result.simulated_time:.3f}"
    if result.tta is None:
        return "DNC"
    return f"{result.tta:.3f}"


def relative_tta_label(result: ExperimentResult, baseline: ExperimentResult) -> str:
    """Relative TTA (method / baseline), the y-axis of Fig. 3 — DNC if unreached."""
    if result.tta is None or baseline.tta is None:
        return "DNC"
    return f"{result.tta / baseline.tta:.3f}"


def speedup_label(result: ExperimentResult, baseline: ExperimentResult) -> str:
    if result.tta is None or baseline.tta is None:
        return "DNC"
    return f"{baseline.tta / result.tta:.2f}x"


def summarise_for_extra_info(results: Dict[str, ExperimentResult]) -> Dict[str, float]:
    """Flatten a result dict into numbers pytest-benchmark can store as extra_info."""
    info: Dict[str, float] = {}
    for key, result in results.items():
        info[f"{key}/final_accuracy"] = round(result.final_accuracy, 4)
        info[f"{key}/simulated_time"] = round(result.simulated_time, 4)
        info[f"{key}/comm_time"] = round(result.comm_time, 4)
        if result.tta is not None:
            info[f"{key}/tta"] = round(result.tta, 4)
    return info
