"""Metrics: TTA, NMSE, throughput / compression accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression import FP16Compressor, NoCompression
from repro.metrics import (
    AccuracyTrace,
    bytes_saved,
    compression_error_report,
    compression_summary,
    effective_throughput,
    iteration_breakdown,
    nmse,
    relative_tta,
    speedup_table,
    time_to_accuracy,
)


class TestTTA:
    def test_time_to_accuracy_first_crossing(self):
        points = [(1.0, 0.2), (2.0, 0.5), (3.0, 0.8), (4.0, 0.9)]
        assert time_to_accuracy(points, 0.5) == pytest.approx(2.0)
        assert time_to_accuracy(points, 0.85) == pytest.approx(4.0)
        assert time_to_accuracy(points, 0.95) is None

    def test_accuracy_trace(self):
        trace = AccuracyTrace()
        trace.add(1.0, 0.3)
        trace.add(2.0, 0.7)
        assert len(trace) == 2
        assert trace.time_to_accuracy(0.5) == pytest.approx(2.0)
        assert trace.final_accuracy() == pytest.approx(0.7)
        assert trace.best_accuracy() == pytest.approx(0.7)
        with pytest.raises(ValueError):
            trace.add(0.5, 0.9)

    def test_relative_tta(self):
        assert relative_tta(5.0, 10.0) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            relative_tta(1.0, 0.0)

    def test_speedup_table(self):
        table = speedup_table({"all-reduce": 100.0, "pactrain": 12.5, "fp16": 50.0})
        assert table["pactrain"] == pytest.approx(8.0)
        assert table["fp16"] == pytest.approx(2.0)
        assert table["all-reduce"] == pytest.approx(1.0)
        with pytest.raises(KeyError):
            speedup_table({"fp16": 1.0})


class TestNMSE:
    def test_zero_for_exact(self, rng):
        x = rng.standard_normal(100)
        assert nmse(x, x.copy()) == 0.0

    def test_value_matches_definition(self, rng):
        x = rng.standard_normal(50)
        y = x + 0.1
        expected = np.sum((x - y) ** 2) / np.sum(x ** 2)
        assert nmse(x, y) == pytest.approx(expected)

    def test_zero_reference(self):
        assert nmse(np.zeros(4), np.zeros(4)) == 0.0
        assert nmse(np.zeros(4), np.ones(4)) == float("inf")

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            nmse(np.zeros(3), np.zeros(4))

    def test_compression_error_report(self, rng):
        grads = [rng.standard_normal(64) for _ in range(4)]
        exact = np.mean(grads, axis=0)
        report = compression_error_report(grads, exact)
        assert report["nmse"] == pytest.approx(0.0, abs=1e-20)
        assert report["cosine_similarity"] == pytest.approx(1.0)


class TestThroughput:
    def test_compression_summary_and_bytes_saved(self, rng):
        from repro.comm import ProcessGroup
        from repro.ddp.bucket import Bucket, BucketSlice, GradBucket

        bucket = GradBucket(
            Bucket(index=0, slices=[BucketSlice("w", 0, 128, (128,))]),
            [rng.standard_normal(128) for _ in range(2)],
        )
        compressor = FP16Compressor()
        compressor.aggregate(bucket, ProcessGroup(2))
        summary = compression_summary(compressor)
        assert summary["compression_ratio"] == pytest.approx(2.0)
        assert summary["allreduce_compatible"] == 1.0
        assert bytes_saved(compressor) == pytest.approx(128 * 2.0)
        assert bytes_saved(NoCompression()) == 0.0

    def test_effective_throughput(self):
        assert effective_throughput(1000, 10.0) == pytest.approx(100.0)
        with pytest.raises(ValueError):
            effective_throughput(10, 0.0)

    def test_iteration_breakdown(self):
        breakdown = iteration_breakdown(1.0, 3.0)
        assert breakdown["compute_fraction"] == pytest.approx(0.25)
        assert breakdown["comm_fraction"] == pytest.approx(0.75)
        empty = iteration_breakdown(0.0, 0.0)
        assert empty["total"] == 0.0
