"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.comm import ProcessGroup, all_reduce, NetworkModel
from repro.comm.network import LinkSpec
from repro.compression.base import exact_average
from repro.compression.codec import (
    BitmaskPayload,
    DensePayload,
    FP16_BYTES,
    FP32_BYTES,
    Half,
    INDEX_BYTES,
    Identity,
    LowRank,
    LowRankPayload,
    MaskCompact,
    Pipeline,
    RandomK,
    Sign,
    SignPayload,
    SparsePayload,
    TERNARY_BYTES,
    Ternarize,
    TernaryPayload,
    TopK,
    batched_top_k_indices,
    orthonormalize,
    pack_ternary,
    unpack_ternary,
)
from repro.compression.terngrad import ternarize
from repro.compression.topk import top_k_indices
from repro.ddp.bucket import Bucket, BucketSlice, GradBucket
from repro.metrics import nmse
from repro.pactrain import MaskTracker, PacTrainCompressor
from repro.pruning.mask import PruningMask
from repro.tensorlib import Tensor
from repro.tensorlib.tensor import _unbroadcast

finite_floats = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False)


def arrays(shape=None, max_side=6, max_dims=3):
    if shape is None:
        shape = hnp.array_shapes(min_dims=1, max_dims=max_dims, min_side=1, max_side=max_side)
    return hnp.arrays(np.float64, shape, elements=finite_floats)


class TestUnbroadcastProperties:
    @given(arrays())
    @settings(max_examples=50, deadline=None)
    def test_identity_when_shapes_match(self, values):
        np.testing.assert_array_equal(_unbroadcast(values, values.shape), values)

    @given(arrays(max_dims=2, max_side=4), st.integers(min_value=1, max_value=4))
    @settings(max_examples=50, deadline=None)
    def test_reduces_leading_broadcast_dim_by_summation(self, values, repeats):
        stacked = np.broadcast_to(values, (repeats, *values.shape)).copy()
        reduced = _unbroadcast(stacked, values.shape)
        np.testing.assert_allclose(reduced, repeats * values, rtol=1e-9, atol=1e-9)

    @given(arrays(max_dims=2, max_side=5))
    @settings(max_examples=50, deadline=None)
    def test_gradient_of_broadcast_add_matches_sum(self, values):
        """d/db sum(a + b) where b has a size-1 axis equals the count of broadcasts."""
        if values.ndim < 2:
            values = values.reshape(1, -1)
        b = Tensor(np.zeros((1, values.shape[1])), requires_grad=True)
        a = Tensor(values)
        (a + b).sum().backward()
        np.testing.assert_allclose(b.grad, np.full((1, values.shape[1]), values.shape[0]))


class TestAllReduceProperties:
    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=1, max_value=64), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_average_is_bounded_by_extremes(self, world, numel, seed):
        rng = np.random.default_rng(seed)
        buffers = [rng.standard_normal(numel) for _ in range(world)]
        result, _ = all_reduce(buffers, average=True)
        stacked = np.stack(buffers)
        assert np.all(result <= stacked.max(axis=0) + 1e-12)
        assert np.all(result >= stacked.min(axis=0) - 1e-12)

    @given(st.integers(min_value=2, max_value=8), st.floats(min_value=1.0, max_value=1e9))
    @settings(max_examples=40, deadline=None)
    def test_collective_times_are_monotone_in_payload(self, world, nbytes):
        model = NetworkModel(world, LinkSpec(bandwidth=1e7, latency=1e-4))
        assert model.ring_all_reduce_time(nbytes) <= model.ring_all_reduce_time(2 * nbytes)
        # In the bandwidth-bound regime (zero latency) an all-gather always moves
        # at least as many bytes per worker as a ring all-reduce.
        bandwidth_only = NetworkModel(world, LinkSpec(bandwidth=1e7, latency=0.0))
        assert bandwidth_only.all_gather_time(nbytes) >= bandwidth_only.ring_all_reduce_time(nbytes) - 1e-12


class TestTopKProperties:
    @given(arrays(shape=st.tuples(st.integers(1, 200))), st.integers(min_value=1, max_value=50))
    @settings(max_examples=50, deadline=None)
    def test_selected_magnitudes_dominate_unselected(self, values, k):
        k = min(k, values.size)
        idx = top_k_indices(values, k)
        assert idx.size == min(k, values.size)
        chosen = np.abs(values[idx])
        unchosen_mask = np.ones(values.size, dtype=bool)
        unchosen_mask[idx] = False
        if unchosen_mask.any():
            assert chosen.min() >= np.abs(values[unchosen_mask]).max() - 1e-12


class TestTernarizeProperties:
    @given(arrays(shape=st.tuples(st.integers(1, 256))), st.integers(0, 2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_output_support_is_subset_of_input_support(self, values, seed):
        quantised = ternarize(values, rng=np.random.default_rng(seed))
        assert np.all(quantised[values == 0.0] == 0.0)

    @given(arrays(shape=st.tuples(st.integers(1, 256))), st.integers(0, 2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_values_bounded_by_scaler(self, values, seed):
        quantised = ternarize(values, rng=np.random.default_rng(seed))
        scaler = np.max(np.abs(values)) if values.size else 0.0
        assert np.all(np.abs(quantised) <= scaler + 1e-12)

    @given(arrays(shape=st.tuples(st.integers(1, 256))), st.integers(0, 2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_sign_preserved_where_nonzero(self, values, seed):
        quantised = ternarize(values, rng=np.random.default_rng(seed))
        nonzero = quantised != 0.0
        assert np.all(np.sign(quantised[nonzero]) == np.sign(values[nonzero]))


class TestCodecRoundTripProperties:
    """Round-trip and wire-size invariants for every codec stage.

    Lossless codecs satisfy ``decode(encode(x)) == x`` exactly; lossy codecs
    satisfy their documented error bounds; and ``payload.nbytes`` matches the
    analytic wire-size formulas (``FP32_BYTES``/``INDEX_BYTES``/...).
    """

    @given(arrays(shape=st.tuples(st.integers(1, 256))))
    @settings(max_examples=50, deadline=None)
    def test_identity_is_lossless_and_charges_fp32(self, values):
        pipeline = Pipeline([Identity()])
        payload = pipeline.encode(values)
        np.testing.assert_array_equal(pipeline.decode(payload), values)
        assert payload.nbytes == values.size * FP32_BYTES

    @given(arrays(shape=st.tuples(st.integers(1, 256))))
    @settings(max_examples=50, deadline=None)
    def test_half_error_bounded_by_fp16_rounding(self, values):
        pipeline = Pipeline([Half()])
        payload = pipeline.encode(values)
        decoded = pipeline.decode(payload)
        # fp16 has a 10-bit mantissa: relative error <= 2^-10 in the normal
        # range, absolute error <= one subnormal step (~6e-8) near zero.
        bound = np.maximum(np.abs(values) * 2.0 ** -10, 6.1e-8)
        assert np.all(np.abs(decoded - values) <= bound)
        assert payload.nbytes == values.size * FP16_BYTES

    @given(
        arrays(shape=st.tuples(st.integers(4, 256))),
        st.floats(min_value=0.01, max_value=1.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_topk_preserves_selected_coordinates_exactly(self, values, ratio):
        pipeline = Pipeline([TopK(ratio, error_feedback=False)])
        payload = pipeline.encode(values)
        k = max(1, int(round(values.size * ratio)))
        assert isinstance(payload, SparsePayload)
        assert payload.nbytes == k * (FP32_BYTES + INDEX_BYTES)
        decoded = pipeline.decode(payload)
        selected = np.zeros(values.size, dtype=bool)
        selected[payload.indices] = True
        np.testing.assert_array_equal(decoded[selected], values[selected])
        np.testing.assert_array_equal(decoded[~selected], 0.0)

    @given(
        arrays(shape=st.tuples(st.integers(4, 256))),
        st.floats(min_value=0.05, max_value=1.0),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_randomk_rescales_unbiasedly_and_skips_index_bytes(self, values, ratio, seed):
        pipeline = Pipeline([RandomK(ratio, seed=seed, rescale=True)])
        payload = pipeline.encode(values)
        k = max(1, int(round(values.size * ratio)))
        # Shared-seed selection: indices derived locally, never on the wire.
        assert payload.nbytes == k * FP32_BYTES
        decoded = pipeline.decode(payload)
        np.testing.assert_allclose(
            decoded[payload.indices], values[payload.indices] * values.size / k, rtol=1e-12
        )

    @given(arrays(shape=st.tuples(st.integers(1, 256))), st.integers(0, 2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_ternarize_error_bounds_and_two_bit_wire_size(self, values, seed):
        pipeline = Pipeline([Ternarize(seed=seed, clip_sigma=None)])
        payload = pipeline.encode(values)
        assert isinstance(payload, TernaryPayload)
        assert payload.nbytes == values.size * TERNARY_BYTES
        decoded = pipeline.decode(payload)
        scale = np.max(np.abs(values)) if values.size else 0.0
        assert np.all(np.abs(decoded) <= scale + 1e-12)           # bounded by the scale
        assert np.all(decoded[values == 0.0] == 0.0)              # support subset
        nonzero = decoded != 0.0
        assert np.all(np.sign(decoded[nonzero]) == np.sign(values[nonzero]))

    @given(
        hnp.arrays(np.int8, st.tuples(st.integers(1, 512)), elements=st.integers(-1, 1))
    )
    @settings(max_examples=50, deadline=None)
    def test_ternary_bit_packing_roundtrip(self, codes):
        np.testing.assert_array_equal(unpack_ternary(pack_ternary(codes), codes.size), codes)

    @given(
        hnp.arrays(np.bool_, st.tuples(st.integers(1, 512)), elements=st.booleans())
    )
    @settings(max_examples=50, deadline=None)
    def test_bitmask_payload_roundtrip_and_one_bit_per_element(self, mask):
        payload = BitmaskPayload.from_mask(mask)
        np.testing.assert_array_equal(payload.mask(), mask)
        assert payload.nbytes == -(-mask.size // 8)  # ceil(bits / 8)

    @given(
        hnp.arrays(np.bool_, st.just(64), elements=st.booleans()),
        arrays(shape=st.just((64,))),
    )
    @settings(max_examples=50, deadline=None)
    def test_mask_compact_is_lossless_on_masked_gradients(self, mask, values):
        masked = values * mask
        stage = MaskCompact()
        stage.set_mask(0, mask)
        pipeline = Pipeline([stage])
        payload = pipeline.encode(masked)
        assert payload.nbytes == mask.sum() * FP32_BYTES
        np.testing.assert_array_equal(pipeline.decode(payload), masked)

    @given(
        arrays(shape=st.tuples(st.integers(8, 128))),
        st.floats(min_value=0.05, max_value=0.5),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_composed_topk_terngrad_wire_size_and_support(self, values, ratio, seed):
        """Composition: indices charged by TopK, values shrunk to 2 bits."""
        pipeline = Pipeline([TopK(ratio, error_feedback=False), Ternarize(seed=seed)])
        payload = pipeline.encode(values)
        k = max(1, int(round(values.size * ratio)))
        assert isinstance(payload, SparsePayload)
        assert payload.nbytes == k * (INDEX_BYTES + TERNARY_BYTES)
        decoded = pipeline.decode(payload)
        off_selection = np.ones(values.size, dtype=bool)
        off_selection[payload.indices] = False
        np.testing.assert_array_equal(decoded[off_selection], 0.0)

    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=4, max_value=128),
        st.integers(min_value=1, max_value=16),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_batched_selection_matches_per_rank_argpartition(self, world, numel, k, seed):
        """The vectorised 2-D selection picks the same coordinate set per rank
        as the per-rank 1-D ``top_k_indices`` (continuous draws: no ties)."""
        k = min(k, numel)
        rng = np.random.default_rng(seed)
        matrix = rng.standard_normal((world, numel))
        batched = batched_top_k_indices(matrix, k)
        assert batched.shape == (world, k)
        for rank in range(world):
            expected = set(top_k_indices(matrix[rank], k).tolist())
            assert set(batched[rank].tolist()) == expected

    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=64),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_dense_payload_all_reduce_equals_exact_average(self, world, numel, seed):
        rng = np.random.default_rng(seed)
        buffers = [rng.standard_normal(numel) for _ in range(world)]
        reduced, event = all_reduce([DensePayload(b) for b in buffers], average=True)
        np.testing.assert_array_equal(reduced.reduce_values(), exact_average(buffers))
        assert event.metadata["payload"] == "DensePayload"


class TestSignPayloadProperties:
    """signSGD wire format: one bit per coordinate, bounded decode error."""

    @given(arrays(shape=st.tuples(st.integers(1, 300))))
    @settings(max_examples=50, deadline=None)
    def test_nbytes_is_exactly_ceil_bits_plus_scale(self, values):
        payload = SignPayload.from_values(values)
        assert payload.nbytes == -(-values.size // 8) + FP32_BYTES
        assert payload.transmitted_elements == values.size

    @given(arrays(shape=st.tuples(st.integers(1, 300))))
    @settings(max_examples=50, deadline=None)
    def test_decode_is_scaled_sign(self, values):
        pipeline = Pipeline([Sign()])
        decoded = pipeline.decode(pipeline.encode(values))
        scale = np.mean(np.abs(values))
        assert np.all(decoded[values > 0] == scale)
        assert np.all(decoded[values < 0] == -scale)
        assert np.all(np.abs(decoded) == scale)

    @given(arrays(shape=st.tuples(st.integers(1, 300))))
    @settings(max_examples=50, deadline=None)
    def test_nmse_bounded_by_one(self, values):
        """With scale = mean|v|, NMSE = 1 - n*mean(|v|)^2 / sum(v^2) <= 1."""
        power = float(np.sum(values.astype(np.float64) ** 2))
        if power == 0.0:
            return
        pipeline = Pipeline([Sign()])
        decoded = pipeline.decode(pipeline.encode(values))
        assert nmse(values, decoded) <= 1.0 + 1e-9

    @given(
        st.integers(min_value=1, max_value=7),
        st.integers(min_value=1, max_value=64),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_majority_vote_aggregate_is_sign_of_summed_codes(self, world, numel, seed):
        rng = np.random.default_rng(seed)
        buffers = [rng.standard_normal(numel) for _ in range(world)]
        payloads = [SignPayload.from_values(b) for b in buffers]
        reduced, _ = all_reduce(payloads, average=True)
        codes = np.stack([p.codes() for p in payloads])
        expected = np.mean([p.scale for p in payloads]) * np.sign(codes.sum(axis=0))
        np.testing.assert_allclose(reduced.values, expected, rtol=1e-12, atol=1e-15)

    @pytest.mark.parametrize("dtype", ["float32", "float64"])
    def test_dtype_matrix_decode_follows_compute_dtype(self, dtype):
        from repro.tensorlib.dtypes import default_dtype

        with default_dtype(dtype):
            rng = np.random.default_rng(0)
            values = rng.standard_normal(97).astype(dtype)
            pipeline = Pipeline([Sign()])
            payload = pipeline.encode(values)
            decoded = pipeline.decode(payload)
            assert decoded.dtype == np.dtype(dtype)
            # Wire cost models the packed-bit + fp32-scale format either way.
            assert payload.nbytes == -(-values.size // 8) + FP32_BYTES


class TestLowRankPayloadProperties:
    """PowerSGD wire format: (m+n)*rank*4 bytes, projection-bounded error."""

    @given(st.integers(min_value=1, max_value=4000), st.integers(min_value=1, max_value=6))
    @settings(max_examples=60, deadline=None)
    def test_nbytes_is_exactly_m_plus_n_times_rank(self, numel, rank):
        m, n = LowRank.matrix_shape(numel)
        assert m * n >= numel and (m - 1) * n < numel
        effective = min(rank, m, n)
        pipeline = Pipeline([LowRank(rank=rank)])
        payload = pipeline.encode(np.ones(numel))
        assert isinstance(payload, LowRankPayload)
        assert payload.nbytes == (m + n) * effective * FP32_BYTES
        assert payload.transmitted_elements == (m + n) * effective

    @given(
        st.integers(min_value=2, max_value=40),
        st.integers(min_value=1, max_value=3),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_exactly_low_rank_inputs_reconstruct_exactly(self, side, true_rank, seed):
        """One warm-started power-iteration step recovers rank <= r matrices."""
        rng = np.random.default_rng(seed)
        true_rank = min(true_rank, side)
        left = rng.standard_normal((side, true_rank))
        right = rng.standard_normal((side, true_rank))
        flat = (left @ right.T).reshape(-1)
        pipeline = Pipeline([LowRank(rank=4)])
        decoded = pipeline.decode(pipeline.encode(flat))
        scale = float(np.max(np.abs(flat))) or 1.0
        np.testing.assert_allclose(decoded, flat, atol=1e-8 * scale)

    @given(arrays(shape=st.tuples(st.integers(4, 400))), st.integers(min_value=1, max_value=4))
    @settings(max_examples=50, deadline=None)
    def test_decode_error_bounded_by_projection(self, values, rank):
        """Reconstruction is an orthogonal projection: NMSE <= 1."""
        power = float(np.sum(values.astype(np.float64) ** 2))
        if power == 0.0:
            return
        pipeline = Pipeline([LowRank(rank=rank)])
        decoded = pipeline.decode(pipeline.encode(values))
        assert nmse(values, decoded) <= 1.0 + 1e-9

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_warm_start_never_degrades_on_a_fixed_matrix(self, seed):
        rng = np.random.default_rng(seed)
        flat = rng.standard_normal(256)
        pipeline = Pipeline([LowRank(rank=2)])
        errors = []
        for _ in range(4):
            decoded = pipeline.decode(pipeline.encode(flat))
            errors.append(nmse(flat, decoded))
        assert errors[-1] <= errors[0] + 1e-9

    @given(
        st.integers(min_value=2, max_value=20),
        st.integers(min_value=1, max_value=5),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_orthonormalize_produces_orthonormal_or_zero_columns(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        basis = orthonormalize(rng.standard_normal((rows, cols)))
        gram = basis.T @ basis
        norms = np.diag(gram)
        assert np.all((np.abs(norms - 1.0) < 1e-9) | (norms < 1e-18))
        off_diagonal = gram - np.diag(norms)
        assert np.max(np.abs(off_diagonal)) < 1e-9

    @pytest.mark.parametrize("dtype", ["float32", "float64"])
    def test_dtype_matrix_decode_follows_compute_dtype(self, dtype):
        from repro.tensorlib.dtypes import default_dtype

        with default_dtype(dtype):
            rng = np.random.default_rng(1)
            values = rng.standard_normal(200).astype(dtype)
            pipeline = Pipeline([LowRank(rank=3)])
            payload = pipeline.encode(values)
            decoded = pipeline.decode(payload)
            assert decoded.dtype == np.dtype(dtype)
            m, n = LowRank.matrix_shape(values.size)
            assert payload.nbytes == (m + n) * 3 * FP32_BYTES


class TestErrorFeedbackInvariantProperties:
    @given(
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=8, max_value=128),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_mean_residual_plus_aggregate_equals_mean_input(self, world, numel, seed):
        """residual + decoded == input, aggregated over ranks."""
        from repro.compression import build_compressor, exact_average
        from repro.ddp.bucket import Bucket, BucketSlice, GradBucket

        rng = np.random.default_rng(seed)
        compressor = build_compressor("ef+powersgd-rank2")
        layout = Bucket(index=0, slices=[BucketSlice("w", 0, numel, (numel,))])
        group = ProcessGroup(world)
        for iteration in range(2):
            buffers = [rng.standard_normal(numel) for _ in range(world)]
            compensated = [
                b + r for b, r in zip(
                    buffers,
                    compressor.residual(0) if compressor.residual(0) is not None
                    else np.zeros((world, numel)),
                )
            ]
            aggregated = compressor.aggregate(
                GradBucket(layout, buffers), group, iteration=iteration
            )
            residual = compressor.residual(0)
            np.testing.assert_allclose(
                exact_average(compensated),
                aggregated + residual.mean(axis=0),
                atol=1e-9,
            )


class TestMaskTrackerProperties:
    @given(
        st.lists(
            hnp.arrays(np.bool_, st.just(32), elements=st.booleans()),
            min_size=1,
            max_size=12,
        ),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=50, deadline=None)
    def test_tracked_mask_is_superset_of_every_observation(self, patterns, threshold):
        tracker = MaskTracker(stability_threshold=threshold)
        for pattern in patterns:
            state = tracker.update(0, pattern)
            # Every observed non-zero coordinate is covered by the tracked mask.
            assert np.all(state.mask[pattern])

    @given(
        hnp.arrays(np.bool_, st.just(64), elements=st.booleans()),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=50, deadline=None)
    def test_constant_pattern_stabilises_exactly_at_threshold(self, pattern, threshold, extra):
        tracker = MaskTracker(stability_threshold=threshold, min_sparsity=0.0)
        dense = bool(pattern.mean() > 1.0 - 1e-9)
        for i in range(threshold + extra):
            state = tracker.update(0, pattern)
            expected = (i + 1) >= threshold and not (dense and tracker.min_sparsity > 0)
            assert state.stable == expected or tracker.min_sparsity == 0.0 and state.stable == ((i + 1) >= threshold)


class TestPacTrainLosslessProperty:
    @given(
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=8, max_value=128),
        st.floats(min_value=0.05, max_value=0.6),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_compact_aggregation_equals_exact_average(self, world, numel, density, seed):
        """For any shared sparsity pattern, once stable, PacTrain's aggregate is
        exactly the mean of the per-rank gradients (losslessness)."""
        rng = np.random.default_rng(seed)
        mask = rng.random(numel) < density
        compressor = PacTrainCompressor(stability_threshold=1, min_sparsity=0.0)
        group = ProcessGroup(world)
        layout = Bucket(index=0, slices=[BucketSlice("w", 0, numel, (numel,))])
        for _ in range(3):
            buffers = [rng.standard_normal(numel) * mask for _ in range(world)]
            result = compressor.aggregate(GradBucket(layout, buffers), group)
            np.testing.assert_allclose(result, np.mean(buffers, axis=0), atol=1e-10)


class TestPruningMaskProperties:
    @given(
        hnp.arrays(np.bool_, hnp.array_shapes(min_dims=1, max_dims=2, min_side=1, max_side=20), elements=st.booleans())
    )
    @settings(max_examples=50, deadline=None)
    def test_sparsity_and_density_sum_to_one(self, mask_values):
        mask = PruningMask({"w": mask_values})
        assert mask.sparsity + mask.density == pytest.approx(1.0)
        assert 0.0 <= mask.sparsity <= 1.0
        assert mask.kept_elements == int(mask_values.sum())


class TestNMSEProperties:
    @given(arrays(shape=st.tuples(st.integers(1, 64))), st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=50, deadline=None)
    def test_nmse_is_scale_invariant(self, values, scale):
        # Subnormal squared magnitudes lose precision faster than the rel
        # tolerance below; scale invariance only holds in the normal range.
        if np.sum(values ** 2) < np.finfo(np.float64).tiny:
            return
        noisy = values * 1.1
        assert nmse(values, noisy) == pytest.approx(nmse(values * scale, noisy * scale), rel=1e-6)

    @given(arrays(shape=st.tuples(st.integers(1, 64))))
    @settings(max_examples=50, deadline=None)
    def test_nmse_nonnegative(self, values):
        assert nmse(values, np.zeros_like(values)) >= 0.0


class TestCollectiveCostProperties:
    """Monotonicity invariants the engine relies on, for both cost backends."""

    @staticmethod
    def _models(world_size):
        from repro.comm import build_paper_topology

        flat = NetworkModel.from_bandwidth(world_size, 100e6 / 8.0, latency=1e-4)
        hier = build_paper_topology(
            wan_bandwidth=100e6 / 8.0, num_servers=world_size, num_switches=min(3, world_size)
        ).cost_model()
        return flat, hier

    @given(
        st.integers(min_value=2, max_value=16),
        st.floats(min_value=0.0, max_value=1e8, allow_nan=False),
        st.floats(min_value=0.0, max_value=1e8, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_costs_monotone_in_bytes(self, world_size, a, b):
        small, large = sorted((a, b))
        for model in self._models(world_size):
            for method in (
                "ring_all_reduce_time",
                "all_gather_time",
                "reduce_scatter_time",
                "broadcast_time",
                "reduce_time",
                "gather_time",
            ):
                low = getattr(model, method)(small)
                high = getattr(model, method)(large)
                assert 0.0 <= low <= high

    @given(
        st.integers(min_value=1, max_value=32),
        st.integers(min_value=1, max_value=32),
        st.floats(min_value=1.0, max_value=1e8, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_flat_costs_monotone_in_world_size(self, n_a, n_b, num_bytes):
        small, large = sorted((n_a, n_b))
        few = NetworkModel.from_bandwidth(small, 100e6 / 8.0, latency=1e-4)
        many = NetworkModel.from_bandwidth(large, 100e6 / 8.0, latency=1e-4)
        for method in (
            "ring_all_reduce_time",
            "all_gather_time",
            "reduce_scatter_time",
            "broadcast_time",
            "reduce_time",
            "gather_time",
        ):
            assert getattr(few, method)(num_bytes) <= getattr(many, method)(num_bytes)

    @given(
        st.lists(st.floats(min_value=0.0, max_value=10.0, allow_nan=False), min_size=1, max_size=8),
        st.lists(st.floats(min_value=0.0, max_value=5.0, allow_nan=False), min_size=1, max_size=6),
    )
    @settings(max_examples=80, deadline=None)
    def test_engine_wall_bounded_by_serial_and_critical_path(self, computes, comm_times):
        from repro.simulation.engine import SimulationEngine

        buckets = len(comm_times)
        fractions = [(index + 1) / buckets for index in range(buckets)]
        overlapped = SimulationEngine(overlap=True).run_iteration(computes, fractions, comm_times)
        serial = SimulationEngine(overlap=False).run_iteration(computes, fractions, comm_times)
        # Overlap never hurts, never beats the critical path.
        assert overlapped.wall_time <= serial.wall_time + 1e-12
        assert overlapped.wall_time >= max(computes) - 1e-12
        assert overlapped.wall_time >= serial.comm_busy - 1e-12
        assert serial.wall_time == max(computes) + serial.comm_busy
        assert overlapped.overlap_saved >= 0.0
