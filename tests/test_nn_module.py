"""Module / Parameter registration, traversal and state management."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Linear, Module, Parameter, ReLU, Sequential, ModuleList, SGD
from repro.nn.layers import BatchNorm2d
from repro.tensorlib import Tensor


class TwoLayer(Module):
    def __init__(self, seed: int = 0) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.fc1 = Linear(4, 8, rng=rng)
        self.act = ReLU()
        self.fc2 = Linear(8, 2, rng=rng)

    def forward(self, x):
        return self.fc2(self.act(self.fc1(x)))


class TestRegistration:
    def test_named_parameters_use_dotted_names(self):
        model = TwoLayer()
        names = [name for name, _ in model.named_parameters()]
        assert names == ["fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias"]

    def test_parameters_are_registration_ordered(self):
        model = TwoLayer()
        params = model.parameters()
        assert params[0].shape == (8, 4)
        assert params[-1].shape == (2,)

    def test_num_parameters(self):
        model = TwoLayer()
        assert model.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_named_modules_includes_children(self):
        model = TwoLayer()
        names = [name for name, _ in model.named_modules()]
        assert "" in names and "fc1" in names and "fc2" in names

    def test_direct_parameter_attribute(self):
        class WithRaw(Module):
            def __init__(self):
                super().__init__()
                self.scale = Parameter(np.ones(3))

        names = [name for name, _ in WithRaw().named_parameters()]
        assert names == ["scale"]


class TestSequentialAndModuleList:
    def test_sequential_forward(self, rng):
        model = Sequential(Linear(4, 4, rng=rng), ReLU(), Linear(4, 2, rng=rng))
        out = model(Tensor(rng.standard_normal((3, 4))))
        assert out.shape == (3, 2)

    def test_sequential_indexing_and_len(self, rng):
        model = Sequential(Linear(4, 4, rng=rng), ReLU())
        assert len(model) == 2
        assert isinstance(model[1], ReLU)

    def test_sequential_registers_parameters(self, rng):
        model = Sequential(Linear(4, 4, rng=rng), Linear(4, 2, rng=rng))
        assert len(model.parameters()) == 4

    def test_module_list(self, rng):
        blocks = ModuleList([Linear(2, 2, rng=rng) for _ in range(3)])
        assert len(blocks) == 3
        assert len(list(blocks)) == 3
        assert len(ModuleList([Linear(2, 2, rng=rng)]).parameters()) == 2

    def test_module_list_cannot_be_called(self):
        with pytest.raises(RuntimeError):
            ModuleList([])(None)


class TestTrainEvalAndGrad:
    def test_train_eval_propagates(self):
        model = Sequential(BatchNorm2d(3), ReLU())
        model.eval()
        assert not model[0].training
        model.train()
        assert model[0].training

    def test_zero_grad_clears_all(self, rng):
        model = TwoLayer()
        out = model(Tensor(rng.standard_normal((2, 4))))
        out.sum().backward()
        assert all(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())


class TestStateDict:
    def test_roundtrip(self, rng):
        source = TwoLayer(seed=1)
        target = TwoLayer(seed=2)
        assert not np.allclose(source.fc1.weight.data, target.fc1.weight.data)
        target.load_state_dict(source.state_dict())
        np.testing.assert_allclose(source.fc1.weight.data, target.fc1.weight.data)
        np.testing.assert_allclose(source.fc2.bias.data, target.fc2.bias.data)

    def test_state_dict_copies_data(self):
        model = TwoLayer()
        state = model.state_dict()
        state["fc1.weight"][:] = 0.0
        assert not np.allclose(model.fc1.weight.data, 0.0)

    def test_load_rejects_unknown_keys(self):
        model = TwoLayer()
        with pytest.raises(KeyError):
            model.load_state_dict({"nope.weight": np.zeros((2, 2))})

    def test_load_rejects_shape_mismatch(self):
        model = TwoLayer()
        state = model.state_dict()
        state["fc1.weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_buffers_roundtrip(self):
        bn_source = BatchNorm2d(3)
        bn_source.update_buffer("running_mean", np.array([1.0, 2.0, 3.0]))
        bn_target = BatchNorm2d(3)
        bn_target.load_state_dict(bn_source.state_dict())
        np.testing.assert_allclose(bn_target.running_mean, [1.0, 2.0, 3.0])


class TestOptimizer:
    def test_sgd_moves_against_gradient(self, rng):
        model = TwoLayer()
        x = Tensor(rng.standard_normal((4, 4)))
        loss = (model(x) * model(x)).sum()
        loss.backward()
        before = model.fc1.weight.data.copy()
        grad = model.fc1.weight.grad.copy()
        SGD(model.parameters(), lr=0.1).step()
        np.testing.assert_allclose(model.fc1.weight.data, before - 0.1 * grad)

    def test_sgd_momentum_accumulates(self):
        param = Parameter(np.zeros(1))
        opt = SGD([param], lr=1.0, momentum=0.5)
        param.grad = np.ones(1)
        opt.step()
        assert param.data[0] == pytest.approx(-1.0)
        param.grad = np.ones(1)
        opt.step()
        # velocity = 0.5 * 1 + 1 = 1.5
        assert param.data[0] == pytest.approx(-2.5)

    def test_sgd_weight_decay(self):
        param = Parameter(np.full(1, 2.0))
        opt = SGD([param], lr=0.1, weight_decay=0.1)
        param.grad = np.zeros(1)
        opt.step()
        assert param.data[0] == pytest.approx(2.0 - 0.1 * 0.1 * 2.0)

    def test_sgd_skips_missing_gradients(self):
        param = Parameter(np.ones(2))
        SGD([param], lr=0.5).step()
        np.testing.assert_allclose(param.data, np.ones(2))

    def test_sgd_validation(self):
        param = Parameter(np.ones(1))
        with pytest.raises(ValueError):
            SGD([param], lr=-1.0)
        with pytest.raises(ValueError):
            SGD([param], lr=0.1, momentum=1.5)
        with pytest.raises(ValueError):
            SGD([])

    def test_set_lr(self):
        param = Parameter(np.ones(1))
        opt = SGD([param], lr=0.1)
        opt.set_lr(0.01)
        assert opt.lr == 0.01
        with pytest.raises(ValueError):
            opt.set_lr(0.0)
