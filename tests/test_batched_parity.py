"""Batched-rank execution parity: world-batched == per-rank loop, bit-exactly.

The batched execution path (``repro.nn.batched`` + the world-batched kernels
in ``repro.tensorlib.functional``) promises float64 bit-identity with the
historical per-rank loop.  These tests pin that promise at every level:
individual layers under ``replica_views`` (hypothesis over layer types, world
sizes and dtypes), full ``DistributedDataParallel.train_step`` results, the
end-to-end experiment timeline (including a GSE/PacTrain cell), and the two
supporting pieces — ``GradientArena.write_world`` and the ``col2im``
non-overlap fast path.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.comm.process_group import ProcessGroup
from repro.data import DataLoader, DistributedSampler, synthetic_cifar10
from repro.ddp import DistributedDataParallel
from repro.ddp.arena import GradientArena
from repro.ddp.bucket import build_buckets
from repro.nn import layers as L
from repro.nn.batched import active_world, replica_views, world_batched
from repro.nn.models import build_model
from repro.nn.module import Module
from repro.tensorlib import Tensor, default_dtype, functional as F
from repro.tensorlib.functional import col2im, im2col


def _per_rank_grads(model: Module, images: np.ndarray, labels: np.ndarray):
    """Reference: loop rank by rank, collect per-rank gradient stacks."""
    world = images.shape[0]
    stacks: dict = {}
    losses = []
    for rank in range(world):
        model.zero_grad()
        loss = F.cross_entropy(model(Tensor(images[rank])), labels[rank])
        loss.backward()
        losses.append(float(loss.item()))
        for name, param in model.named_parameters():
            stacks.setdefault(name, []).append(param.grad.copy())
    model.zero_grad()
    return losses, {name: np.stack(grads) for name, grads in stacks.items()}


def _batched_grads(model: Module, images: np.ndarray, labels: np.ndarray):
    world = images.shape[0]
    model.zero_grad()
    with replica_views(model, world) as views:
        loss = F.cross_entropy(model(Tensor(images)), labels)
        loss.backward(np.ones(world, dtype=loss.data.dtype))
        grads = {name: view.grad.copy() for name, view in views.items()}
    losses = [float(v) for v in np.asarray(loss.data).reshape(-1)]
    model.zero_grad()
    return losses, grads


def _assert_stacks_equal(batched: dict, looped: dict) -> None:
    assert set(batched) == set(looped)
    for name in batched:
        np.testing.assert_array_equal(batched[name], looped[name], err_msg=name)


class _ConvBNNet(Module):
    """Tiny conv + BN + pool net covering the batched conv/norm/pool kernels."""

    def __init__(self, rng: np.random.Generator) -> None:
        super().__init__()
        self.conv1 = L.Conv2d(3, 4, 3, padding=1, rng=rng)
        self.bn = L.BatchNorm2d(4)
        self.conv2 = L.Conv2d(4, 4, 3, stride=2, padding=1, rng=rng)
        self.fc = L.Linear(4 * 4 * 4, 5, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        h = self.bn(self.conv1(x)).relu()
        h = self.conv2(h).relu()
        start = 2 if active_world() is not None else 1
        return self.fc(h.flatten(start_dim=start))


def _build(kind: str, rng: np.random.Generator) -> Module:
    if kind == "mlp":
        return build_model("mlp", num_classes=5, seed=3)
    if kind == "convbn":
        return _ConvBNNet(rng)
    if kind == "vit":
        return build_model("vit-base-16", num_classes=5, seed=3)
    raise KeyError(kind)


class TestLayerParity:
    @given(
        kind=st.sampled_from(["mlp", "convbn", "vit"]),
        world=st.sampled_from([2, 3]),
        dtype=st.sampled_from(["float64", "float32"]),
    )
    @settings(max_examples=8, deadline=None)
    def test_batched_equals_looped(self, kind, world, dtype):
        with default_dtype(dtype):
            rng = np.random.default_rng(11)
            model = _build(kind, rng)
            images = rng.standard_normal((world, 2, 3, 8, 8)).astype(dtype)
            labels = rng.integers(0, 5, size=(world, 2))
            looped_losses, looped = _per_rank_grads(model, images, labels)
            batched_losses, batched = _batched_grads(model, images, labels)
        assert batched_losses == looped_losses
        _assert_stacks_equal(batched, looped)

    def test_batchnorm_running_stats_match(self):
        """Buffer updates (momentum fold) must follow the per-rank order."""
        with default_dtype("float64"):
            rng = np.random.default_rng(5)
            images = rng.standard_normal((3, 2, 3, 8, 8))
            labels = rng.integers(0, 5, size=(3, 2))

            looped = _ConvBNNet(np.random.default_rng(9))
            _per_rank_grads(looped, images, labels)
            batched = _ConvBNNet(np.random.default_rng(9))
            _batched_grads(batched, images, labels)

        np.testing.assert_array_equal(batched.bn.running_mean, looped.bn.running_mean)
        np.testing.assert_array_equal(batched.bn.running_var, looped.bn.running_var)

    def test_replica_views_restore_parameters(self):
        model = build_model("mlp", num_classes=5, seed=0)
        originals = {name: param for name, param in model.named_parameters()}
        with replica_views(model, 4) as views:
            assert set(views) == set(originals)
            for name, view in views.items():
                assert view.data.shape == (4,) + originals[name].data.shape
                assert view.data.strides[0] == 0  # broadcast, not copied
                # the swapped attribute is the view, not the parameter
                module = model
                *path, local = name.split(".")
                for part in path:
                    module = getattr(module, part)
                assert getattr(module, local) is view
        for name, param in model.named_parameters():
            assert param is originals[name]

    def test_world_batched_context(self):
        assert active_world() is None
        with world_batched(8):
            assert active_world() == 8
        assert active_world() is None


class TestTrainStepParity:
    def _make(self, world=4, batch=2, comm_hook=None):
        with default_dtype("float64"):
            dataset = synthetic_cifar10(num_samples=world * batch, image_size=8, seed=0)
            model = build_model("resnet18", num_classes=10, seed=0)
            ddp = DistributedDataParallel(
                model, world_size=world, process_group=ProcessGroup(world), comm_hook=comm_hook
            )
            batches = [
                next(
                    iter(
                        DataLoader(
                            dataset,
                            batch_size=batch,
                            sampler=DistributedSampler(len(dataset), world, rank, seed=0),
                        )
                    )
                )
                for rank in range(world)
            ]
        return ddp, batches

    def test_train_step_results_identical(self):
        results = {}
        params = {}
        for execution in ("batched", "looped"):
            ddp, batches = self._make()
            with default_dtype("float64"):
                results[execution] = ddp.train_step(batches, F.cross_entropy, execution=execution)
            params[execution] = {n: p.data.copy() for n, p in ddp.model.named_parameters()}
        batched, looped = results["batched"], results["looped"]
        assert batched.per_rank_loss == looped.per_rank_loss
        assert batched.loss == looped.loss
        assert batched.comm_time == looped.comm_time
        assert batched.comm_bytes_per_worker == looped.comm_bytes_per_worker
        _assert_stacks_equal(params["batched"], params["looped"])

    def test_ragged_batches_fall_back_to_loop(self):
        ddp, batches = self._make(world=2, batch=2)
        images, labels = batches[1]
        batches[1] = (images[:1], labels[:1])  # ragged tail
        assert not DistributedDataParallel._stackable(batches)
        with default_dtype("float64"):
            result = ddp.train_step(batches, F.cross_entropy, execution="batched")
        assert len(result.per_rank_loss) == 2

    def test_unknown_execution_rejected(self):
        ddp, batches = self._make(world=2, batch=2)
        with pytest.raises(ValueError, match="unknown execution strategy"):
            ddp.train_step(batches, F.cross_entropy, execution="vectorised")


class TestExperimentParity:
    @pytest.mark.parametrize(
        "spec_kwargs",
        [
            {"name": "dense", "compressor": "allreduce"},
            {"name": "pac", "compressor": "pactrain", "pruning_ratio": 0.5, "gse": True},
        ],
        ids=["all-reduce", "pactrain-gse"],
    )
    def test_timeline_identical(self, spec_kwargs):
        from repro.simulation.cluster import ClusterSpec
        from repro.simulation.experiment import ExperimentConfig, MethodSpec, run_experiment

        def config(execution: str) -> "ExperimentConfig":
            return ExperimentConfig(
                model="mlp",
                cluster=ClusterSpec(world_size=4),
                epochs=2,
                batch_size=8,
                dataset_samples=64,
                seed=0,
                execution=execution,
            )

        spec = MethodSpec(**spec_kwargs)
        batched = run_experiment(config("batched"), spec)
        looped = run_experiment(config("looped"), spec)
        assert batched.loss_trace == looped.loss_trace
        assert batched.accuracy_trace == looped.accuracy_trace
        assert batched.simulated_time == looped.simulated_time
        assert batched.comm_bytes_per_worker == looped.comm_bytes_per_worker
        assert batched.final_accuracy == looped.final_accuracy

    def test_config_rejects_unknown_execution_and_backend(self):
        from repro.simulation.experiment import ExperimentConfig

        with pytest.raises(ValueError, match="execution"):
            ExperimentConfig(model="mlp", execution="turbo")
        with pytest.raises(ValueError, match="backend"):
            ExperimentConfig(model="mlp", backend="fortran")


class TestArenaWriteWorld:
    def _arena(self, world=3):
        model = build_model("mlp", num_classes=5, seed=1)
        buckets = build_buckets(model, bucket_cap_bytes=1 << 14)
        shapes = {
            piece.param_name: piece.shape for bucket in buckets for piece in bucket.slices
        }
        return GradientArena(buckets, world), buckets, shapes

    def test_write_world_matches_write_rank(self):
        arena_a, buckets, shapes = self._arena()
        arena_b, _, _ = self._arena()
        rng = np.random.default_rng(0)
        stacks = {name: rng.standard_normal((3,) + shape) for name, shape in shapes.items()}
        arena_a.write_world(stacks)
        for rank in range(3):
            arena_b.write_rank(rank, {name: stacks[name][rank] for name in stacks})
        for bucket in buckets:
            np.testing.assert_array_equal(
                arena_a.matrix(bucket.index), arena_b.matrix(bucket.index)
            )

    def test_write_world_missing_gradient_zeroes_slice(self):
        arena, buckets, shapes = self._arena()
        rng = np.random.default_rng(2)
        stacks = {name: rng.standard_normal((3,) + shape) for name, shape in shapes.items()}
        arena.write_world(stacks)
        target = buckets[0].slices[0]
        dropped = dict(stacks)
        dropped[target.param_name] = None
        arena.write_world(dropped)
        matrix = arena.matrix(buckets[0].index)
        assert not matrix[:, target.offset : target.end].any()
        # the other slices in the bucket kept their values
        if len(buckets[0].slices) > 1:
            other = buckets[0].slices[1]
            assert matrix[:, other.offset : other.end].any()

    def test_write_world_shape_mismatch_rejected(self):
        arena, _, shapes = self._arena()
        bad = {name: np.zeros((2,) + shape) for name, shape in shapes.items()}  # wrong world
        with pytest.raises(ValueError):
            arena.write_world(bad)


class TestCol2imFastPath:
    def _naive_col2im(self, cols, image_shape, kernel_size, stride, padding):
        """The original per-(i, j) strided scatter-add, kept as the reference."""
        n, c, h, w = image_shape
        kh, kw = kernel_size
        sh, sw = stride
        ph, pw = padding
        out_h = (h + 2 * ph - kh) // sh + 1
        out_w = (w + 2 * pw - kw) // sw + 1
        padded = np.zeros((n, c, h + 2 * ph, w + 2 * pw), dtype=cols.dtype)
        reshaped = cols.reshape(n, out_h, out_w, c, kh, kw).transpose(4, 5, 0, 3, 1, 2)
        for i in range(kh):
            for j in range(kw):
                padded[:, :, i : i + sh * out_h : sh, j : j + sw * out_w : sw] += reshaped[i, j]
        if ph == 0 and pw == 0:
            return padded
        return padded[:, :, ph : ph + h, pw : pw + w]

    @pytest.mark.parametrize(
        "kernel,stride,padding",
        [
            ((2, 2), (2, 2), (0, 0)),  # non-overlap: pooling layout (fast path)
            ((3, 3), (3, 3), (0, 0)),  # non-overlap, larger kernel
            ((2, 2), (3, 3), (0, 0)),  # stride > kernel: gaps between windows
            ((3, 3), (1, 1), (1, 1)),  # overlapping: scatter-add path
            ((3, 3), (2, 2), (1, 1)),  # overlapping with stride
        ],
    )
    def test_matches_naive_scatter(self, kernel, stride, padding):
        rng = np.random.default_rng(7)
        image_shape = (2, 3, 12, 12)
        images = rng.standard_normal(image_shape)
        cols, _ = im2col(images, kernel, stride, padding)
        result = col2im(cols, image_shape, kernel, stride, padding)
        expected = self._naive_col2im(cols, image_shape, kernel, stride, padding)
        np.testing.assert_array_equal(result, expected)

    def test_roundtrip_counts_window_touches(self):
        """col2im(im2col(x)) multiplies each pixel by its window multiplicity."""
        image_shape = (1, 1, 4, 4)
        images = np.ones(image_shape)
        cols, _ = im2col(images, (2, 2), (2, 2), (0, 0))
        out = col2im(cols, image_shape, (2, 2), (2, 2), (0, 0))
        np.testing.assert_array_equal(out, np.ones((1, 1, 4, 4)))
