"""Asynchronous training regimes: grammar, parity, local SGD and the async PS.

The regime seam is locked down from four directions:

* the ``sync_schedule`` spec grammar (``"localsgd:H"``, ``"localsgd:H:delta"``,
  ``"ps:S"``) parses, canonicalises and round-trips through
  :class:`~repro.simulation.experiment.MethodSpec` dicts, and rejects
  malformed specs loudly — property-tested with Hypothesis;
* **regime parity**: ``localsgd:1`` must reproduce today's synchronous path
  *bit-identically* for every golden method — averaging after every step is
  synchronous training, so the new dispatcher may not perturb a single float;
* local SGD semantics: H local steps per collective, delta-mode compression
  through the codec pipeline with the driver's error-feedback residual
  closing the aggregate delta exactly as it does for gradients;
* the stale-gradient parameter server: update accounting, the bounded
  staleness invariant ``staleness_max <= (world - 1) * (S + 1)``, event-loop
  determinism, and the loud rejections (fault plans, pruning, non-codec
  compressors).
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import golden
from repro.campaign.spec import METHOD_FIELD_AXES, build_cell
from repro.comm import ProcessGroup
from repro.compression import (
    Compressor,
    build_compressor,
    exact_average,
    register_compressor,
)
from repro.ddp.bucket import Bucket, BucketSlice, GradBucket
from repro.simulation.cluster import ClusterSpec
from repro.simulation.experiment import MethodSpec, run_experiment
from repro.simulation.regimes import SyncSchedule, parse_sync_schedule


def make_bucket(buffers, index=0):
    numel = buffers[0].size
    layout = Bucket(index=index, slices=[BucketSlice("w", 0, numel, (numel,))])
    return GradBucket(layout, buffers)


class _PlainMean(Compressor):
    """Minimal non-codec compressor: exact dense averaging, no pipeline."""

    name = "plain-mean"
    lossless = True

    def __init__(self, seed=None):
        super().__init__()

    def aggregate(self, bucket, group, iteration=0):
        flats = [np.asarray(row) for row in bucket.buffers]
        group.all_reduce(flats, average=True)
        return exact_average(flats)

#: Result fields that must be bit-identical between the synchronous path and
#: a ``localsgd:1`` schedule (every float the golden fixtures freeze).
PARITY_FIELDS = (
    "final_accuracy",
    "best_accuracy",
    "simulated_time",
    "compute_time",
    "comm_time",
    "comm_bytes_per_worker",
    "iterations_run",
    "epochs_run",
    "weight_sparsity",
    "compression_ratio",
)


# --------------------------------------------------------------------------- #
# Spec grammar
# --------------------------------------------------------------------------- #
class TestSyncScheduleGrammar:
    def test_default_is_synchronous(self):
        for spec in (None, "", "   ", "sync"):
            schedule = parse_sync_schedule(spec)
            assert schedule.regime == "sync"
            assert schedule.is_synchronous
            assert schedule.spec() == "sync"

    def test_localsgd_specs(self):
        schedule = parse_sync_schedule("localsgd:4")
        assert schedule.regime == "localsgd"
        assert schedule.period == 4
        assert not schedule.delta
        assert not schedule.is_synchronous
        delta = parse_sync_schedule("localsgd:8:delta")
        assert delta.period == 8 and delta.delta
        # The hyphenated alias parses to the same schedule.
        assert parse_sync_schedule("local-sgd:4") == schedule

    def test_localsgd_period_one_is_synchronous(self):
        """Averaging after every step IS synchronous training — the dispatcher
        must route localsgd:1 (delta or not) through the synchronous loop."""
        assert parse_sync_schedule("localsgd:1").is_synchronous
        assert parse_sync_schedule("localsgd:1:delta").is_synchronous

    def test_ps_specs(self):
        unbounded = parse_sync_schedule("ps")
        assert unbounded.regime == "ps" and unbounded.staleness is None
        assert not unbounded.is_synchronous
        bounded = parse_sync_schedule("ps:2")
        assert bounded.staleness == 2
        assert parse_sync_schedule("async-ps:0").staleness == 0

    def test_spec_is_canonical(self):
        for raw in ("localsgd:4", "localsgd:4:delta", "ps", "ps:3", "sync"):
            schedule = parse_sync_schedule(raw)
            assert parse_sync_schedule(schedule.spec()) == schedule

    @pytest.mark.parametrize(
        "bad",
        [
            "localsgd",
            "localsgd:",
            "localsgd:0",
            "localsgd:-3",
            "localsgd:2.5",
            "localsgd:2:bogus",
            "localsgd:2:delta:x",
            "ps:-1",
            "ps:1.5",
            "ps:2:3",
            "sync:1",
            "bogus",
            "bogus:2",
        ],
    )
    def test_invalid_specs_are_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_sync_schedule(bad)
        with pytest.raises(ValueError):
            MethodSpec(name="m", compressor="all-reduce", sync_schedule=bad)

    @given(period=st.integers(min_value=1, max_value=10_000), delta=st.booleans())
    @settings(max_examples=50, deadline=None)
    def test_localsgd_round_trip(self, period, delta):
        spec = f"localsgd:{period}" + (":delta" if delta else "")
        schedule = parse_sync_schedule(spec)
        assert schedule == SyncSchedule(regime="localsgd", period=period, delta=delta)
        assert parse_sync_schedule(schedule.spec()) == schedule

    @given(staleness=st.one_of(st.none(), st.integers(min_value=0, max_value=100)))
    @settings(max_examples=50, deadline=None)
    def test_ps_round_trip(self, staleness):
        spec = "ps" if staleness is None else f"ps:{staleness}"
        schedule = parse_sync_schedule(spec)
        assert schedule.staleness == staleness
        assert parse_sync_schedule(schedule.spec()) == schedule

    @given(spec=st.sampled_from(["localsgd", "ps"]), value=st.integers(max_value=0))
    @settings(max_examples=50, deadline=None)
    def test_nonpositive_parameters_are_rejected(self, spec, value):
        if spec == "ps" and value == 0:
            return  # ps:0 is legal (fully synchronous progress bound)
        with pytest.raises(ValueError):
            parse_sync_schedule(f"{spec}:{value}")

    @given(
        period=st.integers(min_value=1, max_value=10_000),
        delta=st.booleans(),
        compressor=st.sampled_from(["all-reduce", "topk-0.01", "fp16"]),
    )
    @settings(max_examples=50, deadline=None)
    def test_method_spec_dict_round_trip(self, period, delta, compressor):
        spec = f"localsgd:{period}" + (":delta" if delta else "")
        method = MethodSpec(name="m", compressor=compressor, sync_schedule=spec)
        restored = MethodSpec.from_dict(method.to_dict())
        assert restored == method
        assert restored.schedule() == method.schedule()

    def test_method_spec_default_schedule_round_trips_as_none(self):
        method = MethodSpec(name="m", compressor="all-reduce")
        assert method.sync_schedule is None
        assert method.schedule().is_synchronous
        assert MethodSpec.from_dict(method.to_dict()) == method


# --------------------------------------------------------------------------- #
# Regime parity: localsgd:1 == synchronous, bit-identically
# --------------------------------------------------------------------------- #
def _parity_pair(method: MethodSpec, schedule: str):
    config = golden.golden_config_for(method.name)
    base = dataclasses.replace(method, sync_schedule=None)
    wrapped = dataclasses.replace(method, sync_schedule=schedule)
    return run_experiment(config, base), run_experiment(config, wrapped)


class TestRegimeParity:
    @pytest.mark.parametrize("method_name", sorted(golden.GOLDEN_METHODS))
    def test_localsgd_1_is_bit_identical_to_synchronous(self, method_name):
        baseline, localsgd1 = _parity_pair(
            golden.GOLDEN_METHODS[method_name], "localsgd:1"
        )
        for field in PARITY_FIELDS:
            assert getattr(baseline, field) == getattr(localsgd1, field), field
        assert baseline.accuracy_trace == localsgd1.accuracy_trace
        assert baseline.loss_trace == localsgd1.loss_trace

    def test_localsgd_1_delta_with_lossless_codec_is_bit_identical(self):
        method = MethodSpec(name="none", compressor="none")
        baseline, delta1 = _parity_pair(method, "localsgd:1:delta")
        for field in PARITY_FIELDS:
            assert getattr(baseline, field) == getattr(delta1, field), field
        assert baseline.accuracy_trace == delta1.accuracy_trace
        assert baseline.loss_trace == delta1.loss_trace

    def test_synchronous_results_report_zero_regime_counters(self):
        result = run_experiment(
            golden.GOLDEN_CONFIG, MethodSpec(name="a", compressor="all-reduce")
        )
        assert result.sync_rounds == 0
        assert result.local_steps == 0
        assert result.ps_updates == 0
        assert result.staleness_mean == 0.0
        assert result.staleness_max == 0


# --------------------------------------------------------------------------- #
# Local SGD semantics
# --------------------------------------------------------------------------- #
class TestLocalSgd:
    def test_h4_delta_syncs_every_fourth_step_and_cuts_wire_bytes(self):
        method = MethodSpec(name="t", compressor="topk-0.01")
        sync = run_experiment(golden.GOLDEN_CONFIG, method)
        h4 = run_experiment(
            golden.GOLDEN_CONFIG,
            dataclasses.replace(method, sync_schedule="localsgd:4:delta"),
        )
        assert h4.sync_rounds > 0
        assert h4.local_steps > 0
        # Epoch boundaries flush partial windows, so rounds never exceed the
        # per-epoch ceiling and local steps account for the rest.
        iters = h4.iterations_run
        assert h4.local_steps <= iters
        assert h4.comm_bytes_per_worker < sync.comm_bytes_per_worker
        assert 0.0 <= h4.final_accuracy <= 1.0

    def test_dense_localsgd_averages_raw_parameters(self):
        """Non-delta mode all-reduces dense fp32 parameters: wire bytes per
        round match the model size, not the method's codec budget."""
        method = MethodSpec(name="t", compressor="topk-0.01")
        dense = run_experiment(
            golden.GOLDEN_CONFIG, dataclasses.replace(method, sync_schedule="localsgd:4")
        )
        delta = run_experiment(
            golden.GOLDEN_CONFIG,
            dataclasses.replace(method, sync_schedule="localsgd:4:delta"),
        )
        assert dense.sync_rounds == delta.sync_rounds
        assert dense.comm_bytes_per_worker > delta.comm_bytes_per_worker

    def test_localsgd_delta_needs_a_codec_compressor(self):
        # Every built-in compressor is a CodecCompressor, but the registry
        # accepts arbitrary Compressor subclasses — delta mode must reject
        # them loudly (it encodes model deltas through a codec pipeline).
        register_compressor("plain-mean", _PlainMean)
        method = MethodSpec(
            name="p", compressor="plain-mean", sync_schedule="localsgd:4:delta"
        )
        with pytest.raises(ValueError, match="delta mode"):
            run_experiment(golden.GOLDEN_CONFIG, method)

    def test_delta_ef_residual_closes_the_aggregate_delta(self):
        """The EF contract holds unchanged when the pipeline carries model
        deltas: mean(delta) == aggregate + mean(residual), per round."""
        rng = np.random.default_rng(7)
        world, numel = 4, 311
        compressor = build_compressor("ef+topk0.05")
        group = ProcessGroup(world)
        for iteration in range(3):
            deltas = [rng.standard_normal(numel) * 0.01 for _ in range(world)]
            previous = compressor.residual(0)
            carried = (
                np.zeros(numel) if previous is None else previous.mean(axis=0).copy()
            )
            aggregated = compressor.aggregate(
                make_bucket([d.copy() for d in deltas]), group, iteration=iteration
            )
            residual = compressor.residual(0)
            np.testing.assert_allclose(
                exact_average(deltas) + carried,
                aggregated + residual.mean(axis=0),
                atol=1e-9,
            )

    def test_localsgd_delta_ef_trains_end_to_end(self):
        method = MethodSpec(
            name="ef", compressor="ef+topk0.05", sync_schedule="localsgd:4:delta"
        )
        result = run_experiment(golden.GOLDEN_CONFIG, method)
        assert result.sync_rounds > 0
        assert result.iterations_run > 0
        assert 0.0 <= result.final_accuracy <= 1.0


# --------------------------------------------------------------------------- #
# Async parameter server
# --------------------------------------------------------------------------- #
def _ps_method(staleness) -> MethodSpec:
    spec = "ps" if staleness is None else f"ps:{staleness}"
    return MethodSpec(name="ps", compressor="topk-0.01", sync_schedule=spec)


class TestAsyncParameterServer:
    def test_every_worker_completes_every_update(self):
        result = run_experiment(golden.GOLDEN_CONFIG, _ps_method(2))
        world = golden.GOLDEN_CONFIG.cluster.world_size
        per_worker = result.iterations_run // world
        assert result.ps_updates == result.iterations_run == per_worker * world
        assert result.epochs_run == golden.GOLDEN_CONFIG.epochs
        assert result.staleness_mean >= 0.0

    @pytest.mark.parametrize("staleness", [0, 2])
    def test_staleness_stays_within_the_bound(self, staleness):
        result = run_experiment(golden.GOLDEN_CONFIG, _ps_method(staleness))
        world = golden.GOLDEN_CONFIG.cluster.world_size
        assert result.staleness_max <= (world - 1) * (staleness + 1)
        assert result.staleness_mean <= result.staleness_max

    def test_tighter_staleness_bound_never_increases_max_staleness(self):
        tight = run_experiment(golden.GOLDEN_CONFIG, _ps_method(0))
        loose = run_experiment(golden.GOLDEN_CONFIG, _ps_method(None))
        assert tight.staleness_max <= loose.staleness_max

    def test_event_loop_is_deterministic(self):
        first = run_experiment(golden.GOLDEN_CONFIG, _ps_method(2))
        second = run_experiment(golden.GOLDEN_CONFIG, _ps_method(2))
        for field in PARITY_FIELDS:
            assert getattr(first, field) == getattr(second, field), field
        assert first.loss_trace == second.loss_trace
        assert first.staleness_mean == second.staleness_mean

    def test_ps_rejects_fault_plans(self):
        config = dataclasses.replace(
            golden.GOLDEN_CONFIG,
            cluster=ClusterSpec(
                world_size=4, bandwidth="100Mbps", faults="crash:3@0.002,rejoin:3@0.008"
            ),
        )
        with pytest.raises(ValueError, match="parameter-server"):
            run_experiment(config, _ps_method(2))

    def test_ps_rejects_pruning_methods(self):
        method = dataclasses.replace(
            golden.GOLDEN_METHODS["pactrain"], name="p", sync_schedule="ps:2"
        )
        with pytest.raises(ValueError):
            run_experiment(golden.GOLDEN_CONFIG, method)

    def test_ps_rejects_non_codec_compressors(self):
        register_compressor("plain-mean", _PlainMean)
        method = MethodSpec(name="p", compressor="plain-mean", sync_schedule="ps:2")
        with pytest.raises(ValueError, match="codec"):
            run_experiment(golden.GOLDEN_CONFIG, method)


# --------------------------------------------------------------------------- #
# Campaign integration
# --------------------------------------------------------------------------- #
class TestCampaignAxis:
    def test_sync_schedule_is_a_method_field_axis(self):
        assert "sync_schedule" in METHOD_FIELD_AXES

    def test_non_synchronous_override_suffixes_the_method_name(self):
        cell = build_cell(
            {"method": "topk-0.01", "sync_schedule": "localsgd:4:delta"}
        )
        assert cell.method.name.endswith("@localsgd:4:delta")
        assert cell.method.sync_schedule == "localsgd:4:delta"

    def test_synchronous_override_keeps_the_method_name(self):
        for spec in ("sync", "localsgd:1"):
            cell = build_cell({"method": "topk-0.01", "sync_schedule": spec})
            assert "@" not in cell.method.name

    def test_invalid_schedule_fails_at_cell_expansion(self):
        with pytest.raises(ValueError):
            build_cell({"method": "topk-0.01", "sync_schedule": "localsgd:0"})
