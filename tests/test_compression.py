"""Gradient compressor baselines: correctness, cost accounting, registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm import NetworkModel, ProcessGroup
from repro.comm.network import MBPS
from repro.compression import (
    COMPRESSOR_REGISTRY,
    DGCCompressor,
    FP16Compressor,
    NoCompression,
    RandomKCompressor,
    TernGradCompressor,
    TopKCompressor,
    build_compressor,
    register_compressor,
)
from repro.compression.base import exact_average
from repro.compression.terngrad import ternarize
from repro.compression.topk import top_k_indices
from repro.ddp.bucket import Bucket, BucketSlice, GradBucket
from repro.metrics import nmse


def make_bucket(buffers):
    numel = buffers[0].size
    layout = Bucket(index=0, slices=[BucketSlice("w", 0, numel, (numel,))])
    return GradBucket(layout, buffers)


@pytest.fixture
def buffers(rng):
    return [rng.standard_normal(512) for _ in range(4)]


@pytest.fixture
def group():
    return ProcessGroup(4, NetworkModel.from_bandwidth(4, 100 * MBPS, latency=0.0))


class TestNoCompression:
    def test_exact_average(self, buffers, group):
        result = NoCompression().aggregate(make_bucket(buffers), group)
        np.testing.assert_allclose(result, exact_average(buffers), atol=1e-12)

    def test_flags(self):
        compressor = NoCompression()
        assert compressor.allreduce_compatible
        assert compressor.lossless
        assert compressor.stats.compression_ratio == 1.0  # nothing recorded yet

    def test_compression_ratio_is_one(self, buffers, group):
        compressor = NoCompression()
        compressor.aggregate(make_bucket(buffers), group)
        assert compressor.stats.compression_ratio == pytest.approx(1.0)


class TestFP16:
    def test_small_error(self, buffers, group):
        result = FP16Compressor().aggregate(make_bucket(buffers), group)
        assert nmse(exact_average(buffers), result) < 1e-5

    def test_halves_wire_bytes(self, buffers, group):
        compressor = FP16Compressor()
        compressor.aggregate(make_bucket(buffers), group)
        assert compressor.stats.compression_ratio == pytest.approx(2.0)

    def test_faster_than_fp32(self, buffers):
        network = NetworkModel.from_bandwidth(4, 100 * MBPS, latency=0.0)
        g32, g16 = ProcessGroup(4, network), ProcessGroup(4, network)
        NoCompression().aggregate(make_bucket(buffers), g32)
        FP16Compressor().aggregate(make_bucket(buffers), g16)
        assert g16.total_time == pytest.approx(g32.total_time / 2)


class TestTopK:
    def test_top_k_indices_selects_largest_magnitudes(self):
        values = np.array([0.1, -5.0, 0.3, 4.0, -0.2])
        chosen = set(top_k_indices(values, 2).tolist())
        assert chosen == {1, 3}

    def test_top_k_indices_edge_cases(self):
        values = np.arange(4.0)
        assert top_k_indices(values, 10).size == 4
        assert top_k_indices(values, 0).size == 0

    def test_keeps_requested_fraction(self, buffers, group):
        compressor = TopKCompressor(ratio=0.1, error_feedback=False)
        result = compressor.aggregate(make_bucket(buffers), group)
        # Union over 4 ranks of 10% selections: between 10% and 40% non-zero.
        density = np.mean(result != 0)
        assert 0.05 < density <= 0.4

    def test_uses_allgather(self, buffers, group):
        compressor = TopKCompressor(ratio=0.1)
        compressor.aggregate(make_bucket(buffers), group)
        assert not compressor.allreduce_compatible
        assert compressor.stats.allgather_calls == 1
        assert group.events[-1].op == "all_gather"

    def test_error_feedback_accumulates_unsent_mass(self, group, rng):
        compressor = TopKCompressor(ratio=0.05, error_feedback=True)
        # A coordinate with small but persistent gradient must eventually be sent.
        base = np.zeros(100)
        base[7] = 0.05
        spiky = rng.standard_normal(100) * 2.0
        spiky[7] = 0.0
        sent_seven = False
        for _ in range(30):
            buffers = [base.copy(), spiky.copy()]
            result = compressor.aggregate(make_bucket(buffers), ProcessGroup(2))
            if result[7] != 0:
                sent_seven = True
                break
        assert sent_seven

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            TopKCompressor(ratio=0.0)
        with pytest.raises(ValueError):
            TopKCompressor(ratio=1.5)

    def test_reset_clears_residuals(self, buffers, group):
        compressor = TopKCompressor(ratio=0.1)
        compressor.aggregate(make_bucket(buffers), group)
        assert compressor._residuals
        compressor.reset()
        assert not compressor._residuals
        assert compressor.stats.iterations == 0


class TestRandomK:
    def test_selection_is_shared_across_ranks(self, buffers, group):
        compressor = RandomKCompressor(ratio=0.2, rescale=False)
        result = compressor.aggregate(make_bucket(buffers), group)
        exact = exact_average(buffers)
        nonzero = result != 0
        np.testing.assert_allclose(result[nonzero], exact[nonzero], atol=1e-12)
        assert np.mean(nonzero) == pytest.approx(0.2, abs=0.02)

    def test_allreduce_compatible(self, buffers, group):
        compressor = RandomKCompressor(ratio=0.1)
        compressor.aggregate(make_bucket(buffers), group)
        assert compressor.allreduce_compatible
        assert compressor.stats.allgather_calls == 0

    def test_selection_changes_per_iteration(self, buffers, group):
        compressor = RandomKCompressor(ratio=0.1, rescale=False)
        a = compressor.aggregate(make_bucket(buffers), group, iteration=0)
        b = compressor.aggregate(make_bucket(buffers), group, iteration=1)
        assert not np.array_equal(a != 0, b != 0)


class TestTernGrad:
    def test_ternarize_values_are_ternary(self, rng):
        grad = rng.standard_normal(1000)
        quantised = ternarize(grad, rng=np.random.default_rng(0))
        scaler = np.max(np.abs(grad))
        unique = np.unique(quantised)
        for value in unique:
            assert value in (0.0, scaler, -scaler) or abs(value) == pytest.approx(scaler)

    def test_ternarize_is_unbiased_in_expectation(self):
        grad = np.full(20_000, 0.3)
        quantised = ternarize(grad, scaler=1.0, rng=np.random.default_rng(0))
        assert quantised.mean() == pytest.approx(0.3, abs=0.02)

    def test_ternarize_zero_input(self):
        np.testing.assert_array_equal(ternarize(np.zeros(10)), np.zeros(10))

    def test_aggregate_preserves_direction(self, group, rng):
        buffers = [rng.standard_normal(2000) + 0.5 for _ in range(4)]
        result = TernGradCompressor(seed=0).aggregate(make_bucket(buffers), group)
        exact = exact_average(buffers)
        cosine = np.dot(result, exact) / (np.linalg.norm(result) * np.linalg.norm(exact))
        assert cosine > 0.5

    def test_wire_bytes_are_two_bits_per_element(self, buffers, group):
        compressor = TernGradCompressor(seed=0)
        compressor.aggregate(make_bucket(buffers), group)
        assert compressor.stats.compression_ratio == pytest.approx(16.0)

    def test_allreduce_compatible(self):
        assert TernGradCompressor().allreduce_compatible


class TestDGC:
    def test_sparsity_of_output(self, buffers, group):
        compressor = DGCCompressor(ratio=0.01)
        result = compressor.aggregate(make_bucket(buffers), group)
        assert np.mean(result != 0) <= 0.04 + 1e-9  # at most world_size * ratio

    def test_momentum_correction_state_grows_then_clears(self, buffers, group):
        compressor = DGCCompressor(ratio=0.01, momentum=0.9)
        compressor.aggregate(make_bucket(buffers), group)
        assert compressor._momentum_buf and compressor._accum_buf
        compressor.reset()
        assert not compressor._momentum_buf

    def test_uses_allgather(self, buffers, group):
        compressor = DGCCompressor(ratio=0.01)
        compressor.aggregate(make_bucket(buffers), group)
        assert compressor.stats.allgather_calls == 1

    def test_clipping(self, group, rng):
        compressor = DGCCompressor(ratio=0.5, clip_norm=1.0)
        huge = [rng.standard_normal(100) * 100 for _ in range(4)]
        result = compressor.aggregate(make_bucket(huge), group)
        assert np.linalg.norm(result) <= 1.5

    def test_validation(self):
        with pytest.raises(ValueError):
            DGCCompressor(ratio=0.0)
        with pytest.raises(ValueError):
            DGCCompressor(momentum=1.0)


class TestCodecPipelines:
    def test_spec_parsing_builds_expected_stages(self):
        from repro.compression.codec import parse_codec_spec

        pipeline = parse_codec_spec("topk0.01+terngrad")
        assert [type(s).__name__ for s in pipeline.stages] == ["TopK", "Ternarize"]
        assert pipeline.stages[0].ratio == pytest.approx(0.01)
        assert not pipeline.allreduce_compatible

        pipeline = parse_codec_spec("randomk0.1+fp16")
        assert [type(s).__name__ for s in pipeline.stages] == ["RandomK", "Half"]
        assert pipeline.allreduce_compatible

    def test_malformed_spec_raises(self):
        from repro.compression.codec import parse_codec_spec

        with pytest.raises(KeyError):
            parse_codec_spec("topk0.01+nosuchstage")
        with pytest.raises(KeyError):
            parse_codec_spec("")

    def test_composed_topk_terngrad_aggregates_on_selection_support(self, buffers, group):
        compressor = build_compressor("topk0.01+terngrad")
        result = compressor.aggregate(make_bucket(buffers), group)
        assert result.shape == buffers[0].shape
        # Union of 4 ranks' 1% selections: at most 4% of coordinates non-zero.
        assert np.mean(result != 0) <= 0.04 + 1e-9
        assert compressor.stats.allgather_calls == 1

    def test_composed_randomk_fp16_close_to_randomk(self, buffers, group):
        plain = RandomKCompressor(ratio=0.2).aggregate(make_bucket(buffers), group)
        composed = build_compressor("randomk0.2+fp16")
        casted = composed.aggregate(make_bucket(buffers), ProcessGroup(4))
        # Same shared-seed selection; fp16-casting the selected values only
        # adds rounding error.
        assert nmse(plain, casted) < 1e-5

    def test_wire_bytes_derived_from_payloads(self, buffers, group):
        """Composed pipeline wire bytes follow the encoded payload structure."""
        compressor = build_compressor("topk0.1+fp16")
        compressor.aggregate(make_bucket(buffers), group)
        numel = buffers[0].size
        k = max(1, int(round(numel * 0.1)))
        # Sparse payload with indices on the wire and fp16 values.
        assert compressor.stats.wire_bytes == pytest.approx(k * (4.0 + 2.0))

    def test_stats_events_charge_payload_bytes(self, buffers):
        from repro.compression.codec import SparsePayload

        group = ProcessGroup(4)
        compressor = TopKCompressor(ratio=0.1, error_feedback=False)
        compressor.aggregate(make_bucket(buffers), group)
        event = group.events[-1]
        numel = buffers[0].size
        k = max(1, int(round(numel * 0.1)))
        assert event.metadata["payload"] == SparsePayload.__name__
        assert event.bytes_per_worker == pytest.approx((4 - 1) * k * 8.0)


class TestRegistry:
    @pytest.mark.parametrize(
        "name", ["allreduce", "fp16", "topk-0.1", "topk-0.01", "terngrad", "dgc", "randomk"]
    )
    def test_build_known(self, name):
        assert build_compressor(name) is not None

    def test_paper_names_map_to_expected_ratios(self):
        assert build_compressor("topk-0.01").ratio == pytest.approx(0.01)
        assert build_compressor("topk-0.1").ratio == pytest.approx(0.1)

    def test_pactrain_lazy_registration(self):
        compressor = build_compressor("pactrain")
        assert compressor.allreduce_compatible
        quantised = build_compressor("pactrain-terngrad")
        assert quantised.quantize

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            build_compressor("thc")

    def test_register_custom(self):
        register_compressor("custom-test", NoCompression)
        try:
            assert isinstance(build_compressor("custom-test"), NoCompression)
        finally:
            COMPRESSOR_REGISTRY.pop("custom-test", None)
