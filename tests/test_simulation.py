"""Simulation substrate: compute model, cluster spec, timeline, experiment driver."""

from __future__ import annotations

import pytest

from repro.nn.models import mlp_tiny, resnet18_mini, vgg19_mini
from repro.simulation import (
    ClusterSpec,
    ComputeModel,
    DeviceSpec,
    EpochRecord,
    ExperimentConfig,
    MethodSpec,
    PAPER_METHODS,
    TrainingTimeline,
    estimate_model_flops,
    evaluate_accuracy,
    run_experiment,
    train_distributed,
)
from repro.simulation.compute import DEVICE_PRESETS
from repro.simulation.experiment import run_method_comparison
from repro.data import DataLoader


class TestComputeModel:
    def test_flop_estimate_positive_and_scales_with_batch(self):
        model = vgg19_mini(seed=0)
        one = estimate_model_flops(model, (3, 8, 8), batch_size=1)
        four = estimate_model_flops(model, (3, 8, 8), batch_size=4)
        assert one > 0
        assert four == pytest.approx(4 * one)

    def test_bigger_models_cost_more(self):
        small = estimate_model_flops(mlp_tiny(seed=0), (3, 8, 8), 1)
        big = estimate_model_flops(vgg19_mini(seed=0), (3, 8, 8), 1)
        assert big > small

    def test_iteration_time_inverse_in_throughput(self):
        model = resnet18_mini(seed=0)
        slow = ComputeModel(DeviceSpec("slow", 1e9))
        fast = ComputeModel(DeviceSpec("fast", 2e9))
        assert slow.iteration_time(model, (3, 8, 8), 32) == pytest.approx(
            2 * fast.iteration_time(model, (3, 8, 8), 32)
        )

    def test_device_presets(self):
        assert "sim-gpu" in DEVICE_PRESETS and "a40" in DEVICE_PRESETS
        assert ComputeModel("a40").device.flops_per_second > ComputeModel("sim-gpu").device.flops_per_second
        with pytest.raises(KeyError):
            ComputeModel("tpu")

    def test_sparse_speedup_reduces_time(self):
        model = resnet18_mini(seed=0)
        dense = ComputeModel("sim-gpu", sparse_speedup=True).iteration_time(model, (3, 8, 8), 32, 0.0)
        sparse = ComputeModel("sim-gpu", sparse_speedup=True).iteration_time(model, (3, 8, 8), 32, 0.8)
        assert sparse < dense

    def test_invalid_device(self):
        with pytest.raises(ValueError):
            DeviceSpec("bad", 0.0)


class TestClusterSpec:
    def test_paper_bandwidth_settings(self):
        for setting, mbps in [("100Mbps", 100), ("500Mbps", 500), ("1Gbps", 1000)]:
            cluster = ClusterSpec(world_size=8, bandwidth=setting)
            assert cluster.bandwidth_bytes_per_second() * 8 / 1e6 == pytest.approx(mbps)

    def test_numeric_bandwidth(self):
        cluster = ClusterSpec(world_size=4, bandwidth=1e6)
        assert cluster.bandwidth_bytes_per_second() == pytest.approx(1e6)

    def test_network_model_and_group(self):
        cluster = ClusterSpec(world_size=4, bandwidth="500Mbps")
        assert cluster.network_model().world_size == 4
        assert cluster.process_group().world_size == 4

    def test_topology_matches_bandwidth(self):
        cluster = ClusterSpec(world_size=8, bandwidth="100Mbps")
        topo = cluster.topology()
        assert len(topo.servers) == 8
        assert topo.global_bottleneck().bandwidth == pytest.approx(cluster.bandwidth_bytes_per_second())

    def test_describe(self):
        info = ClusterSpec(world_size=8, bandwidth="1Gbps").describe()
        assert info["world_size"] == 8
        assert info["bandwidth_mbps"] == pytest.approx(1000)

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterSpec(world_size=0)
        with pytest.raises(KeyError):
            ClusterSpec(bandwidth="2Gbps").bandwidth_bytes_per_second()


class TestTimeline:
    def test_accumulation(self):
        timeline = TrainingTimeline()
        timeline.add_iteration(0.1, 0.5, 100.0)
        timeline.add_iteration(0.1, 0.5, 100.0)
        assert timeline.total_time == pytest.approx(1.2)
        assert timeline.iterations == 2
        assert timeline.comm_bytes_per_worker == pytest.approx(200.0)

    def test_epoch_snapshots_and_tta(self):
        timeline = TrainingTimeline()
        for epoch, accuracy in enumerate([0.3, 0.6, 0.85, 0.9]):
            timeline.add_iteration(1.0, 1.0)
            record = timeline.snapshot_epoch(epoch, train_loss=1.0, test_accuracy=accuracy)
            assert isinstance(record, EpochRecord)
        assert timeline.time_to_accuracy(0.8) == pytest.approx(6.0)
        assert timeline.time_to_accuracy(0.95) is None
        assert timeline.best_accuracy() == pytest.approx(0.9)
        assert timeline.final_accuracy() == pytest.approx(0.9)
        assert len(timeline.accuracy_trace()) == 4

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            TrainingTimeline().add_iteration(-1.0, 0.0)


class TestMethodSpec:
    def test_paper_methods_present(self):
        assert set(PAPER_METHODS) == {"all-reduce", "fp16", "topk-0.1", "topk-0.01", "pactrain"}
        assert PAPER_METHODS["pactrain"].pruning_ratio == pytest.approx(0.5)
        assert PAPER_METHODS["pactrain"].gse

    def test_build_compressor_for_each_method(self):
        for method in PAPER_METHODS.values():
            compressor = method.build_compressor()
            assert hasattr(compressor, "aggregate")

    def test_pactrain_spec_builds_pactrain_compressor(self):
        from repro.pactrain import PacTrainCompressor

        spec = MethodSpec(name="pactrain", compressor="pactrain", quantize=True)
        assert isinstance(spec.build_compressor(), PacTrainCompressor)

    def test_composed_codec_spec_builds_pipeline_compressor(self):
        spec = MethodSpec(name="prune+quant", compressor="topk0.01+terngrad")
        compressor = spec.build_compressor()
        assert [type(s).__name__ for s in compressor.pipeline.stages] == ["TopK", "Ternarize"]
        assert not compressor.allreduce_compatible  # top-k forces all-gather


class TestExperimentDriver:
    @pytest.fixture
    def quick_config(self):
        return ExperimentConfig(
            model="mlp",
            dataset="cifar10",
            cluster=ClusterSpec(world_size=2, bandwidth="100Mbps"),
            epochs=2,
            batch_size=16,
            dataset_samples=96,
            pretrain_iterations=2,
            seed=0,
        )

    def test_run_experiment_allreduce(self, quick_config):
        result = run_experiment(quick_config, PAPER_METHODS["all-reduce"])
        assert result.method == "all-reduce"
        assert result.epochs_run == 2
        assert result.iterations_run > 0
        assert 0.0 <= result.final_accuracy <= 1.0
        assert result.comm_time > 0
        assert result.compute_time > 0
        assert result.simulated_time == pytest.approx(result.comm_time + result.compute_time)
        assert result.weight_sparsity < 0.05

    def test_run_experiment_pactrain_prunes(self, quick_config):
        result = run_experiment(quick_config, PAPER_METHODS["pactrain"])
        assert result.weight_sparsity > 0.2
        assert result.gradient_density < 0.8
        assert result.compression_ratio > 1.0

    def test_pactrain_uses_less_comm_time_than_allreduce(self, quick_config):
        base = run_experiment(quick_config, PAPER_METHODS["all-reduce"])
        pac = run_experiment(quick_config, PAPER_METHODS["pactrain"])
        assert pac.comm_time < base.comm_time

    def test_tta_reported_when_target_reached(self, quick_config):
        quick_config.target_accuracy = 0.15
        quick_config.epochs = 3
        result = run_experiment(quick_config, PAPER_METHODS["all-reduce"])
        if result.best_accuracy >= 0.15:
            assert result.tta is not None
            assert result.tta <= result.simulated_time
        assert result.tta_or_total() > 0

    def test_deterministic_given_seed(self, quick_config):
        a = run_experiment(quick_config, PAPER_METHODS["fp16"])
        b = run_experiment(quick_config, PAPER_METHODS["fp16"])
        assert a.final_accuracy == pytest.approx(b.final_accuracy)
        assert a.simulated_time == pytest.approx(b.simulated_time)

    @pytest.mark.parametrize("spec", ["topk0.01+terngrad", "randomk0.1+fp16"])
    def test_run_experiment_with_composed_pipeline(self, quick_config, spec):
        """Composed codec pipelines run end-to-end through the driver."""
        result = run_experiment(quick_config, MethodSpec(name=spec, compressor=spec))
        assert result.method == spec
        assert result.iterations_run > 0
        assert 0.0 <= result.final_accuracy <= 1.0
        assert result.comm_time > 0
        # Both compositions shrink the wire payload well below dense fp32.
        assert result.compression_ratio > 2.0

    def test_method_comparison_runs_all(self, quick_config):
        results = run_method_comparison(
            quick_config,
            [PAPER_METHODS["all-reduce"], PAPER_METHODS["fp16"]],
        )
        assert set(results) == {"all-reduce", "fp16"}

    def test_evaluate_accuracy_bounds(self, tiny_split):
        train, test = tiny_split
        model = mlp_tiny(seed=0)
        accuracy = evaluate_accuracy(model, DataLoader(test, batch_size=8))
        assert 0.0 <= accuracy <= 1.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(epochs=0)
        with pytest.raises(ValueError):
            ExperimentConfig(batch_size=0)


class TestEngineIntegration:
    """Acceptance criteria for the event-driven engine refactor."""

    def _config(self, cluster: ClusterSpec, **overrides) -> ExperimentConfig:
        settings = dict(
            model="resnet18",
            dataset="cifar10",
            cluster=cluster,
            epochs=1,
            batch_size=16,
            dataset_samples=96,
            pretrain_iterations=2,
            max_iterations_per_epoch=2,
            seed=0,
            bucket_cap_bytes=8 * 1024,  # multi-bucket layout for the mini models
        )
        settings.update(overrides)
        return ExperimentConfig(**settings)

    @pytest.mark.parametrize("method_name", sorted(PAPER_METHODS))
    def test_overlap_disabled_reproduces_seed_time_exactly(self, method_name):
        """Overlap off + homogeneous flat cluster == the pre-refactor model.

        The seed computed ``simulated_time = compute_time + comm_time``; the
        engine must reproduce that to float equality (not approx) for every
        paper method, so all pre-engine figures remain valid.
        """
        config = self._config(ClusterSpec(world_size=2, bandwidth="100Mbps"))
        result = run_experiment(config, PAPER_METHODS[method_name])
        assert result.simulated_time == result.compute_time + result.comm_time
        assert result.overlap_fraction == 0.0
        assert result.critical_path_time == pytest.approx(result.simulated_time)

    def test_overlap_strictly_beats_serial_schedule(self):
        method = PAPER_METHODS["all-reduce"]
        serial = run_experiment(
            self._config(ClusterSpec(world_size=4, bandwidth="100Mbps")), method
        )
        overlapped = run_experiment(
            self._config(ClusterSpec(world_size=4, bandwidth="100Mbps", overlap=True)), method
        )
        # Same training run, same busy times — only the schedule differs.
        assert overlapped.compute_time == serial.compute_time
        assert overlapped.comm_time == serial.comm_time
        assert overlapped.comm_time > 0
        assert overlapped.simulated_time < overlapped.compute_time + overlapped.comm_time
        assert overlapped.simulated_time < serial.simulated_time
        assert overlapped.overlap_fraction > 0
        assert overlapped.critical_path_time == pytest.approx(overlapped.simulated_time)

    def test_single_bucket_layout_cannot_overlap(self):
        cluster = ClusterSpec(world_size=2, bandwidth="100Mbps", overlap=True)
        config = self._config(cluster, model="mlp", bucket_cap_bytes=25 * 1024 * 1024)
        result = run_experiment(config, PAPER_METHODS["all-reduce"])
        assert result.overlap_fraction == 0.0
        assert result.simulated_time == pytest.approx(result.compute_time + result.comm_time)

    def test_straggler_stretches_iteration_and_is_reported(self):
        method = PAPER_METHODS["all-reduce"]
        base = run_experiment(
            self._config(ClusterSpec(world_size=4, bandwidth="100Mbps", overlap=True)), method
        )
        straggler = run_experiment(
            self._config(
                ClusterSpec(world_size=4, bandwidth="100Mbps", overlap=True, straggler=2.0)
            ),
            method,
        )
        assert straggler.simulated_time > base.simulated_time
        assert straggler.straggler_time > 0
        assert base.straggler_time == 0.0

    def test_heterogeneous_devices_follow_the_slowest(self):
        slow = DeviceSpec("slow", 1.0e9)
        fast = DeviceSpec("fast", 4.0e9)
        uniform_slow = run_experiment(
            self._config(ClusterSpec(world_size=2, bandwidth="100Mbps", device=slow)),
            PAPER_METHODS["all-reduce"],
        )
        mixed = run_experiment(
            self._config(
                ClusterSpec(world_size=2, bandwidth="100Mbps", devices=[fast, slow])
            ),
            PAPER_METHODS["all-reduce"],
        )
        # The iteration critical path is the slow rank either way.
        assert mixed.compute_time == pytest.approx(uniform_slow.compute_time)
        assert mixed.straggler_time > 0

    def test_hierarchical_collectives_change_comm_time_only(self):
        method = PAPER_METHODS["all-reduce"]
        flat = run_experiment(
            self._config(ClusterSpec(world_size=8, bandwidth="100Mbps")), method
        )
        hier = run_experiment(
            self._config(ClusterSpec(world_size=8, bandwidth="100Mbps", hierarchical=True)),
            method,
        )
        assert hier.compute_time == flat.compute_time
        assert hier.comm_time != flat.comm_time
        assert hier.comm_bytes_per_worker == flat.comm_bytes_per_worker

    def test_reached_target_surfaced_and_drives_tta_or_total(self):
        config = self._config(
            ClusterSpec(world_size=2, bandwidth="100Mbps"), target_accuracy=0.01, epochs=2
        )
        reached = run_experiment(config, PAPER_METHODS["all-reduce"])
        assert reached.reached_target
        assert reached.tta is not None
        assert reached.tta_or_total() == reached.tta

        config = self._config(
            ClusterSpec(world_size=2, bandwidth="100Mbps"), target_accuracy=1.1, epochs=2
        )
        missed = run_experiment(config, PAPER_METHODS["all-reduce"])
        assert not missed.reached_target
        assert missed.tta is None
        assert missed.tta_or_total() == missed.simulated_time

    def test_timeline_records_iteration_traces(self, tiny_split):
        train, test = tiny_split
        cluster = ClusterSpec(world_size=2, bandwidth="100Mbps", overlap=True)
        timeline, ddp, _, reached = train_distributed(
            model=resnet18_mini(seed=0),
            train_dataset=train,
            test_loader=DataLoader(test, batch_size=8),
            method=PAPER_METHODS["all-reduce"],
            cluster=cluster,
            epochs=1,
            batch_size=8,
            lr=0.05,
            max_iterations_per_epoch=2,
            bucket_cap_bytes=8 * 1024,
        )
        assert not reached  # no target was set
        assert len(timeline.traces) == timeline.iterations == 2
        assert len(ddp.buckets) > 1
        trace = timeline.traces[0]
        assert len(trace.buckets) == len(ddp.buckets)
        assert trace.overlap_saved > 0
        assert timeline.overlap_fraction > 0
        assert timeline.critical_path_time() == pytest.approx(timeline.total_time)

    def test_cluster_heterogeneity_validation(self):
        with pytest.raises(ValueError):
            ClusterSpec(world_size=2, devices=["sim-gpu"])
        with pytest.raises(ValueError):
            ClusterSpec(world_size=2, straggler=0.0)
        with pytest.raises(ValueError):
            ClusterSpec(world_size=2, straggler_factors=[1.0])
        with pytest.raises(ValueError):
            ClusterSpec(world_size=2, straggler_factors=[1.0, -1.0])
        spec = ClusterSpec(world_size=3, straggler=2.0)
        assert spec.straggler_multipliers() == [1.0, 1.0, 2.0]
        assert spec.is_heterogeneous
        assert not ClusterSpec(world_size=3).is_heterogeneous
        assert ClusterSpec(world_size=2, straggler_factors=[1.0, 3.0]).straggler_multipliers() == [1.0, 3.0]
