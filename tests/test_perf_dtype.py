"""Dtype fast path, gradient arenas and the perf microbenchmark plumbing.

Covers the PR-4 acceptance contract:

* float64 runs are bit-identical to the historical default (the default *is*
  float64), and the two dtypes agree within a documented tolerance;
* gradient arenas never leak one step's gradients into the next, and the
  no-copy plumbing really is no-copy (views share memory end to end);
* wire payloads preserve the compute dtype through encode/decode round trips
  (hypothesis-driven);
* the process-group event log stays bounded while lifetime aggregates keep
  whole-run totals;
* the weight-sparsity scan is cached on the mask version;
* the perf suite times, reports and gates regressions.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign.spec import build_cell
from repro.comm.process_group import ProcessGroup
from repro.compression.codec import DensePayload, SparsePayload, parse_codec_spec
from repro.compression.registry import build_compressor
from repro.data import DataLoader, DistributedSampler, synthetic_cifar10
from repro.ddp import DistributedDataParallel, GradBucket
from repro.ddp.arena import GradientArena
from repro.ddp.bucket import build_buckets
from repro.nn.models import build_model, mlp_tiny
from repro.perf import BenchResult, check_regressions, run_suite, time_callable, write_report
from repro.pruning import PruningMask
from repro.simulation import ExperimentConfig, MethodSpec, PAPER_METHODS, run_experiment
from repro.simulation.experiment import _WeightSparsityCache
from repro.tensorlib import Tensor, default_dtype, functional as F, get_default_dtype


def tiny_config(dtype: str = "float64", **overrides) -> ExperimentConfig:
    kwargs = dict(
        model="mlp",
        epochs=2,
        dataset_samples=48,
        batch_size=8,
        max_iterations_per_epoch=2,
        pretrain_iterations=1,
        dtype=dtype,
    )
    kwargs.update(overrides)
    config = ExperimentConfig(**kwargs)
    config.cluster.world_size = 2
    return config


def _world_batches(world_size: int, seed: int = 0):
    dataset = synthetic_cifar10(num_samples=64, image_size=8, seed=seed)
    loaders = [
        DataLoader(dataset, batch_size=8, sampler=DistributedSampler(len(dataset), world_size, rank, seed=seed))
        for rank in range(world_size)
    ]
    return [next(iter(loader)) for loader in loaders]


# --------------------------------------------------------------------------- #
# Dtype parity
# --------------------------------------------------------------------------- #
class TestDtypeParity:
    def test_default_dtype_is_float64(self):
        assert get_default_dtype() == np.float64
        assert ExperimentConfig().dtype == "float64"

    def test_invalid_dtype_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(dtype="float16")

    def test_float64_bit_identical_to_default_all_paper_methods(self):
        """Explicit float64 must reproduce the default path bit for bit."""
        for method in PAPER_METHODS.values():
            default_run = run_experiment(tiny_config(), method)
            explicit = run_experiment(tiny_config(dtype="float64"), method)
            assert explicit.simulated_time == default_run.simulated_time
            assert explicit.comm_bytes_per_worker == default_run.comm_bytes_per_worker
            assert explicit.accuracy_trace == default_run.accuracy_trace
            assert explicit.loss_trace == default_run.loss_trace
            assert explicit.weight_sparsity == default_run.weight_sparsity

    def test_float32_within_tolerance_and_same_volume(self):
        method = PAPER_METHODS["all-reduce"]
        f64 = run_experiment(tiny_config(), method)
        f32 = run_experiment(tiny_config(dtype="float32"), method)
        # Wire accounting models the fp32 wire format in both cases.
        assert f32.comm_bytes_per_worker == f64.comm_bytes_per_worker
        assert f32.simulated_time == pytest.approx(f64.simulated_time, rel=1e-9)
        assert f32.final_accuracy == pytest.approx(f64.final_accuracy, abs=0.25)
        assert abs(f32.loss_trace[-1] - f64.loss_trace[-1]) < 0.2

    def test_float32_gradient_nmse_vs_float64(self):
        """Aggregated float32 gradients match float64 within fp32 tolerance."""
        grads = {}
        for dtype in ("float64", "float32"):
            with default_dtype(dtype):
                model = mlp_tiny(num_classes=10, seed=3)
                ddp = DistributedDataParallel(model, world_size=2)
                batches = _world_batches(2, seed=1)
                ddp.train_step(batches, F.cross_entropy)
                grads[dtype] = {
                    name: np.asarray(param.grad, dtype=np.float64)
                    for name, param in model.named_parameters()
                }
        for name, reference in grads["float64"].items():
            fast = grads["float32"][name]
            denom = float(np.sum(reference**2)) or 1.0
            nmse = float(np.sum((fast - reference) ** 2)) / denom
            assert nmse < 1e-9, f"{name} NMSE {nmse}"

    def test_model_params_follow_dtype_context(self):
        with default_dtype("float32"):
            model = build_model("resnet18", num_classes=10, seed=0)
        assert all(p.data.dtype == np.float32 for p in model.parameters())
        model.to("float64")
        assert all(p.data.dtype == np.float64 for p in model.parameters())

    def test_dtype_is_a_campaign_axis(self):
        cell = build_cell({"model": "mlp", "dtype": "float32", "epochs": 1})
        assert cell.config.dtype == "float32"
        restored = ExperimentConfig.from_dict(cell.config.to_dict())
        assert restored.dtype == "float32"


# --------------------------------------------------------------------------- #
# Arena: aliasing safety and no-copy plumbing
# --------------------------------------------------------------------------- #
class TestGradientArena:
    def test_rows_are_views_of_bucket_matrix(self, tiny_model):
        buckets = build_buckets(tiny_model)
        arena = GradientArena(buckets, world_size=3)
        matrix = arena.matrix(0)
        for rank in range(3):
            assert np.shares_memory(arena.row(0, rank), matrix)

    def test_missing_gradients_are_zeroed_not_stale(self, tiny_model, sample_batch):
        """A parameter that got no gradient this step must not inherit the
        previous step's values from the reused arena row."""
        model = tiny_model
        ddp = DistributedDataParallel(model, world_size=2)
        images, labels = sample_batch
        _, grads = ddp.compute_local_gradients((images, labels), F.cross_entropy)
        full = dict(grads)
        ddp.synchronize_gradients([full, full])

        name = next(iter(full))
        partial = {k: v for k, v in full.items() if k != name}
        aggregated = ddp.synchronize_gradients([partial, partial])
        assert np.all(aggregated[name] == 0.0)

    def test_consecutive_steps_do_not_alias(self, tiny_model, sample_batch):
        """Aggregated gradients from step N survive step N+1's arena reuse."""
        ddp = DistributedDataParallel(tiny_model, world_size=2)
        images, labels = sample_batch
        _, grads = ddp.compute_local_gradients((images, labels), F.cross_entropy)
        first = ddp.synchronize_gradients([grads, grads])
        snapshot = {name: value.copy() for name, value in first.items()}
        doubled = {name: value * 2.0 for name, value in grads.items()}
        ddp.synchronize_gradients([doubled, doubled])
        for name, value in first.items():
            np.testing.assert_array_equal(value, snapshot[name])

    def test_hook_returning_arena_row_is_copied(self, tiny_model, sample_batch):
        """A hook result aliasing the arena must not leak into param.grad."""

        def passthrough_hook(state, bucket):
            return bucket.buffer(0)  # a live arena row view

        ddp = DistributedDataParallel(tiny_model, world_size=2, comm_hook=passthrough_hook)
        images, labels = sample_batch
        _, grads = ddp.compute_local_gradients((images, labels), F.cross_entropy)
        aggregated = ddp.synchronize_gradients([grads, grads])
        for value in aggregated.values():
            assert not ddp.arena.shares_memory_with(value)

    def test_write_back_and_unflatten_are_no_copy(self, tiny_model, sample_batch):
        """The reduced buffer flows into param.grad without intermediate copies."""
        ddp = DistributedDataParallel(tiny_model, world_size=2)
        images, labels = sample_batch
        _, grads = ddp.compute_local_gradients((images, labels), F.cross_entropy)
        aggregated, _ = ddp.synchronize_gradients_traced([grads, grads])
        ddp.apply_aggregated_gradients(aggregated)
        params = dict(tiny_model.named_parameters())
        for name, value in aggregated.items():
            # unflatten returned views of one reduced buffer per bucket, and
            # _write_back assigned them without casting copies.
            assert params[name].grad is value
            assert value.base is not None

    def test_grad_bucket_matrix_is_zero_copy_for_arena(self, tiny_model):
        buckets = build_buckets(tiny_model)
        arena = GradientArena(buckets, world_size=2)
        bucket = GradBucket(buckets[0], matrix=arena.matrix(0))
        assert np.shares_memory(bucket.matrix, arena.matrix(0))
        assert all(np.shares_memory(buf, arena.matrix(0)) for buf in bucket.buffers)

    def test_arena_dtype_follows_model(self):
        with default_dtype("float32"):
            model = mlp_tiny(num_classes=10, seed=0)
            ddp = DistributedDataParallel(model, world_size=2)
        assert ddp.arena.dtype == np.float32
        assert ddp.arena.matrix(0).dtype == np.float32


# --------------------------------------------------------------------------- #
# Payload dtype round trips (hypothesis)
# --------------------------------------------------------------------------- #
class TestPayloadDtypes:
    @settings(max_examples=25, deadline=None)
    @given(
        values=st.lists(st.floats(-1e3, 1e3, allow_nan=False, width=32), min_size=1, max_size=64),
        dtype=st.sampled_from(["float32", "float64"]),
    )
    def test_dense_payload_preserves_dtype(self, values, dtype):
        array = np.asarray(values, dtype=dtype)
        payload = DensePayload(array)
        reduced = payload.reduce_values()
        assert reduced.dtype == np.dtype(dtype)
        np.testing.assert_array_equal(reduced, array)

    @settings(max_examples=25, deadline=None)
    @given(
        numel=st.integers(4, 128),
        dtype=st.sampled_from(["float32", "float64"]),
        seed=st.integers(0, 2**16),
    )
    def test_sparse_payload_densify_preserves_dtype(self, numel, dtype, seed):
        rng = np.random.default_rng(seed)
        k = max(1, numel // 4)
        indices = rng.choice(numel, size=k, replace=False)
        values = rng.standard_normal(k).astype(dtype)
        payload = SparsePayload(indices, values, numel)
        dense = payload.densify()
        assert dense.dtype == np.dtype(dtype)
        np.testing.assert_array_equal(dense[indices], values)

    @settings(max_examples=15, deadline=None)
    @given(
        spec=st.sampled_from(["fp32", "fp16", "topk0.5", "randomk0.5", "terngrad"]),
        dtype=st.sampled_from(["float32", "float64"]),
        seed=st.integers(0, 2**16),
    )
    def test_pipeline_round_trip_returns_compute_dtype(self, spec, dtype, seed):
        with default_dtype(dtype):
            rng = np.random.default_rng(seed)
            flats = [rng.standard_normal(32).astype(dtype) for _ in range(2)]
            pipeline = parse_codec_spec(spec, seed=0)
            payloads = pipeline.encode_all(flats)
            decoded = pipeline.decode(payloads[0])
            assert decoded.dtype == np.dtype(dtype)
            assert decoded.shape == (32,)

    def test_compressor_aggregate_keeps_compute_dtype(self):
        for dtype in ("float32", "float64"):
            with default_dtype(dtype):
                rng = np.random.default_rng(0)
                model = mlp_tiny(num_classes=10, seed=0)
                bucket = build_buckets(model)[0]
                matrix = rng.standard_normal((2, bucket.numel)).astype(dtype)
                compressor = build_compressor("topk0.1", seed=0)
                result = compressor.aggregate(GradBucket(bucket, matrix=matrix), ProcessGroup(2))
                assert result.dtype == np.dtype(dtype)


# --------------------------------------------------------------------------- #
# Bounded event log + lifetime aggregates
# --------------------------------------------------------------------------- #
class TestEventDraining:
    def test_event_log_stays_bounded_across_steps(self, tiny_model):
        ddp = DistributedDataParallel(tiny_model, world_size=2)
        batches = _world_batches(2)
        sizes = []
        for _ in range(5):
            ddp.train_step(batches, F.cross_entropy)
            sizes.append(len(ddp.process_group.events))
        # Drained per step: the log never accumulates across iterations.
        assert all(size == 0 for size in sizes)
        assert ddp.process_group.lifetime_events == 5 * len(ddp.buckets)

    def test_lifetime_aggregates_survive_draining(self, rng):
        from repro.comm.network import MBPS, NetworkModel

        group = ProcessGroup(2, NetworkModel.from_bandwidth(2, 100 * MBPS, latency=0.0))
        group.all_reduce([rng.standard_normal(100) for _ in range(2)])
        first_time = group.lifetime_time_seconds
        assert first_time > 0
        group.pop_events()
        assert group.events == []
        assert group.lifetime_time_seconds == first_time
        group.all_reduce([rng.standard_normal(100) for _ in range(2)])
        assert group.lifetime_time_seconds > first_time
        assert group.lifetime_events == 2

    def test_step_result_still_reports_events(self, tiny_model):
        ddp = DistributedDataParallel(tiny_model, world_size=2)
        batches = _world_batches(2)
        result = ddp.train_step(batches, F.cross_entropy)
        assert len(result.events) == len(ddp.buckets)
        assert result.comm_bytes_per_worker > 0


# --------------------------------------------------------------------------- #
# Sparsity cache
# --------------------------------------------------------------------------- #
class TestWeightSparsityCache:
    def test_mask_version_bumps_on_assignment(self):
        mask = PruningMask({"w": np.array([True, False])})
        version = mask.version
        mask["w"] = np.array([True, True])
        assert mask.version == version + 1

    def test_cache_rescans_only_on_version_change(self, tiny_model):
        mask = PruningMask.dense(tiny_model)
        cache = _WeightSparsityCache()
        first = cache.value(tiny_model, mask)
        # Zero out a parameter: the stale cached value is served until the
        # mask version changes (the documented invalidation contract).
        param = tiny_model.parameters()[0]
        param.data = np.zeros_like(param.data)
        assert cache.value(tiny_model, mask) == first
        name = next(name for name, _ in tiny_model.named_parameters())
        mask[name] = np.zeros(param.shape, dtype=bool)
        assert cache.value(tiny_model, mask) > first

    def test_dense_runs_always_scan(self, tiny_model):
        cache = _WeightSparsityCache()
        before = cache.value(tiny_model, None)
        param = tiny_model.parameters()[0]
        param.data = np.zeros_like(param.data)
        assert cache.value(tiny_model, None) > before


# --------------------------------------------------------------------------- #
# Perf suite
# --------------------------------------------------------------------------- #
class TestPerfSuite:
    def test_time_callable_statistics(self):
        result = time_callable(lambda: None, name="noop", repeats=5, warmup=1)
        assert result.repeats == 5
        assert result.min_s <= result.median_s
        assert result.median_s >= 0.0

    def test_run_suite_subset_and_unknown(self):
        results = run_suite(quick=True, only=["campaign"])
        assert "campaign/dispatch" in results
        with pytest.raises(KeyError):
            run_suite(quick=True, only=["nope"])

    def test_write_report_and_regression_check(self, tmp_path):
        results = {
            "bench/a": BenchResult("bench/a", 0.010, 0.011, 0.009, 5, 1),
            "bench/b": BenchResult("bench/b", 0.100, 0.100, 0.099, 5, 1),
        }
        path = tmp_path / "BENCH_perf.json"
        document = write_report(results, str(path), quick=True)
        on_disk = json.loads(path.read_text())
        assert on_disk["results"]["bench/a"]["median_s"] == 0.010
        assert document["schema"] == on_disk["schema"]

        slower = {
            "bench/a": BenchResult("bench/a", 0.014, 0.014, 0.013, 5, 1),
            "bench/b": BenchResult("bench/b", 0.101, 0.101, 0.100, 5, 1),
        }
        regressions = check_regressions(slower, on_disk, max_regression=0.25)
        assert [name for name, _, _ in regressions] == ["bench/a"]
        assert check_regressions(results, on_disk, max_regression=0.25) == []

    def test_seed_baseline_speedups_recorded(self, tmp_path):
        results = {"train_step/float64/resnet18/w4": BenchResult(
            "train_step/float64/resnet18/w4", 0.05, 0.05, 0.05, 3, 1)}
        baseline = {"results": {"train_step/float64/resnet18/w4": {"median_s": 0.10}}}
        document = write_report(results, str(tmp_path / "report.json"), quick=True,
                                seed_baseline=baseline)
        assert document["speedup_vs_seed"]["train_step/float64/resnet18/w4"] == pytest.approx(2.0)

    def test_committed_baseline_is_valid(self):
        import os

        path = os.path.join(os.path.dirname(__file__), "..", "BENCH_perf.json")
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        assert document["schema"] == 1
        speedups = document["speedup_vs_seed"]
        assert speedups["train_step/float64/resnet18/w4"] >= 1.2
        assert speedups["train_step/float32/resnet18/w4"] >= 1.7

    def test_perf_cli_quick_subset(self, tmp_path, capsys):
        from repro.campaign.cli import main

        out = tmp_path / "BENCH_perf.json"
        assert main(["perf", "--quick", "--only", "campaign", "--out", str(out)]) == 0
        document = json.loads(out.read_text())
        assert "campaign/dispatch" in document["results"]
        # A fabricated much-faster baseline (same workload meta — entries with
        # different workloads are skipped) must trip the regression gate, but
        # only when it carries this host's fingerprint.
        entry = document["results"]["campaign/dispatch"]
        fast = {"host": document["host"], "results": {"campaign/dispatch": {
            "median_s": entry["median_s"] / 100.0, "meta": entry["meta"]}}}
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(json.dumps(fast))
        assert main(["perf", "--quick", "--only", "campaign", "--out", str(out),
                     "--check", str(baseline_path)]) == 2
        # The same regression measured against a different host's baseline is
        # demoted to a warning (exit 0): cross-host medians are incomparable.
        fast["host"] = {"python": "0.0.0", "numpy": "0.0", "machine": "other"}
        baseline_path.write_text(json.dumps(fast))
        assert main(["perf", "--quick", "--only", "campaign", "--out", str(out),
                     "--check", str(baseline_path)]) == 0
        err = capsys.readouterr().err
        assert "different host" in err

    def test_check_skips_mismatched_workloads(self):
        from repro.perf import BenchResult, check_regressions

        current = {"codec/fp16": BenchResult("codec/fp16", 1.0, 1.0, 1.0, 3, 1,
                                             meta={"numel": 50_000})}
        baseline = {"results": {"codec/fp16": {"median_s": 0.01, "meta": {"numel": 200_000}}}}
        assert check_regressions(current, baseline) == []

    def test_only_subset_does_not_truncate_report(self, tmp_path):
        from repro.campaign.cli import main

        out = tmp_path / "BENCH_perf.json"
        assert main(["perf", "--quick", "--only", "engine", "--out", str(out), "--quiet"]) == 0
        assert main(["perf", "--quick", "--only", "campaign", "--out", str(out), "--quiet"]) == 0
        document = json.loads(out.read_text())
        # The engine entry from the first run survives the campaign-only rerun.
        assert "engine/event_loop" in document["results"]
        assert "campaign/dispatch" in document["results"]


# --------------------------------------------------------------------------- #
# Fused float32 kernels agree with the float64 composites
# --------------------------------------------------------------------------- #
class TestFusedKernelParity:
    def test_fused_norm_matches_composite(self):
        rng = np.random.default_rng(0)
        x64 = rng.standard_normal((4, 3, 6, 6))
        from repro.nn.layers import BatchNorm2d

        with default_dtype("float64"):
            bn = BatchNorm2d(3)
            x = Tensor(x64, requires_grad=True)
            out = bn(x)
            out.sum().backward()
            reference = (out.data, x.grad, bn.weight.grad, bn.bias.grad)
        with default_dtype("float32"):
            bn32 = BatchNorm2d(3)
            x32 = Tensor(x64.astype(np.float32), requires_grad=True)
            out32 = bn32(x32)
            out32.sum().backward()
            fast = (out32.data, x32.grad, bn32.weight.grad, bn32.bias.grad)
        for ref, got in zip(reference, fast):
            np.testing.assert_allclose(got, ref, atol=1e-3)

    def test_conv_input_grad_correlation_matches_col2im(self):
        rng = np.random.default_rng(1)
        from repro.nn.layers import Conv2d

        for stride, padding in [(1, 1), (1, 0), (2, 1)]:
            with default_dtype("float64"):
                conv = Conv2d(3, 4, 3, stride=stride, padding=padding, rng=np.random.default_rng(7))
                x = Tensor(rng.standard_normal((2, 3, 8, 8)), requires_grad=True)
                (conv(x) ** 2).sum().backward()
                reference = x.grad.copy()
                weights = conv.weight.data.copy()
                bias = conv.bias.data.copy()
            with default_dtype("float32"):
                conv32 = Conv2d(3, 4, 3, stride=stride, padding=padding, rng=np.random.default_rng(7))
                conv32.weight.data = weights.astype(np.float32)
                conv32.bias.data = bias.astype(np.float32)
                x32 = Tensor(x.data.astype(np.float32), requires_grad=True)
                (conv32(x32) ** 2).sum().backward()
            np.testing.assert_allclose(x32.grad, reference, atol=1e-3)


class TestMethodSpecDtypeSweep:
    def test_run_method_comparison_accepts_dtype_axis(self):
        config = tiny_config(dtype="float32")
        result = run_experiment(config, MethodSpec(name="fp16", compressor="fp16"))
        assert result.simulated_time > 0
        assert 0.0 <= result.final_accuracy <= 1.0
