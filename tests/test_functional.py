"""Convolution, pooling, embedding, dropout and loss primitives."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tensorlib import Tensor, functional as F
from tests.test_tensor_autograd import check_gradient, numeric_gradient


class TestIm2Col:
    def test_shapes(self, rng):
        images = rng.standard_normal((2, 3, 8, 8))
        cols, (oh, ow) = F.im2col(images, (3, 3), (1, 1), (1, 1))
        assert (oh, ow) == (8, 8)
        assert cols.shape == (2, 64, 27)

    def test_stride_and_padding(self, rng):
        images = rng.standard_normal((1, 1, 6, 6))
        cols, (oh, ow) = F.im2col(images, (2, 2), (2, 2), (0, 0))
        assert (oh, ow) == (3, 3)
        assert cols.shape == (1, 9, 4)

    def test_col2im_is_adjoint_of_im2col(self, rng):
        """<im2col(x), y> == <x, col2im(y)> — the defining adjoint property."""
        x = rng.standard_normal((2, 3, 6, 6))
        cols, _ = F.im2col(x, (3, 3), (1, 1), (1, 1))
        y = rng.standard_normal(cols.shape)
        lhs = float(np.sum(cols * y))
        back = F.col2im(y, x.shape, (3, 3), (1, 1), (1, 1))
        rhs = float(np.sum(x * back))
        assert lhs == pytest.approx(rhs, rel=1e-10)


class TestConv2d:
    def test_forward_matches_direct_convolution(self, rng):
        x = rng.standard_normal((1, 2, 5, 5))
        w = rng.standard_normal((3, 2, 3, 3))
        out = F.conv2d(Tensor(x), Tensor(w), stride=1, padding=1).data
        assert out.shape == (1, 3, 5, 5)
        # Check one output element against the direct definition.
        padded = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        expected = float(np.sum(padded[0, :, 1:4, 1:4] * w[1]))
        assert out[0, 1, 1, 1] == pytest.approx(expected, rel=1e-10)

    def test_channel_mismatch_raises(self, rng):
        x = Tensor(rng.standard_normal((1, 3, 5, 5)))
        w = Tensor(rng.standard_normal((4, 2, 3, 3)))
        with pytest.raises(ValueError):
            F.conv2d(x, w)

    def test_gradient_wrt_input(self, rng):
        w = Tensor(rng.standard_normal((2, 2, 3, 3)))
        x = rng.standard_normal((1, 2, 5, 5))
        check_gradient(lambda t: F.conv2d(t, w, stride=1, padding=1), x, atol=1e-4)

    def test_gradient_wrt_weight(self, rng):
        x = Tensor(rng.standard_normal((1, 2, 5, 5)))
        w = rng.standard_normal((2, 2, 3, 3))
        check_gradient(lambda t: F.conv2d(x, t, stride=1, padding=1), w, atol=1e-4)

    def test_gradient_wrt_bias(self, rng):
        x = Tensor(rng.standard_normal((2, 2, 4, 4)))
        w = Tensor(rng.standard_normal((3, 2, 3, 3)))
        b = rng.standard_normal(3)
        check_gradient(lambda t: F.conv2d(x, w, t, padding=1), b, atol=1e-5)

    def test_strided_output_shape(self, rng):
        x = Tensor(rng.standard_normal((2, 3, 8, 8)))
        w = Tensor(rng.standard_normal((4, 3, 3, 3)))
        out = F.conv2d(x, w, stride=2, padding=1)
        assert out.shape == (2, 4, 4, 4)


class TestPooling:
    def test_max_pool_values(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        out = F.max_pool2d(Tensor(x), kernel_size=2).data
        np.testing.assert_allclose(out[0, 0], [[5, 7], [13, 15]])

    def test_max_pool_gradient(self, rng):
        x = rng.standard_normal((1, 2, 4, 4))
        x += np.arange(x.size).reshape(x.shape) * 1e-3  # break ties
        check_gradient(lambda t: F.max_pool2d(t, 2), x, atol=1e-4)

    def test_avg_pool_values(self):
        x = np.ones((1, 1, 4, 4))
        out = F.avg_pool2d(Tensor(x), kernel_size=2).data
        np.testing.assert_allclose(out, np.ones((1, 1, 2, 2)))

    def test_avg_pool_gradient(self, rng):
        x = rng.standard_normal((1, 2, 4, 4))
        check_gradient(lambda t: F.avg_pool2d(t, 2), x, atol=1e-5)

    def test_adaptive_avg_pool_to_one(self, rng):
        x = rng.standard_normal((2, 3, 8, 8))
        out = F.adaptive_avg_pool2d(Tensor(x), 1).data
        np.testing.assert_allclose(out.reshape(2, 3), x.mean(axis=(2, 3)), atol=1e-12)

    def test_adaptive_avg_pool_invalid_size(self, rng):
        x = Tensor(rng.standard_normal((1, 1, 6, 6)))
        with pytest.raises(ValueError):
            F.adaptive_avg_pool2d(x, 4)


class TestEmbeddingAndDropout:
    def test_embedding_lookup(self, rng):
        table = Tensor(rng.standard_normal((10, 4)), requires_grad=True)
        idx = np.array([1, 3, 3])
        out = F.embedding(idx, table)
        np.testing.assert_allclose(out.data, table.data[idx])

    def test_embedding_gradient_accumulates_repeats(self, rng):
        table = Tensor(rng.standard_normal((5, 3)), requires_grad=True)
        idx = np.array([2, 2, 4])
        F.embedding(idx, table).sum().backward()
        assert table.grad[2, 0] == pytest.approx(2.0)
        assert table.grad[4, 0] == pytest.approx(1.0)
        assert table.grad[0, 0] == pytest.approx(0.0)

    def test_dropout_eval_is_identity(self, rng):
        x = Tensor(rng.standard_normal((4, 4)))
        out = F.dropout(x, p=0.5, training=False)
        assert out is x

    def test_dropout_scales_surviving_activations(self, rng):
        x = Tensor(np.ones((1000,)))
        out = F.dropout(x, p=0.5, training=True, rng=np.random.default_rng(0))
        survivors = out.data[out.data != 0]
        np.testing.assert_allclose(survivors, 2.0)
        assert 0.3 < (out.data != 0).mean() < 0.7


class TestLosses:
    def test_cross_entropy_matches_manual(self, rng):
        logits = rng.standard_normal((5, 4))
        targets = np.array([0, 1, 2, 3, 1])
        loss = F.cross_entropy(Tensor(logits), targets).item()
        shifted = logits - logits.max(axis=1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        expected = -log_probs[np.arange(5), targets].mean()
        assert loss == pytest.approx(expected, rel=1e-10)

    def test_cross_entropy_gradient(self, rng):
        targets = np.array([1, 0, 2])
        logits = rng.standard_normal((3, 4))

        def scalar_fn(values: np.ndarray) -> float:
            return float(F.cross_entropy(Tensor(values), targets).data)

        tensor = Tensor(logits.copy(), requires_grad=True)
        F.cross_entropy(tensor, targets).backward()
        numeric = numeric_gradient(scalar_fn, logits.copy())
        np.testing.assert_allclose(tensor.grad, numeric, atol=1e-6)

    def test_mse_loss(self, rng):
        pred = rng.standard_normal((4, 2))
        target = rng.standard_normal((4, 2))
        loss = F.mse_loss(Tensor(pred), target).item()
        assert loss == pytest.approx(float(np.mean((pred - target) ** 2)), rel=1e-12)

    def test_accuracy(self):
        logits = np.array([[0.1, 0.9], [0.8, 0.2], [0.4, 0.6]])
        assert F.accuracy(logits, np.array([1, 0, 0])) == pytest.approx(2 / 3)
