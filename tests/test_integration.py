"""End-to-end integration tests tying the whole stack together.

These tests check the *qualitative claims* of the paper on CPU-scale
workloads: PacTrain spends less communication time than the baselines at
constrained bandwidth, remains all-reduce compatible, keeps the model sparse,
and does not destroy accuracy at moderate pruning ratios.
"""

from __future__ import annotations

import pytest

from repro.metrics import speedup_table
from repro.simulation import ClusterSpec, ExperimentConfig, MethodSpec, PAPER_METHODS, run_experiment


def quick_config(bandwidth="100Mbps", model="mlp", epochs=3, **kwargs):
    defaults = dict(
        model=model,
        dataset="cifar10",
        # Eight workers as in the paper's testbed: the all-gather penalty paid
        # by TopK grows with the worker count, so the qualitative ranking only
        # shows at realistic world sizes.
        cluster=ClusterSpec(world_size=8, bandwidth=bandwidth),
        epochs=epochs,
        batch_size=8,
        dataset_samples=256,
        pretrain_iterations=2,
        max_iterations_per_epoch=4,
        seed=0,
    )
    defaults.update(kwargs)
    return ExperimentConfig(**defaults)


class TestPaperClaims:
    def test_pactrain_reduces_tta_at_constrained_bandwidth(self):
        """At 100 Mbps, PacTrain's total simulated time beats all baselines
        (the qualitative content of Fig. 3a)."""
        config = quick_config("100Mbps")
        results = {
            name: run_experiment(config, spec)
            for name, spec in PAPER_METHODS.items()
            if name in ("all-reduce", "fp16", "pactrain")
        }
        assert results["pactrain"].simulated_time < results["fp16"].simulated_time
        assert results["fp16"].simulated_time < results["all-reduce"].simulated_time

    def test_speedup_grows_as_bandwidth_shrinks(self):
        """Compression matters most when the network is the bottleneck: the
        PacTrain-vs-all-reduce speedup at 100 Mbps exceeds the one at 1 Gbps."""
        speedups = {}
        for bandwidth in ("100Mbps", "1Gbps"):
            config = quick_config(bandwidth)
            base = run_experiment(config, PAPER_METHODS["all-reduce"])
            pac = run_experiment(config, PAPER_METHODS["pactrain"])
            speedups[bandwidth] = base.simulated_time / pac.simulated_time
        assert speedups["100Mbps"] >= speedups["1Gbps"]

    def test_communication_time_ranking_matches_compression(self):
        """Per-iteration communication time ranks inversely with wire volume."""
        config = quick_config("100Mbps")
        base = run_experiment(config, PAPER_METHODS["all-reduce"])
        fp16 = run_experiment(config, PAPER_METHODS["fp16"])
        pac = run_experiment(config, PAPER_METHODS["pactrain"])
        assert pac.comm_bytes_per_worker < fp16.comm_bytes_per_worker < base.comm_bytes_per_worker
        assert pac.comm_time < fp16.comm_time < base.comm_time

    def test_moderate_pruning_preserves_accuracy(self):
        """Fig. 6's qualitative claim: accuracy at 50% pruning is within a few
        points of the dense model; 99% pruning costs noticeably more."""
        config = quick_config("1Gbps", epochs=4, max_iterations_per_epoch=None, dataset_samples=192)
        dense = run_experiment(config, MethodSpec(name="dense", compressor="allreduce"))
        pruned_half = run_experiment(
            config,
            MethodSpec(name="pac-0.5", compressor="pactrain", pruning_ratio=0.5, gse=True),
        )
        pruned_extreme = run_experiment(
            config,
            MethodSpec(name="pac-0.99", compressor="pactrain", pruning_ratio=0.99, gse=True),
        )
        assert pruned_half.final_accuracy >= dense.final_accuracy - 0.15
        assert pruned_extreme.final_accuracy <= pruned_half.final_accuracy + 1e-9

    def test_topk_pays_allgather_penalty(self):
        """TopK-0.1 must not beat PacTrain: its all-gather exchange costs more
        per byte kept (Table 1's compatibility column in action)."""
        config = quick_config("100Mbps")
        topk = run_experiment(config, PAPER_METHODS["topk-0.1"])
        pac = run_experiment(config, PAPER_METHODS["pactrain"])
        assert pac.comm_time < topk.comm_time

    def test_speedup_table_ranks_pactrain_above_dense_methods(self):
        """PacTrain's speedup over all-reduce exceeds fp16's and topk-0.1's.

        topk-0.01 can look fast on a run this short because its convergence
        penalty has no room to show; the full Fig. 3 benchmark (longer runs, a
        target-accuracy criterion) covers that comparison.
        """
        config = quick_config("100Mbps", epochs=4)
        ttas = {
            name: run_experiment(config, spec).tta_or_total()
            for name, spec in PAPER_METHODS.items()
        }
        table = speedup_table(ttas, baseline="all-reduce")
        assert table["pactrain"] > 1.0
        assert table["pactrain"] >= table["fp16"]
        assert table["pactrain"] >= table["topk-0.1"]


class TestCrossModelIntegration:
    @pytest.mark.parametrize("model", ["vgg19", "resnet18", "vit-base-16"])
    def test_pactrain_runs_on_paper_models(self, model):
        config = quick_config("500Mbps", model=model, epochs=1)
        result = run_experiment(config, PAPER_METHODS["pactrain"])
        assert result.weight_sparsity > 0.2
        assert result.iterations_run > 0
        assert 0.0 <= result.final_accuracy <= 1.0
        assert result.comm_time > 0.0

    def test_grasp_pruning_path(self):
        config = quick_config("500Mbps", epochs=2)
        spec = MethodSpec(
            name="pactrain-grasp",
            compressor="pactrain",
            pruning_ratio=0.5,
            pruning_method="grasp",
            gse=True,
        )
        result = run_experiment(config, spec)
        assert result.weight_sparsity > 0.2

    def test_quantized_pactrain_sends_fewer_bytes_than_fp32_variant(self):
        from repro.simulation.experiment import PACTRAIN_FP32

        config = quick_config("100Mbps", epochs=2)
        quantized = run_experiment(config, PAPER_METHODS["pactrain"])
        plain = run_experiment(config, PACTRAIN_FP32)
        assert quantized.comm_bytes_per_worker < plain.comm_bytes_per_worker

    def test_warmup_forces_initial_full_sync(self):
        config = quick_config("100Mbps", epochs=2)
        spec = MethodSpec(
            name="pactrain-warmup",
            compressor="pactrain",
            pruning_ratio=0.5,
            gse=True,
            warmup_iterations=100,  # longer than the whole run
        )
        result = run_experiment(config, spec)
        assert result.extra["compact_iterations"] == 0.0

    def test_cifar100_workload(self):
        config = quick_config("100Mbps", epochs=2)
        config.dataset = "cifar100"
        config.dataset_samples = 200
        result = run_experiment(config, PAPER_METHODS["pactrain"])
        assert result.iterations_run > 0
