"""Network cost model, topology (Fig. 4), collectives and process group."""

from __future__ import annotations

import math
import time

import numpy as np
import pytest

from repro.comm import (
    GBPS,
    MBPS,
    ClusterTopology,
    CostModel,
    HierarchicalCostModel,
    LinkSpec,
    NetworkModel,
    ProcessGroup,
    all_gather,
    all_reduce,
    broadcast,
    build_paper_topology,
    build_star_topology,
    reduce_scatter,
)
from repro.comm.network import PAPER_BANDWIDTHS

#: Every collective cost the CostModel interface exposes, by method name.
COLLECTIVE_METHODS = (
    "ring_all_reduce_time",
    "all_gather_time",
    "reduce_scatter_time",
    "broadcast_time",
    "reduce_time",
    "gather_time",
)


class TestLinkSpec:
    def test_transfer_time(self):
        link = LinkSpec(bandwidth=100 * MBPS, latency=1e-3)
        # 12.5 MB at 12.5 MB/s -> 1 s plus latency
        assert link.transfer_time(12.5e6) == pytest.approx(1.0 + 1e-3)

    def test_zero_bytes_is_free(self):
        assert LinkSpec(bandwidth=1e6).transfer_time(0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkSpec(bandwidth=0)
        with pytest.raises(ValueError):
            LinkSpec(bandwidth=1.0, latency=-1)
        with pytest.raises(ValueError):
            LinkSpec(bandwidth=1e6).transfer_time(-5)


class TestNetworkModel:
    def test_ring_allreduce_formula(self):
        model = NetworkModel.from_bandwidth(8, 100 * MBPS, latency=1e-3)
        nbytes = 1e6
        expected = 2 * 7 * 1e-3 + (2 * 7 / 8) * nbytes / (100 * MBPS)
        assert model.ring_all_reduce_time(nbytes) == pytest.approx(expected)

    def test_allgather_costs_more_than_allreduce_for_same_payload(self):
        model = NetworkModel.from_bandwidth(8, 1 * GBPS)
        nbytes = 1e7
        assert model.all_gather_time(nbytes) > model.ring_all_reduce_time(nbytes)

    def test_single_worker_costs_nothing(self):
        model = NetworkModel.from_bandwidth(1, 100 * MBPS)
        assert model.ring_all_reduce_time(1e6) == 0.0
        assert model.all_gather_time(1e6) == 0.0
        assert model.broadcast_time(1e6) == 0.0

    def test_time_scales_inversely_with_bandwidth(self):
        slow = NetworkModel.from_bandwidth(8, PAPER_BANDWIDTHS["100Mbps"], latency=0.0)
        fast = NetworkModel.from_bandwidth(8, PAPER_BANDWIDTHS["1Gbps"], latency=0.0)
        assert slow.ring_all_reduce_time(1e7) == pytest.approx(10 * fast.ring_all_reduce_time(1e7))

    def test_broadcast_uses_log_rounds(self):
        model = NetworkModel.from_bandwidth(8, 1 * GBPS, latency=0.0)
        single = model.bottleneck.transfer_time(1e6)
        assert model.broadcast_time(1e6) == pytest.approx(math.ceil(math.log2(8)) * single)

    def test_reduce_scatter_is_half_of_allreduce(self):
        model = NetworkModel.from_bandwidth(4, 1 * GBPS, latency=0.0)
        assert model.ring_all_reduce_time(4e6) == pytest.approx(2 * model.reduce_scatter_time(4e6))

    def test_from_paper_setting(self):
        model = NetworkModel.from_paper_setting(8, "500Mbps")
        assert model.bottleneck.bandwidth == pytest.approx(500 * MBPS)
        with pytest.raises(KeyError):
            NetworkModel.from_paper_setting(8, "10Gbps")

    def test_implements_cost_model_interface(self):
        model = NetworkModel.from_bandwidth(8, 1 * GBPS)
        assert isinstance(model, CostModel)
        for method in COLLECTIVE_METHODS:
            assert getattr(model, method)(1e6) > 0.0
            assert getattr(model, method)(0.0) == 0.0

    def test_reduce_mirrors_broadcast(self):
        model = NetworkModel.from_bandwidth(8, 1 * GBPS)
        assert model.reduce_time(1e6) == pytest.approx(model.broadcast_time(1e6))

    def test_gather_serialises_on_the_root_link(self):
        model = NetworkModel.from_bandwidth(4, 100 * MBPS, latency=1e-3)
        nbytes = 1e6
        expected = 3 * 1e-3 + 3 * nbytes / (100 * MBPS)
        assert model.gather_time(nbytes) == pytest.approx(expected)
        assert NetworkModel.from_bandwidth(1, 100 * MBPS).gather_time(nbytes) == 0.0
        assert NetworkModel.from_bandwidth(1, 100 * MBPS).reduce_time(nbytes) == 0.0


class TestTopology:
    def test_paper_topology_counts(self):
        topo = build_paper_topology()
        assert len(topo.servers) == 8
        assert len(topo.switches) == 3
        # 8 server links + 2 inter-switch links
        assert topo.graph.number_of_edges() == 10

    def test_bottleneck_is_wan_link(self):
        topo = build_paper_topology(wan_bandwidth=100 * MBPS)
        bottleneck = topo.global_bottleneck()
        assert bottleneck.bandwidth == pytest.approx(100 * MBPS)

    def test_same_switch_path_avoids_wan(self):
        topo = build_paper_topology(wan_bandwidth=100 * MBPS)
        # S1 and S4 are both on vswitch0 (round-robin assignment).
        link = topo.bottleneck_link("S1", "S4")
        assert link.bandwidth > 100 * MBPS

    def test_cross_switch_path_hits_wan(self):
        topo = build_paper_topology(wan_bandwidth=100 * MBPS)
        link = topo.bottleneck_link("S1", "S2")
        assert link.bandwidth == pytest.approx(100 * MBPS)

    def test_to_network_model(self):
        topo = build_paper_topology(wan_bandwidth=500 * MBPS)
        model = topo.to_network_model()
        assert model.world_size == 8
        assert model.bottleneck.bandwidth == pytest.approx(500 * MBPS)

    def test_star_topology(self):
        topo = build_star_topology(4, LinkSpec(1 * GBPS))
        assert len(topo.servers) == 4
        assert topo.global_bottleneck().bandwidth == pytest.approx(1 * GBPS)

    def test_describe(self):
        info = build_paper_topology(wan_bandwidth=1 * GBPS).describe()
        assert info["bottleneck_bandwidth_mbps"] == pytest.approx(1000.0)
        assert len(info["servers"]) == 8

    def test_add_link_requires_existing_nodes(self):
        topo = ClusterTopology()
        topo.add_server("a")
        with pytest.raises(KeyError):
            topo.add_link("a", "missing", LinkSpec(1e6))

    def test_global_bottleneck_requires_two_servers(self):
        topo = ClusterTopology()
        topo.add_server("only")
        with pytest.raises(ValueError):
            topo.global_bottleneck()

    def test_global_bottleneck_requires_connected_servers(self):
        topo = ClusterTopology()
        topo.add_server("a")
        topo.add_server("b")
        with pytest.raises(ValueError):
            topo.global_bottleneck()

    def test_global_bottleneck_avoids_unused_slow_spur(self):
        # A slow link hanging off a switch with no server behind it must not
        # count: no server-to-server path crosses it.
        topo = build_star_topology(4, LinkSpec(1 * GBPS))
        topo.add_switch("spur")
        topo.add_link("switch0", "spur", LinkSpec(1 * MBPS))
        assert topo.global_bottleneck().bandwidth == pytest.approx(1 * GBPS)

    def test_global_bottleneck_is_minimax_over_parallel_paths(self):
        # Two routes between the servers: 10 Mbps direct, 100 Mbps via two
        # hops.  The widest path avoids the slow direct link.
        topo = ClusterTopology()
        topo.add_server("a")
        topo.add_server("b")
        topo.add_switch("mid")
        topo.add_link("a", "b", LinkSpec(10 * MBPS))
        topo.add_link("a", "mid", LinkSpec(100 * MBPS))
        topo.add_link("mid", "b", LinkSpec(100 * MBPS))
        assert topo.global_bottleneck().bandwidth == pytest.approx(100 * MBPS)

    def test_global_bottleneck_micro_benchmark_512_servers(self):
        # Satellite requirement: the minimax/maximum-spanning-tree pass must
        # handle a 512-server topology in well under a second (the old
        # all-pairs scan was O(n^2) shortest-path computations).
        topo = build_paper_topology(num_servers=512, num_switches=8)
        start = time.perf_counter()
        bottleneck = topo.global_bottleneck()
        elapsed = time.perf_counter() - start
        assert bottleneck.bandwidth == pytest.approx(1 * GBPS)
        assert elapsed < 0.25, f"global_bottleneck took {elapsed:.3f}s on 512 servers"

    def test_path_spec_collapses_hops(self):
        topo = build_paper_topology(
            wan_bandwidth=100 * MBPS, wan_latency=1e-3, lan_latency=20e-6
        )
        # S1 (vswitch0) -> S3 (vswitch2): LAN + WAN + WAN + LAN hops.
        spec = topo.path_spec("S1", "S3")
        assert spec.bandwidth == pytest.approx(100 * MBPS)
        assert spec.latency == pytest.approx(2 * 1e-3 + 2 * 20e-6)
        assert topo.path_cost("S1", "S3", 0.0) == 0.0
        assert topo.path_cost("S1", "S1", 1e6) == 0.0

    def test_switch_groups_round_robin(self):
        topo = build_paper_topology(num_servers=8, num_switches=3)
        groups = topo.switch_groups()
        assert set(groups) == {"vswitch0", "vswitch1", "vswitch2"}
        assert sorted(len(members) for members in groups.values()) == [2, 3, 3]
        assert topo.attached_switch("S1") == "vswitch0"


class TestHierarchicalCostModel:
    def test_star_topology_matches_flat_model_exactly(self):
        # The satellite equivalence guarantee: one switch group delegates to
        # the flat NetworkModel, so every cost is float-equal, not approx.
        topo = build_star_topology(8, LinkSpec(1 * GBPS, latency=1e-4))
        flat = topo.to_network_model()
        hier = topo.cost_model()
        assert isinstance(hier, CostModel)
        assert hier.is_flat and hier.num_groups == 1
        for nbytes in (0.0, 1.0, 1e3, 1e6, 5e7):
            for method in COLLECTIVE_METHODS:
                assert getattr(hier, method)(nbytes) == getattr(flat, method)(nbytes)
            assert hier.p2p_time(nbytes) == flat.p2p_time(nbytes)

    def test_hierarchical_all_reduce_charges_lan_and_wan(self):
        topo = build_paper_topology(wan_bandwidth=100 * MBPS)
        hier = topo.cost_model()
        assert hier.num_groups == 3 and not hier.is_flat
        nbytes = 1e6
        total = topo.hierarchical_all_reduce_time(nbytes)
        inter_only = hier._inter.ring_all_reduce_time(nbytes)
        # The WAN exchange runs between the 3 switch-group leaders; the intra
        # LAN reduce and broadcast phases are charged on top of it.
        assert total > inter_only
        assert total == pytest.approx(
            hier._max_over_groups("reduce_time", nbytes)
            + inter_only
            + hier._max_over_groups("broadcast_time", nbytes)
        )

    def test_chain_beats_flat_ring_under_wan_bottleneck(self):
        # A flat ring drags all 8 workers across the WAN; the hierarchical
        # schedule only sends the 3 group leaders across it — the reduction
        # structure the paper's Fig. 4 testbed is built to exercise.
        topo = build_paper_topology(wan_bandwidth=100 * MBPS)
        nbytes = 1e7
        assert topo.hierarchical_all_reduce_time(nbytes) < topo.to_network_model().ring_all_reduce_time(nbytes)

    def test_all_costs_positive_and_zero_safe(self):
        hier = build_paper_topology(wan_bandwidth=100 * MBPS).cost_model()
        for method in COLLECTIVE_METHODS:
            assert getattr(hier, method)(1e6) > 0.0
            assert getattr(hier, method)(0.0) == 0.0

    def test_process_group_accepts_hierarchical_model(self, rng):
        topo = build_paper_topology(wan_bandwidth=100 * MBPS, num_servers=4)
        group = ProcessGroup(4, topo.cost_model())
        group.all_reduce([rng.standard_normal(64) for _ in range(4)])
        assert group.total_time > 0.0

    def test_single_server_topology(self):
        topo = ClusterTopology()
        topo.add_switch("sw")
        topo.add_server("S1")
        topo.add_link("S1", "sw", LinkSpec(1 * GBPS))
        hier = topo.cost_model()
        assert hier.world_size == 1
        for method in COLLECTIVE_METHODS:
            assert getattr(hier, method)(1e6) == 0.0

    def test_requires_servers(self):
        with pytest.raises(ValueError):
            HierarchicalCostModel(ClusterTopology())


class TestCollectives:
    def test_all_reduce_average(self, rng):
        buffers = [rng.standard_normal(100) for _ in range(4)]
        result, event = all_reduce(buffers, average=True)
        np.testing.assert_allclose(result, np.mean(buffers, axis=0), atol=1e-12)
        assert event.op == "all_reduce"
        assert event.world_size == 4

    def test_all_reduce_sum(self, rng):
        buffers = [rng.standard_normal(10) for _ in range(3)]
        result, _ = all_reduce(buffers, average=False)
        np.testing.assert_allclose(result, np.sum(buffers, axis=0), atol=1e-12)

    def test_all_reduce_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            all_reduce([rng.standard_normal(3), rng.standard_normal(4)])

    def test_all_reduce_charges_time(self, rng):
        network = NetworkModel.from_bandwidth(4, 100 * MBPS)
        _, event = all_reduce([rng.standard_normal(1000) for _ in range(4)], network)
        assert event.time_seconds > 0.0

    def test_element_bytes_scales_time(self, rng):
        network = NetworkModel.from_bandwidth(4, 100 * MBPS, latency=0.0)
        buffers = [rng.standard_normal(10000) for _ in range(4)]
        _, fp32 = all_reduce(buffers, network, element_bytes=4)
        _, fp16 = all_reduce(buffers, network, element_bytes=2)
        assert fp32.time_seconds == pytest.approx(2 * fp16.time_seconds)

    def test_all_gather_returns_every_buffer(self, rng):
        buffers = [rng.standard_normal(5) for _ in range(3)]
        gathered, event = all_gather(buffers)
        assert len(gathered) == 3
        for original, got in zip(buffers, gathered):
            np.testing.assert_array_equal(original, got)
        assert event.op == "all_gather"

    def test_all_gather_supports_ragged_payloads(self, rng):
        buffers = [rng.standard_normal(3), rng.standard_normal(7)]
        gathered, event = all_gather(buffers)
        assert [g.size for g in gathered] == [3, 7]
        assert event.payload_elements == 7  # cost charged at the max payload

    def test_broadcast(self, rng):
        root = rng.standard_normal(6)
        replicas, event = broadcast(root, world_size=5)
        assert len(replicas) == 5
        for replica in replicas:
            np.testing.assert_array_equal(replica, root)
        assert event.op == "broadcast"

    def test_reduce_scatter_chunks_sum_to_total(self, rng):
        buffers = [rng.standard_normal(12) for _ in range(4)]
        chunks, _ = reduce_scatter(buffers)
        np.testing.assert_allclose(np.concatenate(chunks), np.sum(buffers, axis=0), atol=1e-12)
        assert len(chunks) == 4


class TestProcessGroup:
    def test_event_log_accumulates(self, rng):
        group = ProcessGroup(4, NetworkModel.from_bandwidth(4, 100 * MBPS))
        group.all_reduce([rng.standard_normal(100) for _ in range(4)])
        group.all_gather([rng.standard_normal(10) for _ in range(4)])
        assert len(group.events) == 2
        assert group.total_time > 0
        assert group.total_bytes_per_worker > 0

    def test_pop_events_clears_log(self, rng):
        group = ProcessGroup(2)
        group.all_reduce([rng.standard_normal(4) for _ in range(2)])
        events = group.pop_events()
        assert len(events) == 1
        assert group.events == []

    def test_wrong_buffer_count_raises(self, rng):
        group = ProcessGroup(4)
        with pytest.raises(ValueError):
            group.all_reduce([rng.standard_normal(4) for _ in range(3)])

    def test_zero_cost_without_network(self, rng):
        group = ProcessGroup(4)
        group.all_reduce([rng.standard_normal(4) for _ in range(4)])
        assert group.total_time == 0.0

    def test_broadcast_replicates(self, rng):
        group = ProcessGroup(3)
        replicas = group.broadcast(rng.standard_normal(5))
        assert len(replicas) == 3
