"""Pruning: masks, magnitude criterion, GraSP scores, GSE."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.models import mlp_tiny, resnet18_mini, vgg11_mini
from repro.pruning import (
    PruningMask,
    apply_gse,
    gradient_sparsity,
    grasp_prune,
    grasp_scores,
    gse_from_weights,
    magnitude_mask,
    magnitude_prune,
    prunable_parameters,
)
from repro.pruning.magnitude import layer_magnitude_summary, model_sparsity
from repro.tensorlib import Tensor, functional as F


def backward_on(model, batch):
    images, labels = batch
    model.zero_grad()
    loss = F.cross_entropy(model(Tensor(images)), labels)
    loss.backward()


class TestPruningMask:
    def test_dense_mask_keeps_everything(self, tiny_model):
        mask = PruningMask.dense(tiny_model)
        assert mask.sparsity == 0.0
        assert mask.total_elements == tiny_model.num_parameters()

    def test_sparsity_accounting(self):
        mask = PruningMask({"a": np.array([True, False, False, True])})
        assert mask.sparsity == pytest.approx(0.5)
        assert mask.density == pytest.approx(0.5)
        assert mask.kept_elements == 2

    def test_apply_to_weights(self, tiny_model):
        mask = PruningMask.dense(tiny_model)
        mask["fc0.weight"] = np.zeros_like(tiny_model.fc0.weight.data, dtype=bool)
        mask.apply_to_weights(tiny_model)
        np.testing.assert_array_equal(tiny_model.fc0.weight.data, 0.0)
        assert mask.check_weights_consistent(tiny_model)

    def test_apply_to_gradients(self, tiny_model, sample_batch):
        backward_on(tiny_model, sample_batch)
        mask = PruningMask.dense(tiny_model)
        mask["fc0.weight"] = np.zeros_like(tiny_model.fc0.weight.data, dtype=bool)
        mask.apply_to_gradients(tiny_model)
        np.testing.assert_array_equal(tiny_model.fc0.weight.grad, 0.0)
        assert np.any(tiny_model.fc1.weight.grad != 0.0)

    def test_shape_mismatch_raises(self, tiny_model):
        mask = PruningMask({"fc0.weight": np.ones((2, 2), dtype=bool)})
        with pytest.raises(ValueError):
            mask.apply_to_weights(tiny_model)

    def test_from_weights_detects_zeros(self, tiny_model):
        tiny_model.fc0.weight.data[0, :] = 0.0
        mask = PruningMask.from_weights(tiny_model)
        assert not mask["fc0.weight"][0].any()
        assert mask["fc0.weight"][1].all()

    def test_per_layer_sparsity_and_state_dict(self, tiny_model):
        mask = magnitude_mask(tiny_model, 0.5)
        per_layer = mask.per_layer_sparsity()
        assert set(per_layer) == {name for name, _ in tiny_model.named_parameters()}
        restored = PruningMask.from_state_dict(mask.state_dict())
        assert restored.sparsity == pytest.approx(mask.sparsity)


class TestMagnitudePruning:
    def test_prunable_excludes_biases_and_norms(self):
        model = resnet18_mini(seed=0)
        names = {name for name, _ in prunable_parameters(model)}
        assert all("bias" not in n for n in names)
        assert all("bn" not in n for n in names)
        assert any("conv" in n for n in names)

    def test_global_ratio_respected(self, tiny_model):
        mask = magnitude_prune(tiny_model, 0.5)
        prunable = {name for name, _ in prunable_parameters(tiny_model)}
        kept = sum(mask[name].sum() for name in prunable)
        total = sum(mask[name].size for name in prunable)
        assert kept / total == pytest.approx(0.5, abs=0.02)

    def test_weights_zeroed_in_place(self, tiny_model):
        assert model_sparsity(tiny_model) == pytest.approx(0.0, abs=0.05)
        magnitude_prune(tiny_model, 0.7)
        assert model_sparsity(tiny_model) > 0.5

    def test_prunes_smallest_magnitudes(self):
        model = mlp_tiny(seed=0)
        weight = model.fc0.weight
        weight.data = np.linspace(-1, 1, weight.data.size).reshape(weight.data.shape)
        mask = magnitude_mask(model, 0.3, scope="layer")
        kept = mask["fc0.weight"]
        dropped_magnitudes = np.abs(weight.data[~kept])
        kept_magnitudes = np.abs(weight.data[kept])
        assert dropped_magnitudes.max() <= kept_magnitudes.min() + 1e-12

    def test_layer_scope_prunes_each_layer_equally(self, tiny_model):
        mask = magnitude_mask(tiny_model, 0.6, scope="layer")
        for name, _ in prunable_parameters(tiny_model):
            layer_sparsity = 1.0 - mask[name].sum() / mask[name].size
            assert layer_sparsity == pytest.approx(0.6, abs=0.05)

    def test_zero_ratio_is_noop(self, tiny_model):
        before = tiny_model.fc0.weight.data.copy()
        mask = magnitude_prune(tiny_model, 0.0)
        np.testing.assert_array_equal(tiny_model.fc0.weight.data, before)
        assert mask.sparsity == 0.0

    def test_validation(self, tiny_model):
        with pytest.raises(ValueError):
            magnitude_mask(tiny_model, 1.0)
        with pytest.raises(ValueError):
            magnitude_mask(tiny_model, 0.5, scope="block")

    def test_layer_summary(self, tiny_model):
        summary = layer_magnitude_summary(tiny_model)
        assert "fc0.weight" in summary
        assert summary["fc0.weight"]["numel"] == tiny_model.fc0.weight.size


class TestGraSP:
    def test_scores_have_parameter_shapes(self, tiny_model, sample_batch):
        scores = grasp_scores(tiny_model, sample_batch, F.cross_entropy)
        for name, param in tiny_model.named_parameters():
            assert scores[name].shape == param.data.shape

    def test_weights_restored_after_scoring(self, tiny_model, sample_batch):
        before = {name: p.data.copy() for name, p in tiny_model.named_parameters()}
        grasp_scores(tiny_model, sample_batch, F.cross_entropy)
        for name, param in tiny_model.named_parameters():
            np.testing.assert_allclose(param.data, before[name], atol=1e-12)

    def test_grasp_prune_hits_ratio(self, sample_batch):
        model = vgg11_mini(seed=0)
        mask = grasp_prune(model, sample_batch, F.cross_entropy, pruning_ratio=0.5)
        prunable = {name for name, _ in prunable_parameters(model)}
        kept = sum(mask[name].sum() for name in prunable)
        total = sum(mask[name].size for name in prunable)
        assert kept / total == pytest.approx(0.5, abs=0.05)
        assert mask.check_weights_consistent(model)

    def test_zero_ratio_keeps_dense(self, tiny_model, sample_batch):
        mask = grasp_prune(tiny_model, sample_batch, F.cross_entropy, pruning_ratio=0.0)
        assert mask.sparsity == 0.0

    def test_invalid_ratio(self, tiny_model, sample_batch):
        with pytest.raises(ValueError):
            grasp_prune(tiny_model, sample_batch, F.cross_entropy, pruning_ratio=1.0)


class TestGSE:
    def test_gse_zeroes_gradients_of_pruned_weights(self, tiny_model, sample_batch):
        mask = magnitude_prune(tiny_model, 0.6)
        backward_on(tiny_model, sample_batch)
        assert gradient_sparsity(tiny_model) < 0.3
        apply_gse(tiny_model, mask)
        pruned = ~mask["fc0.weight"]
        np.testing.assert_array_equal(tiny_model.fc0.weight.grad[pruned], 0.0)
        assert gradient_sparsity(tiny_model) > 0.3

    def test_gse_formula_matches_eq2(self, tiny_model, sample_batch):
        """grad_after == (weight != 0) * grad_before, element for element."""
        magnitude_prune(tiny_model, 0.5)
        backward_on(tiny_model, sample_batch)
        before = {name: p.grad.copy() for name, p in tiny_model.named_parameters()}
        apply_gse(tiny_model)  # mask derived from weights, the literal Eq. (2)
        for name, param in tiny_model.named_parameters():
            expected = (param.data != 0.0) * before[name]
            np.testing.assert_array_equal(param.grad, expected)

    def test_gse_on_external_gradient_dict(self, tiny_model, sample_batch):
        mask = magnitude_prune(tiny_model, 0.5)
        backward_on(tiny_model, sample_batch)
        grads = {name: p.grad.copy() for name, p in tiny_model.named_parameters()}
        masked = apply_gse(tiny_model, mask, grads=grads)
        pruned = ~mask["fc1.weight"]
        np.testing.assert_array_equal(masked["fc1.weight"][pruned], 0.0)
        # Original dict is untouched.
        assert np.any(grads["fc1.weight"][pruned] != 0.0) or pruned.sum() == 0

    def test_gse_keeps_sparsity_through_training_step(self, tiny_model, sample_batch):
        from repro.nn import SGD

        mask = magnitude_prune(tiny_model, 0.7)
        optimizer = SGD(tiny_model.parameters(), lr=0.1, momentum=0.9)
        for _ in range(3):
            backward_on(tiny_model, sample_batch)
            apply_gse(tiny_model, mask)
            optimizer.step()
        assert mask.check_weights_consistent(tiny_model, atol=1e-12)

    def test_gse_from_weights(self, tiny_model):
        magnitude_prune(tiny_model, 0.4)
        mask = gse_from_weights(tiny_model)
        assert mask.sparsity > 0.2
