"""Event-driven simulation engine: heap, channel, schedules, bucket fractions."""

from __future__ import annotations

import pytest

from repro.ddp import DistributedDataParallel
from repro.ddp.bucket import build_buckets
from repro.nn.models import mlp_tiny, resnet18_mini, vgg19_mini
from repro.simulation import ComputeModel, estimate_parameter_flops
from repro.simulation.engine import (
    BUCKET_READY,
    EventHeap,
    LinkChannel,
    SimEvent,
    SimulationEngine,
)


class TestEventHeap:
    def test_pops_in_time_order(self):
        heap = EventHeap()
        heap.push(SimEvent(time=2.0, kind=BUCKET_READY, bucket=1))
        heap.push(SimEvent(time=1.0, kind=BUCKET_READY, bucket=0))
        heap.push(SimEvent(time=3.0, kind=BUCKET_READY, bucket=2))
        assert [heap.pop().bucket for _ in range(3)] == [0, 1, 2]

    def test_ties_break_by_insertion_order(self):
        heap = EventHeap()
        for bucket in range(5):
            heap.push(SimEvent(time=1.0, kind=BUCKET_READY, bucket=bucket))
        assert [heap.pop().bucket for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_len_and_bool(self):
        heap = EventHeap()
        assert not heap and len(heap) == 0
        heap.push(SimEvent(time=0.0, kind=BUCKET_READY, bucket=0))
        assert heap and len(heap) == 1

    def test_rejects_negative_time_and_empty_pop(self):
        heap = EventHeap()
        with pytest.raises(ValueError):
            heap.push(SimEvent(time=-1.0, kind=BUCKET_READY, bucket=0))
        with pytest.raises(IndexError):
            heap.pop()


class TestLinkChannel:
    def test_serialises_transfers(self):
        channel = LinkChannel()
        assert channel.acquire(0.0, 1.0) == (0.0, 1.0)
        # Ready at 0.5 but the channel is busy until 1.0.
        assert channel.acquire(0.5, 2.0) == (1.0, 3.0)
        # Ready after the channel freed up: starts immediately.
        assert channel.acquire(5.0, 1.0) == (5.0, 6.0)
        assert channel.busy_seconds == pytest.approx(4.0)

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            LinkChannel().acquire(0.0, -1.0)


class TestIterationSchedule:
    def test_no_overlap_equals_serial_sum_exactly(self):
        engine = SimulationEngine(overlap=False)
        trace = engine.run_iteration([0.25, 0.25], [0.4, 0.8, 1.0], [0.1, 0.2, 0.3])
        assert trace.wall_time == 0.25 + (0.1 + 0.2 + 0.3)
        assert trace.overlap_saved == 0.0
        assert trace.overlap_fraction == 0.0

    def test_overlap_hides_early_bucket_comm(self):
        engine = SimulationEngine(overlap=True)
        trace = engine.run_iteration([0.1, 0.1], [0.3, 0.7, 1.0], [0.05, 0.02, 0.03])
        # bucket 0 ready at 0.03, done 0.08; bucket 1 ready 0.07 queued to
        # 0.08, done 0.10; bucket 2 ready at 0.10 (backward end), done 0.13.
        assert trace.wall_time == pytest.approx(0.13)
        assert trace.wall_time < trace.compute_span + trace.comm_busy
        assert trace.overlap_saved == pytest.approx(0.07)
        assert trace.comm_exposed == pytest.approx(0.03)
        assert trace.buckets[1].queue_delay == pytest.approx(0.01)

    def test_single_bucket_cannot_overlap(self):
        trace = SimulationEngine(overlap=True).run_iteration([0.1], [1.0], [0.5])
        assert trace.wall_time == pytest.approx(0.6)
        assert trace.overlap_saved == 0.0

    def test_zero_comm_wall_is_compute(self):
        trace = SimulationEngine(overlap=True).run_iteration([0.4, 0.2], [0.5, 1.0], [0.0, 0.0])
        assert trace.wall_time == pytest.approx(0.4)
        assert trace.comm_busy == 0.0

    def test_straggler_gates_bucket_readiness(self):
        trace = SimulationEngine(overlap=True).run_iteration([0.1, 0.3], [0.5, 1.0], [0.05, 0.05])
        assert trace.compute_span == pytest.approx(0.3)
        assert trace.straggler_slack == pytest.approx(0.2)
        # Bucket 0 waits for the straggler's half-done backward: 0.3 * 0.5.
        assert trace.buckets[0].ready_time == pytest.approx(0.15)

    def test_collectives_launch_in_bucket_order(self):
        trace = SimulationEngine(overlap=True).run_iteration(
            [1.0], [0.2, 0.4, 0.6, 1.0], [0.5, 0.1, 0.1, 0.1]
        )
        starts = [bucket.start_time for bucket in trace.buckets]
        assert starts == sorted(starts)
        assert [bucket.index for bucket in trace.buckets] == [0, 1, 2, 3]

    def test_wall_never_below_compute_or_exposed_comm(self):
        trace = SimulationEngine(overlap=True).run_iteration(
            [0.2, 0.25], [0.1, 0.5, 1.0], [0.3, 0.2, 0.1]
        )
        assert trace.wall_time >= trace.compute_span
        assert trace.wall_time >= trace.comm_busy
        assert 0.0 <= trace.overlap_fraction <= 1.0

    def test_validation(self):
        engine = SimulationEngine()
        with pytest.raises(ValueError):
            engine.run_iteration([], [1.0], [0.1])
        with pytest.raises(ValueError):
            engine.run_iteration([0.1], [1.0], [0.1, 0.2])
        with pytest.raises(ValueError):
            engine.run_iteration([-0.1], [1.0], [0.1])
        with pytest.raises(ValueError):
            engine.run_iteration([0.1], [1.0], [-0.1])
        with pytest.raises(ValueError):
            engine.run_iteration([0.1], [0.8, 0.4], [0.1, 0.1])  # not monotone
        with pytest.raises(ValueError):
            engine.run_iteration([0.1], [0.5, 1.5], [0.1, 0.1])  # above 1.0


class TestBucketFractions:
    def test_cumulative_monotone_ending_at_one(self):
        model = resnet18_mini(seed=0)
        buckets = build_buckets(model, bucket_cap_bytes=8 * 1024)
        assert len(buckets) > 1
        fractions = ComputeModel().bucket_completion_fractions(model, (3, 8, 8), buckets)
        assert len(fractions) == len(buckets)
        assert all(b >= a for a, b in zip(fractions, fractions[1:]))
        assert fractions[-1] == 1.0
        # The first bucket must leave room for overlap: ready strictly before
        # the end of the pass, but no earlier than the forward pass.
        assert ComputeModel().forward_fraction <= fractions[0] < 1.0

    def test_single_bucket_is_ready_at_the_end(self):
        model = mlp_tiny(seed=0)
        buckets = build_buckets(model)  # default 25 MiB cap: one bucket
        assert len(buckets) == 1
        fractions = ComputeModel().bucket_completion_fractions(model, (3, 8, 8), buckets)
        assert fractions == [1.0]

    def test_empty_bucket_list(self):
        assert ComputeModel().bucket_completion_fractions(mlp_tiny(seed=0), (3, 8, 8), []) == []

    def test_parameter_flops_cover_model(self):
        model = vgg19_mini(seed=0)
        shares = estimate_parameter_flops(model, (3, 8, 8))
        names = {name for name, _ in model.named_parameters()}
        assert set(shares) == names
        assert sum(shares.values()) > 0
        assert all(value >= 0 for value in shares.values())

    def test_fractions_align_with_ddp_buckets(self):
        model = vgg19_mini(seed=0)
        ddp = DistributedDataParallel(model, world_size=2, bucket_cap_bytes=16 * 1024)
        fractions = ComputeModel().bucket_completion_fractions(model, (3, 8, 8), ddp.buckets)
        assert len(fractions) == len(ddp.buckets)
        assert fractions[-1] == 1.0
