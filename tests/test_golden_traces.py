"""Golden-trace regression tests.

Each committed fixture under ``tests/golden/`` freezes the full observable
outcome of one tiny training run — per-epoch accuracy/time trace, wire bytes,
simulated time, weight sparsity — for one of the paper's five methods or the
composed codec spec.  The tests re-run every cell and demand **bit-identical**
floats (rtol=0), so any numerical drift anywhere in the stack (codec payloads,
collectives, engine, optimiser, data pipeline) fails with a readable diff.

After an intentional numerical change, regenerate with::

    PYTHONPATH=src python -m repro golden --update

and commit the rewritten fixtures alongside the change.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro import golden

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")


@pytest.mark.parametrize("method_name", sorted(golden.GOLDEN_METHODS))
def test_trace_matches_committed_fixture_bit_identically(method_name):
    expected = golden.load_fixture(method_name, GOLDEN_DIR)
    actual = golden.compute_trace(golden.GOLDEN_METHODS[method_name])
    diffs = golden.compare_traces(expected, actual, rtol=0.0)
    assert not diffs, golden.format_diff(method_name, diffs)


def test_every_golden_method_has_a_committed_fixture():
    missing = [
        name
        for name in golden.GOLDEN_METHODS
        if not os.path.exists(golden.fixture_path(name, GOLDEN_DIR))
    ]
    assert not missing, (
        f"missing golden fixtures for {missing}; run "
        "`python -m repro golden --update` and commit tests/golden/"
    )


def test_fixture_config_matches_the_frozen_golden_config():
    """A fixture regenerated under a different tiny config must not pass."""
    from repro.simulation.experiment import ExperimentConfig, MethodSpec

    for name in golden.GOLDEN_METHODS:
        fixture = golden.load_fixture(name, GOLDEN_DIR)
        # Canonicalised through the dataclasses, so fixtures written before a
        # defaulted spec field was added stay comparable without regeneration.
        assert (
            golden._canonical_spec(fixture["config"], ExperimentConfig)
            == golden.golden_config_for(name).to_dict()
        ), name
        assert (
            golden._canonical_spec(fixture["method_spec"], MethodSpec)
            == golden.GOLDEN_METHODS[name].to_dict()
        ), name


def test_compare_traces_reports_readable_diffs():
    expected = {
        "trace": {"simulated_time": 1.0, "accuracy_trace": [[0.0, 0.5]]},
        "method_spec": {"name": "x"},
    }
    actual = {
        "trace": {"simulated_time": 2.0, "accuracy_trace": [[0.0, 0.25]]},
        "method_spec": {"name": "x"},
    }
    diffs = golden.compare_traces(expected, actual)
    assert any("simulated_time" in diff and "1.0" in diff and "2.0" in diff for diff in diffs)
    assert any("accuracy_trace[0][1]" in diff for diff in diffs)
    report = golden.format_diff("x", diffs)
    assert "golden trace drift" in report and "--update" in report


def test_compare_traces_flags_missing_and_new_fields():
    expected = {"trace": {"a": 1.0, "gone": 2.0}}
    actual = {"trace": {"a": 1.0, "new": 3.0}}
    diffs = golden.compare_traces(expected, actual)
    assert any("gone" in diff and "missing" in diff for diff in diffs)
    assert any("new" in diff and "unexpected" in diff for diff in diffs)


def test_fixtures_round_trip_floats_exactly(tmp_path):
    """JSON shortest-repr encoding parses back to the identical double."""
    trace = golden.compute_trace(golden.GOLDEN_METHODS["all-reduce"])
    path = golden.write_fixture(trace, str(tmp_path))
    with open(path, "r", encoding="utf-8") as handle:
        loaded = json.load(handle)
    assert golden.compare_traces(trace, loaded, rtol=0.0) == []


def test_golden_cli_verify_passes_on_fresh_update(tmp_path):
    """`golden --update` then `golden` round-trips through the real CLI."""
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    update = subprocess.run(
        [sys.executable, "-m", "repro", "golden", "--update", "--dir", str(tmp_path)],
        capture_output=True, text=True, env=env,
    )
    assert update.returncode == 0, update.stderr
    verify = subprocess.run(
        [sys.executable, "-m", "repro", "golden", "--dir", str(tmp_path)],
        capture_output=True, text=True, env=env,
    )
    assert verify.returncode == 0, verify.stderr
    assert "bit-identically" in verify.stdout

    # Corrupt one frozen float: verification must fail with a readable diff.
    victim = golden.fixture_path("fp16", str(tmp_path))
    with open(victim, "r", encoding="utf-8") as handle:
        fixture = json.load(handle)
    fixture["trace"]["simulated_time"] += 1.0
    with open(victim, "w", encoding="utf-8") as handle:
        json.dump(fixture, handle)
    drifted = subprocess.run(
        [sys.executable, "-m", "repro", "golden", "--dir", str(tmp_path)],
        capture_output=True, text=True, env=env,
    )
    assert drifted.returncode == 1
    assert "simulated_time" in drifted.stderr and "fp16" in drifted.stderr
