"""Fault-injection engine: plan semantics, elastic state, empty-plan identity."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.compression import build_compressor
from repro.compression.codec.stages import remap_rank_rows
from repro.comm import ProcessGroup
from repro.ddp import DistributedDataParallel
from repro.golden import GOLDEN_METHODS, golden_config_for
from repro.simulation import ClusterSpec, run_experiment
from repro.simulation.faults import EMPTY_FAULT_PLAN, FaultEvent, FaultPlan


# --------------------------------------------------------------------- #
# FaultPlan semantics
# --------------------------------------------------------------------- #
class TestFaultPlanSemantics:
    def test_parse_full_grammar(self):
        plan = FaultPlan.parse(
            "crash:3@0.5,rejoin:3@2.0,link:0.25@1.0-2.0,link:0.5@3.0,"
            "churn:0.1:2.5:7,policy:zero"
        )
        kinds = [event.kind for event in plan.sorted_events()]
        assert kinds == ["crash", "link", "rejoin", "link"]
        assert plan.churn_probability == 0.1
        assert plan.churn_factor == 2.5
        assert plan.churn_seed == 7
        assert plan.residual_policy == "zero"
        assert not plan.is_empty

    def test_parse_rejects_bad_tokens(self):
        for bad in ("explode:1@0.5", "crash:x@1", "link:0@1", "policy:maybe"):
            with pytest.raises(ValueError):
                FaultPlan.parse(bad)

    def test_dict_roundtrip(self):
        plan = FaultPlan.parse("crash:1@0.5,link:0.5@1.0-2.0,churn:0.2")
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(KeyError):
            FaultPlan.from_dict({"events": [], "surprise": 1})

    def test_coerce_forms(self):
        assert FaultPlan.coerce(None) is None
        plan = FaultPlan.parse("crash:0@1.0,rejoin:0@2.0")
        assert FaultPlan.coerce(plan) is plan
        assert FaultPlan.coerce("crash:0@1.0,rejoin:0@2.0") == plan
        assert FaultPlan.coerce(plan.to_dict()) == plan
        with pytest.raises(TypeError):
            FaultPlan.coerce(42)

    def test_active_ranks_over_time(self):
        plan = FaultPlan.parse("crash:3@0.5,crash:1@1.0,rejoin:3@2.0")
        assert plan.active_ranks(4, 0.0) == [0, 1, 2, 3]
        assert plan.active_ranks(4, 0.5) == [0, 1, 2]  # event at t included
        assert plan.active_ranks(4, 1.5) == [0, 2]
        assert plan.active_ranks(4, 2.0) == [0, 2, 3]

    def test_link_factor_windows_compound(self):
        plan = FaultPlan.parse("link:0.5@1.0-2.0,link:0.25@1.5")
        assert plan.link_factor(0.9) == 1.0
        assert plan.link_factor(1.0) == 0.5
        assert plan.link_factor(1.5) == 0.5 * 0.25  # overlapping windows multiply
        assert plan.link_factor(2.0) == 0.25  # first window is half-open
        assert plan.link_factor(100.0) == 0.25  # open-ended window persists

    def test_events_between_half_open(self):
        plan = FaultPlan.parse("crash:0@1.0,rejoin:0@2.0")
        assert [e.at for e in plan.events_between(-1.0, 1.0)] == [1.0]
        assert [e.at for e in plan.events_between(1.0, 2.0)] == [2.0]
        assert plan.events_between(2.0, 99.0) == []

    def test_churn_is_counter_based(self):
        plan = FaultPlan.parse("churn:0.5:4.0:3")
        draws = plan.churn_multipliers(8, 17)
        # Same (seed, iteration) -> same multipliers, regardless of history.
        assert np.array_equal(draws, plan.churn_multipliers(8, 17))
        assert not np.array_equal(draws, plan.churn_multipliers(8, 18))
        assert set(np.unique(draws)) <= {1.0, 4.0}

    def test_churn_disabled_is_all_ones(self):
        assert np.array_equal(EMPTY_FAULT_PLAN.churn_multipliers(4, 0), np.ones(4))

    def test_validate_for_world(self):
        FaultPlan.parse("crash:3@0.5,rejoin:3@2.0").validate_for_world(4)
        with pytest.raises(ValueError, match="outside"):
            FaultPlan.parse("crash:7@0.5").validate_for_world(4)
        with pytest.raises(ValueError, match="already dead"):
            FaultPlan.parse("crash:1@0.5,crash:1@1.0").validate_for_world(4)
        with pytest.raises(ValueError, match="still alive"):
            FaultPlan.parse("rejoin:1@0.5").validate_for_world(4)
        with pytest.raises(ValueError, match="survive"):
            FaultPlan.parse("crash:0@0.5,crash:1@1.0").validate_for_world(2)

    def test_event_validation(self):
        with pytest.raises(ValueError):
            FaultEvent(kind="crash", at=1.0)  # no rank
        with pytest.raises(ValueError):
            FaultEvent(kind="link", at=2.0, factor=1.0, until=1.0)  # ends first
        with pytest.raises(ValueError):
            FaultEvent(kind="meteor", at=1.0)


# --------------------------------------------------------------------- #
# ClusterSpec integration
# --------------------------------------------------------------------- #
class TestClusterSpecFaults:
    def test_empty_string_normalises_to_none(self):
        spec = ClusterSpec(world_size=4, faults="")
        assert spec.faults is None
        assert spec.to_dict() == ClusterSpec(world_size=4).to_dict()

    def test_grammar_string_coerced_and_validated(self):
        spec = ClusterSpec(world_size=4, faults="crash:3@0.5,rejoin:3@2.0")
        assert isinstance(spec.faults, FaultPlan)
        assert spec.fault_plan() is spec.faults
        with pytest.raises(ValueError):
            ClusterSpec(world_size=4, faults="crash:9@0.5")

    def test_dict_roundtrip_with_plan(self):
        spec = ClusterSpec(world_size=4, faults="crash:3@0.5,rejoin:3@2.0,churn:0.1")
        restored = ClusterSpec.from_dict(spec.to_dict())
        assert restored.faults == spec.faults

    def test_fault_plan_defaults_to_inert(self):
        assert ClusterSpec(world_size=4).fault_plan() is EMPTY_FAULT_PLAN

    def test_cost_model_for_defaults_matches_cost_model(self):
        for spec in (
            ClusterSpec(world_size=4, bandwidth="100Mbps"),
            ClusterSpec(world_size=4, bandwidth="1Gbps", hierarchical=True),
        ):
            base = spec.cost_model()
            derived = spec.cost_model_for()
            assert derived.ring_all_reduce_time(10_000) == base.ring_all_reduce_time(10_000)

    def test_cost_model_for_degraded_link_costs_more(self):
        spec = ClusterSpec(world_size=4, bandwidth="100Mbps")
        healthy = spec.cost_model_for(4, 1.0).ring_all_reduce_time(10_000)
        degraded = spec.cost_model_for(4, 0.5).ring_all_reduce_time(10_000)
        assert degraded > healthy


# --------------------------------------------------------------------- #
# Elastic compressor / DDP state
# --------------------------------------------------------------------- #
class TestElasticState:
    def test_remap_rank_rows_carry_shrink_then_grow(self):
        state = {0: np.arange(12, dtype=np.float64).reshape(4, 3)}
        original = state[0].copy()
        remap_rank_rows(state, [0, 1, 2, 3], [0, 1, 3], policy="carry")
        assert np.array_equal(state[0], original[[0, 1, 3]])
        # Grow back: survivors keep rows, the re-joined rank 2 starts at zero.
        remap_rank_rows(state, [0, 1, 3], [0, 1, 2, 3], policy="carry")
        assert np.array_equal(state[0][0], original[0])
        assert np.array_equal(state[0][1], original[1])
        assert np.array_equal(state[0][2], np.zeros(3))
        assert np.array_equal(state[0][3], original[3])

    def test_remap_rank_rows_zero_policy(self):
        state = {0: np.ones((4, 3))}
        remap_rank_rows(state, [0, 1, 2, 3], [0, 1, 2], policy="zero")
        assert np.array_equal(state[0], np.zeros((3, 3)))

    def test_remap_rank_rows_stale_shape_zeroed(self):
        state = {0: np.ones((2, 3))}  # rows do not match old membership of 4
        remap_rank_rows(state, [0, 1, 2, 3], [0, 1, 3], policy="carry")
        assert np.array_equal(state[0], np.zeros((3, 3)))

    def test_remap_rank_rows_bad_policy(self):
        with pytest.raises(ValueError):
            remap_rank_rows({}, [0, 1], [0], policy="maybe")

    def test_codec_compressor_residual_resize(self):
        compressor = build_compressor("topk-0.1")
        compressor.enable_error_feedback()
        compressor._residuals[0] = np.arange(8, dtype=np.float64).reshape(4, 2)
        stage = compressor.pipeline.stages[0]
        stage._residuals[0] = np.arange(8, dtype=np.float64).reshape(4, 2) * 10
        compressor.resize_world([0, 1, 2, 3], [0, 2, 3], policy="carry")
        assert np.array_equal(compressor._residuals[0], [[0, 1], [4, 5], [6, 7]])
        assert np.array_equal(stage._residuals[0], [[0, 10], [40, 50], [60, 70]])

    def test_ddp_set_active_ranks(self, tiny_model):
        ddp = DistributedDataParallel(tiny_model, world_size=4)
        assert not ddp.is_degraded
        assert ddp.active_ranks == [0, 1, 2, 3]
        ddp.set_active_ranks([0, 2, 3])
        assert ddp.is_degraded
        assert ddp.active_ranks == [0, 2, 3]
        assert ddp.hook_state.process_group.world_size == 3
        # Full membership with no explicit group restores the healthy path.
        ddp.set_active_ranks([0, 1, 2, 3])
        assert not ddp.is_degraded
        assert ddp.hook_state.process_group is ddp.process_group

    def test_ddp_rejects_bad_membership(self, tiny_model):
        ddp = DistributedDataParallel(tiny_model, world_size=4)
        with pytest.raises(ValueError):
            ddp.set_active_ranks([])
        with pytest.raises(ValueError):
            ddp.set_active_ranks([0, 4])
        with pytest.raises(ValueError):
            ddp.set_active_ranks([0, 1], ProcessGroup(3))

    def test_degraded_reduce_averages_survivors_only(self, tiny_model):
        ddp = DistributedDataParallel(tiny_model, world_size=4)
        name = next(name for name, _ in tiny_model.named_parameters())
        shape = dict(tiny_model.named_parameters())[name].data.shape
        for rank in range(4):
            grads = {
                n: np.full(p.data.shape, float(rank + 1))
                for n, p in tiny_model.named_parameters()
            }
            ddp.stage_rank_gradients(rank, grads)
        ddp.set_active_ranks([0, 1, 2])
        aggregated, _ = ddp.synchronize_staged()
        # Mean over survivors (1+2+3)/3 = 2.0 — rank 3's stale rows excluded.
        assert np.allclose(aggregated[name], np.full(shape, 2.0))


# --------------------------------------------------------------------- #
# Empty plan == bit-identical runs; fault runs are deterministic
# --------------------------------------------------------------------- #
class TestFaultRuns:
    @pytest.mark.parametrize("method_name", sorted(GOLDEN_METHODS))
    def test_empty_plan_bit_identical_on_golden_cells(self, method_name):
        method = GOLDEN_METHODS[method_name]
        config = golden_config_for(method_name)
        baseline = run_experiment(config, method)
        cluster = dataclasses.replace(config.cluster, faults=FaultPlan())
        witness = run_experiment(dataclasses.replace(config, cluster=cluster), method)
        assert witness.to_dict() == baseline.to_dict()

    def _config(self, faults):
        from repro.simulation import ExperimentConfig

        return ExperimentConfig(
            model="mlp",
            dataset="cifar10",
            cluster=ClusterSpec(world_size=4, bandwidth="100Mbps", faults=faults),
            epochs=2,
            batch_size=8,
            dataset_samples=48,
            image_size=8,
            pretrain_iterations=2,
            max_iterations_per_epoch=4,
            seed=0,
        )

    @pytest.mark.parametrize("policy", ["carry", "zero"])
    def test_crash_rejoin_run_accounts_faults(self, policy):
        from repro.simulation import PAPER_METHODS

        plan = f"crash:3@0.002,rejoin:3@0.008,policy:{policy}"
        healthy = run_experiment(self._config(None), PAPER_METHODS["topk-0.1"])
        faulted = run_experiment(self._config(plan), PAPER_METHODS["topk-0.1"])
        assert faulted.fault_events == 2
        assert faulted.degraded_iterations > 0
        assert faulted.downtime_rank_seconds > 0.0
        assert faulted.rejoin_cost_time > 0.0
        assert faulted.goodput_fraction < 1.0
        assert faulted.simulated_time > healthy.simulated_time
        # Seed-determinism: replaying the plan reproduces the run bit for bit.
        again = run_experiment(self._config(plan), PAPER_METHODS["topk-0.1"])
        assert again.to_dict() == faulted.to_dict()

    def test_link_degradation_slows_communication(self):
        from repro.simulation import PAPER_METHODS

        healthy = run_experiment(self._config(None), PAPER_METHODS["all-reduce"])
        degraded = run_experiment(
            self._config("link:0.25@0.0"), PAPER_METHODS["all-reduce"]
        )
        assert degraded.fault_events == 1
        assert degraded.comm_time > healthy.comm_time
        assert degraded.final_accuracy == healthy.final_accuracy  # loss path untouched

    def test_churn_perturbs_compute_deterministically(self):
        from repro.simulation import PAPER_METHODS

        healthy = run_experiment(self._config(None), PAPER_METHODS["all-reduce"])
        churned = run_experiment(self._config("churn:0.5:3.0:1"), PAPER_METHODS["all-reduce"])
        assert churned.compute_time > healthy.compute_time
        again = run_experiment(self._config("churn:0.5:3.0:1"), PAPER_METHODS["all-reduce"])
        assert again.to_dict() == churned.to_dict()
