"""Layer behaviour: shapes, normalisation statistics, attention, dropout."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    AdaptiveAvgPool2d,
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GELU,
    Identity,
    LayerNorm,
    Linear,
    MaxPool2d,
    MultiHeadAttention,
    ReLU,
)
from repro.tensorlib import Tensor


class TestLinear:
    def test_output_shape(self, rng):
        layer = Linear(6, 3, rng=rng)
        out = layer(Tensor(rng.standard_normal((5, 6))))
        assert out.shape == (5, 3)

    def test_batched_input(self, rng):
        layer = Linear(6, 3, rng=rng)
        out = layer(Tensor(rng.standard_normal((2, 7, 6))))
        assert out.shape == (2, 7, 3)

    def test_no_bias(self, rng):
        layer = Linear(4, 2, bias=False, rng=rng)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_matches_manual_matmul(self, rng):
        layer = Linear(4, 2, rng=rng)
        x = rng.standard_normal((3, 4))
        expected = x @ layer.weight.data.T + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected, atol=1e-12)


class TestConvLayer:
    def test_output_shape(self, rng):
        layer = Conv2d(3, 8, kernel_size=3, padding=1, rng=rng)
        out = layer(Tensor(rng.standard_normal((2, 3, 8, 8))))
        assert out.shape == (2, 8, 8, 8)

    def test_stride_halves_resolution(self, rng):
        layer = Conv2d(3, 4, kernel_size=3, stride=2, padding=1, rng=rng)
        out = layer(Tensor(rng.standard_normal((1, 3, 8, 8))))
        assert out.shape == (1, 4, 4, 4)

    def test_gradients_flow_to_parameters(self, rng):
        layer = Conv2d(2, 3, kernel_size=3, padding=1, rng=rng)
        out = layer(Tensor(rng.standard_normal((1, 2, 5, 5))))
        out.sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None


class TestBatchNorm:
    def test_training_normalises_batch(self, rng):
        layer = BatchNorm2d(4)
        x = rng.standard_normal((8, 4, 5, 5)) * 3.0 + 2.0
        out = layer(Tensor(x)).data
        assert np.abs(out.mean(axis=(0, 2, 3))).max() < 1e-8
        assert np.abs(out.std(axis=(0, 2, 3)) - 1.0).max() < 1e-2

    def test_running_stats_updated_in_training(self, rng):
        layer = BatchNorm2d(3)
        x = rng.standard_normal((4, 3, 4, 4)) + 5.0
        layer(Tensor(x))
        assert np.all(layer.running_mean > 0.0)

    def test_eval_uses_running_stats(self, rng):
        layer = BatchNorm2d(3)
        x = rng.standard_normal((4, 3, 4, 4)) + 5.0
        for _ in range(20):
            layer(Tensor(x))
        layer.eval()
        mean_before = layer.running_mean.copy()
        out = layer(Tensor(x)).data
        np.testing.assert_allclose(layer.running_mean, mean_before)
        # With converged running stats, eval output is approximately normalised.
        assert np.abs(out.mean()) < 1.0

    def test_scale_shift_are_parameters(self):
        layer = BatchNorm2d(5)
        names = [name for name, _ in layer.named_parameters()]
        assert names == ["weight", "bias"]


class TestLayerNorm:
    def test_normalises_last_dim(self, rng):
        layer = LayerNorm(16)
        x = rng.standard_normal((4, 7, 16)) * 5.0 + 1.0
        out = layer(Tensor(x)).data
        assert np.abs(out.mean(axis=-1)).max() < 1e-8
        assert np.abs(out.std(axis=-1) - 1.0).max() < 1e-2

    def test_gradients_flow(self, rng):
        layer = LayerNorm(8)
        out = layer(Tensor(rng.standard_normal((2, 8))))
        out.sum().backward()
        assert layer.weight.grad is not None


class TestSimpleLayers:
    def test_relu_clamps_negative(self):
        out = ReLU()(Tensor(np.array([-1.0, 0.5]))).data
        np.testing.assert_allclose(out, [0.0, 0.5])

    def test_gelu_is_smooth_relu_like(self):
        out = GELU()(Tensor(np.array([-10.0, 0.0, 10.0]))).data
        assert out[0] == pytest.approx(0.0, abs=1e-4)
        assert out[1] == pytest.approx(0.0)
        assert out[2] == pytest.approx(10.0, abs=1e-4)

    def test_identity(self, rng):
        x = Tensor(rng.standard_normal(3))
        assert Identity()(x) is x

    def test_flatten(self, rng):
        out = Flatten()(Tensor(rng.standard_normal((2, 3, 4, 4))))
        assert out.shape == (2, 48)

    def test_max_and_avg_pool_layers(self, rng):
        x = Tensor(rng.standard_normal((1, 2, 8, 8)))
        assert MaxPool2d(2)(x).shape == (1, 2, 4, 4)
        assert AvgPool2d(2)(x).shape == (1, 2, 4, 4)
        assert AdaptiveAvgPool2d(1)(x).shape == (1, 2, 1, 1)

    def test_dropout_only_active_in_training(self, rng):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        x = Tensor(np.ones((100,)))
        train_out = layer(x).data
        layer.eval()
        eval_out = layer(x).data
        assert (train_out == 0).any()
        np.testing.assert_allclose(eval_out, 1.0)


class TestMultiHeadAttention:
    def test_output_shape(self, rng):
        attn = MultiHeadAttention(embed_dim=16, num_heads=4, rng=rng)
        out = attn(Tensor(rng.standard_normal((2, 5, 16))))
        assert out.shape == (2, 5, 16)

    def test_rejects_indivisible_heads(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(embed_dim=10, num_heads=3)

    def test_gradients_reach_qkv_and_proj(self, rng):
        attn = MultiHeadAttention(embed_dim=8, num_heads=2, rng=rng)
        out = attn(Tensor(rng.standard_normal((1, 4, 8))))
        out.sum().backward()
        assert attn.qkv.weight.grad is not None
        assert attn.proj.weight.grad is not None

    def test_permutation_equivariance(self, rng):
        """Self-attention without positional encoding commutes with token permutation."""
        attn = MultiHeadAttention(embed_dim=8, num_heads=2, rng=rng)
        x = rng.standard_normal((1, 5, 8))
        perm = np.array([3, 1, 4, 0, 2])
        out = attn(Tensor(x)).data
        out_perm = attn(Tensor(x[:, perm])).data
        np.testing.assert_allclose(out[:, perm], out_perm, atol=1e-10)
