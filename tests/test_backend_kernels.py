"""Parity and routing tests for the backend seam's hot kernels.

Three layers of guarantees:

* the :class:`NumpyBackend` reference kernels (``im2col_gather``,
  ``pool_reduce``, ``fused_norm_stats``/``fused_norm_backward``) agree with
  naive loop/composite formulations across a hypothesis-driven
  dtype × stride × padding × kernel-size grid;
* every conv/pool/norm call site in ``functional.py``/``nn/layers.py`` —
  looped *and* world-batched — actually routes through ``get_backend()``
  (a recording backend proves it);
* accelerated backends match the reference: numba bit-identically (float64
  and float32), torch within float tolerance.  Both skip cleanly when the
  library is absent — behaviour must never depend on what is installed.

The selection machinery itself (warn-once degradation, the shared cache, the
``backends`` CLI) is covered at the bottom.
"""

from __future__ import annotations

import logging

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.tensorlib import backend as B
from repro.tensorlib import functional as F
from repro.tensorlib.tensor import Tensor


@pytest.fixture(autouse=True)
def _restore_active_backend():
    previous = B._ACTIVE
    yield
    B._ACTIVE = previous


# --------------------------------------------------------------------------- #
# Naive references
# --------------------------------------------------------------------------- #
def naive_im2col(padded, kernel, stride, out_hw):
    n, c, _, _ = padded.shape
    kh, kw = kernel
    sh, sw = stride
    oh, ow = out_hw
    out = np.empty((n, oh * ow, c * kh * kw), dtype=padded.dtype)
    for i in range(n):
        for y in range(oh):
            for x in range(ow):
                patch = padded[i, :, y * sh : y * sh + kh, x * sw : x * sw + kw]
                out[i, y * ow + x] = patch.reshape(-1)
    return out


def composite_norm_stats(data, axes, eps):
    mean = data.mean(axis=axes, keepdims=True)
    centered = data - mean
    var = np.mean(centered * centered, axis=axes, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    return mean, var, inv_std, centered * inv_std


def composite_norm_backward(grad, w, x_hat, inv_std, axes):
    g_hat = grad * w
    mean_g = g_hat.mean(axis=axes, keepdims=True)
    mean_gx = (g_hat * x_hat).mean(axis=axes, keepdims=True)
    return inv_std * (g_hat - mean_g - x_hat * mean_gx)


def _parity_backends():
    """(label, backend, exact) triples to run kernel parity against.

    numpy always; numba (bit-identical contract) and torch (float tolerance)
    only when importable and not degraded by their probes.
    """
    pairs = [("numpy", B.NumpyBackend(), True)]
    for name, exact in (("numba", True), ("torch", False)):
        try:
            __import__(name)
        except ImportError:
            continue
        backend = B.shared_backend(name)
        if backend.name == name:
            pairs.append((name, backend, exact))
    return pairs


PARITY_BACKENDS = _parity_backends()


def _assert_matches(label, exact, actual, expected):
    if exact:
        assert np.array_equal(actual, expected), label
    else:
        np.testing.assert_allclose(actual, expected, rtol=1e-6, atol=1e-12, err_msg=label)


# --------------------------------------------------------------------------- #
# Hypothesis parity grid: dtype x stride x padding x kernel size
# --------------------------------------------------------------------------- #
@settings(max_examples=40, deadline=None)
@given(
    dtype=st.sampled_from([np.float64, np.float32]),
    stride=st.sampled_from([(1, 1), (2, 2), (2, 1), (3, 3)]),
    padding=st.sampled_from([(0, 0), (1, 1), (2, 0)]),
    kernel=st.sampled_from([(1, 1), (2, 2), (3, 3), (3, 2)]),
    n=st.integers(min_value=1, max_value=3),
    c=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_im2col_gather_parity(dtype, stride, padding, kernel, n, c, seed):
    rng = np.random.default_rng(seed)
    kh, kw = kernel
    ph, pw = padding
    h = kh + 2  # always at least one window
    w = kw + 3
    images = rng.standard_normal((n, c, h, w)).astype(dtype)
    padded = np.zeros((n, c, h + 2 * ph, w + 2 * pw), dtype=dtype)
    padded[:, :, ph : ph + h, pw : pw + w] = images
    out_hw = (
        (h + 2 * ph - kh) // stride[0] + 1,
        (w + 2 * pw - kw) // stride[1] + 1,
    )
    expected = naive_im2col(padded, kernel, stride, out_hw)
    for label, backend, exact in PARITY_BACKENDS:
        _assert_matches(
            f"im2col/{label}",
            exact,
            backend.im2col_gather(padded, kernel, stride, out_hw),
            expected,
        )
    # The precomputed index plan (what the numba gather executes) must
    # describe the same data movement — checked on every host, numba or not.
    plan = B._gather_index_plan(c, padded.shape[2], padded.shape[3], kernel, stride, out_hw)
    planned = padded.reshape(n, -1)[:, plan].reshape(expected.shape)
    assert np.array_equal(planned, expected)


@settings(max_examples=30, deadline=None)
@given(
    dtype=st.sampled_from([np.float64, np.float32]),
    k=st.sampled_from([1, 4, 9, 16, 100]),
    flat=st.integers(min_value=1, max_value=6),
    length=st.integers(min_value=1, max_value=20),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_pool_reduce_parity(dtype, k, flat, length, seed):
    rng = np.random.default_rng(seed)
    cols = rng.standard_normal((flat, length, k)).astype(dtype)
    expected_max = cols.max(axis=2)
    expected_arg = cols.argmax(axis=2)
    expected_mean = cols.mean(axis=2)
    for label, backend, exact in PARITY_BACKENDS:
        values, argmax = backend.pool_reduce(cols, "max")
        _assert_matches(f"pool-max/{label}", exact, values, expected_max)
        assert np.array_equal(argmax, expected_arg), f"pool-argmax/{label}"
        values, none = backend.pool_reduce(cols, "mean")
        _assert_matches(f"pool-mean/{label}", exact, values, expected_mean)
        assert none is None


@settings(max_examples=30, deadline=None)
@given(
    dtype=st.sampled_from([np.float64, np.float32]),
    dim=st.sampled_from([3, 8, 37, 200]),
    rows=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_fused_norm_last_axis_parity(dtype, dim, rows, seed):
    rng = np.random.default_rng(seed)
    data = rng.standard_normal((rows, dim)).astype(dtype)
    grad = rng.standard_normal((rows, dim)).astype(dtype)
    w = rng.standard_normal((dim,)).astype(dtype)
    axes = (1,)
    eps = 1e-5
    expected = composite_norm_stats(data, axes, eps)
    expected_gx = composite_norm_backward(grad, w, expected[3], expected[2], axes)
    for label, backend, exact in PARITY_BACKENDS:
        stats = backend.fused_norm_stats(data, axes, eps)
        for field, actual, ref in zip(("mean", "var", "inv_std", "x_hat"), stats, expected):
            assert actual.shape == ref.shape, f"norm-{field}/{label}"
            _assert_matches(f"norm-{field}/{label}", exact, actual, ref)
        gx = backend.fused_norm_backward(grad, w, stats[3], stats[2], axes)
        _assert_matches(f"norm-backward/{label}", exact, gx, expected_gx)


def test_fused_norm_batchnorm_axes_parity():
    """Channel-style reductions (BatchNorm) work on every backend too."""
    rng = np.random.default_rng(0)
    data = rng.standard_normal((4, 3, 5, 5)).astype(np.float32)
    grad = rng.standard_normal((4, 3, 5, 5)).astype(np.float32)
    w = rng.standard_normal((1, 3, 1, 1)).astype(np.float32)
    axes = (0, 2, 3)
    expected = composite_norm_stats(data, axes, 1e-5)
    expected_gx = composite_norm_backward(grad, w, expected[3], expected[2], axes)
    for label, backend, exact in PARITY_BACKENDS:
        stats = backend.fused_norm_stats(data, axes, 1e-5)
        for actual, ref in zip(stats, expected):
            _assert_matches(f"bn-stats/{label}", exact, actual, ref)
        gx = backend.fused_norm_backward(grad, w, stats[3], stats[2], axes)
        _assert_matches(f"bn-backward/{label}", exact, gx, expected_gx)


def test_pool_reduce_rejects_unknown_op():
    with pytest.raises(ValueError, match="pool_reduce"):
        B.NumpyBackend().pool_reduce(np.zeros((1, 1, 4)), "median")


# --------------------------------------------------------------------------- #
# Call-site routing: every conv/pool/norm site goes through get_backend()
# --------------------------------------------------------------------------- #
class RecordingBackend(B.NumpyBackend):
    """Reference numerics, but records which hot kernels were dispatched."""

    name = "recording"

    def __init__(self):
        self.calls = []

    def im2col_gather(self, padded, kernel, stride, out_hw):
        self.calls.append("im2col_gather")
        return super().im2col_gather(padded, kernel, stride, out_hw)

    def conv_weight_grad(self, grad_mat, cols):
        self.calls.append("conv_weight_grad")
        return super().conv_weight_grad(grad_mat, cols)

    def col2im_scatter_add(self, padded, cols, sh, sw, out_h, out_w):
        self.calls.append("col2im_scatter_add")
        super().col2im_scatter_add(padded, cols, sh, sw, out_h, out_w)

    def pool_reduce(self, cols, op):
        self.calls.append(f"pool_reduce:{op}")
        return super().pool_reduce(cols, op)

    def fused_norm_stats(self, data, axes, eps):
        self.calls.append("fused_norm_stats")
        return super().fused_norm_stats(data, axes, eps)

    def fused_norm_backward(self, grad, w, x_hat, inv_std, axes):
        self.calls.append("fused_norm_backward")
        return super().fused_norm_backward(grad, w, x_hat, inv_std, axes)


class TestCallSiteRouting:
    def _conv_roundtrip(self, world: bool):
        rng = np.random.default_rng(0)
        if world:
            x = Tensor(rng.standard_normal((2, 2, 3, 8, 8)), requires_grad=True)
            weight = Tensor(rng.standard_normal((2, 4, 3, 3, 3)), requires_grad=True)
        else:
            x = Tensor(rng.standard_normal((2, 3, 8, 8)), requires_grad=True)
            weight = Tensor(rng.standard_normal((4, 3, 3, 3)), requires_grad=True)
        out = F.conv2d(x, weight, stride=2, padding=1)
        out.sum().backward()

    @pytest.mark.parametrize("world", [False, True], ids=["looped", "batched"])
    def test_conv_routes_gather_weight_grad_and_scatter(self, world):
        recorder = B.set_backend(RecordingBackend())
        self._conv_roundtrip(world)
        assert "im2col_gather" in recorder.calls
        assert "conv_weight_grad" in recorder.calls
        # stride-2 3x3 conv: overlapping windows -> the backend scatter-add
        assert "col2im_scatter_add" in recorder.calls

    def test_conv_stride1_input_grad_routes_through_gather(self):
        recorder = B.set_backend(RecordingBackend())
        rng = np.random.default_rng(1)
        x = Tensor(rng.standard_normal((2, 3, 6, 6)), requires_grad=True)
        weight = Tensor(rng.standard_normal((4, 3, 3, 3)), requires_grad=True)
        F.conv2d(x, weight, stride=1, padding=1).sum().backward()
        # forward gather + the transposed-conv correlation's gather
        assert recorder.calls.count("im2col_gather") >= 2

    @pytest.mark.parametrize("world", [False, True], ids=["looped", "batched"])
    def test_pooling_routes_reduce(self, world):
        recorder = B.set_backend(RecordingBackend())
        rng = np.random.default_rng(2)
        shape = (2, 2, 3, 8, 8) if world else (2, 3, 8, 8)
        x = Tensor(rng.standard_normal(shape), requires_grad=True)
        F.max_pool2d(x, 2).sum().backward()
        F.avg_pool2d(x, 2).sum().backward()
        assert "pool_reduce:max" in recorder.calls
        assert "pool_reduce:mean" in recorder.calls

    @pytest.mark.parametrize("world", [False, True], ids=["looped", "batched"])
    def test_fused_norm_routes_stats_and_backward(self, world):
        recorder = B.set_backend(RecordingBackend())
        rng = np.random.default_rng(3)
        shape = (2, 4, 5, 16) if world else (4, 5, 16)
        x = Tensor(rng.standard_normal(shape).astype(np.float32), requires_grad=True)
        weight = Tensor(np.ones(16, dtype=np.float32), requires_grad=True)
        bias = Tensor(np.zeros(16, dtype=np.float32), requires_grad=True)
        param_shape = (1,) * (x.ndim - 1) + (16,)
        out = F.fused_norm(x, weight, bias, axes=(x.ndim - 1,), eps=1e-5, param_shape=param_shape)
        out.sum().backward()
        assert "fused_norm_stats" in recorder.calls
        assert "fused_norm_backward" in recorder.calls

    @pytest.mark.parametrize("world", [False, True], ids=["looped", "batched"])
    def test_batchnorm_layer_routes_stats_once(self, world):
        from repro.nn.layers import BatchNorm2d  # noqa: PLC0415
        from repro.nn.batched import replica_views  # noqa: PLC0415
        from repro.tensorlib import default_dtype  # noqa: PLC0415

        recorder = B.set_backend(RecordingBackend())
        rng = np.random.default_rng(4)
        with default_dtype("float32"):
            layer = BatchNorm2d(3)
            layer.train()
            if world:
                x = Tensor(rng.standard_normal((2, 4, 3, 6, 6)), requires_grad=True)
                with replica_views(layer, world_size=2):
                    out = layer(x)
            else:
                x = Tensor(rng.standard_normal((4, 3, 6, 6)), requires_grad=True)
                out = layer(x)
            out.sum().backward()
        # Stats computed exactly once and shared with fused_norm (no repass).
        assert recorder.calls.count("fused_norm_stats") == 1
        assert "fused_norm_backward" in recorder.calls

    def test_recording_backend_is_value_identical(self):
        """Routing through the recorder must not change any numbers."""
        rng = np.random.default_rng(5)
        data = rng.standard_normal((2, 3, 8, 8))
        kernels = rng.standard_normal((4, 3, 3, 3))

        def run():
            x = Tensor(data.copy(), requires_grad=True)
            out = F.max_pool2d(F.conv2d(x, Tensor(kernels.copy()), stride=2, padding=1), 2)
            out.sum().backward()
            return out.data.copy(), np.array(x.grad, copy=True)

        B.set_backend(B.NumpyBackend())
        out_ref, grad_ref = run()
        B.set_backend(RecordingBackend())
        out_rec, grad_rec = run()
        assert np.array_equal(out_ref, out_rec)
        assert np.array_equal(grad_ref, grad_rec)


# --------------------------------------------------------------------------- #
# Numba: bit-identity across the grid + the conv golden
# --------------------------------------------------------------------------- #
def _numba_backend_or_skip():
    pytest.importorskip("numba")
    backend = B.shared_backend("numba")
    if backend.name != "numba":
        pytest.skip(f"numba present but degraded: {backend.fallback_reason}")
    return backend


class TestNumbaKernels:
    def test_kernel_status_reports_jit(self):
        backend = _numba_backend_or_skip()
        status = backend.kernel_status()
        for kernel in ("im2col_gather", "pool_reduce", "conv_weight_grad", "col2im_scatter_add"):
            assert kernel in status

    def test_gather_plan_cache_reused_and_capped(self):
        backend = _numba_backend_or_skip()
        if not backend._jit_gather_ok:
            pytest.skip("gather kernel degraded on this host")
        backend._gather_plans.clear()
        rng = np.random.default_rng(0)
        padded = rng.standard_normal((1, 2, 6, 6))
        backend.im2col_gather(padded, (3, 3), (1, 1), (4, 4))
        assert len(backend._gather_plans) == 1
        backend.im2col_gather(padded, (3, 3), (1, 1), (4, 4))
        assert len(backend._gather_plans) == 1  # reused, not re-planned
        for size in range(backend._PLAN_CACHE_CAP + 2):
            h = 6 + size
            img = rng.standard_normal((1, 1, h, h))
            backend.im2col_gather(img, (3, 3), (1, 1), (h - 2, h - 2))
        assert len(backend._gather_plans) <= backend._PLAN_CACHE_CAP

    def test_conv_golden_bit_identical_under_numba(self):
        """The conv golden cell (resnet18) must not drift under numba."""
        _numba_backend_or_skip()
        from repro import golden  # noqa: PLC0415

        expected = golden.load_fixture("conv-all-reduce")
        with B.use_backend("numba"):
            actual = golden.compute_trace(golden.GOLDEN_METHODS["conv-all-reduce"])
        diffs = golden.compare_traces(expected, actual, rtol=0.0)
        assert not diffs, golden.format_diff("conv-all-reduce (numba)", diffs)


# --------------------------------------------------------------------------- #
# Selection machinery: warn-once, recorded reasons, shared cache, CLI
# --------------------------------------------------------------------------- #
def _block_import(monkeypatch, module: str):
    import builtins

    real_import = builtins.__import__

    def fake_import(name, *args, **kwargs):
        if name == module or name.startswith(module + "."):
            raise ImportError(f"{module} is not installed")
        return real_import(name, *args, **kwargs)

    monkeypatch.setattr(builtins, "__import__", fake_import)


class TestDegradation:
    def test_fallback_warns_exactly_once_per_process(self, monkeypatch, caplog):
        _block_import(monkeypatch, "torch")
        monkeypatch.setattr(B, "_FALLBACK_WARNED", set())
        with caplog.at_level(logging.WARNING, logger="repro.tensorlib.backend"):
            first = B.create_backend("torch")
            second = B.create_backend("torch")
        warnings = [r for r in caplog.records if "falling back to numpy" in r.message]
        assert len(warnings) == 1
        # ... but the reason is recorded on every degraded instance.
        for backend in (first, second):
            assert type(backend) is B.NumpyBackend
            assert backend.fallback_from == "torch"
            assert "not installed" in backend.fallback_reason

    def test_distinct_backends_each_get_their_warning(self, monkeypatch, caplog):
        _block_import(monkeypatch, "torch")
        _block_import(monkeypatch, "cupy")
        monkeypatch.setattr(B, "_FALLBACK_WARNED", set())
        with caplog.at_level(logging.WARNING, logger="repro.tensorlib.backend"):
            B.create_backend("torch")
            B.create_backend("cupy")
            B.create_backend("torch")
        warnings = [r for r in caplog.records if "falling back to numpy" in r.message]
        assert len(warnings) == 2

    def test_shared_backend_caches_per_name(self, monkeypatch):
        monkeypatch.setattr(B, "_SHARED", {})
        first = B.shared_backend("numpy")
        assert B.shared_backend("numpy") is first
        # set_backend by name resolves through the same cache
        assert B.set_backend("numpy") is first

    def test_shared_backend_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown backend"):
            B.shared_backend("fortran")


class TestDescribeBackends:
    def test_reports_reference_and_missing(self, monkeypatch):
        infos = {info.name: info for info in B.describe_backends(probe=False)}
        assert set(infos) == set(B.KNOWN_BACKENDS)
        assert infos["numpy"].status == "reference"
        for name in ("numba", "torch", "cupy"):
            info = infos[name]
            if not info.installed:
                assert info.status == "degraded-to-numpy"
                assert "not installed" in info.detail

    def test_probe_mode_reports_kernels_for_installed_backends(self):
        for info in B.describe_backends(probe=True):
            if info.status == "available":
                assert info.kernels, info.name

    def test_backends_cli_lists_every_known_backend(self, capsys):
        from repro.campaign.cli import main  # noqa: PLC0415

        assert main(["backends", "--no-probe"]) == 0
        out = capsys.readouterr().out
        for name in B.KNOWN_BACKENDS:
            assert name in out
        assert "active backend:" in out


class TestCampaignBackendAxis:
    def test_backend_axis_expands_and_runs(self, tmp_path):
        from repro.campaign.runner import run_campaign  # noqa: PLC0415
        from repro.campaign.spec import CampaignSpec  # noqa: PLC0415

        spec = CampaignSpec(
            name="backend-axis",
            base={
                "model": "mlp",
                "epochs": 1,
                "batch_size": 4,
                "dataset_samples": 8,
                "image_size": 8,
                "pretrain_iterations": 0,
                "max_iterations_per_epoch": 1,
                "world_size": 2,
            },
            axes={"backend": ["numpy", None]},
        )
        cells = spec.expand()
        assert [cell.config.backend for cell in cells] == ["numpy", None]
        report = run_campaign(spec, store=None, jobs=1)
        report.raise_failures()
        results = report.results()
        # Backend selection changes speed, never results: both cells train
        # identically on this host.
        assert results[0].final_accuracy == results[1].final_accuracy
        assert results[0].simulated_time == results[1].simulated_time
