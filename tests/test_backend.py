"""Backend selection and bit-identity tests for ``repro.tensorlib.backend``.

The backend seam has one hard contract: environment differences (which
optional libraries happen to be installed, what ``REPRO_BACKEND`` says)
change *speed*, never *behaviour*.  These tests pin the selection machinery
— numpy default, loud failure on typos, warn-and-degrade on missing
libraries, scoped overrides — and, when numba is installed, bit-identity of
the JIT kernels against the numpy reference.
"""

from __future__ import annotations

import logging

import numpy as np
import pytest

from repro.tensorlib import backend as B


@pytest.fixture(autouse=True)
def _restore_active_backend():
    """Every test runs against a fresh process-wide backend state."""
    previous = B._ACTIVE
    yield
    B._ACTIVE = previous


class TestSelection:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv(B.BACKEND_ENV_VAR, raising=False)
        B.set_backend(None)
        assert type(B.get_backend()) is B.NumpyBackend

    def test_numpy_always_available(self):
        assert "numpy" in B.available_backends()
        assert set(B.available_backends()) <= set(B.KNOWN_BACKENDS)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown backend"):
            B.create_backend("fortran")

    def test_missing_library_falls_back_with_warning(self, monkeypatch, caplog):
        # Pretend numba's import fails even if the library is present.  The
        # warning fires once per process per backend, so reset the dedup set.
        import builtins

        real_import = builtins.__import__

        def fake_import(name, *args, **kwargs):
            if name == "numba" or name.startswith("numba."):
                raise ImportError("numba is not installed")
            return real_import(name, *args, **kwargs)

        monkeypatch.setattr(builtins, "__import__", fake_import)
        monkeypatch.setattr(B, "_FALLBACK_WARNED", set())
        with caplog.at_level(logging.WARNING, logger="repro.tensorlib.backend"):
            backend = B.create_backend("numba")
        assert type(backend) is B.NumpyBackend
        assert any("falling back to numpy" in record.message for record in caplog.records)
        assert backend.fallback_from == "numba"
        assert "not installed" in backend.fallback_reason

    def test_env_var_resolution(self, monkeypatch):
        monkeypatch.setenv(B.BACKEND_ENV_VAR, "numpy")
        active = B.set_backend(None)
        assert type(active) is B.NumpyBackend

    def test_env_var_unknown_name_warns_and_degrades(self, monkeypatch, caplog):
        monkeypatch.setenv(B.BACKEND_ENV_VAR, "fortran")
        with caplog.at_level(logging.WARNING, logger="repro.tensorlib.backend"):
            active = B.set_backend(None)
        assert type(active) is B.NumpyBackend
        assert any("unknown backend" in record.message for record in caplog.records)

    def test_set_backend_accepts_instance(self):
        instance = B.NumpyBackend()
        assert B.set_backend(instance) is instance
        assert B.get_backend() is instance

    def test_use_backend_restores_previous(self):
        outer = B.set_backend(B.NumpyBackend())
        with B.use_backend("numpy") as inner:
            assert B.get_backend() is inner
            assert inner is not outer
        assert B.get_backend() is outer

    def test_use_backend_none_is_noop(self):
        outer = B.set_backend(B.NumpyBackend())
        with B.use_backend(None) as active:
            assert active is outer
        assert B.get_backend() is outer


class TestNumpyReference:
    def test_protocol_methods_match_numpy(self):
        backend = B.NumpyBackend()
        rng = np.random.default_rng(0)
        a = rng.standard_normal((3, 4))
        b = rng.standard_normal((4, 5))
        np.testing.assert_array_equal(backend.matmul(a, b), a @ b)
        np.testing.assert_array_equal(backend.einsum("ij,jk->ik", a, b), np.einsum("ij,jk->ik", a, b))
        np.testing.assert_array_equal(backend.sum(a, axis=0), a.sum(axis=0))
        np.testing.assert_array_equal(backend.mean(a, axis=1, keepdims=True), a.mean(axis=1, keepdims=True))
        np.testing.assert_array_equal(backend.amax(a), np.amax(a))
        np.testing.assert_array_equal(backend.amin(a, axis=0), np.amin(a, axis=0))
        np.testing.assert_array_equal(
            backend.pad(a, ((1, 1), (0, 0))), np.pad(a, ((1, 1), (0, 0)))
        )

    def test_conv_weight_grad_matches_einsum(self):
        backend = B.NumpyBackend()
        rng = np.random.default_rng(1)
        grad_mat = rng.standard_normal((2, 9, 4))  # (n, length, out_channels)
        cols = rng.standard_normal((2, 9, 27))  # (n, length, c*kh*kw)
        expected = np.einsum("nlo,nlk->ok", grad_mat, cols)
        np.testing.assert_allclose(backend.conv_weight_grad(grad_mat, cols), expected, rtol=1e-12)
        # world-batched variant: one result per world slice
        grad4 = rng.standard_normal((3, 2, 9, 4))
        cols4 = rng.standard_normal((3, 2, 9, 27))
        batched = backend.conv_weight_grad(grad4, cols4)
        for w in range(3):
            np.testing.assert_array_equal(batched[w], backend.conv_weight_grad(grad4[w], cols4[w]))


def _scatter_case(rng):
    """A small overlapping col2im case: images (2,3,8,8), 3x3 kernel, stride 2."""
    from repro.tensorlib.functional import im2col

    images = rng.standard_normal((2, 3, 8, 8))
    cols, _ = im2col(images, (3, 3), (2, 2), (1, 1))
    n, c, kh, kw = 2, 3, 3, 3
    out_h = out_w = 4
    reshaped = cols.reshape(n, out_h, out_w, c, kh, kw).transpose(4, 5, 0, 3, 1, 2)
    padded = np.zeros((n, c, 10, 10))
    return np.ascontiguousarray(reshaped), padded


class TestNumbaBitIdentity:
    """Skips cleanly when numba is absent — behaviour must not depend on it."""

    def test_numba_backend_matches_numpy(self):
        pytest.importorskip("numba")
        numba_backend = B.create_backend("numba")
        if type(numba_backend) is B.NumpyBackend:
            pytest.skip("numba present but backend probes rejected it on this host")
        numpy_backend = B.NumpyBackend()
        rng = np.random.default_rng(2)

        grad_mat = rng.standard_normal((2, 9, 4))
        cols = rng.standard_normal((2, 9, 27))
        assert np.array_equal(
            numba_backend.conv_weight_grad(grad_mat, cols),
            numpy_backend.conv_weight_grad(grad_mat, cols),
        )
        grad4 = rng.standard_normal((3, 2, 9, 4))
        cols4 = rng.standard_normal((3, 2, 9, 27))
        assert np.array_equal(
            numba_backend.conv_weight_grad(grad4, cols4),
            numpy_backend.conv_weight_grad(grad4, cols4),
        )

        reshaped, padded = _scatter_case(rng)
        out_numba = padded.copy()
        numba_backend.col2im_scatter_add(out_numba, reshaped, 2, 2, 4, 4)
        out_numpy = padded.copy()
        numpy_backend.col2im_scatter_add(out_numpy, reshaped, 2, 2, 4, 4)
        assert np.array_equal(out_numba, out_numpy)

    def test_numba_selection_reports_numba(self):
        pytest.importorskip("numba")
        backend = B.create_backend("numba")
        if type(backend) is B.NumpyBackend:
            pytest.skip("numba present but backend probes rejected it on this host")
        assert "numba" in B.available_backends()
