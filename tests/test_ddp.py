"""DDP simulator: buckets, hooks, gradient synchronisation and equivalence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm import NetworkModel, ProcessGroup
from repro.comm.network import MBPS
from repro.compression import FP16Compressor, NoCompression
from repro.ddp import (
    DistributedDataParallel,
    GradBucket,
    HookState,
    allreduce_hook,
    build_buckets,
    fp16_compress_hook,
)
from repro.ddp.bucket import Bucket, BucketSlice
from repro.ddp.hooks import make_hook
from repro.nn import SGD
from repro.nn.models import mlp_tiny
from repro.tensorlib import Tensor, functional as F


def make_grads(model, batch):
    images, labels = batch
    model.zero_grad()
    loss = F.cross_entropy(model(Tensor(images)), labels)
    loss.backward()
    return {name: p.grad.copy() for name, p in model.named_parameters()}


class TestBucketLayout:
    def test_reverse_registration_order(self, tiny_model):
        buckets = build_buckets(tiny_model)
        names = [s.param_name for b in buckets for s in b.slices]
        forward_names = [name for name, _ in tiny_model.named_parameters()]
        assert names == list(reversed(forward_names))

    def test_total_numel_matches_model(self, tiny_model):
        buckets = build_buckets(tiny_model)
        assert sum(b.numel for b in buckets) == tiny_model.num_parameters()

    def test_capacity_splits_into_multiple_buckets(self, tiny_model):
        buckets = build_buckets(tiny_model, bucket_cap_bytes=20_000)
        assert len(buckets) > 1
        for bucket in buckets:
            # Greedy packing may exceed the cap only by a single slice.
            assert bucket.nbytes <= 20_000 or len(bucket.slices) == 1

    def test_offsets_are_contiguous(self, tiny_model):
        for bucket in build_buckets(tiny_model, bucket_cap_bytes=10_000):
            position = 0
            for piece in bucket.slices:
                assert piece.offset == position
                position += piece.numel

    def test_invalid_capacity(self, tiny_model):
        with pytest.raises(ValueError):
            build_buckets(tiny_model, bucket_cap_bytes=0)

    def test_flatten_unflatten_roundtrip(self, tiny_model, sample_batch):
        grads = make_grads(tiny_model, sample_batch)
        for bucket in build_buckets(tiny_model, bucket_cap_bytes=8_000):
            flat = bucket.flatten(grads)
            restored = bucket.unflatten(flat)
            for name, value in restored.items():
                np.testing.assert_array_equal(value, grads[name])

    def test_flatten_fills_missing_with_zeros(self):
        bucket = Bucket(index=0, slices=[BucketSlice("w", 0, 4, (2, 2))])
        flat = bucket.flatten({})
        np.testing.assert_array_equal(flat, np.zeros(4))

    def test_flatten_rejects_wrong_size(self):
        bucket = Bucket(index=0, slices=[BucketSlice("w", 0, 4, (2, 2))])
        with pytest.raises(ValueError):
            bucket.flatten({"w": np.zeros(5)})

    def test_unflatten_rejects_wrong_size(self):
        bucket = Bucket(index=0, slices=[BucketSlice("w", 0, 4, (2, 2))])
        with pytest.raises(ValueError):
            bucket.unflatten(np.zeros(3))


class TestGradBucket:
    def test_exposes_only_flat_buffers(self, tiny_model, sample_batch):
        grads = make_grads(tiny_model, sample_batch)
        bucket = build_buckets(tiny_model)[0]
        grad_bucket = GradBucket(bucket, [bucket.flatten(grads)])
        assert grad_bucket.buffer(0).ndim == 1
        assert grad_bucket.numel == bucket.numel
        assert not hasattr(grad_bucket, "param_names")

    def test_rejects_mismatched_buffers(self, tiny_model):
        bucket = build_buckets(tiny_model)[0]
        with pytest.raises(ValueError):
            GradBucket(bucket, [np.zeros(bucket.numel + 1)])


class TestHooks:
    def test_allreduce_hook_averages(self, rng):
        bucket = Bucket(index=0, slices=[BucketSlice("w", 0, 8, (8,))])
        buffers = [rng.standard_normal(8) for _ in range(4)]
        state = HookState(process_group=ProcessGroup(4))
        result = allreduce_hook(state, GradBucket(bucket, buffers))
        np.testing.assert_allclose(result, np.mean(buffers, axis=0), atol=1e-12)

    def test_fp16_hook_introduces_bounded_error(self, rng):
        bucket = Bucket(index=0, slices=[BucketSlice("w", 0, 64, (64,))])
        buffers = [rng.standard_normal(64) for _ in range(2)]
        state = HookState(process_group=ProcessGroup(2))
        result = fp16_compress_hook(state, GradBucket(bucket, buffers))
        exact = np.mean(buffers, axis=0)
        assert np.abs(result - exact).max() < 1e-2
        assert np.abs(result - exact).max() > 0.0

    def test_make_hook_dispatch(self):
        assert make_hook(None) is allreduce_hook
        assert callable(make_hook(NoCompression()))
        assert make_hook(allreduce_hook) is allreduce_hook
        with pytest.raises(TypeError):
            make_hook(42)


class TestDistributedDataParallel:
    def test_train_step_returns_accounting(self, tiny_model, sample_batch):
        network = NetworkModel.from_bandwidth(4, 100 * MBPS)
        ddp = DistributedDataParallel(
            tiny_model, world_size=4, process_group=ProcessGroup(4, network)
        )
        result = ddp.train_step([sample_batch] * 4, F.cross_entropy)
        assert result.comm_time > 0
        assert result.comm_bytes_per_worker > 0
        assert len(result.per_rank_loss) == 4
        assert result.loss == pytest.approx(np.mean(result.per_rank_loss))

    def test_gradients_are_averaged_across_ranks(self, sample_batch):
        model = mlp_tiny(seed=0)
        ddp = DistributedDataParallel(model, world_size=2)
        images, labels = sample_batch
        batch_a = (images[:4], labels[:4])
        batch_b = (images[4:], labels[4:])

        _, grads_a = ddp.compute_local_gradients(batch_a, F.cross_entropy)
        _, grads_b = ddp.compute_local_gradients(batch_b, F.cross_entropy)
        aggregated = ddp.synchronize_gradients([grads_a, grads_b])
        for name in grads_a:
            np.testing.assert_allclose(
                aggregated[name], (grads_a[name] + grads_b[name]) / 2, atol=1e-12
            )

    def test_ddp_matches_large_batch_single_worker(self, sample_batch):
        """Averaging per-rank gradients over equal shards equals the gradient of
        the combined batch — the core DDP correctness property."""
        images, labels = sample_batch
        model_ddp = mlp_tiny(seed=3)
        model_single = mlp_tiny(seed=3)

        ddp = DistributedDataParallel(model_ddp, world_size=2)
        shards = [(images[:4], labels[:4]), (images[4:], labels[4:])]
        ddp.train_step(shards, F.cross_entropy)
        SGD(model_ddp.parameters(), lr=0.1).step()

        single_grads = make_grads(model_single, (images, labels))
        for name, param in model_single.named_parameters():
            param.grad = single_grads[name]
        SGD(model_single.parameters(), lr=0.1).step()

        for (_, a), (_, b) in zip(model_ddp.named_parameters(), model_single.named_parameters()):
            np.testing.assert_allclose(a.data, b.data, atol=1e-10)

    def test_register_comm_hook_changes_behaviour(self, tiny_model, sample_batch):
        network = NetworkModel.from_bandwidth(2, 100 * MBPS, latency=0.0)
        ddp = DistributedDataParallel(
            tiny_model, world_size=2, process_group=ProcessGroup(2, network)
        )
        fp32 = ddp.train_step([sample_batch] * 2, F.cross_entropy)
        ddp.register_comm_hook(FP16Compressor())
        fp16 = ddp.train_step([sample_batch] * 2, F.cross_entropy)
        assert fp16.comm_time < fp32.comm_time

    def test_wrong_batch_count_raises(self, tiny_model, sample_batch):
        ddp = DistributedDataParallel(tiny_model, world_size=4)
        with pytest.raises(ValueError):
            ddp.train_step([sample_batch] * 3, F.cross_entropy)

    def test_world_size_mismatch_raises(self, tiny_model):
        with pytest.raises(ValueError):
            DistributedDataParallel(tiny_model, world_size=4, process_group=ProcessGroup(2))

    def test_gradient_nbytes(self, tiny_model):
        ddp = DistributedDataParallel(tiny_model, world_size=2)
        assert ddp.gradient_numel() == tiny_model.num_parameters()
        assert ddp.gradient_nbytes() == tiny_model.num_parameters() * 4

    def test_hook_iteration_counter_increments(self, tiny_model, sample_batch):
        ddp = DistributedDataParallel(tiny_model, world_size=2)
        assert ddp.hook_state.iteration == 0
        ddp.train_step([sample_batch] * 2, F.cross_entropy)
        assert ddp.hook_state.iteration == 1
