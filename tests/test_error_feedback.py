"""Driver-level error feedback and the signSGD / PowerSGD compressor families.

Covers the tentpole invariants end to end:

* the residual contract ``residual = input - decode(own payload)`` per
  (bucket, rank), and its aggregate form ``mean(residual) = mean(input) -
  aggregate`` for reduce-linear pipelines;
* residual state surviving DDP's preallocated gradient-arena staging and
  bucket reuse across iterations (the buffers are owned by the compressor,
  never views into the arena);
* EF-compressed training matching uncompressed SGD on a convex toy problem;
* the acceptance run: ``ef+topk0.01``, ``signsgd`` and ``powersgd-rank4``
  training ResNet-18 tiny-config in a 4-rank simulation, with every EF
  variant reaching at least its no-EF counterpart's final accuracy.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.comm import ProcessGroup
from repro.compression import (
    CodecCompressor,
    build_compressor,
    exact_average,
    register_compressor,
)
from repro.compression.codec import (
    LowRank,
    LowRankPayload,
    Pipeline,
    Sign,
    SignPayload,
    TopK,
    parse_compressor_spec,
)
from repro.ddp import DistributedDataParallel
from repro.ddp.bucket import Bucket, BucketSlice, GradBucket
from repro.nn.models import mlp_tiny
from repro.simulation import ClusterSpec, ExperimentConfig, run_experiment
from repro.simulation.experiment import MethodSpec
from repro.tensorlib import functional as F


def make_bucket(buffers, index=0):
    numel = buffers[0].size
    layout = Bucket(index=index, slices=[BucketSlice("w", 0, numel, (numel,))])
    return GradBucket(layout, buffers)


# --------------------------------------------------------------------------- #
# Spec grammar
# --------------------------------------------------------------------------- #
class TestEfSpecGrammar:
    def test_ef_prefix_builds_error_feedback_compressor(self):
        compressor = build_compressor("ef+topk0.01")
        assert isinstance(compressor, CodecCompressor)
        assert compressor.error_feedback
        assert compressor.name == "ef+topk0.01"
        # Stage-internal EF is off: the driver owns the one residual.
        assert not compressor.pipeline.stages[0].error_feedback

    def test_ef_requires_stages(self):
        with pytest.raises(KeyError, match="no stages"):
            parse_compressor_spec("ef")
        with pytest.raises(KeyError, match="unknown compressor"):
            build_compressor("ef")

    def test_ef_is_not_a_mid_pipeline_stage(self):
        with pytest.raises(KeyError, match="lead the spec"):
            parse_compressor_spec("topk0.01+ef")
        # Through the registry the same spec fails as an unknown compressor.
        with pytest.raises(KeyError, match="unknown compressor"):
            build_compressor("topk0.01+ef")

    def test_powersgd_rank_tokens(self):
        for spec, rank in (("powersgd", 4), ("powersgd-rank2", 2), ("powersgd8", 8)):
            compressor = build_compressor(spec)
            assert compressor.pipeline.stages[0].rank == rank
        assert build_compressor("powersgd-rank4").allreduce_compatible
        assert build_compressor("signsgd").allreduce_compatible

    def test_parse_compressor_spec_round_trip(self):
        pipeline, ef = parse_compressor_spec("ef+powersgd-rank4")
        assert ef and pipeline.spec() == "powersgd-rank4"
        pipeline, ef = parse_compressor_spec("signsgd")
        assert not ef and pipeline.spec() == "signsgd"

    def test_method_spec_error_feedback_field(self):
        method = MethodSpec(name="s", compressor="signsgd", error_feedback=True)
        compressor = method.build_compressor()
        assert compressor.error_feedback
        assert compressor.name.startswith("ef+")
        # Idempotent with a spec-level ef token.
        both = MethodSpec(name="s", compressor="ef+signsgd", error_feedback=True)
        assert both.build_compressor().name == "ef+signsgd"

    def test_method_spec_error_feedback_rejects_pactrain(self):
        # Both forced arms fail loudly — False must not be silently ignored
        # (the cell would be renamed "-noef" while running unchanged).
        for flag in (True, False):
            with pytest.raises(ValueError, match="not supported for PacTrain"):
                MethodSpec(
                    name="p", compressor="pactrain", error_feedback=flag
                ).build_compressor()
        assert MethodSpec(name="p", compressor="pactrain").build_compressor()

    def test_forcing_ef_off_restores_rescale_and_name(self):
        """An ef-built random-k forced off must be unbiased again, not left
        both uncompensated and shrunk by k/n under an 'ef+' name."""
        method = MethodSpec(name="rk", compressor="ef+randomk0.1", error_feedback=False)
        compressor = method.build_compressor()
        assert not compressor.error_feedback
        assert compressor.pipeline.stages[0].rescale is True
        assert not compressor.name.startswith("ef+")
        # Round trip: re-enabling disables the rescale again.
        compressor.enable_error_feedback()
        assert compressor.pipeline.stages[0].rescale is False
        assert compressor.name.startswith("ef+")

    def test_ef_rejects_self_compensating_dgc(self):
        """DGC's accumulation *is* error feedback; layering or stripping the
        driver residual around it would double-count or misreport."""
        with pytest.raises(ValueError, match="accumulates unsent gradient mass"):
            build_compressor("ef+dgc-0.01")
        for flag in (True, False):
            with pytest.raises(ValueError, match="accumulates unsent gradient mass"):
                MethodSpec(
                    name="d", compressor="dgc-0.01", error_feedback=flag
                ).build_compressor()
        # The tri-state default leaves DGC exactly as the paper runs it.
        assert MethodSpec(name="d", compressor="dgc-0.01").build_compressor()

    def test_ef_disables_unbiased_rescale_and_stays_bounded(self):
        """Against a rescaled decode (random-k's numel/k factor) the residual
        update is an expansion — EF must run on the raw selection instead."""
        compressor = build_compressor("ef+randomk0.25")
        assert compressor.pipeline.stages[0].rescale is False

        grads = [np.ones(200) for _ in range(4)]
        group = ProcessGroup(4)
        total = np.zeros(200)
        peak = 0.0
        steps = 60
        for it in range(steps):
            out = compressor.aggregate(
                make_bucket([g.copy() for g in grads]), group, iteration=it
            )
            total += out
            peak = max(peak, float(np.max(np.abs(out))))
        # No blow-up (the pre-fix expansion reached ~1e4 within 30 steps), and
        # mass is conserved exactly: everything not yet delivered is still
        # pending in the residual.
        assert peak < 100.0
        np.testing.assert_allclose(
            total + compressor.residual(0).mean(axis=0),
            float(steps),
            atol=1e-8,
        )


# --------------------------------------------------------------------------- #
# Residual invariants
# --------------------------------------------------------------------------- #
class TestResidualInvariant:
    def test_residual_is_input_minus_own_decode(self):
        """residual[rank] == input[rank] - decode(rank's own payload), exactly.

        A deterministic twin pipeline (same seed, same warm start) replays the
        encoding outside the compressor to recover each rank's own decode.
        """
        rng = np.random.default_rng(0)
        world, numel = 4, 400
        buffers = [rng.standard_normal(numel) for _ in range(world)]

        compressor = build_compressor("ef+powersgd-rank2", seed=3)
        compressor.aggregate(make_bucket(buffers), ProcessGroup(world))

        twin = Pipeline([LowRank(rank=2, seed=3)])
        payloads = twin.encode_all([b.copy() for b in buffers])
        residual = compressor.residual(0)
        assert residual is not None and residual.shape == (world, numel)
        for rank in range(world):
            decoded = twin.decode(payloads[rank])
            np.testing.assert_array_equal(residual[rank], buffers[rank] - decoded)

    def test_mean_residual_closes_the_aggregate(self):
        """mean(input) == aggregate + mean(residual) for reduce-linear pipelines."""
        rng = np.random.default_rng(1)
        world, numel = 3, 257
        for spec in ("ef+powersgd-rank4", "ef+topk0.05"):
            compressor = build_compressor(spec)
            buffers = [rng.standard_normal(numel) for _ in range(world)]
            aggregated = compressor.aggregate(make_bucket(buffers), ProcessGroup(world))
            residual = compressor.residual(0)
            np.testing.assert_allclose(
                exact_average(buffers),
                aggregated + residual.mean(axis=0),
                atol=1e-9,
                err_msg=spec,
            )

    def test_residual_accumulates_until_coordinate_is_sent(self):
        """A small persistent gradient must eventually be transmitted."""
        compressor = build_compressor("ef+topk0.05")
        rng = np.random.default_rng(2)
        base = np.zeros(100)
        base[7] = 0.05
        spiky = rng.standard_normal(100) * 2.0
        spiky[7] = 0.0
        sent = False
        for it in range(30):
            result = compressor.aggregate(
                make_bucket([base.copy(), spiky.copy()]), ProcessGroup(2), iteration=it
            )
            if result[7] != 0:
                sent = True
                break
        assert sent

    def test_reset_clears_residuals(self):
        compressor = build_compressor("ef+signsgd")
        rng = np.random.default_rng(3)
        compressor.aggregate(
            make_bucket([rng.standard_normal(64) for _ in range(2)]), ProcessGroup(2)
        )
        assert compressor.residual(0) is not None
        compressor.reset()
        assert compressor.residual(0) is None
        assert compressor.stats.iterations == 0


# --------------------------------------------------------------------------- #
# Residual state vs the DDP gradient arena
# --------------------------------------------------------------------------- #
class TestResidualSurvivesArena:
    def _step(self, ddp, rng):
        images = rng.standard_normal((4, 3, 8, 8))
        labels = rng.integers(0, 10, size=4)
        batches = [(images, labels) for _ in range(ddp.world_size)]
        return ddp.train_step(batches, F.cross_entropy)

    def test_residuals_never_alias_the_arena_and_persist_across_steps(self):
        model = mlp_tiny(num_classes=10, seed=0)
        compressor = build_compressor("ef+topk0.01")
        ddp = DistributedDataParallel(
            model, world_size=4, comm_hook=compressor, bucket_cap_bytes=8 * 1024
        )
        assert len(ddp.buckets) > 1, "multi-bucket layout needed for bucket reuse"
        rng = np.random.default_rng(0)

        self._step(ddp, rng)
        first = {
            b.index: compressor.residual(b.index).copy() for b in ddp.buckets
        }
        for bucket in ddp.buckets:
            residual = compressor.residual(bucket.index)
            assert residual is not None
            assert residual.shape == (4, bucket.numel)
            assert not ddp.arena.shares_memory_with(residual)
            assert np.any(residual != 0.0)

        # The next iteration overwrites every arena row; the residuals must be
        # untouched by the staging and evolve only through the EF update.
        self._step(ddp, rng)
        for bucket in ddp.buckets:
            after = compressor.residual(bucket.index)
            assert not ddp.arena.shares_memory_with(after)
            assert not np.array_equal(after, first[bucket.index])

    def test_ef_aggregate_result_does_not_alias_arena_or_residual(self):
        model = mlp_tiny(num_classes=10, seed=1)
        compressor = build_compressor("ef+signsgd")
        ddp = DistributedDataParallel(model, world_size=2, comm_hook=compressor)
        rng = np.random.default_rng(1)
        self._step(ddp, rng)
        for name, param in model.named_parameters():
            assert not ddp.arena.shares_memory_with(param.grad), name
            for bucket in ddp.buckets:
                assert not np.shares_memory(param.grad, compressor.residual(bucket.index))


# --------------------------------------------------------------------------- #
# Convex toy problem: EF recovers plain SGD
# --------------------------------------------------------------------------- #
class TestConvexToyProblem:
    @staticmethod
    def _problem(seed=0, world=4, dim=50, per_rank=32):
        rng = np.random.default_rng(seed)
        designs = [rng.standard_normal((per_rank, dim)) for _ in range(world)]
        x_true = rng.standard_normal(dim)
        targets = [a @ x_true + 0.01 * rng.standard_normal(per_rank) for a in designs]
        return designs, targets, dim, world, per_rank

    def _train(self, compressor, designs, targets, dim, world, per_rank,
               steps=300, lr=0.02):
        weights = np.zeros(dim)
        group = ProcessGroup(world)
        for it in range(steps):
            grads = [
                a.T @ (a @ weights - b) / per_rank for a, b in zip(designs, targets)
            ]
            if compressor is None:
                grad = exact_average(grads)
            else:
                grad = compressor.aggregate(make_bucket(grads), group, iteration=it)
            weights = weights - lr * grad
        return weights

    def test_ef_compressed_training_matches_uncompressed_sgd(self):
        problem = self._problem()
        w_sgd = self._train(None, *problem)
        scale = np.linalg.norm(w_sgd)
        for spec, tol in (("ef+topk0.1", 0.05), ("ef+powersgd-rank2", 0.05)):
            w = self._train(build_compressor(spec), *problem)
            assert np.linalg.norm(w - w_sgd) <= tol * scale, spec

    def test_ef_beats_no_ef_on_biased_compressors(self):
        problem = self._problem()
        w_sgd = self._train(None, *problem)
        for with_ef, without in (("ef+signsgd", "signsgd"),
                                 ("ef+powersgd-rank2", "powersgd-rank2")):
            w_ef = self._train(build_compressor(with_ef), *problem)
            w_raw = self._train(build_compressor(without), *problem)
            assert (
                np.linalg.norm(w_ef - w_sgd) < np.linalg.norm(w_raw - w_sgd)
            ), (with_ef, without)


# --------------------------------------------------------------------------- #
# Acceptance: ResNet-18 tiny-config, 4 ranks, end to end
# --------------------------------------------------------------------------- #
class TestEndToEndResnet18:
    CONFIG = ExperimentConfig(
        model="resnet18",
        cluster=ClusterSpec(world_size=4, bandwidth="100Mbps"),
        epochs=8,
        batch_size=8,
        dataset_samples=128,
        pretrain_iterations=3,
        noise_std=0.3,
        lr=0.05,
        momentum=0.0,
        seed=0,
    )

    @classmethod
    def _run(cls, name):
        return run_experiment(cls.CONFIG, MethodSpec(name=name, compressor=name))

    def test_new_families_train_end_to_end_and_ef_matches_or_beats_no_ef(self):
        register_compressor(
            "topk0.01-noef",
            lambda seed=None: CodecCompressor(
                Pipeline([TopK(0.01, error_feedback=False)]), name="topk0.01-noef"
            ),
        )
        results = {
            name: self._run(name)
            for name in (
                "allreduce",
                "topk0.01-noef",
                "ef+topk0.01",
                "signsgd",
                "ef+signsgd",
                "powersgd-rank4",
                "ef+powersgd-rank4",
            )
        }
        for name, result in results.items():
            assert result.iterations_run > 0, name
            assert result.comm_bytes_per_worker > 0, name
            assert 0.0 <= result.final_accuracy <= 1.0, name

        # Every EF variant reaches at least its no-EF counterpart's accuracy.
        for ef_name, raw_name in (
            ("ef+topk0.01", "topk0.01-noef"),
            ("ef+signsgd", "signsgd"),
            ("ef+powersgd-rank4", "powersgd-rank4"),
        ):
            assert (
                results[ef_name].final_accuracy >= results[raw_name].final_accuracy
            ), (ef_name, results[ef_name].final_accuracy, raw_name,
                results[raw_name].final_accuracy)

        # Wire accounting: signSGD moves ~1/32 of the dense volume (1 bit per
        # coordinate + one scale per bucket sync), PowerSGD (m+n)r/(mn).
        dense = results["allreduce"].comm_bytes_per_worker
        assert results["signsgd"].comm_bytes_per_worker < dense / 25
        assert results["powersgd-rank4"].comm_bytes_per_worker < dense / 25

    def test_sign_payload_wire_cost_is_one_bit_per_coordinate_plus_scale(self):
        for numel in (1, 7, 8, 9, 1000, 4097):
            payload = SignPayload.from_values(np.ones(numel))
            assert payload.nbytes == math.ceil(numel / 8) + 4.0

    def test_lowrank_payload_wire_cost_is_m_plus_n_times_rank(self):
        numel = 1000
        m, n = LowRank.matrix_shape(numel)
        payload = Pipeline([LowRank(rank=4)]).encode(np.ones(numel))
        assert isinstance(payload, LowRankPayload)
        assert payload.nbytes == (m + n) * 4 * 4.0

    def test_collectives_charge_sign_and_lowrank_payloads(self):
        rng = np.random.default_rng(0)
        world, numel = 4, 1000
        for spec, expected in (
            ("signsgd", math.ceil(numel / 8) + 4.0),
            ("powersgd-rank4", sum(LowRank.matrix_shape(numel)) * 4 * 4.0),
        ):
            group = ProcessGroup(world)
            compressor = build_compressor(spec)
            compressor.aggregate(
                make_bucket([rng.standard_normal(numel) for _ in range(world)]), group
            )
            event = group.events[-1]
            assert event.op == "all_reduce"
            assert event.bytes_per_worker == pytest.approx(
                2.0 * (world - 1) / world * expected
            )


class TestLowRankWarmStartRecovery:
    def test_zero_gradient_step_does_not_kill_the_bucket_forever(self):
        """A single all-zero bucket gradient (dead layer, frozen params) must
        not collapse the warm-started factor to zero permanently."""
        rng = np.random.default_rng(0)
        pipeline = Pipeline([LowRank(rank=2)])
        flat = rng.standard_normal(256)

        before = pipeline.decode(pipeline.encode(flat))
        assert np.any(before != 0.0)
        # One dead step: transmits zero (correct — the gradient was zero) ...
        dead = pipeline.decode(pipeline.encode(np.zeros(256)))
        np.testing.assert_array_equal(dead, 0.0)
        # ... and the next nonzero gradient still encodes to a real payload.
        after = pipeline.decode(pipeline.encode(flat))
        assert np.any(after != 0.0)
        assert np.sum((after - flat) ** 2) / np.sum(flat ** 2) < 1.0

    def test_rank_deficient_step_does_not_cap_effective_rank_forever(self):
        rng = np.random.default_rng(1)
        pipeline = Pipeline([LowRank(rank=4)])
        m, n = LowRank.matrix_shape(1024)
        # Exactly rank-1 step zeroes three p_hat/q columns this iteration.
        rank1 = (rng.standard_normal((m, 1)) @ rng.standard_normal((1, n))).reshape(-1)
        pipeline.decode(pipeline.encode(rank1))
        # A full-rank gradient afterwards must again use all four directions:
        # with a permanently capped rank the projection error would be the
        # rank-1 one; re-seeded columns bring it back in line with a fresh
        # rank-4 compressor (warm start can only help).
        full = rng.standard_normal(1024)
        fresh = Pipeline([LowRank(rank=4)])
        err_warm = np.sum((pipeline.decode(pipeline.encode(full)) - full) ** 2)
        err_capped = np.sum((Pipeline([LowRank(rank=1)]).decode(
            Pipeline([LowRank(rank=1)]).encode(full)) - full) ** 2)
        err_fresh = np.sum((fresh.decode(fresh.encode(full)) - full) ** 2)
        assert err_warm < err_capped
        assert err_warm <= err_fresh * 1.10


class TestSignMajorityVote:
    def test_majority_vote_is_sign_of_summed_codes(self):
        # Two +1 votes against one -1 vote on coordinate 0; reversed on 1.
        buffers = [
            np.array([1.0, -2.0]),
            np.array([3.0, -4.0]),
            np.array([-5.0, 6.0]),
        ]
        compressor = build_compressor("signsgd")
        result = compressor.aggregate(make_bucket(buffers), ProcessGroup(3))
        scales = [np.mean(np.abs(b)) for b in buffers]
        expected = np.mean(scales) * np.array([1.0, -1.0])
        np.testing.assert_allclose(result, expected, rtol=1e-12)

    def test_exact_tie_decodes_to_zero(self):
        buffers = [np.array([1.0]), np.array([-1.0])]
        result = build_compressor("signsgd").aggregate(
            make_bucket(buffers), ProcessGroup(2)
        )
        np.testing.assert_array_equal(result, [0.0])

    def test_sign_stage_rejects_non_dense_upstream(self):
        pipeline = Pipeline([TopK(0.5, error_feedback=False), Sign()])
        with pytest.raises(TypeError, match="Sign"):
            pipeline.encode(np.arange(8.0))
