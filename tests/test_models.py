"""Model zoo: construction, forward shapes, determinism, registry, trainability."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import SGD
from repro.nn.models import (
    MODEL_REGISTRY,
    build_model,
    mlp_tiny,
    register_model,
    resnet18_mini,
    resnet152_mini,
    vgg11_mini,
    vgg19_mini,
    vit_base_16_mini,
)
from repro.nn.models.resnet import BasicBlock, Bottleneck, ResNet
from repro.nn.models.vgg import VGG, VGG_CONFIGS
from repro.nn.models.vit import VisionTransformer
from repro.tensorlib import Tensor, functional as F

MINI_FACTORIES = {
    "mlp": mlp_tiny,
    "vgg19": vgg19_mini,
    "resnet18": resnet18_mini,
    "resnet152": resnet152_mini,
    "vit": vit_base_16_mini,
}


@pytest.fixture
def batch(rng):
    return Tensor(rng.standard_normal((4, 3, 8, 8))), rng.integers(0, 10, 4)


class TestForwardShapes:
    @pytest.mark.parametrize("name", sorted(MINI_FACTORIES))
    def test_logits_shape(self, name, batch):
        model = MINI_FACTORIES[name](num_classes=10, seed=0)
        x, _ = batch
        assert model(x).shape == (4, 10)

    @pytest.mark.parametrize("name", sorted(MINI_FACTORIES))
    def test_backward_populates_all_gradients(self, name, batch):
        model = MINI_FACTORIES[name](num_classes=10, seed=0)
        x, y = batch
        loss = F.cross_entropy(model(x), y)
        loss.backward()
        assert all(p.grad is not None for p in model.parameters())

    @pytest.mark.parametrize("name", sorted(MINI_FACTORIES))
    def test_sgd_steps_reduce_loss_on_same_batch(self, name, batch):
        model = MINI_FACTORIES[name](num_classes=10, seed=0)
        x, y = batch
        optimizer = SGD(model.parameters(), lr=0.01)
        loss_before = F.cross_entropy(model(x), y).item()
        for _ in range(5):
            model.zero_grad()
            loss = F.cross_entropy(model(x), y)
            loss.backward()
            optimizer.step()
        loss_after = F.cross_entropy(model(x), y).item()
        assert loss_after < loss_before


class TestDeterminism:
    @pytest.mark.parametrize("name", sorted(MINI_FACTORIES))
    def test_same_seed_same_weights(self, name):
        a = MINI_FACTORIES[name](num_classes=10, seed=5)
        b = MINI_FACTORIES[name](num_classes=10, seed=5)
        for (na, pa), (nb, pb) in zip(a.named_parameters(), b.named_parameters()):
            assert na == nb
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_different_seed_different_weights(self):
        a = mlp_tiny(seed=1)
        b = mlp_tiny(seed=2)
        assert not np.allclose(a.head.weight.data, b.head.weight.data)


class TestVGG:
    def test_vgg19_has_16_conv_layers(self):
        plan = VGG_CONFIGS["vgg19"]
        assert sum(1 for entry in plan if entry != "M") == 16

    def test_unknown_config_raises(self):
        with pytest.raises(ValueError):
            VGG("vgg23")

    def test_width_scale_reduces_parameters(self):
        wide = VGG("vgg11", width_scale=0.25, max_pools=3, seed=0)
        narrow = VGG("vgg11", width_scale=0.125, max_pools=3, seed=0)
        assert narrow.num_parameters() < wide.num_parameters()

    def test_vgg11_mini_forward(self, rng):
        model = vgg11_mini(seed=0)
        out = model(Tensor(rng.standard_normal((2, 3, 8, 8))))
        assert out.shape == (2, 10)


class TestResNet:
    def test_resnet18_mini_block_plan(self):
        model = resnet18_mini(seed=0)
        assert model.layer_plan == [2, 2, 2, 2]

    def test_bottleneck_expansion(self):
        assert Bottleneck.expansion == 4
        assert BasicBlock.expansion == 1

    def test_resnet152_mini_uses_bottleneck(self):
        model = resnet152_mini(seed=0)
        assert isinstance(model.layer1[0], Bottleneck)

    def test_resnet152_mini_has_more_param_tensors_than_resnet18_mini(self):
        """The paper attributes ResNet-152's behaviour to its many evenly sized
        gradient tensors; the mini variants must preserve that relationship."""
        deep = resnet152_mini(seed=0)
        shallow = resnet18_mini(seed=0)
        assert len(deep.parameters()) > len(shallow.parameters())

    def test_custom_stage_plan(self, rng):
        model = ResNet(BasicBlock, [1, 1, 1, 1], num_classes=5, width_scale=0.0625, seed=0)
        out = model(Tensor(rng.standard_normal((2, 3, 8, 8))))
        assert out.shape == (2, 5)


class TestViT:
    def test_patchify_shape(self, rng):
        model = vit_base_16_mini(seed=0)
        x = Tensor(rng.standard_normal((2, 3, 8, 8)))
        patches = model._patchify(x)
        assert patches.shape == (2, 16, 3 * 2 * 2)

    def test_rejects_indivisible_patch_size(self):
        with pytest.raises(ValueError):
            VisionTransformer(image_size=10, patch_size=3)

    def test_has_cls_token_and_pos_embed(self):
        model = vit_base_16_mini(seed=0)
        names = [name for name, _ in model.named_parameters()]
        assert "cls_token" in names
        assert "pos_embed" in names

    def test_depth_controls_block_count(self):
        model = VisionTransformer(image_size=8, patch_size=2, embed_dim=16, depth=3, num_heads=2, seed=0)
        assert len(model.blocks) == 3


class TestRegistry:
    def test_paper_workloads_registered(self):
        for name in ("vgg19", "resnet18", "resnet152", "vit-base-16"):
            assert name in MODEL_REGISTRY

    def test_build_model_mini(self):
        model = build_model("resnet18", num_classes=7, seed=0)
        assert model.num_classes == 7

    def test_build_model_unknown(self):
        with pytest.raises(KeyError):
            build_model("alexnet")

    def test_register_model(self):
        register_model("test-model", lambda num_classes=10, seed=None: mlp_tiny(num_classes, seed=seed))
        try:
            model = build_model("test-model", num_classes=3, seed=0)
            assert model.num_classes == 3
        finally:
            MODEL_REGISTRY.pop("test-model", None)
