"""Tests for the repro.campaign subsystem (spec, store, runner, CLI).

Covers the subsystem's load-bearing guarantees:

* serialization round trips are exact (the store's cache keys hash the
  serialized form, so any drift silently kills caching);
* grid/zip/cell expansion is deterministic, deduplicated and validating;
* the store is content-addressed — hits only for byte-identical cell specs
  under the same code version — and survives reopening;
* parallel and serial execution produce bit-identical stored results, and a
  second run is 100 % cache hits;
* the CLI drives spec file -> store -> report end-to-end.
"""

from __future__ import annotations

import json
import math
import sys

import pytest
from hypothesis import given, settings, strategies as st

import repro.campaign.store as store_module
from repro.campaign import (
    CampaignCell,
    CampaignSpec,
    ResultStore,
    build_cell,
    cell_fingerprint,
    resolve_method,
    run_campaign,
)
from repro.campaign.cli import main as cli_main
from repro.campaign.spec import load_spec_file
from repro.simulation import ClusterSpec, ExperimentConfig, ExperimentResult, MethodSpec
from repro.simulation.compute import DeviceSpec
from repro.simulation.experiment import PAPER_METHODS, run_method_comparison


def tiny_config(**overrides) -> ExperimentConfig:
    """A seconds-scale training configuration for runner tests."""
    cluster_kwargs = {
        "world_size": overrides.pop("world_size", 2),
        "bandwidth": overrides.pop("bandwidth", "100Mbps"),
    }
    defaults = dict(
        model="mlp",
        dataset="cifar10",
        cluster=ClusterSpec(**cluster_kwargs),
        epochs=1,
        batch_size=8,
        dataset_samples=32,
        max_iterations_per_epoch=1,
        pretrain_iterations=0,
        seed=0,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


# --------------------------------------------------------------------------- #
# Serialization round trips
# --------------------------------------------------------------------------- #
finite_floats = st.floats(allow_nan=False, allow_infinity=False, width=64)
probabilities = st.floats(min_value=0.0, max_value=1.0, exclude_min=True, exclude_max=True)


class TestSerializationRoundTrips:
    @given(
        name=st.text(min_size=1, max_size=20),
        compressor=st.sampled_from(["allreduce", "fp16", "topk-0.1", "randomk", "topk0.01+terngrad"]),
        pruning_ratio=st.floats(min_value=0.0, max_value=0.99),
        gse=st.booleans(),
        quantize=st.booleans(),
        stability_threshold=st.integers(min_value=1, max_value=16),
    )
    def test_method_spec_roundtrip(self, name, compressor, pruning_ratio, gse, quantize,
                                   stability_threshold):
        spec = MethodSpec(
            name=name, compressor=compressor, pruning_ratio=pruning_ratio,
            gse=gse, quantize=quantize, stability_threshold=stability_threshold,
        )
        restored = MethodSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert restored == spec

    @given(
        world_size=st.integers(min_value=1, max_value=4),
        bandwidth=st.one_of(
            st.sampled_from(["100Mbps", "500Mbps", "1Gbps"]),
            st.floats(min_value=1e3, max_value=1e12),
        ),
        latency=st.floats(min_value=0.0, max_value=1.0),
        straggler=st.floats(min_value=0.1, max_value=10.0),
        overlap=st.booleans(),
        hierarchical=st.booleans(),
        device_spec=st.booleans(),
    )
    def test_cluster_spec_roundtrip(self, world_size, bandwidth, latency, straggler,
                                    overlap, hierarchical, device_spec):
        device = DeviceSpec("custom", 1.5e9) if device_spec else "sim-gpu"
        spec = ClusterSpec(
            world_size=world_size, bandwidth=bandwidth, device=device, latency=latency,
            straggler=straggler, overlap=overlap, hierarchical=hierarchical,
        )
        restored = ClusterSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert restored == spec

    def test_cluster_spec_roundtrip_with_per_worker_lists(self):
        spec = ClusterSpec(
            world_size=3,
            devices=["sim-gpu", DeviceSpec("edge", 5e8), "a40"],
            straggler_factors=[1.0, 2.5, 1.0],
        )
        restored = ClusterSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert restored == spec

    @given(
        model=st.sampled_from(["mlp", "resnet18", "vit-base-16"]),
        epochs=st.integers(min_value=1, max_value=20),
        lr=st.floats(min_value=1e-5, max_value=1.0),
        target_accuracy=st.one_of(st.none(), st.floats(min_value=0.1, max_value=1.0)),
        test_fraction=probabilities,
        dataset_samples=st.integers(min_value=2, max_value=4096),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_experiment_config_roundtrip(self, model, epochs, lr, target_accuracy,
                                         test_fraction, dataset_samples, seed):
        config = ExperimentConfig(
            model=model, epochs=epochs, lr=lr, target_accuracy=target_accuracy,
            test_fraction=test_fraction, dataset_samples=dataset_samples, seed=seed,
        )
        restored = ExperimentConfig.from_dict(json.loads(json.dumps(config.to_dict())))
        assert restored == config
        # Identical serialized form => identical fingerprint (cache hit).
        method = PAPER_METHODS["all-reduce"]
        assert cell_fingerprint(config, method) == cell_fingerprint(restored, method)

    @given(
        simulated_time=finite_floats,
        final_accuracy=st.floats(min_value=0.0, max_value=1.0),
        tta=st.one_of(st.none(), st.floats(min_value=0.0, max_value=1e6)),
        reached=st.booleans(),
        trace=st.lists(st.tuples(finite_floats, finite_floats), max_size=5),
    )
    def test_experiment_result_roundtrip(self, simulated_time, final_accuracy, tta,
                                         reached, trace):
        result = ExperimentResult(
            method="m", model="mlp", dataset="cifar10", bandwidth_mbps=100.0,
            world_size=2, epochs_run=1, iterations_run=1,
            simulated_time=simulated_time, compute_time=0.0, comm_time=0.0,
            comm_bytes_per_worker=0.0, final_accuracy=final_accuracy,
            best_accuracy=final_accuracy, tta=tta, target_accuracy=None,
            accuracy_trace=list(trace), loss_trace=[0.5], compression_ratio=1.0,
            weight_sparsity=0.0, gradient_density=1.0, reached_target=reached,
            extra={"k": 1.25},
        )
        restored = ExperimentResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert restored == result
        assert all(isinstance(point, tuple) for point in restored.accuracy_trace)

    def test_experiment_result_roundtrip_nan_and_inf(self):
        """NaN losses (empty epochs) and inf ratios survive the JSONL encoding."""
        result = ExperimentResult(
            method="m", model="mlp", dataset="cifar10", bandwidth_mbps=100.0,
            world_size=2, epochs_run=1, iterations_run=0,
            simulated_time=0.0, compute_time=0.0, comm_time=0.0,
            comm_bytes_per_worker=0.0, final_accuracy=0.0, best_accuracy=0.0,
            tta=None, target_accuracy=None, accuracy_trace=[],
            loss_trace=[float("nan")], compression_ratio=float("inf"),
            weight_sparsity=0.0, gradient_density=1.0,
        )
        restored = ExperimentResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert math.isnan(restored.loss_trace[0])
        assert math.isinf(restored.compression_ratio)

    def test_unknown_keys_rejected(self):
        with pytest.raises(KeyError):
            MethodSpec.from_dict({"name": "x", "compresor": "typo"})
        with pytest.raises(KeyError):
            ClusterSpec.from_dict({"wolrd_size": 2})
        with pytest.raises(KeyError):
            ExperimentConfig.from_dict({"model": "mlp", "epoch": 1})
        with pytest.raises(KeyError):
            ExperimentResult.from_dict({"method": "m", "bogus": 1})

    def test_config_range_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(test_fraction=0.0)
        with pytest.raises(ValueError):
            ExperimentConfig(test_fraction=1.0)
        with pytest.raises(ValueError):
            ExperimentConfig(dataset_samples=1)
        with pytest.raises(TypeError):
            ExperimentConfig(target_accuracy="per-model")


# --------------------------------------------------------------------------- #
# Spec expansion
# --------------------------------------------------------------------------- #
class TestCampaignSpec:
    def test_grid_expansion_is_a_product_in_declaration_order(self):
        spec = CampaignSpec(
            base={"model": "mlp", "epochs": 1},
            axes={"bandwidth": ["100Mbps", "1Gbps"], "method": ["all-reduce", "fp16"]},
        )
        cells = spec.expand()
        assert len(cells) == 4
        assert [(c.config.cluster.bandwidth, c.method.name) for c in cells] == [
            ("100Mbps", "all-reduce"), ("100Mbps", "fp16"),
            ("1Gbps", "all-reduce"), ("1Gbps", "fp16"),
        ]

    def test_zipped_axes_advance_together_and_cross_the_grid(self):
        spec = CampaignSpec(
            axes={"method": ["all-reduce", "fp16"]},
            zipped={"model": ["mlp", "resnet18"], "target_accuracy": [0.8, 0.6]},
        )
        cells = spec.expand()
        assert len(cells) == 4
        targets = {(c.config.model, c.config.target_accuracy) for c in cells}
        assert targets == {("mlp", 0.8), ("resnet18", 0.6)}

    def test_zipped_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="equal lengths"):
            CampaignSpec(zipped={"model": ["mlp"], "target_accuracy": [0.8, 0.6]})

    def test_axis_in_both_grid_and_zip_raises(self):
        with pytest.raises(ValueError, match="both"):
            CampaignSpec(axes={"model": ["mlp"]}, zipped={"model": ["mlp"]})

    def test_explicit_cells_append_and_duplicates_dedupe(self):
        spec = CampaignSpec(
            base={"model": "mlp"},
            axes={"method": ["all-reduce"]},
            cells=[
                {"method": "fp16"},
                {"method": "all-reduce"},  # duplicate of the grid cell
            ],
        )
        cells = spec.expand()
        assert [c.method.name for c in cells] == ["all-reduce", "fp16"]

    def test_unknown_axis_raises(self):
        with pytest.raises(KeyError, match="unknown campaign axis"):
            CampaignSpec(axes={"modle": ["mlp"]}).expand()

    def test_error_feedback_is_a_method_field_axis(self):
        spec = CampaignSpec(
            axes={
                "method": ["signsgd", "powersgd-rank4"],
                "error_feedback": [False, True],
            }
        )
        cells = spec.expand()
        # Both arms are labelled: forced-off gets -noef (it strips even
        # spec-default compensation), forced-on gets the ef+ prefix.
        assert [c.method.name for c in cells] == [
            "signsgd-noef", "ef+signsgd", "powersgd-rank4-noef", "ef+powersgd-rank4",
        ]
        assert [c.method.error_feedback for c in cells] == [False, True, False, True]
        # EF and non-EF cells are distinct cache entries.
        assert len({c.fingerprint() for c in cells}) == 4

    def test_method_field_axis_overrides_resolved_method(self):
        cell = build_cell({"method": "pactrain", "pruning_ratio": 0.7})
        assert cell.method.pruning_ratio == 0.7
        assert cell.method.compressor == "pactrain"
        # Name is preserved for non-EF field overrides.
        assert cell.method.name == "pactrain"

    def test_compressor_axis_renames_non_curated_methods(self):
        # Cells must report what actually ran: a compressor override renames
        # string-resolved methods (including the default all-reduce) ...
        cell = build_cell({"compressor": "signsgd"})
        assert cell.method.compressor == "signsgd"
        assert cell.method.name == "signsgd"
        swapped = build_cell({"method": "topk-0.1", "compressor": "topk-0.01"})
        assert swapped.method.name == "topk-0.01"
        # ... while explicitly curated methods keep their given name.
        table = {"mine": MethodSpec(name="mine", compressor="fp16")}
        curated = build_cell(
            {"method": "mine", "compressor": "allreduce"}, methods=table
        )
        assert curated.method.name == "mine"
        assert curated.method.compressor == "allreduce"

    def test_ef_axis_does_not_double_prefix_ef_specs(self):
        cell = build_cell({"method": "ef+signsgd", "error_feedback": True})
        assert cell.method.name == "ef+signsgd"

    def test_cluster_axes_route_to_cluster_spec(self):
        cell = build_cell({"world_size": 4, "overlap": True, "straggler": 2.0,
                           "hierarchical": True, "model": "mlp"})
        assert cell.config.cluster.world_size == 4
        assert cell.config.cluster.overlap is True
        assert cell.config.cluster.straggler == 2.0
        assert cell.config.cluster.hierarchical is True

    def test_method_resolution_order(self):
        table = {"mine": MethodSpec(name="mine", compressor="fp16")}
        assert resolve_method("mine", table) is table["mine"]
        assert resolve_method("pactrain", table) is PAPER_METHODS["pactrain"]
        codec = resolve_method("topk0.01+terngrad")
        assert codec.compressor == "topk0.01+terngrad"
        from_dict = resolve_method({"name": "d", "compressor": "fp16"})
        assert from_dict == MethodSpec(name="d", compressor="fp16")

    def test_spec_dict_roundtrip(self):
        spec = CampaignSpec(
            name="rt",
            base={"model": "mlp"},
            axes={"method": ["all-reduce", "fp16"]},
            zipped={"seed": [0, 1], "epochs": [1, 2]},
            cells=[{"method": "custom"}],
            methods={"custom": MethodSpec(name="custom", compressor="fp16")},
        )
        restored = CampaignSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert restored == spec
        assert [c.fingerprint() for c in restored.expand()] == [
            c.fingerprint() for c in spec.expand()
        ]

    def test_from_json_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({
            "name": "filed",
            "base": {"model": "mlp"},
            "axes": {"method": ["all-reduce", "fp16"]},
            "store": "somewhere.jsonl",
        }))
        spec = CampaignSpec.from_file(path)
        assert spec.name == "filed"
        assert len(spec.expand()) == 2
        _, store_path = load_spec_file(path)
        assert store_path == "somewhere.jsonl"

    @pytest.mark.skipif(sys.version_info < (3, 11), reason="tomllib needs Python 3.11+")
    def test_from_toml_file(self, tmp_path):
        path = tmp_path / "spec.toml"
        path.write_text(
            'name = "tomled"\n'
            '[base]\nmodel = "mlp"\n'
            '[axes]\nmethod = ["all-reduce", "fp16"]\n'
        )
        spec = CampaignSpec.from_file(path)
        assert spec.name == "tomled"
        assert len(spec.expand()) == 2


# --------------------------------------------------------------------------- #
# Result store
# --------------------------------------------------------------------------- #
def fake_result(method="all-reduce", model="mlp", bandwidth_mbps=100.0, tta=1.0,
                simulated_time=2.0, reached=True) -> ExperimentResult:
    return ExperimentResult(
        method=method, model=model, dataset="cifar10", bandwidth_mbps=bandwidth_mbps,
        world_size=2, epochs_run=1, iterations_run=1, simulated_time=simulated_time,
        compute_time=1.0, comm_time=1.0, comm_bytes_per_worker=1e6,
        final_accuracy=0.5, best_accuracy=0.5, tta=tta, target_accuracy=0.5,
        accuracy_trace=[(simulated_time, 0.5)], loss_trace=[0.7], compression_ratio=1.0,
        weight_sparsity=0.0, gradient_density=1.0, reached_target=reached,
    )


class TestResultStore:
    def test_put_get_and_reopen(self, tmp_path):
        path = tmp_path / "store.jsonl"
        config, method = tiny_config(), PAPER_METHODS["all-reduce"]
        store = ResultStore(path)
        assert store.get(config, method) is None
        key = store.put(config, method, fake_result())
        assert key in store
        assert store.get(config, method) == fake_result()
        # A fresh handle reloads the persisted record.
        assert ResultStore(path).get(config, method) == fake_result()

    def test_in_memory_store_without_path(self):
        store = ResultStore()
        store.put(tiny_config(), PAPER_METHODS["fp16"], fake_result(method="fp16"))
        assert len(store) == 1

    def test_any_config_or_method_change_misses(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        config, method = tiny_config(), PAPER_METHODS["all-reduce"]
        store.put(config, method, fake_result())
        assert store.get(tiny_config(seed=1), method) is None
        assert store.get(tiny_config(bandwidth="1Gbps"), method) is None
        assert store.get(config, PAPER_METHODS["fp16"]) is None
        assert store.get(config, method) is not None

    def test_schema_version_bump_invalidates(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path / "store.jsonl")
        config, method = tiny_config(), PAPER_METHODS["all-reduce"]
        store.put(config, method, fake_result())
        monkeypatch.setattr(store_module, "RESULT_SCHEMA_VERSION", 999)
        assert store.get(config, method) is None

    def test_pr3_era_schema1_records_are_invalidated_not_reused(self, tmp_path, monkeypatch):
        """Records persisted under schema 1 (before MethodSpec.error_feedback)
        must be cache misses under the bumped schema, not silently served."""
        path = tmp_path / "store.jsonl"
        config, method = tiny_config(), PAPER_METHODS["all-reduce"]
        monkeypatch.setattr(store_module, "RESULT_SCHEMA_VERSION", 1)
        ResultStore(path).put(config, method, fake_result())
        monkeypatch.undo()
        assert store_module.RESULT_SCHEMA_VERSION >= 2
        reopened = ResultStore(path)
        assert len(reopened) == 1  # still on disk (append-only history) ...
        assert reopened.get(config, method) is None  # ... but never hit
        # Re-running the cell persists a fresh, reachable record.
        reopened.put(config, method, fake_result())
        assert reopened.get(config, method) == fake_result()

    def test_error_feedback_field_changes_the_fingerprint(self):
        config = tiny_config()
        base = MethodSpec(name="s", compressor="signsgd")
        with_ef = MethodSpec(name="s", compressor="signsgd", error_feedback=True)
        assert cell_fingerprint(config, base) != cell_fingerprint(config, with_ef)

    def test_latest_record_wins(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        config, method = tiny_config(), PAPER_METHODS["all-reduce"]
        store.put(config, method, fake_result(tta=1.0))
        store.put(config, method, fake_result(tta=9.0))
        assert store.get(config, method).tta == 9.0
        assert ResultStore(path).get(config, method).tta == 9.0
        # Both appends remain in the history file.
        assert len((path).read_text().strip().splitlines()) == 2

    def test_corrupt_store_warns_and_quarantines(self, tmp_path):
        path = tmp_path / "store.jsonl"
        path.write_text("not json\n")
        with pytest.warns(RuntimeWarning, match="line 1"):
            store = ResultStore(path)
        assert len(store) == 0
        # The bad line is preserved for forensics next to the store.
        assert (tmp_path / "store.jsonl.corrupt").read_text() == "not json\n"

    def test_filters_pivot_and_relative_baseline(self):
        store = ResultStore()
        grid = [("all-reduce", 4.0), ("fp16", 2.0), ("pactrain", 1.0)]
        for bandwidth in (100.0, 1000.0):
            for method, tta in grid:
                config = tiny_config(seed=int(bandwidth))
                spec = MethodSpec(name=method, compressor="allreduce")
                store.put(config, spec, fake_result(
                    method=method, bandwidth_mbps=bandwidth, tta=tta * (100.0 / bandwidth),
                    simulated_time=tta,
                ))
        assert len(store.records(method="fp16")) == 2
        assert len(store.records(method="fp16", bandwidth_mbps=100.0)) == 1
        assert store.axis_values("method") == ["all-reduce", "fp16", "pactrain"]

        header, rows = store.pivot("model", "method", value="simulated_time")
        assert header == ["model", "all-reduce", "fp16", "pactrain"]
        assert rows == [["mlp", "4.000", "2.000", "1.000"]]

        relative = store.relative_to_baseline("all-reduce", value="tta_or_total")
        assert relative[("mlp", 100.0)]["pactrain"] == pytest.approx(0.25)
        assert relative[("mlp", 1000.0)]["fp16"] == pytest.approx(0.5)

    def test_relative_baseline_means_over_seeds(self):
        store = ResultStore()
        for seed, (base_tta, fast_tta) in enumerate([(4.0, 2.0), (8.0, 2.0)]):
            config = tiny_config(seed=seed)
            store.put(config, PAPER_METHODS["all-reduce"],
                      fake_result(method="all-reduce", tta=base_tta))
            store.put(config, PAPER_METHODS["fp16"],
                      fake_result(method="fp16", tta=fast_tta))
        relative = store.relative_to_baseline("all-reduce", value="tta_or_total")
        # mean(2, 2) / mean(4, 8) — not the last seed's 2/8.
        assert relative[("mlp", 100.0)]["fp16"] == pytest.approx(2.0 / 6.0)

    def test_torn_final_line_is_dropped_and_healed(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        config, method = tiny_config(), PAPER_METHODS["all-reduce"]
        store.put(config, method, fake_result())
        # Simulate a killed writer: a partial record with no trailing newline.
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"key": "abc", "config"')

        reopened = ResultStore(path)
        assert reopened.get(config, method) == fake_result()
        # The next append starts on a fresh line; the store stays loadable.
        reopened.put(tiny_config(seed=1), method, fake_result(tta=2.0))
        final = ResultStore(path)
        assert final.get(config, method) == fake_result()
        assert final.get(tiny_config(seed=1), method).tta == 2.0

    def test_corrupt_interior_line_is_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        config, method = tiny_config(), PAPER_METHODS["all-reduce"]
        store.put(config, method, fake_result())
        # Sabotage the middle of the history, then append another good record.
        lines = path.read_text().splitlines()
        path.write_text(lines[0] + "\ngarbage\n")
        with pytest.warns(RuntimeWarning, match="line 2"):
            reopened = ResultStore(path)
        assert reopened.get(config, method) == fake_result()
        reopened.put(tiny_config(seed=1), method, fake_result(tta=2.0))
        with pytest.warns(RuntimeWarning):
            final = ResultStore(path)
        assert final.get(config, method) == fake_result()
        assert final.get(tiny_config(seed=1), method).tta == 2.0
        assert "garbage" in (tmp_path / "store.jsonl.corrupt").read_text()

    def test_pivot_skips_records_without_the_metric(self):
        store = ResultStore()
        config = tiny_config()
        store.put(config, MethodSpec(name="dnc", compressor="fp16"),
                  fake_result(method="dnc", tta=None, reached=False))
        header, rows = store.pivot("model", "method", value="tta")
        assert rows == [["mlp", "-"]]


# --------------------------------------------------------------------------- #
# Runner
# --------------------------------------------------------------------------- #
def two_by_two_campaign() -> CampaignSpec:
    return CampaignSpec(
        name="2x2",
        base={"model": "mlp", "epochs": 1, "batch_size": 8, "dataset_samples": 32,
              "max_iterations_per_epoch": 1, "pretrain_iterations": 0, "world_size": 2},
        axes={"bandwidth": ["100Mbps", "1Gbps"], "method": ["all-reduce", "fp16"]},
    )


class TestRunner:
    def test_parallel_and_serial_store_identical_results(self, tmp_path):
        spec = two_by_two_campaign()
        serial_store = ResultStore(tmp_path / "serial.jsonl")
        parallel_store = ResultStore(tmp_path / "parallel.jsonl")

        serial = run_campaign(spec, store=serial_store, jobs=1)
        parallel = run_campaign(spec, store=parallel_store, jobs=4)

        assert serial.ran == parallel.ran == 4
        assert serial.failed == parallel.failed == 0
        serial_dicts = [r.to_dict() for r in serial.results()]
        parallel_dicts = [r.to_dict() for r in parallel.results()]
        assert serial_dicts == parallel_dicts
        # The persisted records agree bit-for-bit too.
        for cell in spec.expand():
            a = serial_store.get(cell.config, cell.method)
            b = parallel_store.get(cell.config, cell.method)
            assert a is not None and a.to_dict() == b.to_dict()

    def test_second_run_is_pure_cache_hits(self, tmp_path):
        spec = two_by_two_campaign()
        store = ResultStore(tmp_path / "store.jsonl")
        first = run_campaign(spec, store=store, jobs=1)
        assert first.ran == 4
        second = run_campaign(spec, store=store, jobs=4)
        assert second.ran == 0 and second.cached == 4
        assert [r.to_dict() for r in second.results()] == [r.to_dict() for r in first.results()]
        # recompute=True forces training again.
        third = run_campaign(spec, store=store, jobs=1, recompute=True)
        assert third.ran == 4 and third.cached == 0

    def test_failed_cell_is_captured_not_raised(self):
        cells = [
            CampaignCell(config=tiny_config(model="no-such-model"),
                         method=PAPER_METHODS["all-reduce"]),
            CampaignCell(config=tiny_config(), method=PAPER_METHODS["all-reduce"]),
        ]
        report = run_campaign(cells, jobs=1)
        assert report.failed == 1 and report.ran == 1
        assert "no-such-model" in report.failures()[0].error
        with pytest.raises(RuntimeError, match="1 campaign cell"):
            report.raise_failures()

    def test_progress_callback_sees_every_cell(self, tmp_path):
        spec = two_by_two_campaign()
        store = ResultStore(tmp_path / "store.jsonl")
        seen = []
        run_campaign(spec, store=store, jobs=1, progress=seen.append)
        assert [p.done for p in seen] == [1, 2, 3, 4]
        assert all(p.total == 4 for p in seen)
        assert all(p.outcome.status == "ran" for p in seen)
        # Fresh cells carry their own wall time and are not cache hits.
        assert all(not p.cache_hit and p.elapsed_s > 0 for p in seen)
        # The rolling ETA appears once the first trained cell lands and
        # reaches exactly zero on the last one.
        assert all(p.eta_s is not None for p in seen)
        assert seen[-1].eta_s == 0.0

        # A second identical run is all cache hits: flagged, zero elapsed.
        again = []
        run_campaign(spec, store=store, jobs=1, progress=again.append)
        assert all(p.cache_hit and p.outcome.status == "cached" for p in again)
        assert all(p.elapsed_s == 0.0 for p in again)

    def test_run_method_comparison_uses_store_and_cache(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        config = tiny_config()
        methods = [PAPER_METHODS["all-reduce"], PAPER_METHODS["fp16"]]
        first = run_method_comparison(config, methods, store=store)
        assert set(first) == {"all-reduce", "fp16"}
        again = run_method_comparison(config, methods, store=store)
        assert {name: r.to_dict() for name, r in again.items()} == {
            name: r.to_dict() for name, r in first.items()
        }

    def test_seed_axis_varies_stochastic_compressors(self):
        """Multi-seed sweeps reach the stochastic codecs (the old seed-0 bug)."""
        results = {}
        for seed in (0, 1):
            config = tiny_config(seed=seed, epochs=2, max_iterations_per_epoch=4)
            method = MethodSpec(name="randomk", compressor="randomk0.5")
            report = run_campaign([CampaignCell(config=config, method=method)], jobs=1)
            report.raise_failures()
            results[seed] = report.results()[0]
        assert results[0].loss_trace != results[1].loss_trace

    def test_compressor_seed_threading(self):
        assert MethodSpec(name="rk", compressor="randomk").build_compressor(seed=7).seed == 7
        pipeline = MethodSpec(name="c", compressor="randomk0.2+terngrad").build_compressor(seed=9)
        randomk, ternarize = pipeline.pipeline.stages
        assert randomk.seed == 9 and ternarize.seed == 9
        # Deterministic methods accept (and ignore) the seed.
        MethodSpec(name="t", compressor="topk-0.1").build_compressor(seed=3)


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #
def write_acceptance_spec(path) -> None:
    """The acceptance-criteria campaign: 2 models x 2 bandwidths x 2 methods."""
    path.write_text(json.dumps({
        "name": "acceptance",
        "base": {"epochs": 1, "batch_size": 8, "dataset_samples": 32,
                 "max_iterations_per_epoch": 1, "pretrain_iterations": 0,
                 "world_size": 2},
        "axes": {
            "model": ["mlp", "vgg11"],
            "bandwidth": ["100Mbps", "1Gbps"],
            "method": ["all-reduce", "fp16"],
        },
    }))


class TestCLI:
    def test_sweep_parallel_matches_serial_and_caches(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        write_acceptance_spec(spec_path)
        serial_path = tmp_path / "serial.jsonl"
        parallel_path = tmp_path / "parallel.jsonl"

        assert cli_main(["sweep", str(spec_path), "--store", str(serial_path),
                         "--jobs", "1", "--quiet"]) == 0
        assert cli_main(["sweep", str(spec_path), "--store", str(parallel_path),
                         "--jobs", "4", "--quiet"]) == 0
        capsys.readouterr()

        spec = CampaignSpec.from_file(spec_path)
        serial_store, parallel_store = ResultStore(serial_path), ResultStore(parallel_path)
        for cell in spec.expand():
            a = serial_store.get(cell.config, cell.method)
            b = parallel_store.get(cell.config, cell.method)
            assert a is not None and a.to_dict() == b.to_dict(), cell.label

        # Second invocation: zero training runs, 100% cache hits.
        assert cli_main(["sweep", str(spec_path), "--store", str(parallel_path),
                         "--jobs", "4", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "ran=0" in out and "cached=8" in out and "failed=0" in out

    def test_report_pivots_the_store(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        write_acceptance_spec(spec_path)
        store_path = tmp_path / "store.jsonl"
        assert cli_main(["sweep", str(spec_path), "--store", str(store_path),
                         "--jobs", "1", "--quiet"]) == 0
        capsys.readouterr()
        assert cli_main(["report", "--store", str(store_path),
                         "--rows", "model", "--cols", "method",
                         "--value", "simulated_time"]) == 0
        out = capsys.readouterr().out
        assert "mlp" in out and "vgg11" in out and "all-reduce" in out

        assert cli_main(["report", "--store", str(store_path),
                         "--baseline", "all-reduce", "--value", "tta_or_total"]) == 0
        out = capsys.readouterr().out
        assert "fp16" in out

    def test_report_on_empty_store_fails(self, tmp_path, capsys):
        assert cli_main(["report", "--store", str(tmp_path / "none.jsonl")]) == 1
        assert "empty" in capsys.readouterr().err

    def test_run_single_cell(self, tmp_path, capsys):
        store_path = tmp_path / "store.jsonl"
        assert cli_main([
            "run", "--model", "mlp", "--method", "fp16", "--world-size", "2",
            "--epochs", "1", "--dataset-samples", "32", "--max-iterations-per-epoch", "1",
            "--set", "pretrain_iterations=0", "--set", "batch_size=8",
            "--store", str(store_path), "--quiet",
        ]) == 0
        assert "fp16" in capsys.readouterr().out
        assert ResultStore(store_path).keys()

    def test_sweep_reports_failures_with_nonzero_exit(self, tmp_path, capsys):
        spec_path = tmp_path / "bad.json"
        spec_path.write_text(json.dumps({
            "name": "bad",
            "base": {"epochs": 1, "batch_size": 8, "dataset_samples": 32,
                     "max_iterations_per_epoch": 1, "pretrain_iterations": 0,
                     "world_size": 2},
            "axes": {"model": ["mlp", "no-such-model"], "method": ["all-reduce"]},
        }))
        assert cli_main(["sweep", str(spec_path), "--store",
                         str(tmp_path / "s.jsonl"), "--jobs", "1", "--quiet"]) == 1
        captured = capsys.readouterr()
        assert "failed=1" in captured.out
        assert "no-such-model" in captured.err


# --------------------------------------------------------------------------- #
# Fingerprints
# --------------------------------------------------------------------------- #
class TestFingerprint:
    def test_fingerprint_is_stable_and_content_addressed(self):
        config, method = tiny_config(), PAPER_METHODS["all-reduce"]
        assert cell_fingerprint(config, method) == cell_fingerprint(config, method)
        assert cell_fingerprint(config, method) != cell_fingerprint(
            tiny_config(seed=1), method
        )
        assert cell_fingerprint(config, method) != cell_fingerprint(
            config, PAPER_METHODS["fp16"]
        )

    @settings(max_examples=25)
    @given(seed=st.integers(min_value=0, max_value=2**31),
           epochs=st.integers(min_value=1, max_value=10))
    def test_fingerprint_survives_serialization(self, seed, epochs):
        config = tiny_config(seed=seed, epochs=epochs)
        method = PAPER_METHODS["pactrain"]
        restored = ExperimentConfig.from_dict(json.loads(json.dumps(config.to_dict())))
        assert cell_fingerprint(restored, method) == cell_fingerprint(config, method)
