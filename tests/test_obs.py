"""Observability layer: tracer, metrics, exporters, instrumented call sites.

Covers the layer's load-bearing guarantees:

* histogram buckets are fixed and log-scaled, so snapshots are deterministic
  and mergeable across processes;
* the disabled tracer is a true no-op — zero events, a shared null span
  object, and bit-identical training results with tracing on vs off;
* each instrumented call site emits exactly one span per call (kernel calls,
  codec encode/reduce/gather/decode);
* the JSONL stream round-trips exactly and the Chrome Trace export passes
  structural validation (required fields, per-track monotonicity, proper
  nesting) — and the validator actually catches violations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm import NetworkModel, ProcessGroup
from repro.comm.network import MBPS
from repro.compression import FP16Compressor, NoCompression, build_compressor
from repro.ddp.bucket import Bucket, BucketSlice, GradBucket
from repro.obs import BUCKET_BOUNDS, SIM_SCHEDULE_TID, TRACER, Histogram, MetricsRegistry
from repro.obs.export import (
    chrome_trace,
    load_events,
    merge_metrics,
    summary,
    validate_chrome_trace,
    write_chrome,
    write_jsonl,
)
from repro.obs.instrument import ObservedBackend, backend_kernel_counters
from repro.simulation import ClusterSpec, ExperimentConfig
from repro.simulation.experiment import PAPER_METHODS, run_experiment
from repro.tensorlib.backend import get_backend, shared_backend


@pytest.fixture(autouse=True)
def clean_tracer():
    """Every test starts and ends with the global tracer disabled."""
    TRACER.disable()
    yield
    TRACER.disable()


def make_bucket(rng, numel=256, world=4):
    layout = Bucket(index=0, slices=[BucketSlice("w", 0, numel, (numel,))])
    return GradBucket(layout, [rng.standard_normal(numel) for _ in range(world)])


def make_group(world=4):
    return ProcessGroup(world, NetworkModel.from_bandwidth(world, 100 * MBPS, latency=0.0))


def tiny_config(**overrides) -> ExperimentConfig:
    cluster = ClusterSpec(
        world_size=overrides.pop("world_size", 2),
        bandwidth=overrides.pop("bandwidth", "100Mbps"),
    )
    defaults = dict(
        model="mlp",
        dataset="cifar10",
        cluster=cluster,
        epochs=1,
        batch_size=8,
        dataset_samples=32,
        max_iterations_per_epoch=2,
        pretrain_iterations=0,
        seed=0,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def wall_spans(events, name=None):
    spans = [e for e in events if e.get("kind") == "span" and e.get("clock") == "wall"]
    if name is not None:
        spans = [e for e in spans if e["name"] == name]
    return spans


# --------------------------------------------------------------------------- #
# Metrics: fixed buckets, determinism, merging
# --------------------------------------------------------------------------- #
class TestHistogram:
    def test_bounds_are_fixed_and_increasing(self):
        assert BUCKET_BOUNDS[0] == pytest.approx(1e-9)
        assert BUCKET_BOUNDS[-1] == pytest.approx(1e12)
        assert all(a < b for a, b in zip(BUCKET_BOUNDS, BUCKET_BOUNDS[1:]))

    def test_observe_and_quantile(self):
        histogram = Histogram()
        for value in (0.001, 0.001, 0.01, 0.1, 10.0):
            histogram.observe(value)
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(10.112)
        assert histogram.mean == pytest.approx(10.112 / 5)
        # The median bucket's upper bound is within a quarter-decade of 0.01.
        assert 0.01 <= histogram.quantile(0.5) <= 0.01 * 10 ** 0.25 + 1e-12

    def test_overflow_bucket(self):
        histogram = Histogram()
        histogram.observe(1e15)  # beyond the last bound
        assert histogram.to_buckets() == [["inf", 1]]
        assert histogram.quantile(0.99) == float("inf")

    def test_serialised_buckets_merge_exactly(self):
        rng = np.random.default_rng(0)
        values = 10.0 ** rng.uniform(-9, 12, size=200)
        a, b = Histogram(), Histogram()
        for value in values:
            a.observe(value)
        b.merge_buckets(a.to_buckets())
        b.merge_buckets(a.to_buckets())
        assert b.counts == [2 * c for c in a.counts]

    def test_two_processes_observe_identically(self):
        values = [3.7e-6, 0.25, 812.0, 812.0, 1.0]
        registries = [MetricsRegistry(), MetricsRegistry()]
        for registry in registries:
            for value in values:
                registry.observe("latency", value)
        first, second = (r.snapshot_events(pid=1) for r in registries)
        assert first == second


class TestMetricsRegistry:
    def test_counters_gauges_snapshot(self):
        registry = MetricsRegistry()
        registry.inc("calls")
        registry.inc("calls", 2.0)
        registry.set_gauge("workers", 4)
        events = registry.snapshot_events(pid=42)
        kinds = [(e["metric"], e["name"], e.get("value")) for e in events]
        assert kinds == [("counter", "calls", 3.0), ("gauge", "workers", 4.0)]
        assert all(e["pid"] == 42 for e in events)

    def test_merge_metrics_across_processes(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.inc("codec.aggregations", 3)
        second.inc("codec.aggregations", 5)
        first.set_gauge("util", 0.5)
        second.set_gauge("util", 0.75)
        first.observe("lat", 0.01)
        second.observe("lat", 0.01)
        # Workers flush cumulative snapshots repeatedly: only the last per
        # (pid, name) must count.
        events = (
            first.snapshot_events(pid=1)
            + first.snapshot_events(pid=1)
            + second.snapshot_events(pid=2)
        )
        merged = merge_metrics(events)
        assert merged["counters"]["codec.aggregations"] == 8.0
        assert merged["gauges"]["util"] == 0.75
        assert merged["histograms"]["lat"].count == 2


# --------------------------------------------------------------------------- #
# Tracer core: disabled path, dual clocks, sinks
# --------------------------------------------------------------------------- #
class TestTracerDisabled:
    def test_disabled_tracer_emits_nothing(self):
        assert not TRACER.enabled
        with TRACER.span("work", cat="test", detail=1):
            pass
        TRACER.instant("marker")
        TRACER.sim_span("sim", "test", 0.0, 1.0, 0)
        TRACER.flush_metrics()
        assert TRACER.events() == []

    def test_disabled_span_is_shared_nullobject(self):
        # The disabled fast path allocates nothing per call.
        assert TRACER.span("a") is TRACER.span("b")


class TestTracerEnabled:
    def test_wall_spans_carry_sim_stamp(self):
        TRACER.enable()
        TRACER.sim_now = 3.5
        with TRACER.span("outer", cat="test", tag="x"):
            with TRACER.span("inner", cat="test"):
                pass
        spans = wall_spans(TRACER.events())
        assert [s["name"] for s in spans] == ["inner", "outer"]  # exit order
        assert all(s["sim_at"] == 3.5 for s in spans)
        inner, outer = spans
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-9

    def test_sim_spans_carry_wall_stamp_and_fresh_pid(self):
        TRACER.enable()
        pid = TRACER.new_sim_process("exp A")
        assert pid < 0
        TRACER.sim_span("iteration 0", "sim", 0.0, 2.0, SIM_SCHEDULE_TID)
        assert TRACER.new_sim_process("exp B") != pid
        events = TRACER.events()
        span = next(e for e in events if e.get("kind") == "span")
        assert span["clock"] == "sim"
        assert span["pid"] == pid
        assert span["wall_at"] > 0
        names = [e["name"] for e in events if e.get("kind") == "meta"]
        assert "sim: exp A" in names and "sim: exp B" in names

    def test_jsonl_sink_streams_and_finishes(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        TRACER.enable(path)
        with TRACER.span("work", cat="test"):
            pass
        TRACER.metrics.inc("calls")
        paths = TRACER.finish()
        assert paths == {"jsonl": path, "chrome": None}
        assert not TRACER.enabled
        events = load_events(path)
        assert any(e.get("kind") == "span" and e["name"] == "work" for e in events)
        assert any(e.get("kind") == "metric" and e["name"] == "calls" for e in events)

    def test_chrome_destination_gets_jsonl_sidecar(self, tmp_path):
        path = str(tmp_path / "trace.json")
        TRACER.enable(path)
        paths = TRACER.finish()
        assert paths == {"jsonl": path + ".jsonl", "chrome": path}


class TestJsonlRoundTrip:
    def test_write_then_load_is_exact(self, tmp_path):
        events = [
            {"kind": "span", "name": "a", "cat": "t", "clock": "wall",
             "ts": 1.25, "dur": 0.5, "pid": 7, "tid": 0, "sim_at": 0.0, "args": {}},
            {"kind": "instant", "name": "m", "cat": "t", "clock": "sim",
             "ts": 0.0, "pid": -1, "tid": 3, "args": {"k": [1, 2]}},
            {"kind": "metric", "metric": "counter", "name": "c", "value": 3.0, "pid": 7},
        ]
        path = str(tmp_path / "events.jsonl")
        write_jsonl(events, path)
        assert load_events(path) == events


# --------------------------------------------------------------------------- #
# Chrome trace export + validation
# --------------------------------------------------------------------------- #
class TestChromeTrace:
    def test_real_trace_validates_clean(self):
        TRACER.enable()
        TRACER.new_sim_process("demo")
        with TRACER.span("outer", cat="test"):
            with TRACER.span("inner", cat="test"):
                pass
        TRACER.sim_span("iteration 0", "sim", 0.0, 2.0, SIM_SCHEDULE_TID)
        TRACER.sim_span("backward", "sim", 0.0, 1.0, 0)
        TRACER.instant("ready", cat="sim", clock="sim", ts=1.0, tid=0)
        document = chrome_trace(TRACER.events())
        assert validate_chrome_trace(document) == []

    def test_required_fields_and_tracks(self):
        TRACER.enable()
        sim_pid = TRACER.new_sim_process("demo")
        with TRACER.span("work", cat="test"):
            pass
        TRACER.sim_span("backward", "sim", 0.0, 1.0, 2)
        document = chrome_trace(TRACER.events())
        events = document["traceEvents"]
        for event in events:
            assert event["ph"] in "XiIMBEC"
            assert isinstance(event["pid"], int) and isinstance(event["tid"], int)
            assert "name" in event and "ts" in event
            if event["ph"] == "X":
                assert event["dur"] >= 0
        # One metadata track name per (pid, tid); the sim rank track is named.
        thread_names = {
            (e["pid"], e["tid"]): e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert thread_names[(sim_pid, 2)] == "rank 2"
        process_names = {
            e["pid"]: e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert process_names[sim_pid] == "sim: demo"

    def test_timestamps_monotone_per_track_in_file_order(self):
        TRACER.enable()
        for _ in range(5):
            with TRACER.span("step", cat="test"):
                pass
        document = chrome_trace(TRACER.events())
        last = {}
        for event in document["traceEvents"]:
            if event["ph"] != "X":
                continue
            track = (event["pid"], event["tid"])
            assert event["ts"] >= last.get(track, float("-inf"))
            last[track] = event["ts"]

    def test_validator_rejects_bad_documents(self):
        assert validate_chrome_trace([]) == ["document is not a JSON object"]
        assert validate_chrome_trace({}) == ["missing 'traceEvents' list"]
        base = {"name": "a", "pid": 1, "tid": 0, "ts": 0.0}
        assert validate_chrome_trace({"traceEvents": [{**base, "ph": "Z"}]})
        assert validate_chrome_trace({"traceEvents": [{**base, "ph": "X"}]})  # no dur
        assert validate_chrome_trace(
            {"traceEvents": [{**base, "ph": "X", "pid": "one", "dur": 1.0}]}
        )

    def test_validator_rejects_non_monotone_and_overlapping(self):
        def span(ts, dur, name="s"):
            return {"ph": "X", "name": name, "pid": 1, "tid": 0, "ts": ts, "dur": dur}

        errors = validate_chrome_trace({"traceEvents": [span(10.0, 1.0), span(5.0, 1.0)]})
        assert any("not monotone" in error for error in errors)
        # Partial overlap on one track: starts inside, ends outside.
        errors = validate_chrome_trace(
            {"traceEvents": [span(0.0, 10.0, "parent"), span(5.0, 10.0, "child")]}
        )
        assert any("without nesting" in error for error in errors)
        # Exact nesting is fine.
        assert validate_chrome_trace(
            {"traceEvents": [span(0.0, 10.0, "parent"), span(2.0, 3.0, "child")]}
        ) == []

    def test_write_chrome_round_trips_through_disk(self, tmp_path):
        TRACER.enable()
        with TRACER.span("work", cat="test"):
            pass
        path = str(tmp_path / "trace.json")
        write_chrome(TRACER.events(), path)
        import json

        with open(path, "r", encoding="utf-8") as handle:
            assert validate_chrome_trace(json.load(handle)) == []


# --------------------------------------------------------------------------- #
# Instrumented call sites: exactly one span per call
# --------------------------------------------------------------------------- #
class TestKernelCallSites:
    def test_one_span_per_kernel_call(self):
        TRACER.enable()
        backend = get_backend()
        assert isinstance(backend, ObservedBackend)
        a, b = np.ones((4, 8)), np.ones((8, 2))
        result = backend.matmul(a, b)
        spans = wall_spans(TRACER.events(), "kernel/matmul")
        assert len(spans) == 1
        assert spans[0]["args"]["bytes"] == a.nbytes + b.nbytes
        assert TRACER.metrics.counters["backend.numpy.matmul.calls"] == 1.0
        np.testing.assert_array_equal(result, a @ b)

    def test_wrapper_forwards_non_kernels_untouched(self):
        inner = shared_backend("numpy")
        wrapped = ObservedBackend(inner)
        assert wrapped.name == inner.name
        assert wrapped.kernel_status() == inner.kernel_status()

    def test_disabled_backend_is_unwrapped(self):
        assert not isinstance(get_backend(), ObservedBackend)


class TestCodecCallSites:
    def test_one_span_per_stage_on_reduce_path(self, rng):
        TRACER.enable()
        FP16Compressor().aggregate(make_bucket(rng), make_group(), iteration=0)
        events = TRACER.events()
        for name in ("codec/encode", "codec/reduce", "codec/decode"):
            assert len(wall_spans(events, name)) == 1, name
        assert len(wall_spans(events, "codec/gather")) == 0
        assert TRACER.metrics.counters["codec.aggregations"] == 1.0
        # FP16 is lossy and iteration 0 is a sample point: one NMSE instant.
        nmse_marks = [e for e in events if e.get("kind") == "instant" and e["name"] == "codec/nmse"]
        assert len(nmse_marks) == 1
        assert nmse_marks[0]["args"]["nmse"] < 1e-5

    def test_gather_path_and_nmse_sampling(self, rng):
        TRACER.enable()
        compressor = build_compressor("topk-0.1")
        group = make_group()
        compressor.aggregate(make_bucket(rng), group, iteration=0)
        compressor.aggregate(make_bucket(rng), group, iteration=1)
        events = TRACER.events()
        assert len(wall_spans(events, "codec/gather")) == 2
        assert len(wall_spans(events, "codec/reduce")) == 0
        # Sampled, not per-iteration: only iteration 0 hits the modulus.
        nmse_marks = [e for e in events if e.get("kind") == "instant" and e["name"] == "codec/nmse"]
        assert len(nmse_marks) == 1

    def test_lossless_pipeline_skips_nmse(self, rng):
        TRACER.enable()
        NoCompression().aggregate(make_bucket(rng), make_group(), iteration=0)
        assert not any(
            e.get("kind") == "instant" and e["name"] == "codec/nmse" for e in TRACER.events()
        )

    def test_observing_does_not_change_the_result(self, rng):
        bucket_data = [rng.standard_normal(256) for _ in range(4)]

        def run():
            layout = Bucket(index=0, slices=[BucketSlice("w", 0, 256, (256,))])
            bucket = GradBucket(layout, [b.copy() for b in bucket_data])
            return FP16Compressor().aggregate(bucket, make_group(), iteration=0)

        plain = run()
        TRACER.enable()
        traced = run()
        TRACER.disable()
        np.testing.assert_array_equal(plain, traced)


# --------------------------------------------------------------------------- #
# End to end: a traced experiment, and the no-drift guarantee
# --------------------------------------------------------------------------- #
class TestExperimentTracing:
    def test_traced_run_produces_valid_dual_clock_trace(self):
        TRACER.enable()
        run_experiment(tiny_config(), PAPER_METHODS["fp16"])
        events = TRACER.events()
        TRACER.disable()
        names = {e["name"] for e in events if e.get("kind") == "span"}
        for expected in ("experiment", "train/backward", "train/sync", "train/apply",
                         "ddp/bucket_sync", "codec/encode"):
            assert expected in names, expected
        sim = [e for e in events if e.get("kind") == "span" and e.get("clock") == "sim"]
        assert any(e["name"].startswith("iteration") for e in sim)
        assert any(e["name"].startswith("backward") for e in sim)
        assert all(e["pid"] < 0 for e in sim)
        assert validate_chrome_trace(chrome_trace(events)) == []

    def test_tracing_does_not_drift_results(self):
        config, method = tiny_config(), PAPER_METHODS["pactrain"]
        plain = run_experiment(config, method)
        TRACER.enable()
        traced = run_experiment(tiny_config(), method)
        events = TRACER.events()
        TRACER.disable()
        assert traced.to_dict() == plain.to_dict()
        assert len(events) > 0  # the traced run did record


# --------------------------------------------------------------------------- #
# backends --counters engine + summary rendering
# --------------------------------------------------------------------------- #
class TestBackendCounters:
    def test_numpy_smoke_counts_hot_kernels(self):
        before = TRACER.events()
        results = backend_kernel_counters(["numpy"])
        assert results["numpy"]["executed"] == "numpy"
        kernels = results["numpy"]["kernels"]
        assert kernels["matmul"]["calls"] >= 1
        assert kernels["im2col_gather"]["calls"] >= 1
        assert all(stats["bytes"] > 0 for stats in kernels.values())
        # The probe runs under a private registry: global tracer untouched.
        assert not TRACER.enabled and TRACER.events() == before


class TestSummary:
    def test_summary_renders_all_sections(self, rng):
        TRACER.enable()
        TRACER.new_sim_process("demo")
        FP16Compressor().aggregate(make_bucket(rng), make_group(), iteration=0)
        TRACER.sim_span("iteration 0", "sim", 0.0, 1.0, SIM_SCHEDULE_TID)
        TRACER.metrics.set_gauge("campaign.workers", 2)
        TRACER.flush_metrics()
        text = summary(TRACER.events())
        for section in ("spans (wall clock)", "spans (simulated clock)",
                        "== counters ==", "== gauges ==", "== histograms =="):
            assert section in text, section
        assert "codec/encode" in text and "codec.aggregations" in text
