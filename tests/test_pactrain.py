"""PacTrain core: Mask Tracker, adaptive compressor, config and trainer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm import NetworkModel, ProcessGroup
from repro.comm.network import MBPS
from repro.compression import NoCompression
from repro.compression.base import exact_average
from repro.ddp.bucket import Bucket, BucketSlice, GradBucket
from repro.pactrain import MaskTracker, PacTrainCompressor, PacTrainConfig, PacTrainTrainer
from repro.simulation import ClusterSpec


def make_bucket(buffers, index=0):
    numel = buffers[0].size
    layout = Bucket(index=index, slices=[BucketSlice("w", 0, numel, (numel,))])
    return GradBucket(layout, buffers)


def masked_buffers(rng, world_size=4, numel=400, density=0.3):
    """Per-rank gradients sharing one sparsity pattern (what GSE produces)."""
    mask = rng.random(numel) < density
    return [rng.standard_normal(numel) * mask for _ in range(world_size)], mask


class TestMaskTracker:
    def test_first_update_is_not_stable(self, rng):
        tracker = MaskTracker(stability_threshold=2)
        state = tracker.update(0, rng.random(50) < 0.3)
        assert not state.stable
        assert state.consecutive_stable == 1

    def test_becomes_stable_after_threshold(self, rng):
        tracker = MaskTracker(stability_threshold=3)
        pattern = rng.random(100) < 0.3
        verdicts = [tracker.update(0, pattern).stable for _ in range(4)]
        assert verdicts == [False, False, True, True]

    def test_new_nonzero_coordinate_resets_streak(self, rng):
        tracker = MaskTracker(stability_threshold=2)
        pattern = np.zeros(20, dtype=bool)
        pattern[:5] = True
        tracker.update(0, pattern)
        tracker.update(0, pattern)
        assert tracker.is_stable(0)
        grown = pattern.copy()
        grown[10] = True
        state = tracker.update(0, grown)
        assert state.changed
        assert not state.stable
        # Tracked mask widens to include the new coordinate.
        assert state.mask[10]

    def test_subset_pattern_does_not_reset(self, rng):
        """A coordinate that happens to be zero one iteration must not reset
        stability — compacting with the superset mask stays lossless."""
        tracker = MaskTracker(stability_threshold=2)
        pattern = np.zeros(20, dtype=bool)
        pattern[:8] = True
        tracker.update(0, pattern)
        subset = pattern.copy()
        subset[3] = False
        state = tracker.update(0, subset)
        assert not state.changed
        assert state.consecutive_stable == 2
        assert state.mask[3]  # superset retained

    def test_dense_pattern_never_stable(self):
        tracker = MaskTracker(stability_threshold=1, min_sparsity=0.05)
        dense = np.ones(100, dtype=bool)
        assert not tracker.update(0, dense).stable

    def test_buckets_tracked_independently(self, rng):
        tracker = MaskTracker(stability_threshold=2)
        a = rng.random(30) < 0.4
        b = rng.random(30) < 0.4
        tracker.update(0, a)
        tracker.update(1, b)
        tracker.update(0, a)
        assert tracker.is_stable(0)
        assert not tracker.is_stable(1)
        assert tracker.tracked_buckets == 2

    def test_update_from_rank_gradients_takes_union(self):
        tracker = MaskTracker(stability_threshold=1)
        g1 = np.array([1.0, 0.0, 0.0, 2.0])
        g2 = np.array([0.0, 0.0, 3.0, 1.0])
        state = tracker.update_from_rank_gradients(0, [g1, g2])
        np.testing.assert_array_equal(state.mask, [True, False, True, True])

    def test_reset(self, rng):
        tracker = MaskTracker(stability_threshold=1)
        tracker.update(0, rng.random(10) < 0.5)
        tracker.reset(0)
        assert tracker.streak(0) == 0
        tracker.update(1, rng.random(10) < 0.5)
        tracker.reset()
        assert tracker.tracked_buckets == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            MaskTracker(stability_threshold=0)
        with pytest.raises(ValueError):
            MaskTracker(min_sparsity=1.0)
        with pytest.raises(ValueError):
            MaskTracker().update_from_rank_gradients(0, [])


class TestPacTrainCompressor:
    def test_falls_back_to_full_sync_before_stability(self, rng):
        compressor = PacTrainCompressor(stability_threshold=3)
        buffers, _ = masked_buffers(rng)
        group = ProcessGroup(4)
        result = compressor.aggregate(make_bucket(buffers), group)
        np.testing.assert_allclose(result, exact_average(buffers), atol=1e-12)
        assert compressor.full_iterations == 1
        assert compressor.compact_iterations == 0

    def test_compact_path_is_lossless_on_masked_gradients(self, rng):
        """The paper's central claim: with a stable shared mask, compression is
        exact — no information about the (masked) gradient is lost."""
        compressor = PacTrainCompressor(stability_threshold=2, quantize=False)
        group = ProcessGroup(4)
        mask = rng.random(300) < 0.25
        for _ in range(5):
            buffers = [rng.standard_normal(300) * mask for _ in range(4)]
            result = compressor.aggregate(make_bucket(buffers), group)
            np.testing.assert_allclose(result, exact_average(buffers), atol=1e-12)
        assert compressor.compact_iterations >= 3

    def test_compact_path_reduces_wire_bytes(self, rng):
        compressor = PacTrainCompressor(stability_threshold=1)
        group = ProcessGroup(4, NetworkModel.from_bandwidth(4, 100 * MBPS, latency=0.0))
        mask = rng.random(1000) < 0.2
        for _ in range(3):
            buffers = [rng.standard_normal(1000) * mask for _ in range(4)]
            compressor.aggregate(make_bucket(buffers), group)
        # After the first (full) sync, only ~20% of elements travel.
        assert compressor.stats.compression_ratio > 2.0

    def test_compact_comm_time_is_lower_than_full(self, rng):
        network = NetworkModel.from_bandwidth(4, 100 * MBPS, latency=0.0)
        mask = rng.random(4000) < 0.1
        buffers = [rng.standard_normal(4000) * mask for _ in range(4)]

        baseline_group = ProcessGroup(4, network)
        NoCompression().aggregate(make_bucket(buffers), baseline_group)

        compressor = PacTrainCompressor(stability_threshold=1)
        pac_group = ProcessGroup(4, network)
        compressor.aggregate(make_bucket(buffers), pac_group)   # full sync
        pac_group.pop_events()
        compressor.aggregate(make_bucket(buffers), pac_group)   # compact sync
        compact_time = sum(e.time_seconds for e in pac_group.events)
        assert compact_time < baseline_group.total_time * 0.5

    def test_quantized_variant_keeps_masked_support(self, rng):
        compressor = PacTrainCompressor(stability_threshold=1, quantize=True, seed=0)
        group = ProcessGroup(4)
        mask = rng.random(500) < 0.3
        result = None
        buffers = None
        for _ in range(3):
            buffers = [rng.standard_normal(500) * mask + mask * 0.5 for _ in range(4)]
            result = compressor.aggregate(make_bucket(buffers), group)
        assert result is not None
        np.testing.assert_array_equal(result[~mask], 0.0)
        # Quantisation is lossy but directionally correct w.r.t. the gradients
        # that were actually aggregated.
        exact = exact_average(buffers)
        cosine = np.dot(result, exact) / (np.linalg.norm(result) * np.linalg.norm(exact))
        assert cosine > 0.5

    def test_pattern_change_forces_full_sync_again(self, rng):
        compressor = PacTrainCompressor(stability_threshold=2)
        group = ProcessGroup(2)
        mask_a = rng.random(200) < 0.2
        for _ in range(3):
            buffers = [rng.standard_normal(200) * mask_a for _ in range(2)]
            compressor.aggregate(make_bucket(buffers), group)
        compact_before = compressor.compact_iterations
        assert compact_before > 0
        # New sparsity pattern: previously-pruned coordinates become active.
        mask_b = rng.random(200) < 0.6
        buffers = [rng.standard_normal(200) * mask_b for _ in range(2)]
        result = compressor.aggregate(make_bucket(buffers), group)
        np.testing.assert_allclose(result, exact_average(buffers), atol=1e-12)
        assert compressor.full_iterations >= 2

    def test_bitmask_synced_once_per_stable_mask(self, rng):
        compressor = PacTrainCompressor(stability_threshold=1)
        group = ProcessGroup(4)
        mask = rng.random(100) < 0.3
        for _ in range(4):
            buffers = [rng.standard_normal(100) * mask for _ in range(4)]
            compressor.aggregate(make_bucket(buffers), group)
        assert compressor.stats.extra.get("bitmask_syncs", 0) == 1.0

    def test_reset(self, rng):
        compressor = PacTrainCompressor(stability_threshold=1)
        group = ProcessGroup(2)
        buffers, _ = masked_buffers(rng, world_size=2)
        compressor.aggregate(make_bucket(buffers), group)
        compressor.reset()
        assert compressor.compact_iterations == 0
        assert compressor.full_iterations == 0
        assert compressor.tracker.tracked_buckets == 0

    def test_dense_gradients_never_use_compact_path(self, rng):
        compressor = PacTrainCompressor(stability_threshold=1, min_sparsity=0.05)
        group = ProcessGroup(2)
        for _ in range(4):
            buffers = [rng.standard_normal(100) for _ in range(2)]  # fully dense
            compressor.aggregate(make_bucket(buffers), group)
        assert compressor.compact_iterations == 0

    def test_allreduce_compatible_flag(self):
        assert PacTrainCompressor().allreduce_compatible
        assert PacTrainCompressor(quantize=False).lossless
        assert not PacTrainCompressor(quantize=True).lossless


class TestPacTrainConfig:
    def test_defaults_match_paper(self):
        config = PacTrainConfig()
        assert config.pruning_ratio == pytest.approx(0.5)
        assert config.pruning_method == "magnitude"
        assert config.gse_every_iteration

    def test_validation(self):
        with pytest.raises(ValueError):
            PacTrainConfig(pruning_ratio=1.0)
        with pytest.raises(ValueError):
            PacTrainConfig(pruning_method="l1-norm")
        with pytest.raises(ValueError):
            PacTrainConfig(stability_threshold=0)
        with pytest.raises(ValueError):
            PacTrainConfig(warmup_iterations=-1)


class TestPacTrainTrainer:
    @pytest.fixture
    def trainer(self):
        return PacTrainTrainer(
            model="mlp",
            dataset="cifar10",
            cluster=ClusterSpec(world_size=2, bandwidth="100Mbps"),
            config=PacTrainConfig(pruning_ratio=0.5, stability_threshold=2),
            epochs=2,
            batch_size=16,
            dataset_samples=96,
            seed=0,
        )

    def test_run_produces_sparse_model_and_positive_accuracy(self, trainer):
        result = trainer.run()
        assert result.weight_sparsity > 0.2
        assert result.final_accuracy > 0.2
        assert result.simulated_time > 0
        assert result.comm_time > 0
        assert result.extra["compact_iterations"] > 0

    def test_method_spec_mirrors_config(self, trainer):
        spec = trainer.method_spec()
        assert spec.compressor == "pactrain"
        assert spec.pruning_ratio == pytest.approx(0.5)
        assert spec.gse

    def test_baseline_run_is_dense_and_slower(self, trainer):
        pac = trainer.run()
        base = trainer.run_baseline("allreduce")
        assert base.weight_sparsity < 0.05
        assert base.comm_time > pac.comm_time

    def test_summary_keys(self, trainer):
        result = trainer.run()
        summary = trainer.summary(result)
        assert {"final_accuracy", "simulated_time_s", "compression_ratio"} <= set(summary)
