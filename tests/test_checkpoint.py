"""Checkpoint/restore round trips on the elastic seam.

``train_distributed`` can capture a :class:`TrainingCheckpoint` just before a
chosen global iteration and later resume from it on a fresh model.  These
tests pin the contract end to end:

* capturing a checkpoint is side-effect-free — the checkpointed run finishes
  bit-identically to the uninterrupted run;
* resuming from the checkpoint reproduces the uninterrupted run's timeline,
  losses and final parameters bit-for-bit;
* one checkpoint seeds several resumes (the capture deep-copies all state);
* a checkpoint taken mid-fault — while the membership is degraded — restores
  the degraded process group through the elastic seam and still converges to
  the uninterrupted run.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro import golden
from repro.data import DataLoader, make_dataset, train_test_split
from repro.nn.models import build_model
from repro.simulation.experiment import (
    MethodSpec,
    _pretrain,
    _prune_model,
    train_distributed,
)
from repro.simulation.regimes import TrainingCheckpoint

METHOD = MethodSpec(name="topk-0.01", compressor="topk-0.01")


def _setup(config, method):
    """Mirror ``_run_experiment``'s data/model preparation deterministically."""
    dataset = make_dataset(
        config.dataset,
        num_samples=config.dataset_samples,
        image_size=config.image_size,
        noise_std=config.noise_std,
        seed=config.seed,
    )
    train_set, test_set = train_test_split(
        dataset, test_fraction=config.test_fraction, seed=config.seed
    )
    test_loader = DataLoader(test_set, batch_size=config.batch_size)
    model = build_model(config.model, num_classes=dataset.num_classes, seed=config.seed)
    pretrain_loader = DataLoader(
        train_set, batch_size=config.batch_size, shuffle=True, seed=config.seed
    )
    _pretrain(model, pretrain_loader, config.pretrain_iterations, config.lr)
    mask = _prune_model(model, method, next(iter(pretrain_loader)))
    return model, train_set, test_loader, mask


def _run(config, method, **kwargs):
    model, train_set, test_loader, mask = _setup(config, method)
    timeline, ddp, compressor, reached = train_distributed(
        model=model,
        train_dataset=train_set,
        test_loader=test_loader,
        method=method,
        cluster=config.cluster,
        epochs=config.epochs,
        batch_size=config.batch_size,
        lr=config.lr,
        momentum=config.momentum,
        weight_decay=config.weight_decay,
        mask=mask,
        max_iterations_per_epoch=config.max_iterations_per_epoch,
        seed=config.seed,
        bucket_cap_bytes=config.bucket_cap_bytes,
        **kwargs,
    )
    return timeline, ddp.snapshot_parameters(), compressor


def _assert_identical(run_a, run_b):
    timeline_a, params_a, compressor_a = run_a
    timeline_b, params_b, compressor_b = run_b
    assert timeline_b.epochs == timeline_a.epochs
    assert timeline_b.total_time == timeline_a.total_time
    assert timeline_b.comm_bytes_per_worker == timeline_a.comm_bytes_per_worker
    assert timeline_b.iterations == timeline_a.iterations
    assert set(params_b) == set(params_a)
    for name, value in params_a.items():
        assert np.array_equal(params_b[name], value), name
    assert compressor_b.stats.wire_bytes == compressor_a.stats.wire_bytes


class TestCheckpointRoundTrip:
    def test_capture_is_side_effect_free(self):
        baseline = _run(golden.GOLDEN_CONFIG, METHOD)
        box: list[TrainingCheckpoint] = []
        checkpointed = _run(
            golden.GOLDEN_CONFIG, METHOD, checkpoint_at=3, checkpoint_box=box
        )
        assert len(box) == 1
        _assert_identical(baseline, checkpointed)

    def test_resume_mid_epoch_is_bit_identical(self):
        # Global iteration 3 is epoch 1, iteration 1 in the golden config
        # (2 iterations/epoch): a genuine mid-epoch capture.
        baseline = _run(golden.GOLDEN_CONFIG, METHOD)
        box: list[TrainingCheckpoint] = []
        _run(golden.GOLDEN_CONFIG, METHOD, checkpoint_at=3, checkpoint_box=box)
        ck = box[0]
        assert ck.global_iteration == 3
        assert ck.iteration_in_epoch != 0
        resumed = _run(golden.GOLDEN_CONFIG, METHOD, resume_from=ck)
        _assert_identical(baseline, resumed)

    def test_one_checkpoint_seeds_several_resumes(self):
        box: list[TrainingCheckpoint] = []
        _run(golden.GOLDEN_CONFIG, METHOD, checkpoint_at=2, checkpoint_box=box)
        first = _run(golden.GOLDEN_CONFIG, METHOD, resume_from=box[0])
        second = _run(golden.GOLDEN_CONFIG, METHOD, resume_from=box[0])
        _assert_identical(first, second)

    def test_resume_restores_compressor_residuals(self):
        # top-k with error feedback carries residual state across iterations;
        # a resume that dropped it would diverge from the baseline run.
        box: list[TrainingCheckpoint] = []
        _run(golden.GOLDEN_CONFIG, METHOD, checkpoint_at=3, checkpoint_box=box)
        residual = box[0].compressor.residual(0)
        assert residual is not None
        assert float(np.abs(residual).sum()) > 0.0

    def test_checkpoint_rejects_async_schedules(self):
        method = dataclasses.replace(METHOD, sync_schedule="localsgd:4")
        with pytest.raises(ValueError, match="synchronous"):
            _run(golden.GOLDEN_CONFIG, method, checkpoint_at=2, checkpoint_box=[])

    def test_localsgd_h1_supports_checkpointing(self):
        # localsgd:1 routes through the synchronous loop, so the checkpoint
        # seam works there too.
        method = dataclasses.replace(METHOD, sync_schedule="localsgd:1")
        baseline = _run(golden.GOLDEN_CONFIG, method)
        box: list[TrainingCheckpoint] = []
        _run(golden.GOLDEN_CONFIG, method, checkpoint_at=3, checkpoint_box=box)
        resumed = _run(golden.GOLDEN_CONFIG, method, resume_from=box[0])
        _assert_identical(baseline, resumed)


class TestCheckpointUnderFaults:
    @staticmethod
    def _faulty_config():
        cluster = dataclasses.replace(
            golden.GOLDEN_CONFIG.cluster,
            faults="crash:1@0.0005,rejoin:1@0.003",
        )
        return dataclasses.replace(golden.GOLDEN_CONFIG, cluster=cluster)

    def test_resume_from_degraded_membership(self):
        config = self._faulty_config()
        baseline = _run(config, METHOD)
        assert baseline[0].fault_events >= 2  # crash + rejoin both fired
        box: list[TrainingCheckpoint] = []
        _run(config, METHOD, checkpoint_at=3, checkpoint_box=box)
        ck = box[0]
        # The capture lands between the crash and the rejoin: the saved
        # membership is degraded, and the resume must rebuild the degraded
        # process group through the elastic seam before continuing.
        assert len(ck.active_ranks) < config.cluster.world_size
        resumed = _run(config, METHOD, resume_from=ck)
        _assert_identical(baseline, resumed)

    def test_resume_after_rejoin_completes(self):
        config = self._faulty_config()
        baseline = _run(config, METHOD)
        box: list[TrainingCheckpoint] = []
        _run(config, METHOD, checkpoint_at=5, checkpoint_box=box)
        ck = box[0]
        assert len(ck.active_ranks) == config.cluster.world_size
        resumed = _run(config, METHOD, resume_from=ck)
        _assert_identical(baseline, resumed)
