"""Hardened campaign runner: retries, watchdog timeouts, chaos survival.

Failure injection goes through the runner's own chaos seam
(``REPRO_CHAOS_MODE`` / ``REPRO_CHAOS_LABEL`` / ``REPRO_CHAOS_DIR``) — the
same knobs the CI chaos-smoke job uses — so these tests exercise exactly the
code paths a flaky machine would: a transient exception, a SIGKILLed pool
worker, and a hung worker caught by the per-cell watchdog.
"""

from __future__ import annotations

import pytest

from repro.campaign import CampaignCell, CampaignSpec, ResultStore, run_campaign
from repro.campaign.runner import (
    MAX_RETRY_DELAY,
    STATUS_FAILED,
    STATUS_RAN,
    STATUS_TIMEOUT,
    retry_delay,
)
from repro.simulation import ClusterSpec, ExperimentConfig
from repro.simulation.experiment import PAPER_METHODS


def tiny_config(**overrides) -> ExperimentConfig:
    cluster_kwargs = {
        "world_size": overrides.pop("world_size", 2),
        "bandwidth": overrides.pop("bandwidth", "100Mbps"),
    }
    defaults = dict(
        model="mlp",
        dataset="cifar10",
        cluster=ClusterSpec(**cluster_kwargs),
        epochs=1,
        batch_size=8,
        dataset_samples=32,
        max_iterations_per_epoch=1,
        pretrain_iterations=0,
        seed=0,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def two_by_two_campaign() -> CampaignSpec:
    return CampaignSpec(
        name="2x2",
        base={"model": "mlp", "epochs": 1, "batch_size": 8, "dataset_samples": 32,
              "max_iterations_per_epoch": 1, "pretrain_iterations": 0, "world_size": 2},
        axes={"bandwidth": ["100Mbps", "1Gbps"], "method": ["all-reduce", "fp16"]},
    )


@pytest.fixture
def chaos(monkeypatch, tmp_path):
    """Arm the chaos seam for one injected failure, scoped by label."""

    def arm(mode: str, label: str = "") -> None:
        monkeypatch.setenv("REPRO_CHAOS_MODE", mode)
        monkeypatch.setenv("REPRO_CHAOS_LABEL", label)
        monkeypatch.setenv("REPRO_CHAOS_DIR", str(tmp_path / "chaos"))

    return arm


class TestRetryPolicy:
    def test_transient_failure_is_retried_and_recovers(self, chaos, tmp_path):
        chaos("raise", label="fp16")
        store = ResultStore(tmp_path / "store.jsonl")
        cells = [
            CampaignCell(config=tiny_config(), method=PAPER_METHODS["fp16"]),
            CampaignCell(config=tiny_config(), method=PAPER_METHODS["all-reduce"]),
        ]
        report = run_campaign(cells, store=store, jobs=1, retry_backoff=0.001)
        assert report.failed == 0 and report.ran == 2
        assert [o.attempts for o in report.outcomes] == [2, 1]
        assert report.retried == 1
        assert "retried=1" in report.summary()
        # The attempt count is persisted with the record.
        record = store.records(method="fp16")[0]
        assert record.attempts == 2
        assert sorted(store.axis_values("attempts")) == [1, 2]

    def test_deterministic_error_is_not_retried(self):
        cells = [
            CampaignCell(config=tiny_config(model="no-such-model"),
                         method=PAPER_METHODS["all-reduce"]),
        ]
        report = run_campaign(cells, jobs=1, retries=5, retry_backoff=0.001)
        outcome = report.outcomes[0]
        assert outcome.status == STATUS_FAILED
        assert outcome.attempts == 1  # KeyError/ValueError: retrying cannot help
        assert "no-such-model" in outcome.error

    def test_retries_zero_disables_retrying(self, chaos):
        chaos("raise")
        cells = [CampaignCell(config=tiny_config(), method=PAPER_METHODS["all-reduce"])]
        report = run_campaign(cells, jobs=1, retries=0)
        outcome = report.outcomes[0]
        assert outcome.status == STATUS_FAILED and outcome.attempts == 1
        assert "chaos: injected transient failure" in outcome.error

    def test_retry_budget_exhausts(self, monkeypatch):
        # No REPRO_CHAOS_DIR: the chaos fires on *every* attempt.
        monkeypatch.setenv("REPRO_CHAOS_MODE", "raise")
        cells = [CampaignCell(config=tiny_config(), method=PAPER_METHODS["all-reduce"])]
        report = run_campaign(cells, jobs=1, retries=2, retry_backoff=0.001)
        outcome = report.outcomes[0]
        assert outcome.status == STATUS_FAILED
        assert outcome.attempts == 3  # initial run + 2 retries

    def test_retry_delay_is_bounded_and_deterministic(self):
        key = "deadbeef" + "0" * 56
        delays = [retry_delay(n, key, backoff=0.05) for n in (1, 2, 3, 10)]
        assert delays == [retry_delay(n, key, backoff=0.05) for n in (1, 2, 3, 10)]
        assert delays[0] < delays[1] < delays[2]  # exponential while unbounded
        jitter = 1.0 + int(key[:8], 16) / float(0xFFFFFFFF)
        assert delays[3] == MAX_RETRY_DELAY * jitter  # exponential is capped
        # Different fingerprints jitter differently (no thundering herd).
        other = "00000001" + "0" * 56
        assert retry_delay(1, key, 0.05) != retry_delay(1, other, 0.05)


class TestChaosSurvival:
    def test_killed_worker_cells_are_resubmitted_not_lost(self, chaos, tmp_path):
        chaos("kill", label="fp16")
        store = ResultStore(tmp_path / "store.jsonl")
        report = run_campaign(
            two_by_two_campaign(), store=store, jobs=2, retry_backoff=0.001
        )
        assert report.failed == 0
        assert report.ran == 4
        assert report.retried >= 1  # at least the killed cell paid an attempt
        # No lost results: every cell of the sweep is in the store, and a
        # re-run is pure cache hits.
        again = run_campaign(two_by_two_campaign(), store=store, jobs=1)
        assert again.cached == 4 and again.ran == 0

    def test_chaos_survivor_results_match_clean_run(self, chaos, tmp_path):
        clean_store = ResultStore(tmp_path / "clean.jsonl")
        clean = run_campaign(two_by_two_campaign(), store=clean_store, jobs=1)
        chaos("kill", label="fp16")
        chaos_store = ResultStore(tmp_path / "chaos.jsonl")
        survived = run_campaign(
            two_by_two_campaign(), store=chaos_store, jobs=2, retry_backoff=0.001
        )
        assert [r.to_dict() for r in survived.results()] == [
            r.to_dict() for r in clean.results()
        ]

    def test_hung_worker_times_out_and_sweep_continues(self, chaos, tmp_path):
        chaos("hang", label="fp16")
        store = ResultStore(tmp_path / "store.jsonl")
        report = run_campaign(
            two_by_two_campaign(), store=store, jobs=2,
            retry_backoff=0.001, cell_timeout=3.0,
        )
        statuses = {o.cell.label: o.status for o in report.outcomes}
        hung = [s for label, s in statuses.items() if "fp16" in label]
        healthy = [s for label, s in statuses.items() if "fp16" not in label]
        # Exactly one fp16 cell hit the armed chaos and timed out; everything
        # else survived the pool recycle and completed.
        assert hung.count(STATUS_TIMEOUT) == 1
        assert hung.count(STATUS_RAN) == 1
        assert healthy == [STATUS_RAN, STATUS_RAN]
        timed_out = next(o for o in report.outcomes if o.status == STATUS_TIMEOUT)
        assert "watchdog timeout" in timed_out.error
        assert report.failed == 1  # timeouts count as failures in the report
