"""Gradient correctness of the autograd engine.

Every differentiable operation is checked against central finite differences
on small random inputs, which is the strongest guarantee we can give that the
model zoo's gradients — and therefore everything the compressors operate on —
are correct.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.tensorlib import Tensor


def numeric_gradient(fn, array: np.ndarray, epsilon: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar-valued ``fn`` w.r.t. ``array``."""
    grad = np.zeros_like(array, dtype=np.float64)
    flat = array.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + epsilon
        upper = fn(array)
        flat[i] = original - epsilon
        lower = fn(array)
        flat[i] = original
        grad_flat[i] = (upper - lower) / (2 * epsilon)
    return grad


def check_gradient(build_output, array: np.ndarray, atol: float = 1e-5) -> None:
    """Compare autograd gradients against finite differences."""
    tensor = Tensor(array.copy(), requires_grad=True)
    output = build_output(tensor)
    loss = output.sum()
    loss.backward()
    analytic = tensor.grad

    def scalar_fn(values: np.ndarray) -> float:
        return float(build_output(Tensor(values)).sum().data)

    numeric = numeric_gradient(scalar_fn, array.copy())
    np.testing.assert_allclose(analytic, numeric, atol=atol, rtol=1e-4)


@pytest.fixture
def x(rng) -> np.ndarray:
    return rng.standard_normal((3, 4))


class TestElementwiseGradients:
    def test_add(self, x, rng):
        other = Tensor(rng.standard_normal((3, 4)))
        check_gradient(lambda t: t + other, x)

    def test_add_broadcast(self, x, rng):
        other = Tensor(rng.standard_normal((4,)))
        check_gradient(lambda t: t + other, x)

    def test_mul(self, x, rng):
        other = Tensor(rng.standard_normal((3, 4)))
        check_gradient(lambda t: t * other, x)

    def test_sub_and_neg(self, x):
        check_gradient(lambda t: (-t) - 2.0, x)

    def test_div(self, x, rng):
        other = Tensor(np.abs(rng.standard_normal((3, 4))) + 1.0)
        check_gradient(lambda t: t / other, x)

    def test_rdiv(self, x):
        shifted = np.abs(x) + 1.0
        check_gradient(lambda t: 2.0 / t, shifted)

    def test_pow(self, x):
        positive = np.abs(x) + 0.5
        check_gradient(lambda t: t ** 3, positive)

    def test_exp(self, x):
        check_gradient(lambda t: t.exp(), x)

    def test_log(self, x):
        positive = np.abs(x) + 0.5
        check_gradient(lambda t: t.log(), positive)

    def test_sqrt(self, x):
        positive = np.abs(x) + 0.5
        check_gradient(lambda t: t.sqrt(), positive)

    def test_tanh(self, x):
        check_gradient(lambda t: t.tanh(), x)

    def test_sigmoid(self, x):
        check_gradient(lambda t: t.sigmoid(), x)

    def test_relu(self, x):
        # Shift away from the kink where finite differences are ill-defined.
        shifted = x + np.where(np.abs(x) < 1e-3, 0.1, 0.0)
        check_gradient(lambda t: t.relu(), shifted)

    def test_gelu(self, x):
        check_gradient(lambda t: t.gelu(), x, atol=1e-4)


class TestMatmulGradients:
    def test_matmul_2d(self, rng):
        a = rng.standard_normal((3, 5))
        b = Tensor(rng.standard_normal((5, 2)))
        check_gradient(lambda t: t.matmul(b), a)

    def test_matmul_right_operand(self, rng):
        a = Tensor(rng.standard_normal((3, 5)))
        b = rng.standard_normal((5, 2))
        check_gradient(lambda t: a.matmul(t), b)

    def test_matmul_batched(self, rng):
        a = rng.standard_normal((2, 3, 4))
        b = Tensor(rng.standard_normal((2, 4, 5)))
        check_gradient(lambda t: t.matmul(b), a)

    def test_matmul_broadcast_weights(self, rng):
        a = rng.standard_normal((2, 3, 4))
        b = Tensor(rng.standard_normal((4, 5)), requires_grad=True)
        check_gradient(lambda t: t.matmul(b), a)


class TestReductionGradients:
    def test_sum_all(self, x):
        check_gradient(lambda t: t.sum(), x)

    def test_sum_axis(self, x):
        check_gradient(lambda t: t.sum(axis=0), x)

    def test_sum_keepdims(self, x):
        check_gradient(lambda t: t.sum(axis=1, keepdims=True), x)

    def test_mean(self, x):
        check_gradient(lambda t: t.mean(axis=1), x)

    def test_var(self, x):
        check_gradient(lambda t: t.var(axis=0), x, atol=1e-4)

    def test_max(self, rng):
        values = rng.standard_normal((4, 5))
        # Perturb to avoid ties which break finite differences.
        values += np.arange(20).reshape(4, 5) * 1e-3
        check_gradient(lambda t: t.max(axis=1), values)


class TestSoftmaxGradients:
    def test_softmax(self, x):
        check_gradient(lambda t: t.softmax(axis=-1), x, atol=1e-4)

    def test_log_softmax(self, x):
        check_gradient(lambda t: t.log_softmax(axis=-1), x, atol=1e-4)

    def test_softmax_rows_sum_to_one(self, x):
        probs = Tensor(x).softmax(axis=-1)
        np.testing.assert_allclose(probs.data.sum(axis=-1), np.ones(3), atol=1e-12)


class TestShapeGradients:
    def test_reshape(self, x):
        check_gradient(lambda t: t.reshape(4, 3), x)

    def test_flatten(self, rng):
        values = rng.standard_normal((2, 3, 4))
        check_gradient(lambda t: t.flatten(start_dim=1), values)

    def test_transpose(self, rng):
        values = rng.standard_normal((2, 3, 4))
        check_gradient(lambda t: t.transpose(2, 0, 1), values)

    def test_getitem(self, x):
        check_gradient(lambda t: t[1:, :2], x)

    def test_getitem_fancy(self, x):
        idx = np.array([0, 2])
        check_gradient(lambda t: t[idx], x)

    def test_pad(self, x):
        check_gradient(lambda t: t.pad(((1, 1), (0, 2))), x)

    def test_concatenate(self, rng):
        a = rng.standard_normal((2, 3))
        b = Tensor(rng.standard_normal((2, 3)))
        check_gradient(lambda t: Tensor.cat([t, b], axis=0), a)

    def test_stack(self, rng):
        a = rng.standard_normal((2, 3))
        b = Tensor(rng.standard_normal((2, 3)))
        check_gradient(lambda t: Tensor.stack([t, b], axis=0), a)


class TestBackwardSemantics:
    def test_backward_accumulates_for_shared_node(self, rng):
        x = Tensor(rng.standard_normal(4), requires_grad=True)
        y = x * 2.0
        z = (y + y).sum()
        z.backward()
        np.testing.assert_allclose(x.grad, np.full(4, 4.0))

    def test_backward_requires_scalar_without_seed(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(ValueError):
            (x * 2).backward()

    def test_backward_with_explicit_seed(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = x * 3.0
        y.backward(np.array([1.0, 2.0, 3.0]))
        np.testing.assert_allclose(x.grad, [3.0, 6.0, 9.0])

    def test_no_grad_disables_tracking(self):
        from repro.tensorlib import no_grad

        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad
        assert y._backward is None

    def test_detach_breaks_graph(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = (x * 2.0).detach()
        z = (y * 3.0).sum()
        z.backward()
        assert x.grad is None

    def test_zero_grad(self):
        x = Tensor(np.ones(3), requires_grad=True)
        (x * 2).sum().backward()
        assert x.grad is not None
        x.zero_grad()
        assert x.grad is None

    def test_deep_chain_does_not_recurse(self):
        # The iterative topological sort must handle graphs deeper than the
        # default Python recursion limit.
        x = Tensor(np.ones(1), requires_grad=True)
        y = x
        for _ in range(2000):
            y = y + 1.0
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [1.0])
