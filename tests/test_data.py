"""Synthetic datasets, loaders, distributed sharding."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    DataLoader,
    DistributedSampler,
    SyntheticImageClassification,
    make_dataset,
    synthetic_cifar10,
    synthetic_cifar100,
    train_test_split,
)
from repro.data.synthetic import DatasetSpec


class TestSyntheticDataset:
    def test_shapes_and_labels(self):
        dataset = synthetic_cifar10(num_samples=64, image_size=8, seed=0)
        image, label = dataset[0]
        assert image.shape == (3, 8, 8)
        assert 0 <= label < 10
        assert len(dataset) == 64
        assert dataset.num_classes == 10
        assert dataset.input_shape == (3, 8, 8)

    def test_cifar100_has_100_classes(self):
        dataset = synthetic_cifar100(num_samples=256, seed=0)
        assert dataset.num_classes == 100
        assert set(np.unique(dataset.labels)).issubset(set(range(100)))

    def test_deterministic_given_seed(self):
        a = synthetic_cifar10(num_samples=32, seed=3)
        b = synthetic_cifar10(num_samples=32, seed=3)
        np.testing.assert_array_equal(a.images, b.images)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_different_seeds_differ(self):
        a = synthetic_cifar10(num_samples=32, seed=3)
        b = synthetic_cifar10(num_samples=32, seed=4)
        assert not np.array_equal(a.images, b.images)

    def test_classes_are_separable(self):
        """Samples are closer (on average) to their own class prototype than to others —
        the property that makes the task learnable."""
        dataset = synthetic_cifar10(num_samples=200, seed=0, noise_std=0.5)
        own, other = [], []
        for i in range(len(dataset)):
            image, label = dataset[i]
            distances = np.sum((dataset.prototypes - image) ** 2, axis=(1, 2, 3))
            own.append(distances[label])
            other.append(np.delete(distances, label).mean())
        assert np.mean(own) < np.mean(other)

    def test_subset(self):
        dataset = synthetic_cifar10(num_samples=50, seed=0)
        sub = dataset.subset(np.array([0, 5, 10]))
        assert len(sub) == 3
        np.testing.assert_array_equal(sub[1][0], dataset[5][0])

    def test_make_dataset_by_name(self):
        assert make_dataset("cifar10", num_samples=16).num_classes == 10
        assert make_dataset("CIFAR-100", num_samples=16).num_classes == 100
        with pytest.raises(KeyError):
            make_dataset("imagenet")

    def test_spec_roundtrip(self):
        spec = DatasetSpec(num_classes=5, num_samples=20, image_size=4, seed=9)
        dataset = SyntheticImageClassification(spec)
        assert dataset.spec.num_classes == 5
        assert dataset[0][0].shape == (3, 4, 4)


class TestTrainTestSplit:
    def test_sizes(self):
        dataset = synthetic_cifar10(num_samples=100, seed=0)
        train, test = train_test_split(dataset, test_fraction=0.2, seed=0)
        assert len(train) == 80
        assert len(test) == 20

    def test_disjoint(self):
        dataset = synthetic_cifar10(num_samples=40, seed=0)
        train, test = train_test_split(dataset, test_fraction=0.5, seed=1)
        train_rows = {tuple(img.reshape(-1)[:5]) for img in train.images}
        test_rows = {tuple(img.reshape(-1)[:5]) for img in test.images}
        assert not train_rows & test_rows

    def test_invalid_fraction(self):
        dataset = synthetic_cifar10(num_samples=10, seed=0)
        with pytest.raises(ValueError):
            train_test_split(dataset, test_fraction=1.5)


class TestDistributedSampler:
    def test_shards_are_disjoint_and_cover_dataset(self):
        world_size = 4
        samplers = [
            DistributedSampler(100, world_size, rank, shuffle=True, seed=0)
            for rank in range(world_size)
        ]
        shards = [set(s.indices().tolist()) for s in samplers]
        union = set().union(*shards)
        assert len(union) == 100
        for i in range(world_size):
            for j in range(i + 1, world_size):
                assert not shards[i] & shards[j]

    def test_equal_shard_sizes_with_drop_last(self):
        samplers = [DistributedSampler(103, 4, rank, drop_last=True) for rank in range(4)]
        sizes = {len(s.indices()) for s in samplers}
        assert sizes == {25}

    def test_padding_without_drop_last(self):
        samplers = [DistributedSampler(10, 4, rank, drop_last=False, shuffle=False) for rank in range(4)]
        sizes = {len(s.indices()) for s in samplers}
        assert sizes == {3}

    def test_epoch_changes_order(self):
        sampler = DistributedSampler(64, 2, 0, shuffle=True, seed=0)
        first = sampler.indices().copy()
        sampler.set_epoch(1)
        second = sampler.indices()
        assert not np.array_equal(first, second)

    def test_no_shuffle_is_strided(self):
        sampler = DistributedSampler(8, 2, 1, shuffle=False)
        np.testing.assert_array_equal(sampler.indices(), [1, 3, 5, 7])

    def test_invalid_rank(self):
        with pytest.raises(ValueError):
            DistributedSampler(10, 2, 5)


class TestDataLoader:
    def test_batch_shapes(self, tiny_dataset):
        loader = DataLoader(tiny_dataset, batch_size=16)
        images, labels = next(iter(loader))
        assert images.shape == (16, 3, 8, 8)
        assert labels.shape == (16,)
        assert labels.dtype == np.int64

    def test_len_and_iteration_count(self, tiny_dataset):
        loader = DataLoader(tiny_dataset, batch_size=40)
        batches = list(loader)
        assert len(batches) == len(loader) == 3  # 96 samples -> 40+40+16

    def test_drop_last(self, tiny_dataset):
        loader = DataLoader(tiny_dataset, batch_size=40, drop_last=True)
        assert len(list(loader)) == 2

    def test_shuffle_changes_with_epoch(self, tiny_dataset):
        loader = DataLoader(tiny_dataset, batch_size=96, shuffle=True, seed=0)
        first = next(iter(loader))[1].copy()
        loader.set_epoch(1)
        second = next(iter(loader))[1]
        assert not np.array_equal(first, second)

    def test_with_distributed_sampler(self, tiny_dataset):
        sampler = DistributedSampler(len(tiny_dataset), 4, 2, seed=0)
        loader = DataLoader(tiny_dataset, batch_size=8, sampler=sampler)
        total = sum(len(labels) for _, labels in loader)
        assert total == len(tiny_dataset) // 4

    def test_invalid_batch_size(self, tiny_dataset):
        with pytest.raises(ValueError):
            DataLoader(tiny_dataset, batch_size=0)
