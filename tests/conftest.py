"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import synthetic_cifar10, train_test_split, DataLoader
from repro.nn.models import mlp_tiny
from repro.simulation import ClusterSpec


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def tiny_dataset():
    """A small deterministic 10-class dataset (96 samples of 3x8x8 images)."""
    return synthetic_cifar10(num_samples=96, image_size=8, seed=7)


@pytest.fixture
def tiny_split(tiny_dataset):
    return train_test_split(tiny_dataset, test_fraction=0.25, seed=7)


@pytest.fixture
def tiny_loader(tiny_dataset):
    return DataLoader(tiny_dataset, batch_size=16, shuffle=True, seed=3)


@pytest.fixture
def tiny_model():
    return mlp_tiny(num_classes=10, seed=11)


@pytest.fixture
def small_cluster():
    return ClusterSpec(world_size=4, bandwidth="100Mbps")


@pytest.fixture
def sample_batch(tiny_dataset):
    images = np.stack([tiny_dataset[i][0] for i in range(8)])
    labels = np.array([tiny_dataset[i][1] for i in range(8)])
    return images, labels
