"""Packaging metadata for the PacTrain reproduction.

The project uses a ``src/`` layout; ``pip install -e .`` exposes the
``repro`` package.  Benchmarks and examples are run from the repository
checkout and are intentionally not installed.
"""

import os

from setuptools import find_packages, setup


def _read_long_description() -> str:
    readme = os.path.join(os.path.dirname(os.path.abspath(__file__)), "README.md")
    with open(readme, encoding="utf-8") as handle:
        return handle.read()


setup(
    name="pactrain-repro",
    version="0.2.0",
    description=(
        "Reproduction of PacTrain: pruning-aware gradient compression for "
        "bandwidth-limited data-parallel training, with a composable "
        "encode/reduce/decode codec pipeline and measured wire-byte accounting"
    ),
    long_description=_read_long_description(),
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=[
        "numpy>=1.24",
        "networkx>=3.0",
    ],
    extras_require={
        "test": ["pytest", "hypothesis", "pytest-benchmark"],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "License :: OSI Approved :: MIT License",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Scientific/Engineering :: Artificial Intelligence",
        "Topic :: System :: Distributed Computing",
    ],
    keywords="gradient-compression distributed-training pruning simulation reproduction",
)
