"""Setup shim so that ``pip install -e .`` works without the ``wheel`` package.

All project metadata lives in ``pyproject.toml``; this file only enables the
legacy editable-install path (``--no-use-pep517`` is not required: pip falls
back to ``setup.py develop`` when wheel building is unavailable).
"""

from setuptools import setup

setup()
