"""The perf microbenchmark suite.

Four tracked hot paths, each timed with warmup iterations followed by
median-of-k measurement (the median is robust to scheduler noise; min and mean
are reported alongside):

* ``train_step/<dtype>`` — a full 4-rank ResNet-18 DDP training step (forward,
  backward, arena staging, all-reduce, write-back, optimiser) in float64 and
  float32;
* ``train_step_scaling`` — the same step at world sizes 16 and 64, comparing
  the world-batched execution path against the per-rank loop;
* ``codec/<spec>`` — encode→reduce/gather→decode round trips of representative
  codec pipelines over a (4, numel) gradient matrix;
* ``engine/event_loop`` — the discrete-event engine scheduling many buckets
  over heterogeneous ranks;
* ``campaign/dispatch`` — campaign cell expansion plus content-address
  fingerprinting (the runner's per-cell dispatch overhead, no training);
* ``im2col/<backend>``, ``pool/<backend>``, ``fused_norm/<backend>`` — the
  routed hot kernels of the backend seam, one row per backend whose library is
  importable and whose probes accepted it (numpy always measures; its row is
  the reference the derived ``*_numba_speedup_vs_numpy`` metrics divide by);
* ``campaign/backend_sweep/<backend>`` — wall-clock of a small conv campaign
  pinned to each available backend through the ``backend`` campaign axis,
  demonstrating that backend selection moves end-to-end campaign time, not
  just microbenchmarks.

``run_suite`` returns results keyed by benchmark name; ``write_report`` emits
the ``BENCH_perf.json`` document and ``check_regressions`` compares a run
against a committed baseline with a configurable noise margin.
"""

from __future__ import annotations

import json
import platform
import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

#: Report schema version (bump when the JSON layout changes).
SCHEMA_VERSION = 1


@dataclass
class BenchResult:
    """Timing summary of one microbenchmark."""

    name: str
    median_s: float
    mean_s: float
    min_s: float
    repeats: int
    warmup: int
    meta: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict:
        return {
            "median_s": self.median_s,
            "mean_s": self.mean_s,
            "min_s": self.min_s,
            "repeats": self.repeats,
            "warmup": self.warmup,
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, name: str, data: Dict) -> "BenchResult":
        return cls(
            name=name,
            median_s=float(data["median_s"]),
            mean_s=float(data.get("mean_s", data["median_s"])),
            min_s=float(data.get("min_s", data["median_s"])),
            repeats=int(data.get("repeats", 1)),
            warmup=int(data.get("warmup", 0)),
            meta=dict(data.get("meta", {})),
        )


def time_callable(
    fn: Callable[[], object],
    name: str,
    repeats: int,
    warmup: int,
    meta: Optional[Dict[str, float]] = None,
) -> BenchResult:
    """Median-of-k wall-clock timing with warmup (perf_counter based)."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    for _ in range(warmup):
        fn()
    samples: List[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return BenchResult(
        name=name,
        median_s=float(statistics.median(samples)),
        mean_s=float(statistics.fmean(samples)),
        min_s=float(min(samples)),
        repeats=repeats,
        warmup=warmup,
        meta=dict(meta or {}),
    )


# --------------------------------------------------------------------------- #
# Benchmarks
# --------------------------------------------------------------------------- #
def _train_step_setup(
    dtype: str,
    world_size: int = 4,
    execution: str = "batched",
    batch_size: Optional[int] = None,
):
    # Imported lazily so `repro.perf` stays importable without pulling the
    # whole training stack at module import time.
    from repro.comm.process_group import ProcessGroup  # noqa: PLC0415
    from repro.data import DataLoader, DistributedSampler, synthetic_cifar10  # noqa: PLC0415
    from repro.ddp import DistributedDataParallel  # noqa: PLC0415
    from repro.nn.models import build_model  # noqa: PLC0415
    from repro.tensorlib import default_dtype, functional as F  # noqa: PLC0415

    # 128 samples shard evenly at every measured world size.
    if batch_size is None:
        batch_size = min(16, 128 // world_size)
    with default_dtype(dtype):
        dataset = synthetic_cifar10(num_samples=128, image_size=8, seed=0)
        model = build_model("resnet18", num_classes=10, seed=0)
        ddp = DistributedDataParallel(model, world_size=world_size, process_group=ProcessGroup(world_size))
        loaders = [
            DataLoader(dataset, batch_size=batch_size, sampler=DistributedSampler(len(dataset), world_size, rank, seed=0))
            for rank in range(world_size)
        ]
        batches = [next(iter(loader)) for loader in loaders]

    def step() -> None:
        with default_dtype(dtype):
            ddp.train_step(batches, F.cross_entropy, execution=execution)

    return step, {"world_size": world_size, "batch_size": batch_size}


def bench_train_step(quick: bool) -> List[BenchResult]:
    """4-rank ResNet-18 train step, float64 and float32 compute paths."""
    repeats, warmup = (5, 1) if quick else (11, 3)
    results = []
    for dtype in ("float64", "float32"):
        step, meta = _train_step_setup(dtype)
        results.append(
            time_callable(
                step,
                name=f"train_step/{dtype}/resnet18/w4",
                repeats=repeats,
                warmup=warmup,
                meta=meta,
            )
        )
    return results


def bench_train_step_scaling(quick: bool) -> List[BenchResult]:
    """World-size scaling of the train step: batched vs per-rank looped.

    Rows use single-sample per-rank batches — the regime the campaign actually
    hits at high world sizes (its 64-sample golden dataset shards to one
    sample per rank at 64 ranks), and the one that isolates the per-rank
    dispatch overhead batched execution amortises.  The headline row pair is
    w16 batched vs looped — their ratio is the derived
    ``train_step_batched_speedup_vs_looped_w16`` metric — plus a w64 batched
    row showing the strategy holds as the world grows.  Execution strategy is
    encoded in the row name; ``meta`` stays numeric so the regression gate's
    workload comparison keeps working.
    """
    repeats, warmup = (3, 1) if quick else (9, 2)
    cases = [
        (16, "batched"),
        (16, "looped"),
        (64, "batched"),
    ]
    results = []
    for world_size, execution in cases:
        step, meta = _train_step_setup(
            "float64", world_size=world_size, execution=execution, batch_size=1
        )
        results.append(
            time_callable(
                step,
                name=f"train_step/float64/resnet18/w{world_size}/{execution}",
                repeats=repeats,
                warmup=warmup,
                meta=meta,
            )
        )
    return results


def bench_codec(quick: bool) -> List[BenchResult]:
    """Encode→aggregate→decode round trips of representative pipelines."""
    from repro.comm.process_group import ProcessGroup  # noqa: PLC0415
    from repro.compression.registry import build_compressor  # noqa: PLC0415
    from repro.ddp.bucket import Bucket, BucketSlice, GradBucket  # noqa: PLC0415

    numel = 50_000 if quick else 200_000
    world = 4
    repeats, warmup = (5, 1) if quick else (15, 3)
    rng = np.random.default_rng(0)
    matrix = rng.standard_normal((world, numel))
    bucket = Bucket(index=0, slices=[BucketSlice("flat", 0, numel, (numel,))])

    results = []
    for spec in ("fp16", "topk0.01", "topk0.01+terngrad", "randomk0.1"):
        compressor = build_compressor(spec, seed=0)
        group = ProcessGroup(world)

        def roundtrip(compressor=compressor, group=group) -> None:
            grad_bucket = GradBucket(bucket, matrix=matrix)
            compressor.aggregate(grad_bucket, group, iteration=0)
            group.events.clear()

        results.append(
            time_callable(
                roundtrip,
                name=f"codec/{spec}",
                repeats=repeats,
                warmup=warmup,
                meta={"numel": numel, "world_size": world},
            )
        )
    return results


def bench_engine(quick: bool) -> BenchResult:
    """Event-loop throughput: many buckets over heterogeneous ranks."""
    from repro.simulation.engine import SimulationEngine  # noqa: PLC0415

    iterations = 100 if quick else 400
    ranks = 8
    buckets = 32
    engine = SimulationEngine(overlap=True)
    per_rank_compute = [0.01 * (1.0 + 0.05 * rank) for rank in range(ranks)]
    fractions = [(index + 1) / buckets for index in range(buckets)]
    comm = [0.001 + 0.0001 * index for index in range(buckets)]

    def run() -> None:
        for _ in range(iterations):
            engine.run_iteration(per_rank_compute, fractions, comm)

    return time_callable(
        run,
        name="engine/event_loop",
        repeats=5 if quick else 9,
        warmup=1 if quick else 2,
        meta={"iterations": iterations, "ranks": ranks, "buckets": buckets},
    )


def bench_campaign_dispatch(quick: bool) -> BenchResult:
    """Campaign expansion + content-address fingerprinting of every cell."""
    from repro.campaign.spec import CampaignSpec  # noqa: PLC0415

    spec = CampaignSpec(
        name="perf-dispatch",
        base={"epochs": 2, "dataset_samples": 64, "max_iterations_per_epoch": 1},
        axes={
            "model": ["resnet18", "vgg19", "vit-base-16", "mlp"],
            "method": ["all-reduce", "fp16", "topk-0.01", "pactrain"],
            "bandwidth": ["100Mbps", "1Gbps"],
            "seed": [0, 1],
        },
    )

    def dispatch() -> None:
        for cell in spec.expand():
            cell.fingerprint()

    return time_callable(
        dispatch,
        name="campaign/dispatch",
        repeats=3 if quick else 7,
        warmup=1,
        meta={"cells": float(len(spec.expand()))},
    )


def _kernel_backends():
    """The backends to measure kernel rows for: numpy plus every optional
    backend whose library imports *and* whose construction did not degrade.

    Resolved through the process cache so numba's JIT compilation and probes
    are paid once across the three kernel benchmark groups.
    """
    from repro.tensorlib.backend import available_backends, shared_backend  # noqa: PLC0415

    backends = []
    for name in available_backends():
        backend = shared_backend(name)
        if backend.name == name:
            backends.append((name, backend))
    return backends


def bench_im2col(quick: bool) -> List[BenchResult]:
    """The im2col patch gather (conv/pool forward + transposed-conv grad)."""
    repeats, warmup = (9, 2) if quick else (25, 5)
    n, c = (4, 8) if quick else (16, 16)
    hp = wp = 34
    kernel, stride = (3, 3), (1, 1)
    out_hw = (hp - 3 + 1, wp - 3 + 1)
    rng = np.random.default_rng(0)
    padded = rng.standard_normal((n, c, hp, wp))
    meta = {"n": n, "c": c, "hp": hp, "wp": wp, "k": 3, "stride": 1}
    results = []
    for name, backend in _kernel_backends():
        results.append(
            time_callable(
                lambda backend=backend: backend.im2col_gather(padded, kernel, stride, out_hw),
                name=f"im2col/{name}",
                repeats=repeats,
                warmup=warmup,
                meta=meta,
            )
        )
    return results


def bench_pool(quick: bool) -> List[BenchResult]:
    """Pooling window reductions (max with argmax, mean) over im2col windows."""
    repeats, warmup = (9, 2) if quick else (25, 5)
    flat = 512 if quick else 2048
    length, k = 64, 9
    rng = np.random.default_rng(1)
    cols = rng.standard_normal((flat, length, k))
    meta = {"flat": flat, "length": length, "k": k}
    results = []
    for name, backend in _kernel_backends():

        def reduce_windows(backend=backend) -> None:
            backend.pool_reduce(cols, "max")
            backend.pool_reduce(cols, "mean")

        results.append(
            time_callable(
                reduce_windows,
                name=f"pool/{name}",
                repeats=repeats,
                warmup=warmup,
                meta=meta,
            )
        )
    return results


def bench_fused_norm(quick: bool) -> List[BenchResult]:
    """Fused LayerNorm statistics + backward over the last axis (float32)."""
    repeats, warmup = (9, 2) if quick else (25, 5)
    shape = (32, 64, 256) if quick else (128, 197, 256)
    axes = (len(shape) - 1,)
    rng = np.random.default_rng(2)
    data = rng.standard_normal(shape).astype(np.float32)
    grad = rng.standard_normal(shape).astype(np.float32)
    w = rng.standard_normal(shape[-1]).astype(np.float32)
    meta = {"rows": shape[0] * shape[1], "dim": shape[-1]}
    results = []
    for name, backend in _kernel_backends():

        def norm_roundtrip(backend=backend) -> None:
            _, _, inv_std, x_hat = backend.fused_norm_stats(data, axes, 1e-5)
            backend.fused_norm_backward(grad, w, x_hat, inv_std, axes)

        results.append(
            time_callable(
                norm_roundtrip,
                name=f"fused_norm/{name}",
                repeats=repeats,
                warmup=warmup,
                meta=meta,
            )
        )
    return results


def bench_backend_sweep(quick: bool) -> List[BenchResult]:
    """End-to-end campaign wall-clock per backend (the ``backend`` axis).

    Each row trains the same tiny 2-rank conv campaign with its cells pinned
    to one backend via ``ExperimentConfig.backend`` — the exact mechanism a
    real sweep's ``backend`` axis uses — so the rows show whether a backend
    moves campaign time where the north-star workload lives.
    """
    from repro.campaign.runner import run_campaign  # noqa: PLC0415
    from repro.campaign.spec import CampaignSpec  # noqa: PLC0415

    repeats, warmup = (3, 1) if quick else (5, 1)
    results = []
    for name, _ in _kernel_backends():
        spec = CampaignSpec(
            name=f"perf-backend-sweep-{name}",
            base={
                "model": "resnet18",
                "epochs": 1,
                "batch_size": 4,
                "dataset_samples": 16,
                "image_size": 8,
                "pretrain_iterations": 0,
                "max_iterations_per_epoch": 2,
                "world_size": 2,
                "bandwidth": "100Mbps",
                "backend": name,
            },
            axes={"seed": [0, 1], "method": ["all-reduce", "topk-0.01"]},
        )

        def sweep(spec=spec) -> None:
            run_campaign(spec, store=None, jobs=1, recompute=True)

        results.append(
            time_callable(
                sweep,
                name=f"campaign/backend_sweep/{name}",
                repeats=repeats,
                warmup=warmup,
                meta={"cells": float(len(spec.expand()))},
            )
        )
    return results


#: name -> factory returning one result or a list of results.
SUITE: Dict[str, Callable[[bool], object]] = {
    "train_step": bench_train_step,
    "train_step_scaling": bench_train_step_scaling,
    "codec": bench_codec,
    "engine": bench_engine,
    "campaign": bench_campaign_dispatch,
    "im2col": bench_im2col,
    "pool": bench_pool,
    "fused_norm": bench_fused_norm,
    "backend_sweep": bench_backend_sweep,
}


def host_fingerprint() -> Dict[str, str]:
    """Identify the measuring host: interpreter, numpy build, architecture.

    Medians from different hosts are not comparable; the fingerprint is stored
    in every report so ``check_regressions`` consumers (the CLI's ``--check``)
    can downgrade cross-host comparisons to warnings instead of failures.
    """
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
    }


def hosts_match(baseline: Dict) -> bool:
    """Whether ``baseline`` (a report document) was measured on this host."""
    return dict(baseline.get("host", {})) == host_fingerprint()


# --------------------------------------------------------------------------- #
# Runner / report / regression check
# --------------------------------------------------------------------------- #
def run_suite(
    quick: bool = False,
    only: Optional[List[str]] = None,
    progress: Optional[Callable[[BenchResult], None]] = None,
) -> Dict[str, BenchResult]:
    """Run (a subset of) the suite; returns results keyed by benchmark name."""
    selected = list(SUITE) if not only else only
    unknown = set(selected) - set(SUITE)
    if unknown:
        raise KeyError(f"unknown perf benchmarks {sorted(unknown)}; available: {sorted(SUITE)}")
    results: Dict[str, BenchResult] = {}
    for key in selected:
        outcome = SUITE[key](quick)
        for result in outcome if isinstance(outcome, list) else [outcome]:
            results[result.name] = result
            if progress is not None:
                progress(result)
    return results


def _derived_metrics(results: Dict[str, BenchResult]) -> Dict[str, float]:
    derived: Dict[str, float] = {}
    f64 = results.get("train_step/float64/resnet18/w4")
    f32 = results.get("train_step/float32/resnet18/w4")
    if f64 and f32 and f32.median_s > 0:
        derived["train_step_float32_speedup_vs_float64"] = f64.median_s / f32.median_s
    batched = results.get("train_step/float64/resnet18/w16/batched")
    looped = results.get("train_step/float64/resnet18/w16/looped")
    if batched and looped and batched.median_s > 0:
        derived["train_step_batched_speedup_vs_looped_w16"] = looped.median_s / batched.median_s
    # Per-kernel and end-to-end backend speedups vs the numpy reference row.
    # Metrics only appear when both rows were measured (i.e. the accelerated
    # backend's library is installed and its probes accepted it).
    for group, metric in (
        ("im2col", "im2col_numba_speedup_vs_numpy"),
        ("pool", "pool_numba_speedup_vs_numpy"),
        ("fused_norm", "fused_norm_numba_speedup_vs_numpy"),
        ("campaign/backend_sweep", "campaign_backend_sweep_numba_speedup_vs_numpy"),
    ):
        reference = results.get(f"{group}/numpy")
        accelerated = results.get(f"{group}/numba")
        if reference and accelerated and accelerated.median_s > 0:
            derived[metric] = reference.median_s / accelerated.median_s
    return derived


#: Minimum values the derived metrics must reach when present: the numba
#: im2col gather is the headline JIT win this seam exists for, so a measured
#: run where it is not at least 1.5x the numpy reference fails ``--check``.
#: Absent metrics (numba not installed on the measuring host) are skipped.
DERIVED_FLOORS: Dict[str, float] = {
    "im2col_numba_speedup_vs_numpy": 1.5,
}


def check_derived_floors(derived: Dict[str, float]) -> List[Tuple[str, float, float]]:
    """``(metric, value, floor)`` for every present derived metric below its floor."""
    failures: List[Tuple[str, float, float]] = []
    for metric, floor in DERIVED_FLOORS.items():
        value = derived.get(metric)
        if value is not None and value < floor:
            failures.append((metric, float(value), floor))
    return failures


def write_report(
    results: Dict[str, BenchResult],
    path: str,
    quick: bool,
    seed_baseline: Optional[Dict] = None,
) -> Dict:
    """Write the ``BENCH_perf.json`` document and return it.

    ``seed_baseline`` (when given, e.g. copied forward from the committed
    report) records the pre-optimisation measurements and the speedups of the
    current run against them.
    """
    document: Dict = {
        "schema": SCHEMA_VERSION,
        "quick": quick,
        "host": host_fingerprint(),
        "results": {name: result.to_dict() for name, result in sorted(results.items())},
        "derived": _derived_metrics(results),
    }
    if seed_baseline:
        document["seed_baseline"] = seed_baseline
        speedups = {}
        for name, entry in seed_baseline.get("results", {}).items():
            current = results.get(name)
            baseline_median = entry.get("median_s", 0.0)
            if current and current.median_s > 0 and baseline_median:
                speedups[name] = baseline_median / current.median_s
        # The seed tree has no float32 path; its train-step baseline is the
        # float64 measurement, so the float32 row is also compared against it.
        f32 = results.get("train_step/float32/resnet18/w4")
        seed_f64 = seed_baseline.get("results", {}).get("train_step/float64/resnet18/w4", {})
        if f32 and f32.median_s > 0 and seed_f64.get("median_s"):
            speedups["train_step/float32/resnet18/w4"] = seed_f64["median_s"] / f32.median_s
        document["speedup_vs_seed"] = speedups
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return document


def check_regressions(
    results: Dict[str, BenchResult],
    baseline: Dict,
    max_regression: float = 0.25,
) -> List[Tuple[str, float, float]]:
    """Compare run medians against a baseline report document.

    Returns ``(name, current_median, baseline_median)`` for every benchmark
    whose median exceeds the baseline by more than ``max_regression``
    (fractional; 0.25 = 25 % slower).  Benchmarks missing on either side are
    skipped — adding a new benchmark must not fail old baselines — and so are
    benchmarks whose ``meta`` (workload size) differs from the baseline's:
    a ``--quick`` run's shrunken codec/engine workloads are not comparable to
    full-mode medians, while same-workload benches (train step) still gate.
    """
    regressions: List[Tuple[str, float, float]] = []
    for name, entry in baseline.get("results", {}).items():
        current = results.get(name)
        baseline_median = float(entry.get("median_s", 0.0))
        if current is None or baseline_median <= 0.0:
            continue
        if dict(entry.get("meta", {})) != dict(current.meta):
            continue
        if current.median_s > baseline_median * (1.0 + max_regression):
            regressions.append((name, current.median_s, baseline_median))
    return regressions
