"""Tracked performance microbenchmarks.

``python -m repro perf`` runs the suite in :mod:`repro.perf.suite` (train-step,
codec encode/decode, engine event-loop and campaign-dispatch timers, each with
warmup and median-of-k) and writes ``BENCH_perf.json``.  The committed copy of
that file is the regression baseline the CI perf-smoke job checks against.
"""

from repro.perf.suite import (
    BenchResult,
    DERIVED_FLOORS,
    SUITE,
    check_derived_floors,
    check_regressions,
    host_fingerprint,
    hosts_match,
    run_suite,
    time_callable,
    write_report,
)

__all__ = [
    "BenchResult",
    "DERIVED_FLOORS",
    "SUITE",
    "check_derived_floors",
    "check_regressions",
    "host_fingerprint",
    "hosts_match",
    "run_suite",
    "time_callable",
    "write_report",
]
