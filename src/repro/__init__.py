"""PacTrain reproduction.

A pure-Python (numpy) reproduction of *PacTrain: Pruning and Adaptive Sparse
Gradient Compression for Efficient Collective Communication in Distributed
Deep Learning* (DAC 2025), including every substrate the paper depends on:
an autograd engine and model zoo, a DDP simulator with gradient buckets and
communication hooks, an analytic collective-communication cost model, the
baseline gradient compressors, pruning + Gradient Sparsity Enforcement, and
the PacTrain Mask Tracker / adaptive sparse compressor themselves.

Quickstart
----------
>>> from repro.pactrain import PacTrainTrainer, PacTrainConfig
>>> from repro.simulation import ClusterSpec
>>> trainer = PacTrainTrainer(
...     model="resnet18",
...     dataset="cifar10",
...     cluster=ClusterSpec(world_size=4, bandwidth="100Mbps"),
...     config=PacTrainConfig(pruning_ratio=0.5),
...     epochs=2,
... )
>>> result = trainer.run()          # doctest: +SKIP
>>> print(result.final_accuracy)    # doctest: +SKIP

Parameter studies over many (model, bandwidth, method, seed) cells run through
the :mod:`repro.campaign` subsystem (``python -m repro sweep``); see the
README for the benchmark-to-figure map.
"""

__version__ = "1.0.0"

__all__ = [
    "tensorlib",
    "nn",
    "data",
    "comm",
    "ddp",
    "compression",
    "pruning",
    "pactrain",
    "simulation",
    "metrics",
    "campaign",
    "perf",
    "obs",
]
