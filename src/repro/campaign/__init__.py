"""Declarative sweep orchestration over the experiment driver.

The paper's evaluation is a grid — {vgg19, resnet18, resnet152, vit-base-16}
x {100 Mbps, 500 Mbps, 1 Gbps} x five methods — and this package turns such
grids from hand-rolled nested loops into data:

* :mod:`repro.campaign.spec`   — :class:`CampaignSpec`: grid/zip/explicit-cell
  axis composition expanding into deduplicated ``(ExperimentConfig,
  MethodSpec)`` cells;
* :mod:`repro.campaign.runner` — process-parallel execution with per-cell
  fail-soft error capture and progress callbacks;
* :mod:`repro.campaign.store`  — persistent content-addressed
  :class:`ResultStore` (JSONL) giving cache hits for unchanged cells, plus
  filter/pivot/relative-TTA queries;
* :mod:`repro.campaign.cli`    — the ``python -m repro run|sweep|report``
  front end driving campaigns from JSON/TOML spec files.

Quickstart
----------
>>> from repro.campaign import CampaignSpec, ResultStore, run_campaign
>>> spec = CampaignSpec(
...     name="mini-fig3",
...     base={"model": "resnet18", "epochs": 2, "world_size": 4},
...     axes={"bandwidth": ["100Mbps", "1Gbps"], "method": ["all-reduce", "pactrain"]},
... )
>>> report = run_campaign(spec, store=ResultStore("results.jsonl"), jobs=4)  # doctest: +SKIP
"""

from repro.campaign.runner import (
    CampaignReport,
    CellOutcome,
    run_campaign,
)
from repro.campaign.spec import (
    CampaignCell,
    CampaignSpec,
    build_cell,
    resolve_method,
)
from repro.campaign.store import (
    RESULT_SCHEMA_VERSION,
    ResultStore,
    StoredRecord,
    cell_fingerprint,
)

__all__ = [
    "CampaignCell",
    "CampaignReport",
    "CampaignSpec",
    "CellOutcome",
    "ResultStore",
    "RESULT_SCHEMA_VERSION",
    "StoredRecord",
    "build_cell",
    "cell_fingerprint",
    "resolve_method",
    "run_campaign",
]
