"""Persistent, content-addressed store of experiment results.

A :class:`ResultStore` is an append-only JSONL file: one record per executed
campaign cell, keyed by a SHA-256 fingerprint of the cell's full specification
(:meth:`ExperimentConfig.to_dict` + :meth:`MethodSpec.to_dict`) plus the
code-relevant versions (package version and record schema).  Re-running an
unchanged cell is a cache hit — the stored :class:`ExperimentResult` is
returned without training — while any change to the workload, cluster, method
or code version changes the fingerprint and forces a fresh run.

The store is also the query surface benchmarks and the ``python -m repro
report`` CLI aggregate from: records can be filtered by any axis (config,
cluster, method or result field), pivoted into tables, and normalised against
a named baseline method (the paper's relative-TTA presentation).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import warnings
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro import __version__
from repro.simulation.experiment import ExperimentConfig, ExperimentResult, MethodSpec

#: Bumped whenever the stored record layout (or the meaning of a stored field)
#: changes incompatibly; part of every fingerprint, so old records are simply
#: never hit again rather than misread.
#:
#: History: 2 — ``MethodSpec`` gained ``error_feedback`` (and the
#: signsgd/powersgd compressor families changed what a spec string can mean),
#: so records persisted by schema-1 stores are invalidated instead of being
#: silently served for the extended cell space.  3 — ``ClusterSpec`` gained
#: the ``faults`` axis (fault-injection scenarios), ``ExperimentResult``
#: gained fault/recovery accounting, and records gained the runner's
#: ``attempts`` count.
RESULT_SCHEMA_VERSION = 3


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values)


def canonical_json(payload) -> str:
    """Deterministic JSON encoding used for fingerprints (sorted keys, no whitespace)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def cell_fingerprint(config: ExperimentConfig, method: MethodSpec) -> str:
    """Content hash identifying one campaign cell.

    Covers the complete cell specification plus the code-relevant versions:
    two cells collide exactly when they would run the identical experiment
    under the identical code.
    """
    payload = {
        "config": config.to_dict(),
        "method": method.to_dict(),
        "schema": RESULT_SCHEMA_VERSION,
        "repro_version": __version__,
    }
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


@dataclass
class StoredRecord:
    """One persisted cell: its fingerprint, specification and result."""

    key: str
    config: Dict
    method: Dict
    result: ExperimentResult
    created: float = 0.0
    #: Executions the campaign runner started before this result landed
    #: (1 = clean first run; >1 = the cell was retried; 0 = unknown/legacy).
    attempts: int = 1

    def axis(self, name: str):
        """Look up an axis value by name across result, config, cluster and method.

        Resolution order mirrors how campaign axes are declared: result fields
        first (``method``, ``model``, ``bandwidth_mbps``, ``tta`` ...), then
        experiment-config fields (``seed``, ``epochs`` ...), then cluster
        fields (``world_size``, ``overlap``, ``straggler`` ...), then method
        fields (``compressor``, ``pruning_ratio`` ...).
        """
        if name == "attempts":
            return self.attempts
        if hasattr(self.result, name):
            return getattr(self.result, name)
        if name in self.config:
            return self.config[name]
        cluster = self.config.get("cluster", {})
        if name in cluster:
            return cluster[name]
        if name in self.method:
            return self.method[name]
        raise KeyError(f"unknown axis {name!r} for stored record {self.key[:12]}")

    def value(self, name: str) -> Optional[float]:
        """A numeric result metric by name, or ``None`` when unset.

        ``tta_or_total`` resolves through the method of the same name; ``tta``
        is ``None`` for runs that never reached their target (aggregations
        skip those records rather than failing).
        """
        if name == "tta_or_total":
            return self.result.tta_or_total()
        value = getattr(self.result, name)
        if value is None:
            return None
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise TypeError(f"result field {name!r} is not numeric (got {value!r})")
        return float(value)

    def to_json(self) -> str:
        return json.dumps(
            {
                "key": self.key,
                "schema": RESULT_SCHEMA_VERSION,
                "created": self.created,
                "attempts": self.attempts,
                "config": self.config,
                "method": self.method,
                "result": self.result.to_dict(),
            }
        )

    @classmethod
    def from_json(cls, line: str) -> "StoredRecord":
        data = json.loads(line)
        return cls(
            key=data["key"],
            config=data["config"],
            method=data["method"],
            result=ExperimentResult.from_dict(data["result"]),
            created=float(data.get("created", 0.0)),
            attempts=int(data.get("attempts", 1)),
        )


class ResultStore:
    """JSONL-backed result cache and query API.

    ``path=None`` keeps the store purely in memory (useful for tests and
    one-off sweeps).  On disk the store is append-only — re-executed cells
    append a fresh record and the latest record per key wins on load — so a
    crashed run never corrupts earlier results and the file doubles as a full
    run history.
    """

    def __init__(self, path: Optional[Union[str, os.PathLike]] = None) -> None:
        self.path = os.fspath(path) if path is not None else None
        self._records: Dict[str, StoredRecord] = {}
        #: Byte length of the valid prefix when the file ends in a torn line
        #: (a write interrupted mid-record); ``None`` when the file is whole.
        self._valid_bytes: Optional[int] = None
        self._load()

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def _load(self) -> None:
        if self.path is None or not os.path.exists(self.path):
            return
        with open(self.path, "rb") as handle:
            data = handle.read()
        raw = data.decode("utf-8")
        lines = raw.splitlines()
        for line_number, line in enumerate(lines, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = StoredRecord.from_json(line)
            except (json.JSONDecodeError, KeyError, TypeError) as error:
                if line_number == len(lines) and not raw.endswith("\n"):
                    # Torn final line from a killed writer: the records before
                    # it are intact, so drop it (that cell simply re-runs) and
                    # let the next append truncate the partial bytes away.
                    self._valid_bytes = len(data) - len(lines[-1].encode("utf-8"))
                    return
                # Corrupt interior (or complete-but-bad final) line — e.g. a
                # crashed writer raced another appender, or the file was
                # hand-edited.  Losing one record must not take the whole
                # sweep history with it: quarantine the bad line to
                # ``<store>.corrupt`` for forensics, warn, and keep loading.
                self._quarantine(line, line_number, error)
                continue
            self._records[record.key] = record

    def _quarantine(self, line: str, line_number: int, error: Exception) -> None:
        """Preserve one unreadable store line in ``<path>.corrupt`` and warn."""
        quarantine_path = f"{self.path}.corrupt"
        try:
            with open(quarantine_path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")
        except OSError:
            quarantine_path = "<unwritable>"
        warnings.warn(
            f"result store {self.path!r}: skipping corrupt record at line "
            f"{line_number} ({error}); bad line quarantined to {quarantine_path!r}",
            RuntimeWarning,
            stacklevel=2,
        )

    def _append(self, record: StoredRecord) -> None:
        if self.path is None:
            return
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        if self._valid_bytes is not None:
            with open(self.path, "r+b") as handle:
                handle.truncate(self._valid_bytes)
            self._valid_bytes = None
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(record.to_json() + "\n")

    # ------------------------------------------------------------------ #
    # Cache interface
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def keys(self) -> List[str]:
        return list(self._records)

    def get(self, config: ExperimentConfig, method: MethodSpec) -> Optional[ExperimentResult]:
        """The cached result for this exact cell, or ``None`` on a miss."""
        record = self._records.get(cell_fingerprint(config, method))
        return record.result if record is not None else None

    def get_by_key(self, key: str) -> Optional[ExperimentResult]:
        record = self._records.get(key)
        return record.result if record is not None else None

    def put(
        self,
        config: ExperimentConfig,
        method: MethodSpec,
        result: ExperimentResult,
        attempts: int = 1,
    ) -> str:
        """Persist one result; returns the cell fingerprint it is stored under.

        ``attempts`` records how many executions the campaign runner started
        before this result landed (>1 means the cell was retried).
        """
        key = cell_fingerprint(config, method)
        record = StoredRecord(
            key=key,
            config=config.to_dict(),
            method=method.to_dict(),
            result=result,
            created=time.time(),
            attempts=attempts,
        )
        self._records[key] = record
        self._append(record)
        return key

    # ------------------------------------------------------------------ #
    # Query / aggregation
    # ------------------------------------------------------------------ #
    def records(self, **filters) -> List[StoredRecord]:
        """All records whose axes match every ``name=value`` filter.

        Axis names resolve through :meth:`StoredRecord.axis`; records that do
        not define a filtered axis are excluded rather than erroring, so mixed
        campaigns can share one store.
        """
        matched = []
        for record in self._records.values():
            for name, wanted in filters.items():
                try:
                    value = record.axis(name)
                except KeyError:
                    break
                if value != wanted:
                    break
            else:
                matched.append(record)
        return matched

    def axis_values(self, axis: str, **filters) -> List:
        """Distinct values of one axis over the (filtered) records, in first-seen order."""
        seen: Dict = {}
        for record in self.records(**filters):
            try:
                seen.setdefault(record.axis(axis), None)
            except KeyError:
                continue
        return list(seen)

    def pivot(
        self,
        rows: str,
        cols: str,
        value: str = "simulated_time",
        aggregate: Optional[Callable[[Sequence[float]], float]] = None,
        fmt: str = "{:.3f}",
        **filters,
    ) -> Tuple[List[str], List[List[str]]]:
        """Pivot the store into a ``rows x cols`` table of one result metric.

        Multiple records per (row, col) bucket — e.g. several seeds — are
        reduced by ``aggregate`` (mean by default).  Returns ``(header,
        table_rows)`` ready for a plain-text table printer; empty buckets
        render as ``"-"``.
        """
        if aggregate is None:
            aggregate = _mean
        records = self.records(**filters)
        row_values = self.axis_values(rows, **filters)
        col_values = self.axis_values(cols, **filters)
        buckets: Dict[Tuple, List[float]] = {}
        for record in records:
            try:
                bucket = (record.axis(rows), record.axis(cols))
            except KeyError:
                continue
            metric = record.value(value)
            if metric is not None:
                buckets.setdefault(bucket, []).append(metric)
        header = [rows] + [str(col) for col in col_values]
        table = []
        for row in row_values:
            cells = [str(row)]
            for col in col_values:
                values = buckets.get((row, col))
                cells.append(fmt.format(aggregate(values)) if values else "-")
            table.append(cells)
        return header, table

    def relative_to_baseline(
        self,
        baseline: str,
        value: str = "tta_or_total",
        group_by: Sequence[str] = ("model", "bandwidth_mbps"),
        **filters,
    ) -> Dict[Tuple, Dict[str, float]]:
        """Per-group metric ratios against a named baseline method.

        The paper's relative-TTA presentation: within each group (by default
        one per model x bandwidth), every method's metric is divided by the
        baseline method's metric.  Several records per (group, method) — e.g.
        a seed axis — are mean-reduced first, consistently with
        :meth:`pivot`.  Groups without a baseline record are skipped.
        Returns ``{group_key: {method_name: ratio}}``.
        """
        groups: Dict[Tuple, Dict[str, List[float]]] = {}
        for record in self.records(**filters):
            try:
                group = tuple(record.axis(axis) for axis in group_by)
            except KeyError:
                continue
            metric = record.value(value)
            if metric is not None:
                groups.setdefault(group, {}).setdefault(record.result.method, []).append(metric)
        relative: Dict[Tuple, Dict[str, float]] = {}
        for group, by_method in groups.items():
            means = {name: _mean(metrics) for name, metrics in by_method.items()}
            base = means.get(baseline)
            if base is None or base == 0.0:
                continue
            relative[group] = {name: metric / base for name, metric in means.items()}
        return relative


def iter_jsonl(path: str) -> Iterable[Dict]:
    """Yield raw record dicts from a store file (debugging / external tooling)."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)
