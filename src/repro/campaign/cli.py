"""Command-line front end: ``python -m repro run|sweep|report|perf``.

* ``run`` — train one cell described by flags and print its headline metrics;
* ``sweep`` — execute a campaign spec file (JSON, or TOML on Python 3.11+)
  against a persistent result store, with ``--jobs N`` process parallelism and
  per-cell progress lines;
* ``report`` — query a store: pivot any result metric over any two axes and
  optionally normalise methods against a baseline (relative TTA);
* ``perf`` — run the tracked performance microbenchmarks
  (:mod:`repro.perf`), write ``BENCH_perf.json`` and optionally gate on a
  committed baseline (``--check``);
* ``golden`` — verify the committed golden-trace fixtures (``tests/golden/``)
  against fresh runs, or rewrite them with ``--update`` after an intentional
  numerical change (:mod:`repro.golden`);
* ``backends`` — list the array backends with availability and bit-identity
  probe status (available / degraded-to-numpy / per-kernel rejections), for
  debugging silent numpy fallback; ``--counters`` additionally runs a tiny
  smoke step per backend and prints per-kernel call counts/time/bytes;
* ``trace`` — consume a recorded observability trace (``run``/``sweep``
  ``--trace PATH``): ``report`` prints the summary tables, ``validate``
  checks the Chrome Trace Event structure, ``convert`` turns a raw JSONL
  stream into a Chrome trace.

Every command exits non-zero on failure; ``sweep`` exits non-zero if any cell
failed (the remaining cells still run and persist), ``perf --check`` exits
non-zero when a benchmark regressed beyond the allowed margin, ``golden``
exits non-zero when any frozen trace drifted, ``trace validate`` exits
non-zero on structural errors.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional, Sequence

from repro.campaign.runner import CampaignReport, Progress, run_campaign
from repro.campaign.spec import CampaignSpec, build_cell, load_spec_file
from repro.campaign.store import ResultStore


def format_table(header: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Plain-text table: header, dashed rule, aligned columns."""
    widths = [len(str(column)) for column in header]
    for row in rows:
        widths = [max(width, len(str(cell))) for width, cell in zip(widths, row)]
    lines = [
        "  ".join(str(cell).ljust(width) for cell, width in zip(header, widths)),
        "  ".join("-" * width for width in widths),
    ]
    lines.extend(
        "  ".join(str(cell).ljust(width) for cell, width in zip(row, widths)) for row in rows
    )
    return "\n".join(lines)


def _parse_axis_value(raw: str):
    """Parse a CLI axis value: JSON when it parses, bare string otherwise."""
    try:
        return json.loads(raw)
    except json.JSONDecodeError:
        return raw


def _parse_axis_pairs(pairs: Optional[Sequence[str]], flag: str) -> Dict:
    """Parse repeated ``AXIS=VALUE`` options (shared by --filter and --set)."""
    parsed: Dict = {}
    for pair in pairs or ():
        if "=" not in pair:
            raise SystemExit(f"{flag} expects axis=value, got {pair!r}")
        name, _, raw = pair.partition("=")
        parsed[name] = _parse_axis_value(raw)
    return parsed


def _progress_printer(quiet: bool):
    if quiet:
        return None

    def printer(progress: Progress) -> None:
        outcome = progress.outcome
        detail = ""
        if outcome.result is not None:
            detail = (
                f"  acc={outcome.result.final_accuracy:.3f}"
                f"  time={outcome.result.simulated_time:.3f}s"
            )
        timing = ""
        if not progress.cache_hit:
            timing = f"  [{progress.elapsed_s:.1f}s]"
        if progress.eta_s and progress.done < progress.total:
            timing += f"  eta~{progress.eta_s:.0f}s"
        print(
            f"[{progress.done}/{progress.total}] {outcome.status:<6} "
            f"{outcome.cell.label}{detail}{timing}",
            flush=True,
        )

    return printer


def _start_trace(path: Optional[str]) -> None:
    """Enable the process tracer when ``--trace PATH`` was given."""
    if not path:
        return
    from repro.obs import TRACER  # noqa: PLC0415

    TRACER.enable(path=path, role="main")


def _finish_trace(path: Optional[str], quiet: bool) -> None:
    """Flush, export and summarise a trace started by :func:`_start_trace`."""
    if not path:
        return
    from repro.obs import TRACER  # noqa: PLC0415
    from repro.obs.export import load_events, summary, write_chrome  # noqa: PLC0415

    paths = TRACER.finish()
    if not paths["jsonl"]:
        return
    events = load_events(paths["jsonl"])
    if paths["chrome"]:
        write_chrome(events, paths["chrome"])
    if not quiet:
        print()
        print(summary(events))
        if paths["chrome"]:
            print(
                f"\ntrace: {paths['chrome']} (Chrome Trace Event JSON — open in "
                f"https://ui.perfetto.dev); raw events: {paths['jsonl']}"
            )
        else:
            print(f"\ntrace events: {paths['jsonl']}")


# --------------------------------------------------------------------------- #
# Subcommands
# --------------------------------------------------------------------------- #
def cmd_run(args: argparse.Namespace) -> int:
    overrides = {
        "model": args.model,
        "method": args.method,
        "bandwidth": args.bandwidth,
        "world_size": args.world_size,
        "epochs": args.epochs,
        "seed": args.seed,
    }
    if args.target_accuracy is not None:
        overrides["target_accuracy"] = args.target_accuracy
    if args.max_iterations_per_epoch is not None:
        overrides["max_iterations_per_epoch"] = args.max_iterations_per_epoch
    if args.dataset_samples is not None:
        overrides["dataset_samples"] = args.dataset_samples
    if args.regime is not None:
        overrides["sync_schedule"] = args.regime
    overrides.update(_parse_axis_pairs(args.set, "--set"))

    cell = build_cell(overrides)
    store = ResultStore(args.store) if args.store else None
    _start_trace(args.trace)
    try:
        report = run_campaign([cell], store=store, jobs=1, progress=_progress_printer(args.quiet))
    finally:
        _finish_trace(args.trace, args.quiet)
    report.raise_failures()
    result = report.outcomes[0].result
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
    else:
        print(
            format_table(
                ("model", "method", "final acc", "best acc", "TTA (s)", "sim time (s)", "comm (s)"),
                [
                    (
                        result.model,
                        result.method,
                        f"{result.final_accuracy:.3f}",
                        f"{result.best_accuracy:.3f}",
                        f"{result.tta:.3f}" if result.tta is not None else "-",
                        f"{result.simulated_time:.3f}",
                        f"{result.comm_time:.3f}",
                    )
                ],
            )
        )
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    data, spec_store_path = load_spec_file(args.spec)
    spec = CampaignSpec.from_dict({key: value for key, value in data.items() if key != "store"})
    store_path = args.store or spec_store_path or f"campaign_results/{spec.name}.jsonl"
    store = ResultStore(store_path)
    cells = spec.expand()
    print(f"campaign {spec.name!r}: {len(cells)} cells -> store {store_path}", flush=True)

    _start_trace(args.trace)
    try:
        report = run_campaign(
            spec,
            store=store,
            jobs=args.jobs,
            progress=_progress_printer(args.quiet),
            recompute=args.recompute,
            retries=args.retries,
            cell_timeout=args.timeout,
        )
    finally:
        _finish_trace(args.trace, args.quiet)
    print(report.summary(), flush=True)
    for outcome in report.failures():
        print(f"FAILED {outcome.cell.label}:\n{outcome.error}", file=sys.stderr)
    if not args.quiet and report.results():
        _print_default_report(report)
    return 1 if report.failed else 0


def _print_default_report(report: CampaignReport) -> None:
    """Per-cell result table, the sweep's built-in report."""
    rows = []
    for outcome in report.outcomes:
        result = outcome.result
        if result is None:
            continue
        rows.append(
            (
                result.model,
                result.method,
                f"{result.bandwidth_mbps:g}",
                result.world_size,
                outcome.cell.config.seed,
                f"{result.final_accuracy:.3f}",
                f"{result.tta:.3f}" if result.tta is not None else "-",
                f"{result.simulated_time:.3f}",
                outcome.status,
            )
        )
    print()
    print(
        format_table(
            ("model", "method", "Mbps", "world", "seed", "final acc", "TTA (s)", "sim (s)", "status"),
            rows,
        )
    )


def cmd_perf(args: argparse.Namespace) -> int:
    # Imported lazily: the perf suite pulls in the training stack.
    from repro.perf import check_regressions, hosts_match, run_suite, write_report  # noqa: PLC0415

    def progress(result) -> None:
        if not args.quiet:
            print(
                f"{result.name:<40} median {result.median_s * 1e3:9.3f} ms"
                f"  (k={result.repeats}, warmup={result.warmup})",
                flush=True,
            )

    results = run_suite(quick=args.quick, only=args.only, progress=progress)

    # Carry forward from the existing report (the committed BENCH_perf.json):
    # the recorded seed baseline always, and — when --only reran a subset —
    # the previous results of the benchmarks that were not rerun, so a
    # partial run never truncates the report.
    seed_baseline = None
    if os.path.exists(args.out):
        try:
            with open(args.out, "r", encoding="utf-8") as handle:
                previous = json.load(handle)
        except (OSError, json.JSONDecodeError):
            previous = {}
        seed_baseline = previous.get("seed_baseline")
        if args.only:
            from repro.perf import BenchResult  # noqa: PLC0415

            for name, entry in previous.get("results", {}).items():
                if name not in results:
                    results[name] = BenchResult.from_dict(name, entry)

    document = write_report(results, args.out, quick=args.quick, seed_baseline=seed_baseline)
    if not args.quiet:
        print(f"wrote {args.out}")
        for name, speedup in sorted(document.get("speedup_vs_seed", {}).items()):
            print(f"  {name:<40} {speedup:5.2f}x vs seed")

    if args.check:
        from repro.perf import check_derived_floors  # noqa: PLC0415

        with open(args.check, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        regressions = check_regressions(results, baseline, max_regression=args.max_regression)
        # Derived floors are ratios between rows of *this* run (same host by
        # construction), so they gate unconditionally — unlike cross-host
        # median comparisons.  Metrics absent on this host are skipped.
        floor_failures = check_derived_floors(document.get("derived", {}))
        if floor_failures:
            for metric, value, floor in floor_failures:
                print(
                    f"PERF FLOOR {metric}: {value:.2f}x below required {floor:.2f}x",
                    file=sys.stderr,
                )
        same_host = hosts_match(baseline)
        if not same_host and not args.quiet:
            print(
                f"PERF WARNING: baseline {args.check} was measured on a different host "
                f"(host fingerprint mismatch); medians are not comparable",
                file=sys.stderr,
            )
        if regressions:
            # Cross-host medians routinely differ by more than any noise
            # margin; demote regressions to warnings so CI runners with a
            # different python/numpy/arch than the baseline host don't fail.
            label = "PERF REGRESSION" if same_host else "PERF WARNING (different host)"
            for name, current, previous in regressions:
                print(
                    f"{label} {name}: {current * 1e3:.3f} ms vs baseline "
                    f"{previous * 1e3:.3f} ms (> {args.max_regression:.0%} slower)",
                    file=sys.stderr,
                )
            if same_host:
                return 2
        elif not args.quiet:
            print(f"no regressions vs {args.check} (margin {args.max_regression:.0%})")
        if floor_failures:
            return 2
    return 0


def cmd_backends(args: argparse.Namespace) -> int:
    # Imported lazily for symmetry with the other subcommands.
    from repro.tensorlib.backend import (  # noqa: PLC0415
        BACKEND_ENV_VAR,
        describe_backends,
        get_backend,
    )

    infos = describe_backends(probe=not args.no_probe)
    print(
        format_table(
            ("backend", "installed", "status", "detail"),
            [
                (info.name, "yes" if info.installed else "no", info.status, info.detail)
                for info in infos
            ],
        )
    )
    if not args.no_probe:
        for info in infos:
            if info.name == "numpy" or not info.kernels:
                continue
            print(f"\n{info.name} kernels:")
            for kernel, note in sorted(info.kernels.items()):
                print(f"  {kernel:<20} {note}")
    active = get_backend()
    origin = f"${BACKEND_ENV_VAR}" if os.environ.get(BACKEND_ENV_VAR) else "default"
    suffix = ""
    if active.fallback_from:
        suffix = f" (requested {active.fallback_from!r}: {active.fallback_reason})"
    print(f"\nactive backend: {active.name} [{origin}]{suffix}")

    if args.counters:
        from repro.obs.instrument import backend_kernel_counters  # noqa: PLC0415

        usage = backend_kernel_counters()
        rows = []
        for requested, entry in usage.items():
            executed = entry["executed"]
            label = requested if executed == requested else f"{requested}->{executed}"
            for kernel, counters in sorted(
                entry["kernels"].items(), key=lambda item: -item[1]["seconds"]
            ):
                rows.append(
                    (
                        label,
                        kernel,
                        f"{counters['calls']:g}",
                        f"{counters['seconds'] * 1e3:.3f}",
                        f"{counters['bytes'] / 1e6:.2f}",
                    )
                )
        print("\nper-kernel usage of one tiny smoke step (forward+backward):")
        print(format_table(("backend", "kernel", "calls", "time (ms)", "MB"), rows))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.export import (  # noqa: PLC0415
        chrome_trace,
        load_events,
        summary,
        validate_chrome_trace,
        write_chrome,
    )

    if args.trace_command == "report":
        print(summary(load_events(args.path)))
        return 0

    if args.trace_command == "convert":
        document = write_chrome(load_events(args.path), args.out)
        print(f"wrote {args.out} ({len(document['traceEvents'])} trace events)")
        return 0

    # validate: accept either a Chrome trace JSON or a raw JSONL stream
    # (converted in memory first, so both artifacts are checkable).
    if args.path.endswith(".jsonl"):
        document = chrome_trace(load_events(args.path))
    else:
        with open(args.path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    errors = validate_chrome_trace(document)
    if errors:
        for error in errors:
            print(f"INVALID: {error}", file=sys.stderr)
        return 1
    if not args.quiet:
        print(f"{args.path}: valid ({len(document.get('traceEvents', []))} trace events)")
    return 0


def cmd_golden(args: argparse.Namespace) -> int:
    # Imported lazily: the golden module pulls in the training stack.
    from repro import golden  # noqa: PLC0415

    if args.update:
        def progress(name: str, path: str) -> None:
            if not args.quiet:
                print(f"wrote {path}  ({name})", flush=True)

        try:
            golden.regenerate(args.dir, progress=progress, only=args.only)
        except KeyError as error:
            print(f"error: {error.args[0]}", file=sys.stderr)
            return 2
        return 0

    # --trace doubles as the instrumentation no-drift gate: verification
    # against the committed fixtures must stay bit-identical while traced.
    _start_trace(args.trace)
    try:
        drifted = golden.verify(args.dir, rtol=args.rtol, only=args.only)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    finally:
        _finish_trace(args.trace, args.quiet)
    if drifted:
        for name, diffs in drifted.items():
            print(golden.format_diff(name, diffs), file=sys.stderr)
        return 1
    if not args.quiet:
        directory = args.dir or golden.DEFAULT_GOLDEN_DIR
        how = "bit-identically" if args.rtol == 0.0 else f"within rtol={args.rtol:g}"
        count = len(args.only) if args.only else len(golden.GOLDEN_METHODS)
        print(f"all {count} golden traces match {directory} {how}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    store = ResultStore(args.store)
    if not len(store):
        print(f"store {args.store!r} is empty", file=sys.stderr)
        return 1
    filters = _parse_axis_pairs(args.filter, "--filter")

    if args.baseline:
        relative = store.relative_to_baseline(
            args.baseline, value=args.value, group_by=tuple(args.group_by), **filters
        )
        rows = []
        for group in sorted(relative, key=str):
            for method, ratio in relative[group].items():
                label = ", ".join(f"{axis}={value}" for axis, value in zip(args.group_by, group))
                rows.append((label, method, f"{ratio:.3f}"))
        print(
            format_table(
                ("group", "method", f"{args.value} / {args.baseline}"),
                rows,
            )
        )
        return 0

    header, rows = store.pivot(args.rows, args.cols, value=args.value, **filters)
    print(format_table(header, rows))
    return 0


# --------------------------------------------------------------------------- #
# Parser
# --------------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run, sweep and report PacTrain reproduction experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="train one experiment cell")
    run.add_argument("--model", default="resnet18")
    run.add_argument("--method", default="all-reduce",
                     help="method name, compressor registry name or codec spec")
    run.add_argument("--bandwidth", default="1Gbps")
    run.add_argument("--world-size", type=int, default=8, dest="world_size")
    run.add_argument("--epochs", type=int, default=4)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--target-accuracy", type=float, default=None, dest="target_accuracy")
    run.add_argument("--max-iterations-per-epoch", type=int, default=None,
                     dest="max_iterations_per_epoch")
    run.add_argument("--dataset-samples", type=int, default=None, dest="dataset_samples")
    run.add_argument("--regime", default=None, metavar="SPEC",
                     help="training regime / sync schedule: 'sync' (default), "
                          "'localsgd:H' (H local steps per averaging round), "
                          "'localsgd:H:delta' (compressed model-delta sync), or "
                          "'ps:S' (async parameter server, staleness bound S)")
    run.add_argument("--set", action="append", metavar="AXIS=VALUE",
                     help="extra axis override (repeatable), e.g. --set overlap=true")
    run.add_argument("--store", default=None, help="optional result store to cache into")
    run.add_argument("--json", action="store_true", help="print the full result as JSON")
    run.add_argument("--trace", default=None, metavar="PATH",
                     help="record an observability trace: Chrome Trace Event JSON at "
                          "PATH (+ raw events at PATH.jsonl), or raw events only when "
                          "PATH ends in .jsonl")
    run.add_argument("--quiet", action="store_true")
    run.set_defaults(func=cmd_run)

    sweep = sub.add_parser("sweep", help="execute a campaign spec file")
    sweep.add_argument("spec", help="campaign spec (.json, or .toml on Python 3.11+)")
    sweep.add_argument("--store", default=None,
                       help="result store path (default: spec's 'store' key, else "
                            "campaign_results/<name>.jsonl)")
    sweep.add_argument("--jobs", type=int, default=1,
                       help="worker processes (1 = in-process; 0 = one per CPU)")
    sweep.add_argument("--recompute", action="store_true",
                       help="ignore cached results and retrain every cell")
    sweep.add_argument("--retries", type=int, default=2,
                       help="max retries per cell for transient failures (worker "
                            "deaths, runtime errors); deterministic errors are "
                            "never retried (default: 2)")
    sweep.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                       help="per-cell watchdog: a pooled cell running past this "
                            "settles with status 'timeout' and its worker is "
                            "recycled (default: no timeout)")
    sweep.add_argument("--trace", default=None, metavar="PATH",
                       help="record an observability trace of the sweep (workers "
                            "append to the same event stream; see run --trace)")
    sweep.add_argument("--quiet", action="store_true")
    sweep.set_defaults(func=cmd_sweep)

    report = sub.add_parser("report", help="query and pivot a result store")
    report.add_argument("--store", required=True)
    report.add_argument("--rows", default="model", help="row axis (default: model)")
    report.add_argument("--cols", default="method", help="column axis (default: method)")
    report.add_argument("--value", default="simulated_time",
                        help="result metric (e.g. tta_or_total, final_accuracy, comm_time)")
    report.add_argument("--baseline", default=None,
                        help="method name to normalise against (relative-TTA style report)")
    report.add_argument("--group-by", nargs="+", default=["model", "bandwidth_mbps"],
                        dest="group_by", help="grouping axes for --baseline reports")
    report.add_argument("--filter", action="append", metavar="AXIS=VALUE",
                        help="only records matching this axis value (repeatable)")
    report.set_defaults(func=cmd_report)

    perf = sub.add_parser("perf", help="run the tracked perf microbenchmarks")
    perf.add_argument("--quick", action="store_true",
                      help="smaller sizes and fewer repeats (CI smoke mode)")
    perf.add_argument("--out", default="BENCH_perf.json",
                      help="report path (default: BENCH_perf.json)")
    perf.add_argument("--check", default=None, metavar="BASELINE",
                      help="fail (exit 2) if any benchmark regresses vs this report")
    perf.add_argument("--max-regression", type=float, default=0.25,
                      dest="max_regression",
                      help="allowed fractional slowdown for --check (default 0.25)")
    perf.add_argument("--only", nargs="+", default=None,
                      help="subset of benchmark groups (train_step train_step_scaling codec "
                           "engine campaign im2col pool fused_norm backend_sweep)")
    perf.add_argument("--quiet", action="store_true")
    perf.set_defaults(func=cmd_perf)

    backends = sub.add_parser(
        "backends",
        help="list array backends with availability and bit-identity probe status",
    )
    backends.add_argument("--no-probe", action="store_true", dest="no_probe",
                          help="only check library availability; skip construction "
                               "(numba JIT compilation + probes)")
    backends.add_argument("--counters", action="store_true",
                          help="run a tiny smoke step per available backend and print "
                               "per-kernel call counts, elapsed time and bytes")
    backends.set_defaults(func=cmd_backends)

    trace = sub.add_parser("trace", help="report on / validate a recorded trace")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_report = trace_sub.add_parser(
        "report", help="print the summary tables of a trace (.jsonl event stream)")
    trace_report.add_argument("path", help="raw event stream (PATH.jsonl of a --trace run)")
    trace_report.set_defaults(func=cmd_trace)
    trace_validate = trace_sub.add_parser(
        "validate", help="check Chrome Trace Event structure (fields, nesting, order)")
    trace_validate.add_argument("path", help="Chrome trace JSON, or .jsonl to convert first")
    trace_validate.add_argument("--quiet", action="store_true")
    trace_validate.set_defaults(func=cmd_trace)
    trace_convert = trace_sub.add_parser(
        "convert", help="convert a raw .jsonl event stream to Chrome trace JSON")
    trace_convert.add_argument("path", help="raw event stream (.jsonl)")
    trace_convert.add_argument("out", help="Chrome trace JSON destination")
    trace_convert.set_defaults(func=cmd_trace)

    golden = sub.add_parser("golden", help="verify or regenerate golden-trace fixtures")
    golden.add_argument("--update", action="store_true",
                        help="rewrite the fixtures from fresh runs instead of verifying")
    golden.add_argument("--dir", default=None,
                        help="fixture directory (default: tests/golden)")
    golden.add_argument("--rtol", type=float, default=0.0,
                        help="relative tolerance for verification "
                             "(default 0.0 = bit-identical)")
    golden.add_argument("--only", nargs="+", default=None, metavar="METHOD",
                        help="verify (or with --update, rewrite) only these "
                             "golden methods (default: all of them)")
    golden.add_argument("--trace", metavar="PATH", default=None,
                        help="record an observability trace of the verification "
                             "runs (tracing must not change the numbers)")
    golden.add_argument("--quiet", action="store_true")
    golden.set_defaults(func=cmd_golden)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "jobs", None) == 0:
        args.jobs = None  # run_campaign resolves None to one worker per CPU
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
