"""Campaign execution: cache lookup, parallel training, fail-soft capture.

:func:`run_campaign` takes a :class:`~repro.campaign.spec.CampaignSpec` (or an
explicit cell list), serves unchanged cells from the
:class:`~repro.campaign.store.ResultStore`, and trains the remaining cells —
in a ``multiprocessing`` pool when ``jobs > 1``, in-process otherwise.  Every
cell is independent and internally seeded (``config.seed`` drives the dataset,
model init, data order and the compressor), so parallel and serial execution
produce bit-identical results; outcomes are committed to the store in cell
order regardless of completion order, keeping the store file deterministic
too.

The runner is hardened against its own failures — large fault-study sweeps
must survive the faults of the machine running them:

* a failing cell never aborts the sweep: its traceback is captured on the
  :class:`CellOutcome` (status ``"failed"``) and the rest keeps running
  (callers wanting fail-fast call :meth:`CampaignReport.raise_failures`);
* **transient** failures are retried with bounded exponential backoff and
  deterministic jitter (derived from the cell fingerprint, so two runs of the
  same sweep sleep identically); deterministic errors — ``ValueError`` and
  friends, which re-running cannot fix — are never retried;
* a **hung** worker is caught by the per-cell watchdog (``cell_timeout``):
  the overdue cell settles with status ``"timeout"`` and the pool is recycled
  so its workers come back; a **killed** worker (whose task would otherwise
  never return) is detected by the pool's pid set changing, and its in-flight
  cells are resubmitted against the retry budget.

Chaos injection for tests and CI lives behind ``REPRO_CHAOS_MODE``
(``raise`` / ``kill`` / ``hang``), scoped by ``REPRO_CHAOS_LABEL`` (substring
of the cell label) and fired at most once when ``REPRO_CHAOS_DIR`` points at
a marker directory.
"""

from __future__ import annotations

import multiprocessing
import os
import re
import signal
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.campaign.spec import CampaignCell, CampaignSpec
from repro.campaign.store import ResultStore
from repro.obs.tracer import TRACER
from repro.simulation.experiment import ExperimentResult, run_experiment

#: Outcome statuses: freshly trained, served from the store, errored, or
#: killed by the per-cell watchdog.
STATUS_RAN = "ran"
STATUS_CACHED = "cached"
STATUS_FAILED = "failed"
STATUS_TIMEOUT = "timeout"

#: Exception type names whose failures are deterministic: the same cell would
#: fail the same way on every attempt, so retrying only burns time.
DETERMINISTIC_ERRORS = frozenset(
    {"ValueError", "TypeError", "KeyError", "AssertionError", "NotImplementedError"}
)

#: Retry backoff ceiling (seconds) — keeps the exponential bounded.
MAX_RETRY_DELAY = 2.0


@dataclass
class CellOutcome:
    """What happened to one campaign cell."""

    index: int
    cell: CampaignCell
    key: str
    status: str
    result: Optional[ExperimentResult] = None
    error: Optional[str] = None
    #: Executions started for this cell (0 for cache hits, 1 for a clean
    #: first run, >1 when the runner retried it).
    attempts: int = 1


@dataclass(frozen=True)
class Progress:
    """One settled cell, as reported to the progress callback.

    ``elapsed_s`` is the cell's own training wall time (0 for cache hits);
    ``eta_s`` is a rolling estimate of the remaining run time — mean elapsed
    of the cells trained so far times the cells still pending, divided by
    the worker count — and ``None`` until the first fresh cell lands.
    """

    outcome: CellOutcome
    done: int
    total: int
    elapsed_s: float = 0.0
    cache_hit: bool = False
    eta_s: Optional[float] = None


ProgressCallback = Callable[[Progress], None]


@dataclass
class CampaignReport:
    """All outcomes of one campaign run, in cell order."""

    name: str
    outcomes: List[CellOutcome] = field(default_factory=list)

    @property
    def ran(self) -> int:
        return sum(1 for o in self.outcomes if o.status == STATUS_RAN)

    @property
    def cached(self) -> int:
        return sum(1 for o in self.outcomes if o.status == STATUS_CACHED)

    @property
    def failed(self) -> int:
        return sum(1 for o in self.outcomes if o.status in (STATUS_FAILED, STATUS_TIMEOUT))

    @property
    def retried(self) -> int:
        """Cells that needed more than one execution."""
        return sum(1 for o in self.outcomes if o.attempts > 1)

    def summary(self) -> str:
        text = (
            f"{self.name}: {len(self.outcomes)} cells — "
            f"ran={self.ran} cached={self.cached} failed={self.failed}"
        )
        if self.retried:
            text += f" retried={self.retried}"
        return text

    def results(self) -> List[ExperimentResult]:
        """Successful results in cell order (cached and fresh alike)."""
        return [o.result for o in self.outcomes if o.result is not None]

    def failures(self) -> List[CellOutcome]:
        return [o for o in self.outcomes if o.status in (STATUS_FAILED, STATUS_TIMEOUT)]

    def raise_failures(self) -> None:
        """Re-raise the first cell failure (with every failing label listed)."""
        failures = self.failures()
        if not failures:
            return
        labels = ", ".join(o.cell.label for o in failures)
        raise RuntimeError(
            f"{len(failures)} campaign cell(s) failed ({labels}); first error:\n"
            f"{failures[0].error}"
        )


# --------------------------------------------------------------------------- #
# Chaos seam (tests / CI only; inert unless REPRO_CHAOS_MODE is set)
# --------------------------------------------------------------------------- #
def _chaos_inject(label: str) -> None:
    """Optionally sabotage this cell, as configured by ``REPRO_CHAOS_*``.

    ``REPRO_CHAOS_MODE`` picks the failure (``raise`` a transient error,
    ``kill`` the worker process, ``hang`` it past any watchdog);
    ``REPRO_CHAOS_LABEL`` scopes it to cells whose label contains the value;
    ``REPRO_CHAOS_DIR`` arms it at most once per (mode, label) via an
    atomically-created marker file — so a retried cell succeeds on its next
    attempt, which is exactly what chaos tests assert.
    """
    mode = os.environ.get("REPRO_CHAOS_MODE")
    if not mode:
        return
    wanted = os.environ.get("REPRO_CHAOS_LABEL", "")
    if wanted and wanted not in label:
        return
    marker_dir = os.environ.get("REPRO_CHAOS_DIR")
    if marker_dir:
        os.makedirs(marker_dir, exist_ok=True)
        token = re.sub(r"[^A-Za-z0-9_.-]", "_", f"{mode}-{wanted or 'any'}")
        try:
            fd = os.open(os.path.join(marker_dir, token), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            os.close(fd)
        except FileExistsError:
            return  # already fired once
    if mode == "raise":
        raise RuntimeError(f"chaos: injected transient failure in {label!r}")
    if mode == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    if mode == "hang":
        time.sleep(3600.0)
    raise RuntimeError(f"unknown REPRO_CHAOS_MODE {mode!r}")


def _execute_cell(
    payload: Tuple[int, CampaignCell],
) -> Tuple[int, Optional[ExperimentResult], Optional[str], Optional[str], float]:
    """Train one cell; never raises (returns the traceback instead).

    Module-level so it pickles into pool workers.  The fourth element is the
    exception *type name* (the retry policy's transience classifier), the
    fifth the cell's own wall time in seconds (measured here so pooled and
    in-process execution report it identically).
    """
    index, cell = payload
    start = time.perf_counter()
    try:
        _chaos_inject(cell.label)
        with TRACER.span("campaign/cell", cat="campaign", label=cell.label):
            result = run_experiment(cell.config, cell.method)
        return index, result, None, None, time.perf_counter() - start
    except Exception as error:  # noqa: BLE001 - fail-soft per cell by design
        return (
            index, None, traceback.format_exc(), type(error).__name__,
            time.perf_counter() - start,
        )


def _execute_cell_in_worker(payload: Tuple[int, CampaignCell]):
    """Pool-worker entry point: per-cell seeding, then :func:`_execute_cell`.

    Forked workers inherit the parent's global numpy RNG state; re-seeding it
    from the cell seed isolates any stray global draws per cell.  The
    simulation itself only uses explicitly seeded generators, so this does
    not affect results — and it runs only in workers, never in the caller's
    process (in-process execution must not clobber the caller's RNG state).
    """
    np.random.seed(payload[1].config.seed % (2**32))
    outcome = _execute_cell(payload)
    if TRACER.enabled:
        # Workers have no clean shutdown hook; flushing a cumulative metric
        # snapshot after every cell keeps the shared sink current (the
        # exporter takes the last snapshot per process).
        TRACER.flush_metrics()
    return outcome


def _worker_init(backend_names: Sequence[str], trace_sink: Optional[str] = None) -> None:
    """Pool-worker initializer: warm the backend cache, join the trace sink.

    Constructing a backend by name is where JIT compilation and the
    bit-identity probes happen; warming the process-level cache here means a
    worker pays that cost once at startup instead of once per cell (cells
    resolve their ``config.backend`` through the same cache).  When the
    parent is tracing, each worker enables its own tracer against the same
    append-only JSONL sink — whole-line appends interleave safely, and the
    worker's pid keeps its tracks distinct.
    """
    if trace_sink is not None:
        TRACER.enable(path=trace_sink, role="worker")

    from repro.tensorlib.backend import shared_backend  # noqa: PLC0415

    for name in backend_names:
        try:
            shared_backend(name)
        except KeyError:
            # An unknown backend name fails loudly inside the cell itself,
            # where the error is captured on its CellOutcome.
            pass


def default_jobs() -> int:
    """Worker count for ``jobs=None``: one per CPU, capped at 8."""
    return max(1, min(8, os.cpu_count() or 1))


def _is_transient(error_type: Optional[str]) -> bool:
    """Whether a failure with this exception type is worth retrying."""
    return error_type not in DETERMINISTIC_ERRORS


def retry_delay(failures: int, key: str, backoff: float) -> float:
    """Backoff before retry number ``failures`` of the cell keyed ``key``.

    Bounded exponential (``backoff * 2**(failures-1)``, capped at
    :data:`MAX_RETRY_DELAY`) times a deterministic jitter factor in
    ``[1, 2)`` derived from the cell fingerprint — cells of one sweep spread
    out instead of thundering back together, and reruns sleep identically.
    """
    jitter = 1.0 + int(key[:8], 16) / float(0xFFFFFFFF)
    return min(MAX_RETRY_DELAY, backoff * (2.0 ** (failures - 1))) * jitter


@dataclass
class _InFlight:
    """One cell currently executing in the pool."""

    position: int
    index: int
    cell: CampaignCell
    attempts: int
    handle: object
    started: float


def run_campaign(
    campaign: Union[CampaignSpec, Sequence[CampaignCell]],
    store: Optional[ResultStore] = None,
    jobs: Optional[int] = 1,
    progress: Optional[ProgressCallback] = None,
    recompute: bool = False,
    retries: int = 2,
    retry_backoff: float = 0.05,
    cell_timeout: Optional[float] = None,
) -> CampaignReport:
    """Execute a campaign: expand, check the cache, train what is missing.

    Parameters
    ----------
    campaign:
        A :class:`CampaignSpec` (expanded here) or an explicit cell sequence.
    store:
        Result cache; ``None`` disables caching and persistence.  Fresh
        results are committed in cell order, so a parallel run writes the
        same store file a serial run would.
    jobs:
        Worker processes for the pending cells.  ``1`` (the default) executes
        in-process — the right mode for CI, tests and nested use (the training
        loop itself is single-process).  ``None`` picks :func:`default_jobs`.
        Pools of one worker, single-cell workloads, and platforms without
        multiprocessing support all fall back to in-process execution.
    progress:
        ``callback(progress)`` invoked once per settled cell with a
        :class:`Progress` (outcome, counts, per-cell elapsed, cache-hit
        flag, rolling ETA).
    recompute:
        Ignore cache hits and retrain every cell (results still overwrite the
        store).
    retries:
        Maximum retries per cell for *transient* failures (worker deaths,
        injected chaos, runtime errors); deterministic errors
        (:data:`DETERMINISTIC_ERRORS`) settle as failed immediately.  ``0``
        disables retrying.
    retry_backoff:
        Base seconds of the exponential backoff between attempts (see
        :func:`retry_delay`).
    cell_timeout:
        Per-cell watchdog in seconds: a pooled cell still running past it
        settles with status ``"timeout"`` and the pool is recycled so the
        hung worker cannot wedge the sweep.  ``None`` disables the watchdog;
        in-process execution cannot be preempted, so the watchdog only
        applies when a pool is running.
    """
    cells = campaign.expand() if isinstance(campaign, CampaignSpec) else list(campaign)
    name = campaign.name if isinstance(campaign, CampaignSpec) else "campaign"
    report = CampaignReport(name=name)
    total = len(cells)
    outcomes: List[Optional[CellOutcome]] = [None] * total
    done = 0
    started = time.perf_counter()

    # Cache pass: partition into served-from-store and pending cells.
    cached_outcomes: List[CellOutcome] = []
    pending: List[Tuple[int, CampaignCell]] = []
    for index, cell in enumerate(cells):
        key = cell.fingerprint()
        cached = store.get_by_key(key) if (store is not None and not recompute) else None
        if cached is not None:
            cached_outcomes.append(
                CellOutcome(
                    index=index, cell=cell, key=key, status=STATUS_CACHED,
                    result=cached, attempts=0,
                )
            )
        else:
            pending.append((index, cell))

    workers = min(default_jobs() if jobs is None else max(1, jobs), len(pending)) if pending else 1
    pending_left = len(pending)
    ran_elapsed: List[float] = []

    if TRACER.enabled:
        TRACER.metrics.inc("campaign.cache.hits", float(len(cached_outcomes)))
        TRACER.metrics.inc("campaign.cache.misses", float(len(pending)))
        TRACER.metrics.set_gauge("campaign.workers", float(workers))

    def settle(outcome: CellOutcome, elapsed: float) -> None:
        nonlocal done, pending_left
        outcomes[outcome.index] = outcome
        done += 1
        cache_hit = outcome.status == STATUS_CACHED
        if not cache_hit:
            pending_left -= 1
            if outcome.status == STATUS_RAN:
                ran_elapsed.append(elapsed)
        if TRACER.enabled:
            TRACER.metrics.inc(f"campaign.cells.{outcome.status}")
            if outcome.attempts > 1:
                TRACER.metrics.inc("campaign.cells.retries", float(outcome.attempts - 1))
        eta: Optional[float] = None
        if pending_left == 0:
            eta = 0.0
        elif ran_elapsed:
            eta = sum(ran_elapsed) / len(ran_elapsed) * pending_left / workers
        if progress is not None:
            progress(
                Progress(
                    outcome=outcome, done=done, total=total,
                    elapsed_s=elapsed, cache_hit=cache_hit, eta_s=eta,
                )
            )

    for outcome in cached_outcomes:
        settle(outcome, 0.0)

    # Execution pass: train pending cells, in a pool when it pays off.
    # Outcomes settle and persist in submission (= cell) order even though a
    # pool completes them out of order: finished cells are buffered until
    # every earlier pending cell has finished, so the store file a parallel
    # run writes is identical to the serial one.
    if pending:
        pool = None
        if workers > 1:
            # Every distinct backend the pending cells name is constructed in
            # the worker initializer, so per-worker JIT warmup happens once.
            backend_names = sorted(
                {cell.config.backend for _, cell in pending if cell.config.backend}
            )
            trace_sink = TRACER.sink_path if TRACER.enabled else None
            pool_args = dict(
                processes=workers,
                initializer=_worker_init,
                initargs=(backend_names, trace_sink),
            )
            try:
                pool = multiprocessing.Pool(**pool_args)
            except (OSError, ImportError):
                # No usable multiprocessing (restricted sandboxes); run inline.
                pool = None
        try:
            if pool is not None:
                _run_pooled(
                    pool, pool_args, pending, store, settle,
                    retries=retries, retry_backoff=retry_backoff,
                    cell_timeout=cell_timeout,
                )
                pool = None  # _run_pooled owns (and closed) the final pool
            else:
                _run_inline(
                    pending, store, settle, retries=retries, retry_backoff=retry_backoff
                )
        finally:
            if pool is not None:
                pool.close()
                pool.join()

    if TRACER.enabled:
        # Utilization: fraction of the pool's capacity spent training.  With
        # in-process execution this approaches 1; with a pool it exposes
        # startup cost, stragglers and imbalance.
        wall = time.perf_counter() - started
        if ran_elapsed and wall > 0:
            TRACER.metrics.set_gauge(
                "campaign.worker_utilization", min(1.0, sum(ran_elapsed) / (workers * wall))
            )

    report.outcomes = [outcome for outcome in outcomes if outcome is not None]
    return report


def _run_inline(
    pending: Sequence[Tuple[int, CampaignCell]],
    store: Optional[ResultStore],
    settle: Callable[[CellOutcome, float], None],
    retries: int,
    retry_backoff: float,
) -> None:
    """Serial execution with the same retry policy as the pooled path."""
    for index, cell in pending:
        key = cell.fingerprint()
        attempts = 0
        elapsed_total = 0.0
        while True:
            attempts += 1
            _, result, error, error_type, elapsed = _execute_cell((index, cell))
            elapsed_total += elapsed
            if error is None:
                if store is not None:
                    store.put(cell.config, cell.method, result, attempts=attempts)
                settle(
                    CellOutcome(
                        index=index, cell=cell, key=key, status=STATUS_RAN,
                        result=result, attempts=attempts,
                    ),
                    elapsed_total,
                )
                break
            if attempts <= retries and _is_transient(error_type):
                time.sleep(retry_delay(attempts, key, retry_backoff))
                continue
            settle(
                CellOutcome(
                    index=index, cell=cell, key=key, status=STATUS_FAILED,
                    error=error, attempts=attempts,
                ),
                elapsed_total,
            )
            break


def _pool_pids(pool) -> Optional[frozenset]:
    """Worker pids of a multiprocessing pool (None if unavailable)."""
    try:
        return frozenset(worker.pid for worker in pool._pool)  # noqa: SLF001
    except Exception:  # pragma: no cover - implementation detail shifted
        return None


def _run_pooled(
    pool,
    pool_args: dict,
    pending: Sequence[Tuple[int, CampaignCell]],
    store: Optional[ResultStore],
    settle: Callable[[CellOutcome, float], None],
    retries: int,
    retry_backoff: float,
    cell_timeout: Optional[float],
) -> None:
    """Watchdogged pool execution: dispatch, poll, retry, recycle.

    The dispatch loop keeps up to ``processes`` cells in flight via
    ``apply_async`` and polls for completion.  Three hazards are handled:

    * a cell *fails* — retried after its backoff when transient and within
      budget, settled as failed otherwise;
    * a cell *hangs* past ``cell_timeout`` — settled with status
      ``"timeout"`` and the pool recycled (terminate + fresh pool), because a
      task abandoned inside ``Pool`` can never be cancelled individually;
    * a *worker dies* (OOM-kill, crash, injected chaos) — its task would
      never return, which the pid-set poll catches; every in-flight cell is
      resubmitted with its attempt count bumped (the dead worker's cell is
      unknowable, so all of them pay one attempt against the retry budget).
    """
    queue: Deque[Tuple[int, int, CampaignCell, int, float]] = deque(
        (position, index, cell, 1, 0.0)
        for position, (index, cell) in enumerate(pending)
    )
    in_flight: Dict[int, _InFlight] = {}
    buffered: Dict[int, Tuple[CellOutcome, float]] = {}
    next_commit = 0
    keys = {position: cell.fingerprint() for position, (_, cell) in enumerate(pending)}
    pids = _pool_pids(pool)

    def commit_ready() -> None:
        nonlocal next_commit
        while next_commit in buffered:
            outcome, elapsed = buffered.pop(next_commit)
            if outcome.status == STATUS_RAN and store is not None:
                store.put(
                    outcome.cell.config, outcome.cell.method, outcome.result,
                    attempts=outcome.attempts,
                )
            settle(outcome, elapsed)
            next_commit += 1

    def finish(position: int, flight: _InFlight, outcome: CellOutcome, elapsed: float) -> None:
        buffered[position] = (outcome, elapsed)
        commit_ready()

    def recycle(timed_out: Optional[int]) -> None:
        """Terminate the wedged pool, spawn a fresh one, resubmit in-flight."""
        nonlocal pool, pids
        pool.terminate()
        pool.join()
        pool = multiprocessing.Pool(**pool_args)
        pids = _pool_pids(pool)
        now = time.monotonic()
        for position, flight in sorted(in_flight.items()):
            if position == timed_out:
                finish(
                    position, flight,
                    CellOutcome(
                        index=flight.index, cell=flight.cell, key=keys[position],
                        status=STATUS_TIMEOUT, attempts=flight.attempts,
                        error=(
                            f"cell exceeded watchdog timeout of {cell_timeout}s "
                            f"(attempt {flight.attempts}); worker recycled"
                        ),
                    ),
                    now - flight.started,
                )
            elif flight.attempts > retries:
                finish(
                    position, flight,
                    CellOutcome(
                        index=flight.index, cell=flight.cell, key=keys[position],
                        status=STATUS_FAILED, attempts=flight.attempts,
                        error=(
                            "worker process died while executing this cell "
                            f"(attempt {flight.attempts}/{retries + 1}); retry "
                            "budget exhausted"
                        ),
                    ),
                    now - flight.started,
                )
            else:
                queue.append(
                    (
                        position, flight.index, flight.cell, flight.attempts + 1,
                        now + retry_delay(flight.attempts, keys[position], retry_backoff),
                    )
                )
        in_flight.clear()

    try:
        while queue or in_flight:
            now = time.monotonic()
            # Fill free slots with due cells (skip those still backing off).
            for _ in range(len(queue)):
                if len(in_flight) >= pool_args["processes"]:
                    break
                position, index, cell, attempts, not_before = queue[0]
                if not_before > now:
                    queue.rotate(-1)
                    continue
                queue.popleft()
                handle = pool.apply_async(_execute_cell_in_worker, ((index, cell),))
                in_flight[position] = _InFlight(
                    position=position, index=index, cell=cell,
                    attempts=attempts, handle=handle, started=now,
                )

            # Poll for completions.
            completed = [
                (position, flight)
                for position, flight in sorted(in_flight.items())
                if flight.handle.ready()
            ]
            for position, flight in completed:
                del in_flight[position]
                try:
                    _, result, error, error_type, elapsed = flight.handle.get()
                except Exception:  # noqa: BLE001 - unpicklable result etc.
                    result, error, error_type, elapsed = (
                        None, traceback.format_exc(), "PoolError",
                        time.monotonic() - flight.started,
                    )
                if error is None:
                    finish(
                        position, flight,
                        CellOutcome(
                            index=flight.index, cell=flight.cell, key=keys[position],
                            status=STATUS_RAN, result=result, attempts=flight.attempts,
                        ),
                        elapsed,
                    )
                elif flight.attempts <= retries and _is_transient(error_type):
                    queue.append(
                        (
                            position, flight.index, flight.cell, flight.attempts + 1,
                            time.monotonic()
                            + retry_delay(flight.attempts, keys[position], retry_backoff),
                        )
                    )
                else:
                    finish(
                        position, flight,
                        CellOutcome(
                            index=flight.index, cell=flight.cell, key=keys[position],
                            status=STATUS_FAILED, error=error, attempts=flight.attempts,
                        ),
                        elapsed,
                    )

            if not in_flight and not queue:
                break

            # Watchdog: a cell past its deadline wedges its worker for good —
            # settle it as timed out and recycle the pool.
            if cell_timeout is not None and in_flight:
                now = time.monotonic()
                overdue = [
                    position
                    for position, flight in sorted(in_flight.items())
                    if now - flight.started > cell_timeout
                ]
                if overdue:
                    recycle(timed_out=overdue[0])
                    continue

            # Worker-death detection: a task on a killed worker never
            # returns, but the pool's pid set changes when it respawns.
            if in_flight:
                current = _pool_pids(pool)
                if pids is not None and current is not None and current != pids:
                    recycle(timed_out=None)
                    continue

            if not completed:
                time.sleep(0.01)
    finally:
        commit_ready()
        pool.close()
        pool.join()
