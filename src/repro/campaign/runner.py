"""Campaign execution: cache lookup, parallel training, fail-soft capture.

:func:`run_campaign` takes a :class:`~repro.campaign.spec.CampaignSpec` (or an
explicit cell list), serves unchanged cells from the
:class:`~repro.campaign.store.ResultStore`, and trains the remaining cells —
in a ``multiprocessing`` pool when ``jobs > 1``, in-process otherwise.  Every
cell is independent and internally seeded (``config.seed`` drives the dataset,
model init, data order and the compressor), so parallel and serial execution
produce bit-identical results; outcomes are committed to the store in cell
order regardless of completion order, keeping the store file deterministic
too.

A failing cell never aborts the sweep: its traceback is captured on the
:class:`CellOutcome` (status ``"failed"``) and the remaining cells keep
running.  Callers that want the old fail-fast behaviour call
:meth:`CampaignReport.raise_failures`.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.campaign.spec import CampaignCell, CampaignSpec
from repro.campaign.store import ResultStore
from repro.obs.tracer import TRACER
from repro.simulation.experiment import ExperimentResult, run_experiment

#: Outcome statuses: freshly trained, served from the store, or errored.
STATUS_RAN = "ran"
STATUS_CACHED = "cached"
STATUS_FAILED = "failed"


@dataclass
class CellOutcome:
    """What happened to one campaign cell."""

    index: int
    cell: CampaignCell
    key: str
    status: str
    result: Optional[ExperimentResult] = None
    error: Optional[str] = None


@dataclass(frozen=True)
class Progress:
    """One settled cell, as reported to the progress callback.

    ``elapsed_s`` is the cell's own training wall time (0 for cache hits);
    ``eta_s`` is a rolling estimate of the remaining run time — mean elapsed
    of the cells trained so far times the cells still pending, divided by
    the worker count — and ``None`` until the first fresh cell lands.
    """

    outcome: CellOutcome
    done: int
    total: int
    elapsed_s: float = 0.0
    cache_hit: bool = False
    eta_s: Optional[float] = None


ProgressCallback = Callable[[Progress], None]


@dataclass
class CampaignReport:
    """All outcomes of one campaign run, in cell order."""

    name: str
    outcomes: List[CellOutcome] = field(default_factory=list)

    @property
    def ran(self) -> int:
        return sum(1 for o in self.outcomes if o.status == STATUS_RAN)

    @property
    def cached(self) -> int:
        return sum(1 for o in self.outcomes if o.status == STATUS_CACHED)

    @property
    def failed(self) -> int:
        return sum(1 for o in self.outcomes if o.status == STATUS_FAILED)

    def summary(self) -> str:
        return (
            f"{self.name}: {len(self.outcomes)} cells — "
            f"ran={self.ran} cached={self.cached} failed={self.failed}"
        )

    def results(self) -> List[ExperimentResult]:
        """Successful results in cell order (cached and fresh alike)."""
        return [o.result for o in self.outcomes if o.result is not None]

    def failures(self) -> List[CellOutcome]:
        return [o for o in self.outcomes if o.status == STATUS_FAILED]

    def raise_failures(self) -> None:
        """Re-raise the first cell failure (with every failing label listed)."""
        failures = self.failures()
        if not failures:
            return
        labels = ", ".join(o.cell.label for o in failures)
        raise RuntimeError(
            f"{len(failures)} campaign cell(s) failed ({labels}); first error:\n"
            f"{failures[0].error}"
        )


def _execute_cell(
    payload: Tuple[int, CampaignCell],
) -> Tuple[int, Optional[ExperimentResult], Optional[str], float]:
    """Train one cell; never raises (returns the traceback instead).

    Module-level so it pickles into pool workers.  The fourth element is the
    cell's own wall time in seconds (measured here so pooled and in-process
    execution report it identically).
    """
    index, cell = payload
    start = time.perf_counter()
    try:
        with TRACER.span("campaign/cell", cat="campaign", label=cell.label):
            result = run_experiment(cell.config, cell.method)
        return index, result, None, time.perf_counter() - start
    except Exception:  # noqa: BLE001 - fail-soft per cell by design
        return index, None, traceback.format_exc(), time.perf_counter() - start


def _execute_cell_in_worker(payload: Tuple[int, CampaignCell]):
    """Pool-worker entry point: per-cell seeding, then :func:`_execute_cell`.

    Forked workers inherit the parent's global numpy RNG state; re-seeding it
    from the cell seed isolates any stray global draws per cell.  The
    simulation itself only uses explicitly seeded generators, so this does
    not affect results — and it runs only in workers, never in the caller's
    process (in-process execution must not clobber the caller's RNG state).
    """
    np.random.seed(payload[1].config.seed % (2**32))
    outcome = _execute_cell(payload)
    if TRACER.enabled:
        # Workers have no clean shutdown hook; flushing a cumulative metric
        # snapshot after every cell keeps the shared sink current (the
        # exporter takes the last snapshot per process).
        TRACER.flush_metrics()
    return outcome


def _worker_init(backend_names: Sequence[str], trace_sink: Optional[str] = None) -> None:
    """Pool-worker initializer: warm the backend cache, join the trace sink.

    Constructing a backend by name is where JIT compilation and the
    bit-identity probes happen; warming the process-level cache here means a
    worker pays that cost once at startup instead of once per cell (cells
    resolve their ``config.backend`` through the same cache).  When the
    parent is tracing, each worker enables its own tracer against the same
    append-only JSONL sink — whole-line appends interleave safely, and the
    worker's pid keeps its tracks distinct.
    """
    if trace_sink is not None:
        TRACER.enable(path=trace_sink, role="worker")

    from repro.tensorlib.backend import shared_backend  # noqa: PLC0415

    for name in backend_names:
        try:
            shared_backend(name)
        except KeyError:
            # An unknown backend name fails loudly inside the cell itself,
            # where the error is captured on its CellOutcome.
            pass


def default_jobs() -> int:
    """Worker count for ``jobs=None``: one per CPU, capped at 8."""
    return max(1, min(8, os.cpu_count() or 1))


def run_campaign(
    campaign: Union[CampaignSpec, Sequence[CampaignCell]],
    store: Optional[ResultStore] = None,
    jobs: Optional[int] = 1,
    progress: Optional[ProgressCallback] = None,
    recompute: bool = False,
) -> CampaignReport:
    """Execute a campaign: expand, check the cache, train what is missing.

    Parameters
    ----------
    campaign:
        A :class:`CampaignSpec` (expanded here) or an explicit cell sequence.
    store:
        Result cache; ``None`` disables caching and persistence.  Fresh
        results are committed in cell order, so a parallel run writes the
        same store file a serial run would.
    jobs:
        Worker processes for the pending cells.  ``1`` (the default) executes
        in-process — the right mode for CI, tests and nested use (the training
        loop itself is single-process).  ``None`` picks :func:`default_jobs`.
        Pools of one worker, single-cell workloads, and platforms without
        multiprocessing support all fall back to in-process execution.
    progress:
        ``callback(progress)`` invoked once per settled cell with a
        :class:`Progress` (outcome, counts, per-cell elapsed, cache-hit
        flag, rolling ETA).
    recompute:
        Ignore cache hits and retrain every cell (results still overwrite the
        store).
    """
    cells = campaign.expand() if isinstance(campaign, CampaignSpec) else list(campaign)
    name = campaign.name if isinstance(campaign, CampaignSpec) else "campaign"
    report = CampaignReport(name=name)
    total = len(cells)
    outcomes: List[Optional[CellOutcome]] = [None] * total
    done = 0
    started = time.perf_counter()

    # Cache pass: partition into served-from-store and pending cells.
    cached_outcomes: List[CellOutcome] = []
    pending: List[Tuple[int, CampaignCell]] = []
    for index, cell in enumerate(cells):
        key = cell.fingerprint()
        cached = store.get_by_key(key) if (store is not None and not recompute) else None
        if cached is not None:
            cached_outcomes.append(
                CellOutcome(index=index, cell=cell, key=key, status=STATUS_CACHED, result=cached)
            )
        else:
            pending.append((index, cell))

    workers = min(default_jobs() if jobs is None else max(1, jobs), len(pending)) if pending else 1
    pending_left = len(pending)
    ran_elapsed: List[float] = []

    if TRACER.enabled:
        TRACER.metrics.inc("campaign.cache.hits", float(len(cached_outcomes)))
        TRACER.metrics.inc("campaign.cache.misses", float(len(pending)))
        TRACER.metrics.set_gauge("campaign.workers", float(workers))

    def settle(outcome: CellOutcome, elapsed: float) -> None:
        nonlocal done, pending_left
        outcomes[outcome.index] = outcome
        done += 1
        cache_hit = outcome.status == STATUS_CACHED
        if not cache_hit:
            pending_left -= 1
            if outcome.status == STATUS_RAN:
                ran_elapsed.append(elapsed)
        if TRACER.enabled:
            TRACER.metrics.inc(f"campaign.cells.{outcome.status}")
        eta: Optional[float] = None
        if pending_left == 0:
            eta = 0.0
        elif ran_elapsed:
            eta = sum(ran_elapsed) / len(ran_elapsed) * pending_left / workers
        if progress is not None:
            progress(
                Progress(
                    outcome=outcome, done=done, total=total,
                    elapsed_s=elapsed, cache_hit=cache_hit, eta_s=eta,
                )
            )

    for outcome in cached_outcomes:
        settle(outcome, 0.0)

    # Execution pass: train pending cells, in a pool when it pays off.
    # ``imap`` yields in submission order, so outcomes settle and persist in
    # cell order as they stream in — the store file a parallel run writes is
    # identical to the serial one.
    if pending:
        pool = None
        if workers > 1:
            # Every distinct backend the pending cells name is constructed in
            # the worker initializer, so per-worker JIT warmup happens once.
            backend_names = sorted(
                {cell.config.backend for _, cell in pending if cell.config.backend}
            )
            trace_sink = TRACER.sink_path if TRACER.enabled else None
            try:
                pool = multiprocessing.Pool(
                    processes=workers,
                    initializer=_worker_init,
                    initargs=(backend_names, trace_sink),
                )
            except (OSError, ImportError):
                # No usable multiprocessing (restricted sandboxes); run inline.
                pool = None
        try:
            stream = (
                pool.imap(_execute_cell_in_worker, pending) if pool else map(_execute_cell, pending)
            )
            for (index, cell), (result_index, result, error, elapsed) in zip(pending, stream):
                assert index == result_index, "pool returned results out of order"
                key = cell.fingerprint()
                if error is not None:
                    settle(
                        CellOutcome(index=index, cell=cell, key=key, status=STATUS_FAILED, error=error),
                        elapsed,
                    )
                    continue
                if store is not None:
                    store.put(cell.config, cell.method, result)
                settle(
                    CellOutcome(index=index, cell=cell, key=key, status=STATUS_RAN, result=result),
                    elapsed,
                )
        finally:
            if pool is not None:
                pool.close()
                pool.join()

    if TRACER.enabled:
        # Utilization: fraction of the pool's capacity spent training.  With
        # in-process execution this approaches 1; with a pool it exposes
        # startup cost, stragglers and imbalance.
        wall = time.perf_counter() - started
        if ran_elapsed and wall > 0:
            TRACER.metrics.set_gauge(
                "campaign.worker_utilization", min(1.0, sum(ran_elapsed) / (workers * wall))
            )

    report.outcomes = [outcome for outcome in outcomes if outcome is not None]
    return report
