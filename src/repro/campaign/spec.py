"""Declarative campaign specifications.

A :class:`CampaignSpec` describes a parameter study — the paper's evaluation
grid of {model} x {bandwidth} x {method} (Figs. 3/5/6, Table 1) is the
canonical example — as data rather than nested loops.  Axes compose three
ways:

* ``axes`` (grid): a cartesian product, one cell per combination;
* ``zipped``: equal-length lists advanced together (e.g. each model with its
  own target accuracy);
* ``cells``: explicit override dicts appended verbatim (corner cases that do
  not fit a product).

``expand()`` resolves the composition into a deduplicated list of
:class:`CampaignCell`\\ s — concrete ``(ExperimentConfig, MethodSpec)`` pairs
ready for the runner.  Axis names route automatically: experiment fields
(``model``, ``epochs``, ``seed`` ...) into :class:`ExperimentConfig`, cluster
fields (``bandwidth``, ``world_size``, ``overlap``, ``straggler``,
``hierarchical`` ...) into :class:`ClusterSpec`, ``method`` resolves through
the spec's method table, the paper's named methods, then the compressor
registry / codec spec grammar, and :class:`MethodSpec` field names
(``error_feedback``, ``pruning_ratio``, ``quantize`` ...) override the
resolved method per cell — so ``"error_feedback": [false, true]`` sweeps
every method with and without the driver's error-feedback residual state.

Specs round-trip through plain dicts (``from_dict`` / ``to_dict``) and load
from JSON or TOML files (``from_file``), which is what ``python -m repro
sweep`` drives.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.campaign.store import canonical_json, cell_fingerprint
from repro.simulation.cluster import ClusterSpec
from repro.simulation.experiment import PAPER_METHODS, ExperimentConfig, MethodSpec

#: Axis names that configure the experiment itself (minus the nested cluster).
CONFIG_AXES = frozenset(
    f.name for f in dataclasses.fields(ExperimentConfig) if f.name != "cluster"
)
#: Axis names that configure the simulated cluster.
CLUSTER_AXES = frozenset(f.name for f in dataclasses.fields(ClusterSpec))
#: The method axis selects the synchronisation method per cell.
METHOD_AXIS = "method"
#: Axis names that override fields of the resolved method — e.g.
#: ``"error_feedback": [false, true]`` sweeps every method with and without
#: the driver's error-feedback residual state.  ``name`` is excluded (it
#: identifies the method; override it via a dict-valued ``method`` axis).
METHOD_FIELD_AXES = frozenset(
    f.name for f in dataclasses.fields(MethodSpec) if f.name != "name"
)


@dataclass(frozen=True)
class CampaignCell:
    """One concrete experiment of a campaign: a workload and a method."""

    config: ExperimentConfig
    method: MethodSpec

    @property
    def label(self) -> str:
        """Short human-readable identity used in progress lines and tables."""
        cluster = self.config.cluster
        bandwidth = cluster.bandwidth
        if not isinstance(bandwidth, str):
            bandwidth = f"{bandwidth * 8 / 1e6:g}Mbps"
        return (
            f"{self.config.model}/{self.method.name}"
            f"@{bandwidth}/w{cluster.world_size}/seed{self.config.seed}"
        )

    def fingerprint(self) -> str:
        """Content hash of the cell (the store's cache key)."""
        return cell_fingerprint(self.config, self.method)


def resolve_method(
    value: Union[str, Dict, MethodSpec],
    methods: Optional[Dict[str, MethodSpec]] = None,
) -> MethodSpec:
    """Resolve a method axis value into a :class:`MethodSpec`.

    Strings look up the campaign's own method table first, then the paper's
    five named methods, and otherwise are taken as a compressor registry name
    or codec pipeline spec (``"topk0.01+terngrad"``).  Dicts build a
    :class:`MethodSpec` directly.
    """
    if isinstance(value, MethodSpec):
        return value
    if isinstance(value, dict):
        return MethodSpec.from_dict(value)
    if methods and value in methods:
        return methods[value]
    if value in PAPER_METHODS:
        return PAPER_METHODS[value]
    return MethodSpec(name=value, compressor=value)


def build_cell(
    overrides: Dict,
    base: Optional[Dict] = None,
    methods: Optional[Dict[str, MethodSpec]] = None,
) -> CampaignCell:
    """Construct one cell from base settings plus per-cell axis overrides."""
    merged = {**(base or {}), **overrides}
    config_kwargs: Dict = {}
    cluster_kwargs: Dict = {}
    method_overrides: Dict = {}
    method_value: Union[str, Dict, MethodSpec] = "all-reduce"
    for name, value in merged.items():
        if name == METHOD_AXIS:
            method_value = value
        elif name == "cluster":
            if not isinstance(value, dict):
                raise TypeError(f"'cluster' must be a dict of ClusterSpec fields, got {value!r}")
            cluster_kwargs.update(value)
        elif name in CONFIG_AXES:
            config_kwargs[name] = value
        elif name in CLUSTER_AXES:
            cluster_kwargs[name] = value
        elif name in METHOD_FIELD_AXES:
            method_overrides[name] = value
        else:
            raise KeyError(
                f"unknown campaign axis {name!r}; experiment axes: {sorted(CONFIG_AXES)}, "
                f"cluster axes: {sorted(CLUSTER_AXES)}, method-field axes: "
                f"{sorted(METHOD_FIELD_AXES)}, or 'method'"
            )
    config = ExperimentConfig(cluster=ClusterSpec.from_dict(cluster_kwargs), **config_kwargs)
    method = resolve_method(method_value, methods)
    if method_overrides:
        renamed = method.name
        # A compressor override must be reflected in the reported method name
        # — otherwise every cell of a compressor axis reports under the base
        # method's name and distinct compressors silently merge in pivots.
        # Only explicitly curated methods (dict values, MethodSpec instances,
        # the campaign's own methods table) keep their given name.
        curated = not isinstance(method_value, str) or bool(
            methods and method_value in methods
        )
        new_compressor = method_overrides.get("compressor")
        if new_compressor is not None and not curated:
            renamed = new_compressor
        # Keep EF on/off arms distinguishable in method-keyed reports: the
        # forced-on arm gains the ef+ prefix, the forced-off arm (which strips
        # even spec-default compensation, e.g. top-k's) a -noef suffix.
        ef_override = method_overrides.get("error_feedback")
        if ef_override and not method.error_feedback and not renamed.startswith("ef+"):
            renamed = f"ef+{renamed}"
        elif ef_override is False and not renamed.endswith("-noef"):
            renamed = f"{renamed}-noef"
        # A sync-schedule axis changes the training regime, not just a knob:
        # suffix non-synchronous arms so sync and async cells of the same
        # method stay distinguishable in method-keyed reports.  The schedule
        # is validated here (fail at expansion, not mid-campaign).
        schedule_override = method_overrides.get("sync_schedule")
        if schedule_override is not None:
            from repro.simulation.regimes import parse_sync_schedule  # noqa: PLC0415

            parsed = parse_sync_schedule(schedule_override)
            suffix = f"@{parsed.spec()}"
            if not parsed.is_synchronous and not renamed.endswith(suffix):
                renamed = f"{renamed}{suffix}"
        method = dataclasses.replace(method, name=renamed, **method_overrides)
    return CampaignCell(config=config, method=method)


@dataclass
class CampaignSpec:
    """A declarative sweep: base settings plus composable axes.

    Attributes
    ----------
    name:
        Campaign identifier (used for default store paths and reports).
    base:
        Axis defaults shared by every cell (same axis names as the axes).
    axes:
        Grid axes: the cartesian product over the listed values.
    zipped:
        Equal-length lists advanced together, crossed with the grid — the
        idiom for per-model settings such as target accuracies.
    cells:
        Explicit extra cells (override dicts merged over ``base``).
    methods:
        Named method definitions the ``method`` axis may reference, extending
        the paper's built-in five.
    """

    name: str = "campaign"
    base: Dict = field(default_factory=dict)
    axes: Dict[str, List] = field(default_factory=dict)
    zipped: Dict[str, List] = field(default_factory=dict)
    cells: List[Dict] = field(default_factory=list)
    methods: Dict[str, MethodSpec] = field(default_factory=dict)

    def __post_init__(self) -> None:
        lengths = {name: len(values) for name, values in self.zipped.items()}
        if len(set(lengths.values())) > 1:
            raise ValueError(f"zipped axes must have equal lengths, got {lengths}")
        for name, values in self.axes.items():
            if name in self.zipped:
                raise ValueError(f"axis {name!r} appears in both 'axes' and 'zipped'")
            if not values:
                raise ValueError(f"grid axis {name!r} has no values")

    # ------------------------------------------------------------------ #
    # Expansion
    # ------------------------------------------------------------------ #
    def expand(self) -> List[CampaignCell]:
        """All cells of the campaign, deduplicated, in declaration order.

        Grid points iterate with the last axis fastest (like nested loops in
        declaration order); each zip bundle entry is crossed with the full
        grid.  Duplicate cells — identical config and method after expansion —
        keep their first occurrence.
        """
        grid_names = list(self.axes)
        grid_points = (
            itertools.product(*(self.axes[name] for name in grid_names)) if grid_names else [()]
        )
        zip_names = list(self.zipped)
        if zip_names:
            zip_bundles = list(zip(*(self.zipped[name] for name in zip_names)))
        else:
            zip_bundles = [()]

        cells: List[CampaignCell] = []
        seen: Dict[str, None] = {}
        for grid_values in grid_points:
            for zip_values in zip_bundles:
                overrides = dict(zip(grid_names, grid_values))
                overrides.update(zip(zip_names, zip_values))
                self._add_cell(cells, seen, overrides)
        for overrides in self.cells:
            self._add_cell(cells, seen, overrides)
        return cells

    def _add_cell(self, cells: List[CampaignCell], seen: Dict[str, None], overrides: Dict) -> None:
        cell = build_cell(overrides, base=self.base, methods=self.methods)
        identity = canonical_json({"config": cell.config.to_dict(), "method": cell.method.to_dict()})
        if identity in seen:
            return
        seen[identity] = None
        cells.append(cell)

    def __len__(self) -> int:
        return len(self.expand())

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "base": dict(self.base),
            "axes": {name: list(values) for name, values in self.axes.items()},
            "zip": {name: list(values) for name, values in self.zipped.items()},
            "cells": [dict(cell) for cell in self.cells],
            "methods": {name: spec.to_dict() for name, spec in self.methods.items()},
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "CampaignSpec":
        known = {"name", "base", "axes", "zip", "zipped", "cells", "methods", "store"}
        unknown = set(data) - known
        if unknown:
            raise KeyError(f"unknown campaign spec keys {sorted(unknown)}; known: {sorted(known)}")
        if "zip" in data and "zipped" in data:
            raise KeyError("give either 'zip' or 'zipped', not both")
        methods = {
            name: spec if isinstance(spec, MethodSpec) else MethodSpec.from_dict(spec)
            for name, spec in data.get("methods", {}).items()
        }
        return cls(
            name=data.get("name", "campaign"),
            base=dict(data.get("base", {})),
            axes={name: list(values) for name, values in data.get("axes", {}).items()},
            zipped={
                name: list(values)
                for name, values in data.get("zip", data.get("zipped", {})).items()
            },
            cells=[dict(cell) for cell in data.get("cells", [])],
            methods=methods,
        )

    @classmethod
    def from_file(cls, path: Union[str, os.PathLike]) -> "CampaignSpec":
        """Load a spec from a ``.json`` or ``.toml`` file.

        TOML needs Python 3.11+ (:mod:`tomllib` is in the standard library
        there); on older interpreters use JSON, which is always available.
        The optional top-level ``store`` key is kept accessible via
        :func:`load_spec_file` for the CLI; ``from_file`` ignores it.
        """
        data, _ = load_spec_file(path)
        return cls.from_dict({key: value for key, value in data.items() if key != "store"})


def load_spec_file(path: Union[str, os.PathLike]) -> tuple:
    """Read a spec file into ``(raw dict, store path or None)``."""
    path = os.fspath(path)
    if path.endswith(".toml"):
        try:
            import tomllib  # noqa: PLC0415
        except ImportError as error:  # Python < 3.11
            raise RuntimeError(
                f"cannot read {path!r}: TOML campaign specs need Python 3.11+ "
                "(tomllib); re-save the spec as JSON for older interpreters"
            ) from error
        with open(path, "rb") as handle:
            data = tomllib.load(handle)
    else:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    if not isinstance(data, dict):
        raise TypeError(f"campaign spec {path!r} must contain a table/object at top level")
    return data, data.get("store")
