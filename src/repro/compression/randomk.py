"""Random-k sparsification.

A cheaper cousin of top-k: each rank keeps a random subset of coordinates.
With a seed shared across ranks the selections coincide, making the scheme
all-reduce compatible, at the cost of dropping (rather than deferring) most of
the gradient signal.  Included as an additional baseline for the ablation
benchmarks; not part of the paper's headline comparison.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.comm.process_group import ProcessGroup
from repro.compression.base import Compressor, FP32_BYTES, INDEX_BYTES
from repro.ddp.bucket import GradBucket


class RandomKCompressor(Compressor):
    """Shared-seed random-k sparsification with all-reduce aggregation."""

    allreduce_compatible = True
    lossless = False

    def __init__(self, ratio: float = 0.1, seed: int = 0, rescale: bool = True) -> None:
        super().__init__()
        if not 0.0 < ratio <= 1.0:
            raise ValueError("ratio must be in (0, 1]")
        self.ratio = ratio
        self.seed = seed
        self.rescale = rescale
        self.name = f"randomk-{ratio:g}"

    def _select(self, numel: int, bucket_index: int, iteration: int) -> np.ndarray:
        k = max(1, int(round(numel * self.ratio)))
        rng = np.random.default_rng(self.seed + 1_000_003 * bucket_index + iteration)
        return rng.choice(numel, size=k, replace=False)

    def aggregate(self, bucket: GradBucket, group: ProcessGroup, iteration: int = 0) -> np.ndarray:
        numel = bucket.numel
        indices = self._select(numel, bucket.index, iteration)
        k = indices.size

        # Because the selection is identical on every rank, only the selected
        # values need to be all-reduced; indices are derived locally.
        selected = [flat[indices] for flat in bucket.buffers]
        reduced = group.all_reduce(selected, average=True, element_bytes=FP32_BYTES)

        aggregated = np.zeros(numel, dtype=np.float64)
        aggregated[indices] = reduced
        if self.rescale:
            # Unbiased estimate of the dense average gradient.
            aggregated *= numel / k

        self._record(bucket, wire_bytes_per_element=FP32_BYTES, payload_elements=k)
        return aggregated
