"""Random-k sparsification.

A cheaper cousin of top-k: each rank keeps a random subset of coordinates.
With a seed shared across ranks the selections coincide, so the encoded
:class:`~repro.compression.codec.payloads.SparsePayload`\\ s are element-wise
summable (all-reduce compatible) and the indices never travel — only the
selected values are charged to the wire.  Included as an additional baseline
for the ablation benchmarks; not part of the paper's headline comparison.
"""

from __future__ import annotations

from repro.compression.base import CodecCompressor
from repro.compression.codec import Pipeline, RandomK


class RandomKCompressor(CodecCompressor):
    """Shared-seed random-k sparsification with all-reduce aggregation."""

    def __init__(self, ratio: float = 0.1, seed: int = 0, rescale: bool = True) -> None:
        self._stage = RandomK(ratio=ratio, seed=seed, rescale=rescale)
        super().__init__(Pipeline([self._stage]), name=f"randomk-{ratio:g}")

    @property
    def ratio(self) -> float:
        return self._stage.ratio

    @property
    def seed(self) -> int:
        return self._stage.seed

    @property
    def rescale(self) -> bool:
        return self._stage.rescale
