"""TernGrad: ternary gradient quantisation (Wen et al., 2017).

Each gradient coordinate is stochastically rounded to ``s * {-1, 0, +1}``,
where ``s`` is the per-bucket maximum magnitude.  The rounding probability
``|g_i| / s`` makes the quantised gradient unbiased in expectation (the
property Eq. (3) of the PacTrain paper relies on), while the payload shrinks to
~2 bits per element plus one scalar.

Aggregation remains all-reduce compatible: ranks first agree on a shared
scaler via a max-reduction (modeled as a tiny all-reduce), then all-reduce the
integer ternary values.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.comm.process_group import ProcessGroup
from repro.compression.base import Compressor, FP32_BYTES, TERNARY_BYTES
from repro.ddp.bucket import GradBucket


def ternarize(
    grad: np.ndarray,
    scaler: Optional[float] = None,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Stochastically quantise ``grad`` to ``scaler * {-1, 0, +1}``.

    Parameters
    ----------
    grad:
        Input gradient (any shape).
    scaler:
        Shared scale ``s``; defaults to ``max(|grad|)``.
    rng:
        Random generator used for the Bernoulli draws (deterministic tests pass
        a seeded generator).
    """
    rng = rng or np.random.default_rng()
    if scaler is None:
        scaler = float(np.max(np.abs(grad))) if grad.size else 0.0
    if scaler == 0.0:
        return np.zeros_like(grad)
    probability = np.clip(np.abs(grad) / scaler, 0.0, 1.0)
    keep = rng.random(grad.shape) < probability
    return scaler * np.sign(grad) * keep


class TernGradCompressor(Compressor):
    """Ternary quantisation with shared-scaler all-reduce aggregation."""

    name = "terngrad"
    allreduce_compatible = True
    lossless = False

    def __init__(self, seed: int = 0, clip_sigma: Optional[float] = 2.5) -> None:
        super().__init__()
        self.seed = seed
        self.clip_sigma = clip_sigma
        self._rng = np.random.default_rng(seed)

    def reset(self) -> None:
        super().reset()
        self._rng = np.random.default_rng(self.seed)

    def _clip(self, grad: np.ndarray) -> np.ndarray:
        """Gradient clipping recommended by the TernGrad paper to bound the scaler."""
        if self.clip_sigma is None or grad.size == 0:
            return grad
        sigma = float(np.std(grad))
        if sigma == 0.0:
            return grad
        bound = self.clip_sigma * sigma
        return np.clip(grad, -bound, bound)

    def aggregate(self, bucket: GradBucket, group: ProcessGroup, iteration: int = 0) -> np.ndarray:
        clipped = [self._clip(flat) for flat in bucket.buffers]

        # Scaler agreement: one scalar per rank, max-reduced.  The payload is
        # negligible; we model it as an all-reduce of a single fp32 element.
        scalers = [np.array([np.max(np.abs(flat))]) if flat.size else np.array([0.0]) for flat in clipped]
        group.all_reduce(scalers, average=False, element_bytes=FP32_BYTES)
        shared_scaler = float(max(float(s[0]) for s in scalers))

        ternary = [ternarize(flat, scaler=shared_scaler, rng=self._rng) for flat in clipped]
        result = group.all_reduce(ternary, average=True, element_bytes=TERNARY_BYTES)

        self._record(bucket, wire_bytes_per_element=TERNARY_BYTES)
        return result
