"""TernGrad: ternary gradient quantisation (Wen et al., 2017).

Each gradient coordinate is stochastically rounded to ``s * {-1, 0, +1}``,
where ``s`` is the per-bucket maximum magnitude.  The rounding probability
``|g_i| / s`` makes the quantised gradient unbiased in expectation (the
property Eq. (3) of the PacTrain paper relies on), while the wire payload
shrinks to a packed 2-bit :class:`~repro.compression.codec.payloads.TernaryPayload`.

Aggregation remains all-reduce compatible: the
:class:`~repro.compression.codec.stages.Ternarize` stage first agrees on a
shared scaler via a max-reduction (modeled as a tiny all-reduce), then the
driver all-reduces the ternary payloads.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.compression.base import CodecCompressor
from repro.compression.codec import Pipeline, Ternarize


def ternarize(
    grad: np.ndarray,
    scaler: Optional[float] = None,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Stochastically quantise ``grad`` to ``scaler * {-1, 0, +1}``.

    Functional form used by tests and ad-hoc callers; training uses the
    :class:`~repro.compression.codec.stages.Ternarize` codec stage, which adds
    clipping and shared-scaler agreement.

    Parameters
    ----------
    grad:
        Input gradient (any shape).
    scaler:
        Shared scale ``s``; defaults to ``max(|grad|)``.
    rng:
        Random generator used for the Bernoulli draws (deterministic tests pass
        a seeded generator).
    """
    rng = rng or np.random.default_rng()
    if scaler is None:
        scaler = float(np.max(np.abs(grad))) if grad.size else 0.0
    if scaler == 0.0:
        return np.zeros_like(grad)
    probability = np.clip(np.abs(grad) / scaler, 0.0, 1.0)
    keep = rng.random(grad.shape) < probability
    return scaler * np.sign(grad) * keep


class TernGradCompressor(CodecCompressor):
    """Ternary quantisation with shared-scaler all-reduce aggregation."""

    def __init__(self, seed: int = 0, clip_sigma: Optional[float] = 2.5) -> None:
        self._stage = Ternarize(seed=seed, clip_sigma=clip_sigma)
        super().__init__(Pipeline([self._stage]), name="terngrad")

    @property
    def seed(self) -> int:
        return self._stage.seed

    @property
    def clip_sigma(self) -> Optional[float]:
        return self._stage.clip_sigma
