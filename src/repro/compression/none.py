"""Identity compressor: native fp32 ring all-reduce (the paper's baseline)."""

from __future__ import annotations

from repro.compression.base import CodecCompressor
from repro.compression.codec import Identity, Pipeline


class NoCompression(CodecCompressor):
    """Aggregate gradients with a plain fp32 all-reduce."""

    def __init__(self) -> None:
        super().__init__(Pipeline([Identity()]), name="allreduce")
