"""Identity compressor: native fp32 ring all-reduce (the paper's baseline)."""

from __future__ import annotations

import numpy as np

from repro.comm.process_group import ProcessGroup
from repro.compression.base import Compressor, FP32_BYTES
from repro.ddp.bucket import GradBucket


class NoCompression(Compressor):
    """Aggregate gradients with a plain fp32 all-reduce."""

    name = "allreduce"
    allreduce_compatible = True
    lossless = True

    def aggregate(self, bucket: GradBucket, group: ProcessGroup, iteration: int = 0) -> np.ndarray:
        result = group.all_reduce(bucket.buffers, average=True, element_bytes=FP32_BYTES)
        self._record(bucket, FP32_BYTES)
        return result
