"""Compressor registry.

Benchmark configurations refer to compression schemes by the names used in the
paper's figures ("all-reduce", "fp16", "topk-0.1", "topk-0.01", "pactrain").
``build_compressor`` resolves those names to fresh compressor instances; the
PacTrain entry is registered lazily to avoid a circular import with
:mod:`repro.pactrain`.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.compression.base import Compressor
from repro.compression.dgc import DGCCompressor
from repro.compression.fp16 import FP16Compressor
from repro.compression.none import NoCompression
from repro.compression.randomk import RandomKCompressor
from repro.compression.terngrad import TernGradCompressor
from repro.compression.topk import TopKCompressor

CompressorFactory = Callable[..., Compressor]

COMPRESSOR_REGISTRY: Dict[str, CompressorFactory] = {
    "allreduce": NoCompression,
    "all-reduce": NoCompression,
    "fp16": FP16Compressor,
    "topk-0.1": lambda **kw: TopKCompressor(ratio=0.1, **kw),
    "topk-0.01": lambda **kw: TopKCompressor(ratio=0.01, **kw),
    "topk": TopKCompressor,
    "randomk": RandomKCompressor,
    "terngrad": TernGradCompressor,
    "dgc": DGCCompressor,
    "dgc-0.01": lambda **kw: DGCCompressor(ratio=0.01, **kw),
}


def register_compressor(name: str, factory: CompressorFactory) -> None:
    """Register a compressor factory under ``name`` (case-insensitive)."""
    COMPRESSOR_REGISTRY[name.lower()] = factory


def build_compressor(name: str, **kwargs) -> Compressor:
    """Instantiate a compressor by its registry name.

    Raises
    ------
    KeyError
        If the name is unknown.  The PacTrain compressor is imported lazily so
        that ``build_compressor("pactrain")`` works without importing
        :mod:`repro.pactrain` up front.
    """
    key = name.lower()
    if key in ("pactrain", "pactrain-terngrad", "pactrain-fp32") and key not in COMPRESSOR_REGISTRY:
        from repro.pactrain.compressor import PacTrainCompressor  # noqa: PLC0415

        register_compressor("pactrain", lambda **kw: PacTrainCompressor(**kw))
        register_compressor(
            "pactrain-terngrad", lambda **kw: PacTrainCompressor(quantize=True, **kw)
        )
        register_compressor(
            "pactrain-fp32", lambda **kw: PacTrainCompressor(quantize=False, **kw)
        )
    if key not in COMPRESSOR_REGISTRY:
        raise KeyError(f"unknown compressor {name!r}; registered: {sorted(COMPRESSOR_REGISTRY)}")
    return COMPRESSOR_REGISTRY[key](**kwargs)
