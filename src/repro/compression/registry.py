"""Compressor registry and codec spec strings.

Benchmark configurations refer to compression schemes by the names used in the
paper's figures ("all-reduce", "fp16", "topk-0.1", "topk-0.01", "pactrain").
``build_compressor`` resolves those names to fresh compressor instances; the
PacTrain entry is registered lazily to avoid a circular import with
:mod:`repro.pactrain`.

Beyond the fixed names, any ``+``-separated codec pipeline spec builds a
compressor on the fly: ``build_compressor("topk0.01+terngrad")`` selects the
top 1 % coordinates and ternarises the selected values — arbitrary codec
composition without writing a compressor class (see
:func:`repro.compression.codec.parse_codec_spec` for the grammar).  A leading
``"ef"`` token (``"ef+topk0.01"``, ``"ef+signsgd"``) wraps the pipeline in the
driver's per-bucket error-feedback residual state; ``"signsgd"`` and
``"powersgd-rank4"`` name the sign/majority-vote and low-rank stage families.
"""

from __future__ import annotations

import inspect
from typing import Callable, Dict, Optional

from repro.compression.base import CodecCompressor, Compressor
from repro.compression.codec import Identity, Pipeline, parse_compressor_spec
from repro.compression.dgc import DGCCompressor
from repro.compression.fp16 import FP16Compressor
from repro.compression.none import NoCompression
from repro.compression.randomk import RandomKCompressor
from repro.compression.terngrad import TernGradCompressor
from repro.compression.topk import TopKCompressor

CompressorFactory = Callable[..., Compressor]

#: Deterministic compressors (top-k selection, dgc, fp16, identity) declare a
#: ``seed`` parameter they ignore, so :func:`build_compressor` can thread the
#: per-run seed uniformly without special-casing which methods are stochastic.
COMPRESSOR_REGISTRY: Dict[str, CompressorFactory] = {
    "allreduce": NoCompression,
    "all-reduce": NoCompression,
    "fp16": FP16Compressor,
    "topk-0.1": lambda seed=None, **kw: TopKCompressor(ratio=0.1, **kw),
    "topk-0.01": lambda seed=None, **kw: TopKCompressor(ratio=0.01, **kw),
    "topk": TopKCompressor,
    "randomk": RandomKCompressor,
    "terngrad": TernGradCompressor,
    "dgc": DGCCompressor,
    "dgc-0.01": lambda seed=None, **kw: DGCCompressor(ratio=0.01, **kw),
    # Explicit identity codec (same object the spec parser would build from
    # the bare "none" token).  Registered by name so the training-regime
    # parity tests — localsgd:1:delta with a lossless codec must reproduce
    # the synchronous path bit-identically — read as a first-class method
    # rather than a spec-grammar fallthrough.
    "none": lambda seed=None, **kw: CodecCompressor(
        Pipeline([Identity()]), name="none", **kw
    ),
    "identity": lambda seed=None, **kw: CodecCompressor(
        Pipeline([Identity()]), name="identity", **kw
    ),
}


def register_compressor(name: str, factory: CompressorFactory) -> None:
    """Register a compressor factory under ``name`` (case-insensitive).

    Factories that accept a ``seed`` keyword (or ``**kwargs``) receive the
    per-run seed from :func:`build_compressor`; seedless factories still work
    (their compressors are treated as deterministic).
    """
    COMPRESSOR_REGISTRY[name.lower()] = factory


def _accepts_seed(factory: CompressorFactory) -> bool:
    """Whether ``factory`` can receive a ``seed`` keyword argument."""
    try:
        parameters = inspect.signature(factory).parameters.values()
    except (TypeError, ValueError):  # pragma: no cover - non-introspectable callable
        return False
    return any(
        p.name == "seed" or p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters
    )


def build_compressor(name: str, seed: Optional[int] = None, **kwargs) -> Compressor:
    """Instantiate a compressor by registry name or codec pipeline spec.

    Resolution order: registered names first (so the paper's figure names and
    user registrations win), then ``+``-separated codec specs such as
    ``"topk0.01+terngrad"`` or ``"randomk0.1+fp16"``.

    ``seed`` is threaded to whatever randomness the method actually has: it is
    passed to registry factories that accept a ``seed`` keyword and to the
    stochastic stages of codec pipeline specs (shared random-k selection,
    ternary rounding).  ``None`` keeps every factory default (seed 0 for the
    built-in stochastic codecs).

    Raises
    ------
    KeyError
        If the name is neither registered nor a parseable codec spec.  The
        PacTrain compressor is imported lazily so that
        ``build_compressor("pactrain")`` works without importing
        :mod:`repro.pactrain` up front.
    ValueError
        If the name parses as a codec spec but a stage parameter is invalid
        (e.g. ``"topk2"`` — ratio outside ``(0, 1]``); the error names the
        offending spec.
    """
    key = name.lower()
    if key in ("pactrain", "pactrain-terngrad", "pactrain-fp32") and key not in COMPRESSOR_REGISTRY:
        from repro.pactrain.compressor import PacTrainCompressor  # noqa: PLC0415

        register_compressor("pactrain", lambda **kw: PacTrainCompressor(**kw))
        register_compressor(
            "pactrain-terngrad", lambda **kw: PacTrainCompressor(quantize=True, **kw)
        )
        register_compressor(
            "pactrain-fp32", lambda **kw: PacTrainCompressor(quantize=False, **kw)
        )
    if key in COMPRESSOR_REGISTRY:
        factory = COMPRESSOR_REGISTRY[key]
        if seed is not None and "seed" not in kwargs and _accepts_seed(factory):
            kwargs["seed"] = seed
        return factory(**kwargs)
    try:
        pipeline, error_feedback = parse_compressor_spec(key, seed=0 if seed is None else seed)
    except KeyError:
        raise KeyError(
            f"unknown compressor {name!r}: not a registered name "
            f"({sorted(COMPRESSOR_REGISTRY)}) and not a codec pipeline spec"
        ) from None
    except ValueError as error:
        raise ValueError(f"invalid codec spec {name!r}: {error}") from error
    if kwargs:
        raise TypeError(
            f"codec spec {name!r} does not accept keyword arguments "
            f"({sorted(kwargs)}); encode parameters in the spec itself "
            "(e.g. 'topk0.05') or register a factory under a name"
        )
    return CodecCompressor(pipeline, name=key, error_feedback=error_feedback)
