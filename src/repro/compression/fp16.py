"""Half-precision gradient compression.

The paper uses fp16 as the representative quantisation baseline ("most
gradient compression algorithms perform similarly to FP16", §IV.C.1): values
are cast to fp16 before the all-reduce, halving the bytes on the wire at the
cost of rounding error.
"""

from __future__ import annotations

import numpy as np

from repro.comm.process_group import ProcessGroup
from repro.compression.base import Compressor, FP16_BYTES
from repro.ddp.bucket import GradBucket


class FP16Compressor(Compressor):
    """Cast gradients to fp16, all-reduce, cast back."""

    name = "fp16"
    allreduce_compatible = True
    lossless = False

    def aggregate(self, bucket: GradBucket, group: ProcessGroup, iteration: int = 0) -> np.ndarray:
        halved = [buf.astype(np.float16).astype(np.float64) for buf in bucket.buffers]
        result = group.all_reduce(halved, average=True, element_bytes=FP16_BYTES)
        self._record(bucket, FP16_BYTES)
        return result
