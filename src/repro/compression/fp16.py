"""Half-precision gradient compression.

The paper uses fp16 as the representative quantisation baseline ("most
gradient compression algorithms perform similarly to FP16", §IV.C.1): values
are cast to fp16 before the all-reduce, halving the bytes on the wire at the
cost of rounding error.  Implemented as a one-stage codec pipeline producing
:class:`~repro.compression.codec.payloads.HalfPayload` wire payloads.
"""

from __future__ import annotations

from repro.compression.base import CodecCompressor
from repro.compression.codec import Half, Pipeline


class FP16Compressor(CodecCompressor):
    """Cast gradients to fp16, all-reduce, cast back."""

    def __init__(self) -> None:
        super().__init__(Pipeline([Half()]), name="fp16")
