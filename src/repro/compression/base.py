"""Compressor interface and shared bookkeeping."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.comm.process_group import ProcessGroup
from repro.ddp.bucket import GradBucket

FP32_BYTES = 4.0
FP16_BYTES = 2.0
INDEX_BYTES = 4.0
TERNARY_BYTES = 0.25  # 2 bits per element


@dataclass
class CompressionStats:
    """Per-compressor running statistics (across all buckets and iterations)."""

    iterations: int = 0
    raw_bytes: float = 0.0
    wire_bytes: float = 0.0
    allreduce_calls: int = 0
    allgather_calls: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def compression_ratio(self) -> float:
        """Raw fp32 bytes divided by bytes actually sent (>= 1 means savings)."""
        if self.wire_bytes == 0:
            return float("inf") if self.raw_bytes > 0 else 1.0
        return self.raw_bytes / self.wire_bytes


class Compressor:
    """Base class for gradient compressors.

    Subclasses implement :meth:`aggregate`, which receives the per-rank flat
    gradients of one bucket and must return the aggregated *average* gradient
    of the same length, issuing all communication through ``group`` so that the
    network cost model sees it.

    Attributes
    ----------
    name:
        Short identifier used by the registry and in benchmark tables.
    allreduce_compatible:
        Whether aggregation uses the all-reduce primitive (Table 1's
        "Compatibility" column).  All-gather-based schemes pay the
        ``(n-1) x payload`` exchange cost instead of ``2 (n-1)/n``.
    lossless:
        Whether the aggregated result equals the exact average of the inputs.
    """

    name: str = "base"
    allreduce_compatible: bool = True
    lossless: bool = False

    def __init__(self) -> None:
        self.stats = CompressionStats()

    # ------------------------------------------------------------------ #
    # Interface
    # ------------------------------------------------------------------ #
    def aggregate(
        self,
        bucket: GradBucket,
        group: ProcessGroup,
        iteration: int = 0,
    ) -> np.ndarray:
        raise NotImplementedError

    def reset(self) -> None:
        """Clear statistics and any per-bucket state (error feedback, masks)."""
        self.stats = CompressionStats()

    # ------------------------------------------------------------------ #
    # Bookkeeping helpers for subclasses
    # ------------------------------------------------------------------ #
    def _record(
        self,
        bucket: GradBucket,
        wire_bytes_per_element: float,
        payload_elements: Optional[int] = None,
        used_allgather: bool = False,
    ) -> None:
        elements = bucket.numel if payload_elements is None else payload_elements
        self.stats.iterations += 1
        self.stats.raw_bytes += bucket.numel * FP32_BYTES
        self.stats.wire_bytes += elements * wire_bytes_per_element
        if used_allgather:
            self.stats.allgather_calls += 1
        else:
            self.stats.allreduce_calls += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(name={self.name!r})"


def exact_average(buffers: List[np.ndarray]) -> np.ndarray:
    """Reference (lossless) average used by tests and error computations."""
    return np.mean(np.stack(buffers), axis=0)
