"""Compressor interface, the shared codec aggregation driver and bookkeeping.

A :class:`Compressor` turns one gradient bucket (per-rank flat tensors) into
the aggregated average gradient, issuing all communication through the process
group so the network cost model sees it.  Since the codec refactor every
built-in compressor is a :class:`CodecCompressor`: a thin wrapper binding a
:class:`~repro.compression.codec.pipeline.Pipeline` of encode/decode stages to
the shared **encode → reduce/gather → decode** driver below.  Wire bytes are
derived from the encoded :class:`~repro.compression.codec.payloads.WirePayload`
at the collective layer — compressors no longer self-report byte counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.comm.process_group import ProcessGroup
from repro.compression.codec.payloads import (
    FP16_BYTES,
    FP32_BYTES,
    INDEX_BYTES,
    TERNARY_BYTES,
    WirePayload,
)
from repro.compression.codec.pipeline import Pipeline, as_pipeline
from repro.compression.codec.stages import Codec, EncodeContext, remap_rank_rows
from repro.ddp.bucket import GradBucket
from repro.obs.tracer import NULL_SPAN, TRACER

#: With tracing enabled, lossy pipelines sample an exact-average NMSE every
#: this many iterations per bucket (full exact averages every step would
#: double the aggregation cost of the observed run).
NMSE_SAMPLE_EVERY = 16

__all__ = [
    "FP32_BYTES",
    "FP16_BYTES",
    "INDEX_BYTES",
    "TERNARY_BYTES",
    "CompressionStats",
    "Compressor",
    "CodecCompressor",
    "exact_average",
]


@dataclass
class CompressionStats:
    """Per-compressor running statistics (across all buckets and iterations).

    ``wire_bytes`` accumulates one *per-worker* payload size per aggregation —
    the largest ``WirePayload.nbytes`` handed to the collective layer that
    iteration (ranks send symmetric payloads, so this is each worker's upload).
    Coordination traffic (scaler agreement, bitmask sync) is charged in the
    process group's event log but not counted against the payload ratio.
    """

    iterations: int = 0
    raw_bytes: float = 0.0
    wire_bytes: float = 0.0
    allreduce_calls: int = 0
    allgather_calls: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def compression_ratio(self) -> float:
        """Raw fp32 bytes divided by bytes actually sent (>= 1 means savings)."""
        if self.wire_bytes == 0:
            return float("inf") if self.raw_bytes > 0 else 1.0
        return self.raw_bytes / self.wire_bytes


class Compressor:
    """Base class for gradient compressors.

    Subclasses implement :meth:`aggregate`, which receives the per-rank flat
    gradients of one bucket and must return the aggregated *average* gradient
    of the same length, issuing all communication through ``group`` so that the
    network cost model sees it.

    Attributes
    ----------
    name:
        Short identifier used by the registry and in benchmark tables.
    allreduce_compatible:
        Whether aggregation uses the all-reduce primitive (Table 1's
        "Compatibility" column).  All-gather-based schemes pay the
        ``(n-1) x payload`` exchange cost instead of ``2 (n-1)/n``.
    lossless:
        Whether the aggregated result equals the exact average of the inputs.
    """

    name: str = "base"
    allreduce_compatible: bool = True
    lossless: bool = False

    def __init__(self) -> None:
        self.stats = CompressionStats()

    # ------------------------------------------------------------------ #
    # Interface
    # ------------------------------------------------------------------ #
    def aggregate(
        self,
        bucket: GradBucket,
        group: ProcessGroup,
        iteration: int = 0,
    ) -> np.ndarray:
        raise NotImplementedError

    def reset(self) -> None:
        """Clear statistics and any per-bucket state (error feedback, masks)."""
        self.stats = CompressionStats()

    def resize_world(
        self, old_ranks: Sequence[int], new_ranks: Sequence[int], policy: str = "carry"
    ) -> None:
        """Adapt per-rank state to an elastic membership change.

        ``old_ranks``/``new_ranks`` are the global rank ids active before and
        after the change, in the order their rows occupied the per-bucket
        state matrices.  The base compressor keeps no per-rank state, so the
        default is a no-op; :class:`CodecCompressor` remaps its
        error-feedback residuals and forwards to every pipeline stage.
        ``policy`` is ``"carry"`` (survivors keep their rows, newcomers start
        from zero) or ``"zero"`` (everyone restarts).
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(name={self.name!r})"


class CodecCompressor(Compressor):
    """Aggregate gradients through a codec pipeline (the shared driver).

    Per bucket and iteration the driver

    1. **encodes** every rank's flat gradient through the pipeline into a
       :class:`WirePayload` (stages coordinate shared scalers/selections and
       charge those collectives themselves);
    2. **reduces** the payloads with an all-reduce when they are element-wise
       summable, otherwise **gathers** them — the collective layer charges the
       network model from ``payload.nbytes``;
    3. **decodes** back to the dense average gradient, accumulating gathered
       payloads into one preallocated buffer (peak memory O(numel)).

    With ``error_feedback=True`` the driver additionally keeps one residual
    matrix per bucket — the ``(world_size, numel)`` gradient mass each rank's
    *own* encoding failed to represent.  Encoding then sees the compensated
    gradient ``grad + residual`` and, after encoding, the residual is rewritten
    to ``input - decode(own payload)``, so every coordinate a lossy compressor
    drops is retransmitted once the accumulated error grows large enough
    (EF-SGD, Karimireddy et al., 2019).  The residual buffers are owned by the
    compressor — never views into the DDP gradient arena — so they survive
    arena staging and bucket reuse across iterations.

    Subclasses may override :meth:`_pipeline_for` to pick the pipeline
    adaptively per bucket/iteration (PacTrain's stable/fallback switch).
    """

    def __init__(
        self,
        pipeline: Union[Codec, Sequence[Codec], Pipeline],
        name: Optional[str] = None,
        error_feedback: bool = False,
    ) -> None:
        super().__init__()
        self.pipeline = as_pipeline(pipeline)
        self.error_feedback = bool(error_feedback)
        if name is None:
            name = self.pipeline.spec()
            if self.error_feedback:
                name = f"ef+{name}"
        self.name = name
        # Per-bucket (world_size, numel) error-feedback residuals.
        self._residuals: Dict[int, np.ndarray] = {}
        if self.error_feedback:
            self._adopt_driver_error_feedback()
        self.allreduce_compatible = self.pipeline.allreduce_compatible
        self.lossless = self.pipeline.lossless

    # ------------------------------------------------------------------ #
    def _check_driver_ef_composable(self) -> None:
        """Refuse EF toggling around stages that compensate by construction.

        Momentum-corrected DGC accumulates unsent gradient mass in its own
        (momentum, accumulation) buffers as an inseparable part of the
        algorithm: layering the driver residual on top would double-count
        every dropped coordinate, and "stripping" the compensation would not
        leave DGC behind.  Either request fails loudly instead.
        """
        for stage in self.pipeline.stages:
            if getattr(stage, "self_compensating", False):
                raise ValueError(
                    f"stage {stage.spec()!r} accumulates unsent gradient mass "
                    "internally (momentum-corrected DGC); driver-level error "
                    "feedback cannot be layered around or stripped from it"
                )

    def _adopt_driver_error_feedback(self) -> None:
        """Make the pipeline safe to run under the driver residual.

        Stage-internal error feedback (TopK's residuals) is disabled so the
        unsent gradient mass is not accumulated twice, and unbiased rescaling
        (random-k's ``numel/k`` decode factor) is switched off — against a
        rescaled decode, ``input - decode`` is an *expansion* of the error,
        not a contraction, and EF training would diverge.  With EF the raw
        selection is the correct transmit; the residual resends what was
        dropped.
        """
        self._check_driver_ef_composable()
        for stage in self.pipeline.stages:
            if getattr(stage, "error_feedback", False):
                stage.error_feedback = False
                stage.reset()
            if getattr(stage, "rescale", False):
                stage.rescale = False
                # Remembered so disable_error_feedback can restore the
                # unbiased estimator when EF is later switched off again.
                stage._rescale_disabled_by_driver = True

    def enable_error_feedback(self) -> None:
        """Switch on driver-level error feedback after construction.

        Used when a :class:`~repro.simulation.experiment.MethodSpec` requests
        ``error_feedback=True`` for a registry-built compressor.  Stage-internal
        compensation and unbiased rescaling are disabled at the same time (see
        :meth:`_adopt_driver_error_feedback`).
        """
        self._adopt_driver_error_feedback()
        self.error_feedback = True
        if not self.name.startswith("ef+"):
            self.name = f"ef+{self.name}"

    def disable_error_feedback(self) -> None:
        """Switch off *all* error feedback — driver-level and stage-internal.

        The explicit no-EF arm of an error-feedback study
        (``MethodSpec(error_feedback=False)``): even compressors that carry
        compensation by default in their paper form (top-k) run genuinely
        uncompensated.  Unbiased rescaling is an estimator correction, not
        compensation: it is left on, and restored if the driver had disabled
        it (an ``"ef+..."``-built compressor later forced off must not stay
        both uncompensated *and* biased low by ``k/n``).
        """
        self._check_driver_ef_composable()
        self.error_feedback = False
        self._residuals.clear()
        for stage in self.pipeline.stages:
            if getattr(stage, "error_feedback", False):
                stage.error_feedback = False
                stage.reset()
            if getattr(stage, "_rescale_disabled_by_driver", False):
                stage.rescale = True
                stage._rescale_disabled_by_driver = False
        if self.name.startswith("ef+"):
            self.name = self.name[len("ef+"):]

    def residual(self, bucket_index: int) -> Optional[np.ndarray]:
        """The current error-feedback residual of one bucket (None before use)."""
        return self._residuals.get(bucket_index)

    def _pipeline_for(self, bucket: GradBucket, group: ProcessGroup, iteration: int) -> Pipeline:
        """Pipeline used for this bucket synchronisation (static by default)."""
        return self.pipeline

    def aggregate(self, bucket: GradBucket, group: ProcessGroup, iteration: int = 0) -> np.ndarray:
        pipeline = self._pipeline_for(bucket, group, iteration)
        # Arena-backed buckets hand first-stage matrix consumers (batched
        # top-k, DGC) the (world, numel) gradients without re-stacking;
        # list-backed buckets pass None so pipelines that never read the
        # matrix don't pay for a stack.
        matrix = bucket.materialized_matrix
        buffers: Sequence[np.ndarray] = bucket.buffers

        residual: Optional[np.ndarray] = None
        if self.error_feedback:
            residual = self._residuals.get(bucket.index)
            if residual is None or residual.shape != (bucket.world_size, bucket.numel):
                residual = np.zeros(
                    (bucket.world_size, bucket.numel), dtype=np.asarray(buffers[0]).dtype
                )
            # Compensate: encode grad + residual.  The sum is a fresh matrix —
            # it must not alias the arena (whose rows are rewritten next step)
            # nor the residual buffer (rewritten below from these inputs).
            if matrix is not None:
                matrix = matrix + residual
            else:
                matrix = np.stack(buffers) + residual
            buffers = list(matrix)

        ctx = EncodeContext(
            world_size=bucket.world_size,
            bucket_index=bucket.index,
            iteration=iteration,
            group=group,
            matrix=matrix,
        )
        # One guard read for the whole aggregation: when disabled, every span
        # below is the shared NULL_SPAN and no span arguments are built.
        traced = TRACER.enabled
        with TRACER.span(
            "codec/encode", cat="codec", bucket=bucket.index, spec=self.name
        ) if traced else NULL_SPAN:
            payloads = pipeline.encode_all(buffers, ctx)
        wire_nbytes = max(payload.nbytes for payload in payloads) if traced else 0

        # Route on the pipeline's static property; the collective layer still
        # validates per-payload reducibility, so a stage that wrongly claims
        # compatibility fails loudly rather than silently gathering.
        reducible = pipeline.allreduce_compatible
        if reducible:
            if residual is not None:
                # residual_r = input_r - decode(rank r's own payload): exactly
                # the gradient mass rank r's encoding dropped this step.
                for rank, payload in enumerate(payloads):
                    np.subtract(
                        buffers[rank], pipeline.decode(payload), out=residual[rank],
                        casting="unsafe",
                    )
            with TRACER.span(
                "codec/reduce", cat="codec", bucket=bucket.index, bytes=int(wire_nbytes)
            ) if traced else NULL_SPAN:
                reduced = group.all_reduce(payloads, average=True)
            with TRACER.span(
                "codec/decode", cat="codec", bucket=bucket.index
            ) if traced else NULL_SPAN:
                result = pipeline.decode(reduced)
        else:
            with TRACER.span(
                "codec/gather", cat="codec", bucket=bucket.index, bytes=int(wire_nbytes)
            ) if traced else NULL_SPAN:
                gathered = group.all_gather(payloads)
            with TRACER.span(
                "codec/decode", cat="codec", bucket=bucket.index
            ) if traced else NULL_SPAN:
                result = None
                for rank, payload in enumerate(gathered):
                    decoded = pipeline.decode(payload)
                    if residual is not None:
                        # The gathered payloads are per-rank copies of the
                        # local ones, so the same decode serves both the
                        # average and the residual update.
                        np.subtract(buffers[rank], decoded, out=residual[rank], casting="unsafe")
                    if result is None:
                        result = np.zeros(bucket.numel, dtype=decoded.dtype)
                    np.add(result, decoded, out=result)
                result /= bucket.world_size

        if residual is not None:
            self._residuals[bucket.index] = residual
        self._record(bucket, payloads, used_allgather=not reducible)
        if traced and TRACER.enabled:
            self._observe(bucket, buffers, result, wire_nbytes, iteration)
        return result

    def _observe(
        self,
        bucket: GradBucket,
        buffers: Sequence[np.ndarray],
        result: np.ndarray,
        wire_nbytes: float,
        iteration: int,
    ) -> None:
        """Publish per-aggregation metrics (only called while tracing).

        Everything here is read-only over the aggregation's inputs and
        output, so an observed run stays bit-identical to an unobserved one.
        The exact-average NMSE is sampled every :data:`NMSE_SAMPLE_EVERY`
        iterations because it costs a full lossless aggregation.
        """
        metrics = TRACER.metrics
        metrics.inc("codec.aggregations")
        metrics.inc("codec.wire_bytes", float(wire_nbytes))
        metrics.inc("codec.raw_bytes", float(bucket.numel * FP32_BYTES))
        metrics.observe("codec.payload_bytes", float(wire_nbytes))
        if not self.lossless and iteration % NMSE_SAMPLE_EVERY == 0:
            from repro.metrics.nmse import nmse  # noqa: PLC0415

            value = float(nmse(exact_average(list(buffers)), result))
            metrics.observe("codec.nmse", value)
            TRACER.instant(
                "codec/nmse", cat="codec",
                bucket=bucket.index, iteration=iteration, nmse=value, spec=self.name,
            )

    def reset(self) -> None:
        super().reset()
        self.pipeline.reset()
        self._residuals.clear()

    def resize_world(
        self, old_ranks: Sequence[int], new_ranks: Sequence[int], policy: str = "carry"
    ) -> None:
        """Remap driver EF residuals and stage state to a new membership.

        Row *i* of every per-bucket buffer belongs to global rank
        ``old_ranks[i]``; after the resize it belongs to ``new_ranks[i]``.
        ``"carry"`` preserves each surviving rank's accumulated residual
        across the shrink/grow (a re-joining rank starts from zero — its
        pre-crash residual described gradients of a model that has since
        moved on); ``"zero"`` clears all compensation state.
        """
        remap_rank_rows(self._residuals, old_ranks, new_ranks, policy)
        for stage in self.pipeline.stages:
            stage.resize_world(old_ranks, new_ranks, policy)

    # ------------------------------------------------------------------ #
    def _record(
        self,
        bucket: GradBucket,
        payloads: Sequence[WirePayload],
        used_allgather: bool,
    ) -> None:
        self.stats.iterations += 1
        self.stats.raw_bytes += bucket.numel * FP32_BYTES
        self.stats.wire_bytes += max(payload.nbytes for payload in payloads)
        if used_allgather:
            self.stats.allgather_calls += 1
        else:
            self.stats.allreduce_calls += 1


def exact_average(buffers: List[np.ndarray]) -> np.ndarray:
    """Reference (lossless) average used by tests and error computations.

    Shares the collective layer's rank-by-rank accumulation, so peak memory is
    O(numel) rather than the O(world x numel) of a stack-then-mean — and the
    reference stays numerically identical to what the collectives compute.
    """
    from repro.comm.collectives import accumulate_sum  # noqa: PLC0415

    return accumulate_sum(buffers) / len(buffers)
