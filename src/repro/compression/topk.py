"""Top-k gradient sparsification (Aji & Heafield, 2017).

Each rank keeps only its ``ratio`` largest-magnitude gradient coordinates.
Because every rank selects a *different* coordinate set, the payloads cannot be
summed element-wise — the codec driver falls back to an all-gather of
(index, value) :class:`~repro.compression.codec.payloads.SparsePayload`\\ s,
which is exactly the incompatibility with all-reduce that the paper's Table 1
flags and that causes TopK-0.1 to congest the bottleneck link in Fig. 3.

By default the compressor keeps an error-feedback residual per bucket (the
unsent coordinates are added back into the next iteration's gradient), the
standard trick for making aggressive sparsification converge.  Since the
driver-level error-feedback refactor this is the shared
:class:`~repro.compression.base.CodecCompressor` residual state — for top-k
selection, ``input - decode(own payload)`` zeroes exactly the transmitted
coordinates, so the driver residual is bit-identical to the historical
stage-internal one (the golden traces pin this).  The selection itself runs
as one batched ``argpartition`` over the stacked (world, numel) gradient
matrix (see :func:`repro.compression.codec.stages.batched_top_k_indices`).
"""

from __future__ import annotations

from repro.compression.base import CodecCompressor
from repro.compression.codec import Pipeline, TopK

# Re-exported for callers that select coordinates directly.
from repro.compression.codec.stages import batched_top_k_indices, top_k_indices  # noqa: F401


class TopKCompressor(CodecCompressor):
    """Per-rank top-k sparsification with all-gather aggregation."""

    def __init__(self, ratio: float = 0.1, error_feedback: bool = True) -> None:
        # Stage-internal error feedback stays off: the driver owns the
        # residual state (one mechanism, not two).
        self._stage = TopK(ratio=ratio, error_feedback=False)
        super().__init__(
            Pipeline([self._stage]),
            name=f"topk-{ratio:g}",
            error_feedback=error_feedback,
        )

    @property
    def ratio(self) -> float:
        return self._stage.ratio
