"""Top-k gradient sparsification (Aji & Heafield, 2017).

Each rank keeps only its ``ratio`` largest-magnitude gradient coordinates.
Because every rank selects a *different* coordinate set, the payloads cannot be
summed element-wise — the codec driver falls back to an all-gather of
(index, value) :class:`~repro.compression.codec.payloads.SparsePayload`\\ s,
which is exactly the incompatibility with all-reduce that the paper's Table 1
flags and that causes TopK-0.1 to congest the bottleneck link in Fig. 3.

Optionally keeps an error-feedback residual per bucket (the unsent coordinates
are added back into the next iteration's gradient), which is the standard trick
for making aggressive sparsification converge.  The selection itself runs as
one batched ``argpartition`` over the stacked (world, numel) gradient matrix
(see :func:`repro.compression.codec.stages.batched_top_k_indices`).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.compression.base import CodecCompressor
from repro.compression.codec import Pipeline, TopK

# Re-exported for callers that select coordinates directly.
from repro.compression.codec.stages import batched_top_k_indices, top_k_indices  # noqa: F401


class TopKCompressor(CodecCompressor):
    """Per-rank top-k sparsification with all-gather aggregation."""

    def __init__(self, ratio: float = 0.1, error_feedback: bool = True) -> None:
        self._stage = TopK(ratio=ratio, error_feedback=error_feedback)
        super().__init__(Pipeline([self._stage]), name=f"topk-{ratio:g}")

    @property
    def ratio(self) -> float:
        return self._stage.ratio

    @property
    def error_feedback(self) -> bool:
        return self._stage.error_feedback

    @property
    def _residuals(self) -> Dict[int, np.ndarray]:
        """Unsent gradient mass per bucket (one (world, numel) matrix each)."""
        return self._stage._residuals
