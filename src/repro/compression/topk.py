"""Top-k gradient sparsification (Aji & Heafield, 2017).

Each rank keeps only its ``ratio`` largest-magnitude gradient coordinates.
Because every rank selects a *different* coordinate set, the payloads cannot be
summed element-wise — aggregation must go through all-gather of
(index, value) pairs, which is exactly the incompatibility with all-reduce that
the paper's Table 1 flags and that causes TopK-0.1 to congest the bottleneck
link in Fig. 3.

Optionally keeps an error-feedback residual per bucket (the unsent coordinates
are added back into the next iteration's gradient), which is the standard trick
for making aggressive sparsification converge.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.comm.process_group import ProcessGroup
from repro.compression.base import Compressor, FP32_BYTES, INDEX_BYTES
from repro.ddp.bucket import GradBucket


def top_k_indices(values: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` largest-magnitude entries of a 1-D array."""
    if k >= values.size:
        return np.arange(values.size)
    if k <= 0:
        return np.empty(0, dtype=np.int64)
    partition = np.argpartition(np.abs(values), values.size - k)[values.size - k :]
    return partition


class TopKCompressor(Compressor):
    """Per-rank top-k sparsification with all-gather aggregation."""

    allreduce_compatible = False
    lossless = False

    def __init__(self, ratio: float = 0.1, error_feedback: bool = True) -> None:
        super().__init__()
        if not 0.0 < ratio <= 1.0:
            raise ValueError("ratio must be in (0, 1]")
        self.ratio = ratio
        self.error_feedback = error_feedback
        self.name = f"topk-{ratio:g}"
        # residuals[(bucket_index, rank)] -> unsent gradient mass
        self._residuals: Dict[tuple, np.ndarray] = {}

    def reset(self) -> None:
        super().reset()
        self._residuals.clear()

    def aggregate(self, bucket: GradBucket, group: ProcessGroup, iteration: int = 0) -> np.ndarray:
        world_size = bucket.world_size
        numel = bucket.numel
        k = max(1, int(round(numel * self.ratio)))

        per_rank_values = []
        per_rank_indices = []
        for rank, flat in enumerate(bucket.buffers):
            grad = flat
            key = (bucket.index, rank)
            if self.error_feedback:
                residual = self._residuals.get(key)
                if residual is not None:
                    grad = grad + residual
            indices = top_k_indices(grad, k)
            values = grad[indices]
            if self.error_feedback:
                residual = grad.copy()
                residual[indices] = 0.0
                self._residuals[key] = residual
            per_rank_values.append(values)
            per_rank_indices.append(indices)

        # Exchange (index, value) pairs: 4 bytes of index + 4 bytes of value
        # per selected element, via all-gather (k elements per rank).
        payload = [values.astype(np.float64) for values in per_rank_values]
        group.all_gather(payload, element_bytes=FP32_BYTES + INDEX_BYTES)

        aggregated = np.zeros(numel, dtype=np.float64)
        for values, indices in zip(per_rank_values, per_rank_indices):
            np.add.at(aggregated, indices, values)
        aggregated /= world_size

        self._record(
            bucket,
            wire_bytes_per_element=FP32_BYTES + INDEX_BYTES,
            payload_elements=k,
            used_allgather=True,
        )
        return aggregated
