"""Codec pipelines: ordered stage composition plus spec-string parsing.

``Pipeline([TopK(0.01), Ternarize()])`` encodes a flat gradient through every
stage left-to-right and decodes the (reduced or gathered) payload right-to-left
back into a dense tensor.  ``parse_codec_spec("topk0.01+terngrad")`` builds the
same pipeline from the ``+``-separated spec strings used by
:class:`repro.simulation.experiment.MethodSpec` and the compressor registry.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.compression.codec.payloads import DensePayload, WirePayload, as_payload
from repro.tensorlib.dtypes import as_compute_array
from repro.compression.codec.stages import (
    Codec,
    DGCSelect,
    EncodeContext,
    Half,
    Identity,
    LowRank,
    RandomK,
    Sign,
    Ternarize,
    TopK,
)


class Pipeline(Codec):
    """A left-to-right composition of codec stages.

    The pipeline is itself a :class:`Codec`, so pipelines nest and ``a + b``
    concatenates.  ``encode`` / ``encode_all`` start from the raw flat gradient
    (wrapped into a :class:`DensePayload`); ``decode`` returns the dense
    ``np.ndarray`` the training loop applies.
    """

    def __init__(self, stages: Sequence[Codec]) -> None:
        flat: List[Codec] = []
        for stage in stages:
            if isinstance(stage, Pipeline):
                flat.extend(stage.stages)
            else:
                flat.append(stage)
        if not flat:
            flat = [Identity()]
        self.stages: List[Codec] = flat
        self.name = self.spec()

    # ------------------------------------------------------------------ #
    # Aggregate properties
    # ------------------------------------------------------------------ #
    @property
    def allreduce_compatible(self) -> bool:  # type: ignore[override]
        return all(stage.allreduce_compatible for stage in self.stages)

    @property
    def lossless(self) -> bool:  # type: ignore[override]
        return all(stage.lossless for stage in self.stages)

    def spec(self) -> str:
        return "+".join(stage.spec() for stage in self.stages)

    # ------------------------------------------------------------------ #
    # Encode / decode
    # ------------------------------------------------------------------ #
    def encode_all(
        self,
        flats: Sequence[Union[np.ndarray, WirePayload]],
        ctx: Optional[EncodeContext] = None,
    ) -> List[WirePayload]:
        """Encode every rank's flat gradient into its wire payload.

        Stages run strictly in order; each stage first sees all ranks' inputs
        (:meth:`Codec.prepare`, for shared scalers/selections), then encodes
        rank by rank.
        """
        if ctx is None:
            ctx = EncodeContext(world_size=len(flats))
        payloads = [as_payload(flat) for flat in flats]
        for stage in self.stages:
            stage.prepare(payloads, ctx)
            payloads = [stage.encode(p, ctx, rank=rank) for rank, p in enumerate(payloads)]
            # The raw bucket matrix describes the *first* stage's inputs only;
            # later stages see transformed payloads and must not reuse it.
            ctx.matrix = None
        return payloads

    def encode(self, flat, ctx: Optional[EncodeContext] = None) -> WirePayload:
        """Encode a single flat gradient (convenience wrapper, world size 1).

        Runs a fresh single-rank ``prepare`` on every call — intended for
        stateless use (tests, inspection).  Multi-rank training encodes all
        ranks together through :meth:`encode_all`; there is deliberately no
        ``rank`` parameter here, so per-rank misuse fails loudly.
        """
        return self.encode_all([flat], ctx)[0]

    def decode(self, payload: WirePayload) -> np.ndarray:  # type: ignore[override]
        """Map a payload back to the dense flat gradient it encodes."""
        for stage in reversed(self.stages):
            payload = stage.decode(payload)
        if not isinstance(payload, DensePayload):
            raise TypeError(
                f"pipeline {self.spec()!r} decoded to {type(payload).__name__}, "
                "expected a DensePayload — a stage is missing its decode"
            )
        return as_compute_array(payload.values)

    def reset(self) -> None:
        for stage in self.stages:
            stage.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Pipeline({self.spec()!r})"


def as_pipeline(codec: Union[Codec, Sequence[Codec]]) -> Pipeline:
    """Normalise a stage, stage list or pipeline into a :class:`Pipeline`."""
    if isinstance(codec, Pipeline):
        return codec
    if isinstance(codec, Codec):
        return Pipeline([codec])
    return Pipeline(list(codec))


# --------------------------------------------------------------------------- #
# Spec-string parsing
# --------------------------------------------------------------------------- #
#: token -> stage factory; a trailing number (``topk0.01``, ``randomk-0.1``)
#: is parsed as the stage's ratio.  ``seed`` reaches the stochastic stages
#: (shared random-k selection, ternary rounding); deterministic stages ignore
#: it, so a multi-seed sweep varies exactly the randomness that exists.
_STAGE_FACTORIES: Dict[str, Callable[..., Codec]] = {
    "fp32": lambda ratio=None, seed=0: Identity(),
    "none": lambda ratio=None, seed=0: Identity(),
    "identity": lambda ratio=None, seed=0: Identity(),
    "allreduce": lambda ratio=None, seed=0: Identity(),
    "all-reduce": lambda ratio=None, seed=0: Identity(),
    "fp16": lambda ratio=None, seed=0: Half(),
    "half": lambda ratio=None, seed=0: Half(),
    "topk": lambda ratio=None, seed=0: TopK(ratio if ratio is not None else 0.1),
    "randomk": lambda ratio=None, seed=0: RandomK(ratio if ratio is not None else 0.1, seed=seed),
    "dgc": lambda ratio=None, seed=0: DGCSelect(ratio if ratio is not None else 0.01),
    "terngrad": lambda ratio=None, seed=0: Ternarize(seed=seed),
    "ternary": lambda ratio=None, seed=0: Ternarize(seed=seed),
    "signsgd": lambda ratio=None, seed=0: Sign(),
    "sign": lambda ratio=None, seed=0: Sign(),
    "powersgd": lambda ratio=None, seed=0: LowRank(rank=int(ratio) if ratio is not None else 4, seed=seed),
}

#: Parameterised tokens: a stage name followed by a ratio (``topk0.01``,
#: ``randomk-0.1``, ``dgc-0.01``) or a rank (``powersgd-rank4``, ``powersgd4``).
_PARAM_TOKEN = re.compile(r"^(?P<stage>topk|randomk|dgc)-?(?P<ratio>\d*\.?\d+)$")
_POWERSGD_TOKEN = re.compile(r"^powersgd(?:-rank|-)?(?P<rank>\d+)$")

#: The error-feedback modifier is a property of the aggregation *driver*
#: (:class:`repro.compression.base.CodecCompressor`), not a stage, so it is
#: only legal as the leading token of a spec (``"ef+topk0.01"``).
EF_TOKENS = frozenset({"ef", "error-feedback"})


def parse_codec_token(token: str, seed: int = 0) -> Codec:
    """Parse one stage token (``"topk0.01"``, ``"fp16"``) into a stage."""
    token = token.strip().lower()
    if token in EF_TOKENS:
        raise KeyError(
            f"{token!r} is the error-feedback modifier, not a codec stage; it must "
            "lead the spec (e.g. 'ef+topk0.01') and is consumed by the compressor "
            "driver — parse full compressor specs with parse_compressor_spec"
        )
    factory = _STAGE_FACTORIES.get(token)
    if factory is not None:
        return factory(seed=seed)
    match = _POWERSGD_TOKEN.match(token)
    if match is not None:
        return LowRank(rank=int(match.group("rank")), seed=seed)
    match = _PARAM_TOKEN.match(token)
    if match is None:
        raise KeyError(
            f"unknown codec token {token!r}; expected one of {sorted(_STAGE_FACTORIES)} "
            "optionally suffixed with a ratio (e.g. 'topk0.01') or rank "
            "(e.g. 'powersgd-rank4')"
        )
    return _STAGE_FACTORIES[match.group("stage")](float(match.group("ratio")), seed=seed)


def parse_codec_spec(spec: str, seed: int = 0) -> Pipeline:
    """Parse a ``+``-separated codec spec string into a :class:`Pipeline`.

    Examples: ``"allreduce"``, ``"fp16"``, ``"topk0.01"``, ``"dgc-0.01"``,
    ``"topk0.01+terngrad"``, ``"signsgd"``, ``"powersgd-rank4"``.  ``seed``
    reaches every stochastic stage of the pipeline.  A leading ``"ef"``
    modifier is rejected here — it configures the aggregation driver, not a
    stage; use :func:`parse_compressor_spec` for full compressor specs.
    """
    tokens = [token for token in spec.split("+") if token.strip()]
    if not tokens:
        raise KeyError(f"empty codec spec {spec!r}")
    return Pipeline([parse_codec_token(token, seed=seed) for token in tokens])


def parse_compressor_spec(spec: str, seed: int = 0) -> "tuple[Pipeline, bool]":
    """Parse a full compressor spec into ``(pipeline, error_feedback)``.

    The grammar is the codec spec grammar plus an optional leading ``"ef"``
    modifier: ``"ef+topk0.01"`` selects driver-level error feedback around the
    ``topk0.01`` pipeline.  The pipeline is returned unmodified — the
    :class:`~repro.compression.base.CodecCompressor` constructor adapts its
    stages when the flag is set (stage-internal error feedback and unbiased
    rescaling off, self-compensating stages rejected).
    """
    tokens = [token for token in spec.split("+") if token.strip()]
    error_feedback = False
    while tokens and tokens[0].strip().lower() in EF_TOKENS:
        error_feedback = True
        tokens.pop(0)
    if not tokens:
        raise KeyError(
            f"codec spec {spec!r} has no stages"
            + (" after the 'ef' modifier" if error_feedback else "")
        )
    return Pipeline([parse_codec_token(token, seed=seed) for token in tokens]), error_feedback
