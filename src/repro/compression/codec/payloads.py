"""First-class wire payloads.

A :class:`WirePayload` is what a compressor actually puts on the wire for one
gradient bucket: a dense fp32 tensor, a half-precision tensor, an
(indices, values) sparse selection, a packed 2-bit ternary tensor or a packed
bitmask.  Every payload knows its own wire size (:attr:`WirePayload.nbytes`),
so the collective layer charges the :class:`repro.comm.network.NetworkModel`
from the *encoded representation* instead of trusting a caller-supplied
``element_bytes`` — byte accounting is measured, not asserted.

Payloads also know whether they can be reduced element-wise against a peer
payload (:meth:`WirePayload.reducible_with`): dense/half/ternary payloads and
sparse payloads with a *shared* selection are summable, so the aggregation
driver may use the all-reduce primitive; per-rank sparse selections (top-k,
DGC) are not, forcing the all-gather exchange — exactly the "compatibility"
property in the paper's Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.tensorlib.dtypes import as_compute_array, float_dtype_of, get_default_dtype

#: Analytic wire sizes (bytes per element) used throughout the cost model.
FP32_BYTES = 4.0
FP16_BYTES = 2.0
INDEX_BYTES = 4.0
TERNARY_BYTES = 0.25   # 2 bits per element
BITMASK_BYTES = 1.0 / 8.0


class WirePayload:
    """Base class for encoded gradient representations.

    Subclasses must implement :attr:`nbytes` (wire bytes for this payload),
    :attr:`num_elements` (count of logical gradient elements encoded),
    :meth:`reduce_values` (the dense float64 view summed during reduction) and
    :meth:`with_reduced` (rebuild a payload of the same structure around
    reduced values).
    """

    @property
    def nbytes(self) -> float:
        raise NotImplementedError

    @property
    def num_elements(self) -> int:
        raise NotImplementedError

    @property
    def transmitted_elements(self) -> int:
        """Count of scalar elements actually carried on the wire.

        Differs from :attr:`num_elements` for sparse payloads (selected
        values vs. decoded length).  Cheap — no value materialisation.
        """
        raise NotImplementedError

    def reducible_with(self, other: "WirePayload") -> bool:
        """Whether ``self + other`` is meaningful element-wise."""
        return False

    def reduce_values(self) -> np.ndarray:
        """Dense float64 array accumulated by a payload all-reduce."""
        raise NotImplementedError

    def with_reduced(self, values: np.ndarray) -> "WirePayload":
        """Payload of the same structure carrying post-reduction values."""
        raise NotImplementedError


@dataclass(frozen=True)
class DensePayload(WirePayload):
    """A dense tensor sent verbatim (fp32 on the wire by default)."""

    values: np.ndarray
    element_bytes: float = FP32_BYTES

    @property
    def nbytes(self) -> float:
        return self.values.size * self.element_bytes

    @property
    def num_elements(self) -> int:
        return int(self.values.size)

    @property
    def transmitted_elements(self) -> int:
        return int(self.values.size)

    def reducible_with(self, other: WirePayload) -> bool:
        return isinstance(other, DensePayload) and other.values.shape == self.values.shape

    def reduce_values(self) -> np.ndarray:
        return as_compute_array(self.values)

    def with_reduced(self, values: np.ndarray) -> "DensePayload":
        return DensePayload(values, element_bytes=self.element_bytes)


@dataclass(frozen=True)
class HalfPayload(WirePayload):
    """A half-precision tensor (2 bytes per element on the wire)."""

    values: np.ndarray  # stored as float16

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", np.asarray(self.values, dtype=np.float16))

    @property
    def nbytes(self) -> float:
        return self.values.size * FP16_BYTES

    @property
    def num_elements(self) -> int:
        return int(self.values.size)

    @property
    def transmitted_elements(self) -> int:
        return int(self.values.size)

    def reducible_with(self, other: WirePayload) -> bool:
        return isinstance(other, HalfPayload) and other.values.shape == self.values.shape

    def reduce_values(self) -> np.ndarray:
        return self.values.astype(get_default_dtype())

    def with_reduced(self, values: np.ndarray) -> DensePayload:
        # Sums of fp16 values are accumulated (and returned) in the compute
        # dtype, the same convention real mixed-precision all-reduces use.
        return DensePayload(values)


@dataclass(frozen=True)
class SparsePayload(WirePayload):
    """An (indices, values) selection of ``numel`` logical elements.

    Parameters
    ----------
    indices, values:
        The selected coordinates (unique — every producer selects without
        replacement) and their (possibly re-quantised) values.
    numel:
        Length of the decoded dense gradient.
    value_bytes:
        Wire bytes per transmitted value (4 for fp32, 2 after an fp16 stage,
        0.25 after a ternary stage).
    indices_on_wire:
        ``False`` when every rank derives the selection locally (shared seed,
        shared mask) so only values travel; ``True`` when indices must be sent
        alongside values (per-rank top-k).
    shared_selection:
        ``True`` when all ranks are guaranteed to hold the *same* selection,
        making payloads element-wise summable (all-reduce compatible).
    """

    indices: np.ndarray
    values: np.ndarray
    numel: int
    value_bytes: float = FP32_BYTES
    indices_on_wire: bool = True
    shared_selection: bool = False

    @property
    def nbytes(self) -> float:
        per_element = self.value_bytes + (INDEX_BYTES if self.indices_on_wire else 0.0)
        return self.values.size * per_element

    @property
    def num_elements(self) -> int:
        return self.numel

    @property
    def transmitted_elements(self) -> int:
        return int(self.values.size)

    def reducible_with(self, other: WirePayload) -> bool:
        return (
            isinstance(other, SparsePayload)
            and self.shared_selection
            and other.shared_selection
            and other.numel == self.numel
            # Shared-selection producers hand the same index array to every
            # rank, so the identity check short-circuits the O(k) comparison.
            and (
                other.indices is self.indices
                or (
                    other.indices.shape == self.indices.shape
                    and np.array_equal(other.indices, self.indices)
                )
            )
        )

    def reduce_values(self) -> np.ndarray:
        return as_compute_array(self.values)

    def with_reduced(self, values: np.ndarray) -> "SparsePayload":
        return replace(self, values=values)

    def densify(self) -> np.ndarray:
        """Scatter the selection back into a dense compute-dtype gradient.

        Indices are unique by construction (see the class docstring), so the
        fast vectorised fancy assignment is exact.
        """
        dense = np.zeros(self.numel, dtype=float_dtype_of(np.asarray(self.values)))
        dense[self.indices] = self.values
        return dense


def pack_ternary(codes: np.ndarray) -> np.ndarray:
    """Pack ternary codes in ``{-1, 0, +1}`` into 2-bit fields (4 per byte)."""
    symbols = np.zeros(codes.size, dtype=np.uint8)
    symbols[codes > 0] = 1
    symbols[codes < 0] = 2
    pad = (-symbols.size) % 4
    if pad:
        symbols = np.concatenate([symbols, np.zeros(pad, dtype=np.uint8)])
    quads = symbols.reshape(-1, 4)
    return (quads[:, 0] | (quads[:, 1] << 2) | (quads[:, 2] << 4) | (quads[:, 3] << 6)).astype(np.uint8)


def unpack_ternary(packed: np.ndarray, size: int) -> np.ndarray:
    """Inverse of :func:`pack_ternary`; returns int8 codes in ``{-1, 0, +1}``."""
    packed = np.asarray(packed, dtype=np.uint8)
    quads = np.empty((packed.size, 4), dtype=np.uint8)
    quads[:, 0] = packed & 0b11
    quads[:, 1] = (packed >> 2) & 0b11
    quads[:, 2] = (packed >> 4) & 0b11
    quads[:, 3] = (packed >> 6) & 0b11
    symbols = quads.reshape(-1)[:size]
    codes = np.zeros(size, dtype=np.int8)
    codes[symbols == 1] = 1
    codes[symbols == 2] = -1
    return codes


@dataclass(frozen=True)
class TernaryPayload(WirePayload):
    """Ternary-quantised tensor: packed 2-bit codes plus a shared scale.

    The scale is agreed beforehand through the stage's scaler all-reduce (its
    cost is charged there), so the payload itself carries exactly two bits per
    element — :attr:`nbytes` is the analytic ``TERNARY_BYTES * size``.
    """

    packed: np.ndarray
    scale: float
    size: int

    @property
    def nbytes(self) -> float:
        return self.size * TERNARY_BYTES

    @property
    def num_elements(self) -> int:
        return self.size

    @property
    def transmitted_elements(self) -> int:
        return self.size

    def codes(self) -> np.ndarray:
        return unpack_ternary(self.packed, self.size)

    def reducible_with(self, other: WirePayload) -> bool:
        return isinstance(other, TernaryPayload) and other.size == self.size

    def reduce_values(self) -> np.ndarray:
        return self.scale * self.codes().astype(get_default_dtype())

    def with_reduced(self, values: np.ndarray) -> DensePayload:
        # A sum of ternary tensors is no longer ternary.
        return DensePayload(values)


@dataclass(frozen=True)
class BitmaskPayload(WirePayload):
    """A boolean mask packed to one bit per element (mask synchronisation)."""

    packed: np.ndarray
    size: int

    @classmethod
    def from_mask(cls, mask: np.ndarray) -> "BitmaskPayload":
        mask = np.asarray(mask, dtype=bool)
        return cls(packed=np.packbits(mask), size=int(mask.size))

    @property
    def nbytes(self) -> float:
        return float(self.packed.size)

    @property
    def num_elements(self) -> int:
        return self.size

    @property
    def transmitted_elements(self) -> int:
        return self.size

    def mask(self) -> np.ndarray:
        return np.unpackbits(self.packed, count=self.size).astype(bool)

    def reduce_values(self) -> np.ndarray:  # pragma: no cover - masks are broadcast, not reduced
        return self.mask().astype(np.float64)

    def with_reduced(self, values: np.ndarray) -> WirePayload:  # pragma: no cover
        raise TypeError("bitmask payloads are broadcast, never reduced")


@dataclass(frozen=True)
class SignPayload(WirePayload):
    """signSGD wire format: one bit per coordinate plus one fp32 scale.

    ``packed`` holds the sign bits (bit set = non-negative) and ``scale`` the
    rank's mean absolute gradient, so the wire cost is exactly
    ``ceil(size / 8) + FP32_BYTES`` — the 32x compression signSGD promises.

    Aggregation is **majority vote** (Bernstein et al., 2018): payloads are
    element-wise summable (the sign codes are +-1), and the reduced payload
    decodes to ``mean(scale) * sign(sum of codes)`` with ties decoding to 0.
    The scale rides along as one extra reduced element, which is how the mean
    scale reaches :meth:`with_reduced` without a second collective.
    """

    packed: np.ndarray
    scale: float
    size: int

    @classmethod
    def from_values(cls, values: np.ndarray) -> "SignPayload":
        values = np.asarray(values)
        scale = float(np.mean(np.abs(values))) if values.size else 0.0
        return cls(
            packed=np.packbits(values >= 0.0),
            scale=scale,
            size=int(values.size),
        )

    @property
    def nbytes(self) -> float:
        return float(self.packed.size) + FP32_BYTES

    @property
    def num_elements(self) -> int:
        return self.size

    @property
    def transmitted_elements(self) -> int:
        return self.size

    def codes(self) -> np.ndarray:
        """Sign codes in ``{-1.0, +1.0}`` (compute dtype)."""
        bits = np.unpackbits(self.packed, count=self.size)
        return (2.0 * bits - 1.0).astype(get_default_dtype())

    def reducible_with(self, other: WirePayload) -> bool:
        return isinstance(other, SignPayload) and other.size == self.size

    def reduce_values(self) -> np.ndarray:
        # Codes followed by the scale: one summable vector, so the mean scale
        # arrives at with_reduced alongside the mean codes.
        return np.concatenate([self.codes(), np.asarray([self.scale], dtype=get_default_dtype())])

    def with_reduced(self, values: np.ndarray) -> DensePayload:
        codes, scale = values[: self.size], float(values[self.size])
        # Majority vote: sign of the summed codes (the mean has the same
        # sign); exact ties decode to zero.
        return DensePayload(scale * np.sign(codes))

    def densify(self) -> np.ndarray:
        """This rank's decoded gradient: ``scale * sign``."""
        return self.scale * self.codes()


@dataclass(frozen=True)
class LowRankPayload(WirePayload):
    """PowerSGD wire format: a shared left factor and a per-rank right factor.

    ``p`` is the orthonormalised ``(m, rank)`` left factor — shared by every
    rank because it is produced from the *aggregated* first power-iteration
    step — and ``q`` the rank's own ``(n, rank)`` right factor.  Decoding
    reconstructs ``p @ q.T`` and trims the padding back to ``numel``.

    Both factors travel each iteration (the two all-reduces of the PowerSGD
    protocol), so the wire cost is the analytic ``(m + n) * rank * 4`` bytes.
    Payloads are element-wise summable in ``q`` whenever they share the same
    ``p`` — the all-reduce-compatibility PowerSGD is designed for.
    """

    p: np.ndarray
    q: np.ndarray
    numel: int

    def __post_init__(self) -> None:
        if self.p.ndim != 2 or self.q.ndim != 2 or self.p.shape[1] != self.q.shape[1]:
            raise ValueError(
                f"factors must be (m, rank) and (n, rank), got {self.p.shape} and {self.q.shape}"
            )

    @property
    def rank(self) -> int:
        return int(self.p.shape[1])

    @property
    def nbytes(self) -> float:
        return (self.p.shape[0] + self.q.shape[0]) * self.rank * FP32_BYTES

    @property
    def num_elements(self) -> int:
        return self.numel

    @property
    def transmitted_elements(self) -> int:
        return int((self.p.shape[0] + self.q.shape[0]) * self.rank)

    def reducible_with(self, other: WirePayload) -> bool:
        return (
            isinstance(other, LowRankPayload)
            and other.numel == self.numel
            and other.p.shape == self.p.shape
            and other.q.shape == self.q.shape
            # The left factor is shared by construction (it comes from the
            # stage's prepare), so the identity check short-circuits the
            # O(m * rank) comparison.
            and (other.p is self.p or np.array_equal(other.p, self.p))
        )

    def reduce_values(self) -> np.ndarray:
        return as_compute_array(self.q).reshape(-1)

    def with_reduced(self, values: np.ndarray) -> "LowRankPayload":
        return replace(self, q=values.reshape(self.q.shape))

    def densify(self) -> np.ndarray:
        """Reconstruct the flat dense gradient this payload encodes."""
        return (self.p @ self.q.T).reshape(-1)[: self.numel]


def as_payload(value) -> WirePayload:
    """Normalise an ndarray (or payload) into a :class:`WirePayload`."""
    if isinstance(value, WirePayload):
        return value
    return DensePayload(as_compute_array(value))
