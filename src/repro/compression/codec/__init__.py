"""Encode/Reduce/Decode codec subsystem.

Gradient compression is factored into three orthogonal pieces:

* **payloads** (:mod:`repro.compression.codec.payloads`) — first-class wire
  representations (:class:`DensePayload`, :class:`HalfPayload`,
  :class:`SparsePayload`, :class:`TernaryPayload`, :class:`BitmaskPayload`),
  each knowing its own wire size and whether it can be reduced element-wise;
* **stages** (:mod:`repro.compression.codec.stages`) — composable
  encode/decode operators (:class:`TopK`, :class:`RandomK`,
  :class:`Ternarize`, :class:`Half`, :class:`MaskCompact`, ...);
* **pipelines** (:mod:`repro.compression.codec.pipeline`) — ordered stage
  composition plus the ``"topk0.01+terngrad"`` spec-string syntax used by
  experiment configurations.

The collective layer (:mod:`repro.comm.collectives`) accepts payloads directly
and charges the network model from ``payload.nbytes``, so reported
communication volumes are measured from the encoded representation rather than
asserted by each compressor.
"""

from repro.compression.codec.payloads import (
    BITMASK_BYTES,
    BitmaskPayload,
    DensePayload,
    FP16_BYTES,
    FP32_BYTES,
    HalfPayload,
    INDEX_BYTES,
    LowRankPayload,
    SignPayload,
    SparsePayload,
    TERNARY_BYTES,
    TernaryPayload,
    WirePayload,
    as_payload,
    pack_ternary,
    unpack_ternary,
)
from repro.compression.codec.stages import (
    Codec,
    DGCSelect,
    EncodeContext,
    Half,
    Identity,
    LowRank,
    MaskCompact,
    RandomK,
    Sign,
    Ternarize,
    TopK,
    batched_top_k_indices,
    orthonormalize,
    top_k_indices,
)
from repro.compression.codec.pipeline import (
    EF_TOKENS,
    Pipeline,
    as_pipeline,
    parse_codec_spec,
    parse_codec_token,
    parse_compressor_spec,
)

__all__ = [
    "WirePayload",
    "DensePayload",
    "HalfPayload",
    "SparsePayload",
    "TernaryPayload",
    "BitmaskPayload",
    "SignPayload",
    "LowRankPayload",
    "as_payload",
    "pack_ternary",
    "unpack_ternary",
    "FP32_BYTES",
    "FP16_BYTES",
    "INDEX_BYTES",
    "TERNARY_BYTES",
    "BITMASK_BYTES",
    "Codec",
    "EncodeContext",
    "Identity",
    "Half",
    "TopK",
    "RandomK",
    "MaskCompact",
    "Ternarize",
    "DGCSelect",
    "Sign",
    "LowRank",
    "top_k_indices",
    "batched_top_k_indices",
    "orthonormalize",
    "Pipeline",
    "as_pipeline",
    "parse_codec_spec",
    "parse_codec_token",
    "parse_compressor_spec",
    "EF_TOKENS",
]
