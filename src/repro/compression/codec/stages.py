"""Codec stages: composable encode/decode operators over wire payloads.

A :class:`Codec` maps payloads to payloads.  Encoding starts from a
:class:`~repro.compression.codec.payloads.DensePayload` wrapping one rank's
flat bucket gradient and may shrink it (sparsify, quantise, cast); decoding
reverses the chain back to a dense tensor.  Stages compose left-to-right via
:class:`~repro.compression.codec.pipeline.Pipeline` — e.g.
``Pipeline([TopK(0.01), Ternarize()])`` selects the top 1 % coordinates and
then ternarises the selected values, which is the paper's prune+TernGrad
composition (§III.D) expressed as two independent operators.

Cross-rank coordination (shared scalers, shared random selections, batched
top-k selection across ranks) happens in :meth:`Codec.prepare`, which sees all
ranks' stage inputs at once and may issue collectives through the encode
context's process group so the cost model charges them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.compression.codec.payloads import (
    DensePayload,
    FP16_BYTES,
    HalfPayload,
    LowRankPayload,
    SignPayload,
    SparsePayload,
    TERNARY_BYTES,
    TernaryPayload,
    WirePayload,
    pack_ternary,
)
from repro.tensorlib.dtypes import as_compute_array, float_dtype_of


@dataclass
class EncodeContext:
    """Per-aggregation context shared by every stage of a pipeline.

    ``group`` is the process group coordination collectives are issued through
    (``None`` runs codecs standalone, e.g. in unit tests, skipping the
    collectives but computing the same shared quantities locally).  ``shared``
    is scratch space where :meth:`Codec.prepare` deposits per-aggregation
    results (selections, scalers) for the subsequent ``encode`` calls.
    """

    world_size: int = 1
    bucket_index: int = 0
    iteration: int = 0
    group: Optional[object] = None
    shared: Dict = field(default_factory=dict)
    #: The raw ``(world_size, numel)`` gradient matrix for this bucket, when
    #: the caller (the codec driver over an arena-backed bucket) already holds
    #: one.  Consumed by the *first* stage of a pipeline — whose inputs are by
    #: construction the matrix's rows — to skip the ``np.stack`` re-pack; the
    #: pipeline clears it before later stages run.  Stages must treat it as
    #: read-only.
    matrix: Optional[object] = None


class Codec:
    """One encode/decode stage of a compression pipeline."""

    name: str = "codec"
    #: Whether encoded payloads from different ranks are element-wise summable.
    allreduce_compatible: bool = True
    #: Whether decode(encode(x)) == x exactly.
    lossless: bool = False

    def prepare(self, inputs: List[WirePayload], ctx: EncodeContext) -> None:
        """Cross-rank coordination before encoding (default: none)."""

    def encode(self, payload: WirePayload, ctx: EncodeContext, rank: int = 0) -> WirePayload:
        raise NotImplementedError

    def decode(self, payload: WirePayload) -> WirePayload:
        raise NotImplementedError

    def reset(self) -> None:
        """Clear per-bucket state (error feedback, momentum, RNG)."""

    def resize_world(
        self, old_ranks: Sequence[int], new_ranks: Sequence[int], policy: str = "carry"
    ) -> None:
        """Adapt per-rank state to a membership change (default: nothing to do).

        Stages whose per-bucket buffers are rank-indexed — one row per member
        of the old active set — override this to remap rows onto the new
        membership (see :func:`remap_rank_rows`).  Stateless stages and
        stages whose state is shared across ranks ignore it.
        """

    def spec(self) -> str:
        """Registry spec token for this stage (inverse of ``parse_codec_spec``)."""
        return self.name

    def __add__(self, other: "Codec"):
        from repro.compression.codec.pipeline import Pipeline  # noqa: PLC0415

        return Pipeline([self, other])

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}({self.spec()!r})"


def _dense_input(payload: WirePayload, stage: str) -> np.ndarray:
    if not isinstance(payload, DensePayload):
        raise TypeError(
            f"{stage} must be the first stage of a pipeline (it selects dense "
            f"coordinates), got upstream payload {type(payload).__name__}"
        )
    return as_compute_array(payload.values)


def _stacked_inputs(inputs: List[WirePayload], ctx: EncodeContext, stage: str) -> np.ndarray:
    """The ``(world, numel)`` matrix of a stage's dense inputs.

    Uses the bucket's arena matrix directly when the encode context carries
    one (zero-copy); otherwise stacks the per-rank payload values.
    """
    if ctx.matrix is not None:
        return ctx.matrix
    return np.stack([_dense_input(p, stage) for p in inputs])


# --------------------------------------------------------------------------- #
# Selection helpers (vectorised across ranks)
# --------------------------------------------------------------------------- #
def top_k_indices(values: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` largest-magnitude entries of a 1-D array."""
    if k >= values.size:
        return np.arange(values.size)
    if k <= 0:
        return np.empty(0, dtype=np.int64)
    return np.argpartition(np.abs(values), values.size - k)[values.size - k:]


def batched_top_k_indices(matrix: np.ndarray, k: int) -> np.ndarray:
    """Per-row indices of the ``k`` largest-magnitude entries of a 2-D array.

    One O(rows × n) ``argpartition`` over the stacked (world, numel) matrix
    replaces the per-rank selection loop; each row's result selects the same
    coordinate *set* as :func:`top_k_indices` on that row.
    """
    rows, numel = matrix.shape
    if k >= numel:
        return np.tile(np.arange(numel), (rows, 1))
    if k <= 0:
        return np.empty((rows, 0), dtype=np.int64)
    return np.argpartition(np.abs(matrix), numel - k, axis=1)[:, numel - k:]


def remap_rank_rows(
    state: Dict[int, np.ndarray],
    old_ranks: Sequence[int],
    new_ranks: Sequence[int],
    policy: str = "carry",
) -> None:
    """Remap rank-indexed per-bucket matrices onto a new active membership.

    ``state`` maps bucket index to a ``(len(old_ranks), numel)`` matrix whose
    row *i* belongs to global rank ``old_ranks[i]``.  Under ``"carry"`` each
    surviving rank keeps its row at its new position and newly-joined ranks
    start from zeros (a re-joining worker has no residual history); under
    ``"zero"`` every rank restarts from zeros.  Matrices whose row count does
    not match ``old_ranks`` (stale buffers from before an earlier resize) are
    zeroed rather than mis-attributed.
    """
    if policy not in ("carry", "zero"):
        raise ValueError(f"policy must be 'carry' or 'zero', got {policy!r}")
    old_position = {rank: i for i, rank in enumerate(old_ranks)}
    for bucket_index, matrix in state.items():
        resized = np.zeros((len(new_ranks), matrix.shape[1]), dtype=matrix.dtype)
        if policy == "carry" and matrix.shape[0] == len(old_ranks):
            for position, rank in enumerate(new_ranks):
                source = old_position.get(rank)
                if source is not None:
                    resized[position] = matrix[source]
        state[bucket_index] = resized


# --------------------------------------------------------------------------- #
# Stages
# --------------------------------------------------------------------------- #
class Identity(Codec):
    """No-op codec: dense fp32 on the wire (the all-reduce baseline)."""

    name = "fp32"
    lossless = True

    def encode(self, payload: WirePayload, ctx: EncodeContext, rank: int = 0) -> WirePayload:
        return payload

    def decode(self, payload: WirePayload) -> WirePayload:
        return payload


class Half(Codec):
    """Cast values to fp16 (2 bytes per element on the wire)."""

    name = "fp16"
    lossless = False

    def encode(self, payload: WirePayload, ctx: EncodeContext, rank: int = 0) -> WirePayload:
        if isinstance(payload, DensePayload):
            return HalfPayload(payload.values.astype(np.float16))
        if isinstance(payload, SparsePayload):
            # Round-trip through fp16 (the wire precision), back to the
            # payload's own compute dtype — no float64 leak on the f32 path.
            halved = payload.values.astype(np.float16).astype(
                float_dtype_of(np.asarray(payload.values))
            )
            return SparsePayload(
                payload.indices, halved, payload.numel,
                value_bytes=FP16_BYTES,
                indices_on_wire=payload.indices_on_wire,
                shared_selection=payload.shared_selection,
            )
        raise TypeError(f"cannot cast {type(payload).__name__} to fp16")

    def decode(self, payload: WirePayload) -> WirePayload:
        if isinstance(payload, HalfPayload):
            return DensePayload(payload.reduce_values())
        return payload


class TopK(Codec):
    """Per-rank top-k magnitude selection with optional error feedback.

    Every rank selects a different coordinate set, so encoded payloads are not
    summable and aggregation must use all-gather — the all-reduce
    incompatibility the paper's Table 1 flags for TopK/DGC.
    """

    allreduce_compatible = False
    lossless = False

    def __init__(self, ratio: float = 0.1, error_feedback: bool = True) -> None:
        if not 0.0 < ratio <= 1.0:
            raise ValueError("ratio must be in (0, 1]")
        self.ratio = ratio
        self.error_feedback = error_feedback
        self.name = f"topk{ratio:g}"
        # residuals[bucket_index] -> (world, numel) unsent gradient mass
        self._residuals: Dict[int, np.ndarray] = {}

    def reset(self) -> None:
        self._residuals.clear()

    def resize_world(
        self, old_ranks: Sequence[int], new_ranks: Sequence[int], policy: str = "carry"
    ) -> None:
        remap_rank_rows(self._residuals, old_ranks, new_ranks, policy)

    def prepare(self, inputs: List[WirePayload], ctx: EncodeContext) -> None:
        matrix = _stacked_inputs(inputs, ctx, "TopK")
        numel = matrix.shape[1]
        k = max(1, int(round(numel * self.ratio)))

        if self.error_feedback:
            residual = self._residuals.get(ctx.bucket_index)
            if residual is not None and residual.shape == matrix.shape:
                matrix = matrix + residual

        indices = batched_top_k_indices(matrix, k)
        values = np.take_along_axis(matrix, indices, axis=1)

        if self.error_feedback:
            residual = matrix.copy()
            np.put_along_axis(residual, indices, 0.0, axis=1)
            self._residuals[ctx.bucket_index] = residual

        ctx.shared[id(self)] = (indices, values, numel)

    def encode(self, payload: WirePayload, ctx: EncodeContext, rank: int = 0) -> WirePayload:
        indices, values, numel = ctx.shared[id(self)]
        return SparsePayload(
            indices[rank], values[rank], numel,
            indices_on_wire=True, shared_selection=False,
        )

    def decode(self, payload: WirePayload) -> WirePayload:
        if isinstance(payload, SparsePayload):
            return DensePayload(payload.densify())
        return payload


class RandomK(Codec):
    """Shared-seed random-k selection: summable, indices never hit the wire."""

    allreduce_compatible = True
    lossless = False

    def __init__(self, ratio: float = 0.1, seed: int = 0, rescale: bool = True) -> None:
        if not 0.0 < ratio <= 1.0:
            raise ValueError("ratio must be in (0, 1]")
        self.ratio = ratio
        self.seed = seed
        self.rescale = rescale
        self.name = f"randomk{ratio:g}"

    def prepare(self, inputs: List[WirePayload], ctx: EncodeContext) -> None:
        numel = inputs[0].num_elements
        k = max(1, int(round(numel * self.ratio)))
        rng = np.random.default_rng(self.seed + 1_000_003 * ctx.bucket_index + ctx.iteration)
        ctx.shared[id(self)] = (rng.choice(numel, size=k, replace=False), numel)

    def encode(self, payload: WirePayload, ctx: EncodeContext, rank: int = 0) -> WirePayload:
        indices, numel = ctx.shared[id(self)]
        values = _dense_input(payload, "RandomK")[indices]
        return SparsePayload(
            indices, values, numel,
            indices_on_wire=False, shared_selection=True,
        )

    def decode(self, payload: WirePayload) -> WirePayload:
        if isinstance(payload, SparsePayload):
            dense = payload.densify()
            if self.rescale and payload.values.size:
                # Unbiased estimate of the dense average gradient.
                dense *= payload.numel / payload.values.size
            return DensePayload(dense)
        return payload


class MaskCompact(Codec):
    """Pack the coordinates of a shared bitmask into a short dense tensor.

    The mask order is identical on every rank (it comes from a synchronised
    bitmask), so compacted payloads are element-wise summable — PacTrain's
    "masked assignment" (Fig. 2) as a standalone codec stage.  Lossless with
    respect to the masked gradient.
    """

    allreduce_compatible = True
    lossless = True
    name = "compact"

    def __init__(self) -> None:
        # Selected indices per bucket, updated by the owner (PacTrain) whenever
        # the tracked mask changes.
        self._indices: Dict[int, np.ndarray] = {}

    def set_mask(self, bucket_index: int, mask: np.ndarray) -> None:
        self._indices[bucket_index] = np.flatnonzero(np.asarray(mask, dtype=bool))

    def reset(self) -> None:
        self._indices.clear()

    def encode(self, payload: WirePayload, ctx: EncodeContext, rank: int = 0) -> WirePayload:
        indices = self._indices.get(ctx.bucket_index)
        if indices is None:
            raise RuntimeError(
                f"MaskCompact has no mask for bucket {ctx.bucket_index}; call set_mask first"
            )
        values = _dense_input(payload, "MaskCompact")
        return SparsePayload(
            indices, values[indices], values.size,
            indices_on_wire=False, shared_selection=True,
        )

    def decode(self, payload: WirePayload) -> WirePayload:
        if isinstance(payload, SparsePayload):
            return DensePayload(payload.densify())
        return payload


class Ternarize(Codec):
    """TernGrad stochastic ternary quantisation (Wen et al., 2017).

    ``prepare`` clips each rank's values (±``clip_sigma`` standard deviations),
    agrees on the shared scale ``s = max_r max_i |v_i|`` — modeled as a tiny
    one-element all-reduce, charged to the network — and ``encode`` rounds each
    value to ``s * {-1, 0, +1}`` with probability ``|v| / s``, which keeps the
    quantised gradient unbiased in expectation (the paper's Eq. (3)).
    """

    lossless = False
    name = "terngrad"

    def __init__(self, seed: int = 0, clip_sigma: Optional[float] = 2.5) -> None:
        self.seed = seed
        self.clip_sigma = clip_sigma
        self._rng = np.random.default_rng(seed)

    def reset(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    def _clip(self, values: np.ndarray) -> np.ndarray:
        if self.clip_sigma is None or values.size == 0:
            return values
        sigma = float(np.std(values))
        if sigma == 0.0:
            return values
        bound = self.clip_sigma * sigma
        return np.clip(values, -bound, bound)

    @staticmethod
    def _values_of(payload: WirePayload) -> np.ndarray:
        if isinstance(payload, (DensePayload, SparsePayload)):
            return as_compute_array(payload.values)
        if isinstance(payload, HalfPayload):
            return payload.reduce_values()
        raise TypeError(f"cannot ternarise {type(payload).__name__}")

    def prepare(self, inputs: List[WirePayload], ctx: EncodeContext) -> None:
        clipped = [self._clip(self._values_of(p)) for p in inputs]
        if all(values.size == 0 for values in clipped):
            ctx.shared[id(self)] = (clipped, 0.0)
            return
        maxima = [float(np.max(np.abs(v))) if v.size else 0.0 for v in clipped]
        if ctx.group is not None:
            # Scaler agreement: one fp32 scalar per rank, max-reduced.  The
            # collective is issued for its modeled cost; the shared maximum is
            # computed locally (the simulation holds every rank in-process).
            ctx.group.all_reduce(
                [DensePayload(np.array([m])) for m in maxima], average=False
            )
        ctx.shared[id(self)] = (clipped, max(maxima))

    def encode(self, payload: WirePayload, ctx: EncodeContext, rank: int = 0) -> WirePayload:
        clipped, scale = ctx.shared[id(self)]
        values = clipped[rank]
        if scale == 0.0:
            codes = np.zeros(values.size, dtype=np.int8)
        else:
            probability = np.clip(np.abs(values) / scale, 0.0, 1.0)
            keep = self._rng.random(values.shape) < probability
            codes = (np.sign(values) * keep).astype(np.int8)
        if isinstance(payload, SparsePayload):
            return SparsePayload(
                payload.indices,
                scale * codes.astype(float_dtype_of(np.asarray(payload.values))),
                payload.numel,
                value_bytes=TERNARY_BYTES,
                indices_on_wire=payload.indices_on_wire,
                shared_selection=payload.shared_selection,
            )
        return TernaryPayload(packed=pack_ternary(codes), scale=scale, size=values.size)

    def decode(self, payload: WirePayload) -> WirePayload:
        if isinstance(payload, TernaryPayload):
            return DensePayload(payload.reduce_values())
        return payload


class Sign(Codec):
    """signSGD with majority vote (Bernstein et al., 2018).

    Each rank transmits one bit per coordinate (the gradient's sign) plus its
    mean absolute value as a scale; aggregation is the element-wise majority
    vote over the sign codes, which is all-reduce compatible.  The decoded
    average is ``mean(scale) * majority_sign`` — aggressive (32x) compression
    whose bias is what the driver-level error feedback (``"ef+signsgd"``)
    compensates.
    """

    name = "signsgd"
    allreduce_compatible = True
    lossless = False

    def encode(self, payload: WirePayload, ctx: EncodeContext, rank: int = 0) -> WirePayload:
        return SignPayload.from_values(_dense_input(payload, "Sign"))

    def decode(self, payload: WirePayload) -> WirePayload:
        if isinstance(payload, SignPayload):
            return DensePayload(payload.densify())
        return payload


def orthonormalize(matrix: np.ndarray, rtol: Optional[float] = None) -> np.ndarray:
    """Column-wise modified Gram-Schmidt (the PowerSGD orthogonalisation).

    Deterministic and dtype-preserving.  Healthy columns are normalised
    *exactly* (no ``norm + eps`` residue — that residue would propagate into
    later columns and destroy orthogonality for rank-deficient inputs), while
    columns whose post-projection remainder falls below a scale-relative
    tolerance (``sqrt(machine eps)`` of the dtype times the largest input
    column norm) are zeroed: their remainder is pure rounding noise, and a
    zero column simply drops out of the ``P @ P.T`` projection.  Exactly
    low-rank inputs therefore reconstruct to machine precision.
    """
    basis = np.array(matrix, copy=True)
    if basis.size == 0:
        return basis
    if rtol is None:
        rtol = float(np.sqrt(np.finfo(basis.dtype).eps))
    tol = rtol * float(np.max(np.linalg.norm(basis, axis=0)))
    for column in range(basis.shape[1]):
        col = basis[:, column]
        for previous in range(column):
            col -= (basis[:, previous] @ col) * basis[:, previous]
        norm = float(np.linalg.norm(col))
        if norm > tol and norm > 0.0:
            col /= norm
        else:
            col[:] = 0.0
    return basis


class LowRank(Codec):
    """PowerSGD-style low-rank compression (Vogels et al., 2019).

    Per bucket the flat gradient is viewed as a near-square ``(m, n)`` matrix
    (zero-padded) and compressed with **one step of power iteration** warm
    started from the previous iteration's right factor:

    1. ``P_r = M_r @ Q_prev`` per rank; the mean ``P`` is orthonormalised into
       the shared left factor ``P_hat`` (the protocol's first all-reduce);
    2. ``Q_r = M_r.T @ P_hat`` per rank becomes the payload's summable right
       factor (the second all-reduce, executed by the aggregation driver);
    3. decode reconstructs ``P_hat @ Q.T``; the aggregated ``Q`` also warm
       starts the next iteration.

    Both protocol halves are charged through the payload's analytic
    ``(m + n) * rank * 4`` wire bytes.  Low-rank projection is biased, so the
    intended composition is ``"ef+powersgd-rank4"``.
    """

    allreduce_compatible = True
    lossless = False

    def __init__(self, rank: int = 4, seed: int = 0) -> None:
        if rank < 1:
            raise ValueError("rank must be >= 1")
        self.rank = rank
        self.seed = seed
        self.name = f"powersgd-rank{rank}"
        # Warm-started right factor per bucket: (n, rank), shared across ranks
        # because it always comes from the aggregated previous step.
        self._q_prev: Dict[int, np.ndarray] = {}

    def reset(self) -> None:
        self._q_prev.clear()

    @staticmethod
    def matrix_shape(numel: int) -> "tuple[int, int]":
        """Near-square ``(m, n)`` view of a flat gradient of ``numel`` elements."""
        n = int(np.ceil(np.sqrt(numel)))
        m = int(np.ceil(numel / n))
        return m, n

    def _initial_q(self, n: int, rank: int, bucket_index: int, dtype) -> np.ndarray:
        rng = np.random.default_rng(self.seed + 1_000_003 * bucket_index)
        return orthonormalize(rng.standard_normal((n, rank)).astype(dtype, copy=False))

    def prepare(self, inputs: List[WirePayload], ctx: EncodeContext) -> None:
        stacked = _stacked_inputs(inputs, ctx, "LowRank")
        world, numel = stacked.shape
        m, n = self.matrix_shape(numel)
        rank = min(self.rank, m, n)
        dtype = float_dtype_of(stacked)

        pad = m * n - numel
        if pad:
            padded = np.zeros((world, m * n), dtype=dtype)
            padded[:, :numel] = stacked
        else:
            padded = np.asarray(stacked, dtype=dtype)
        matrices = padded.reshape(world, m, n)

        q_prev = self._q_prev.get(ctx.bucket_index)
        if q_prev is None or q_prev.shape != (n, rank) or q_prev.dtype != dtype:
            q_prev = self._initial_q(n, rank, ctx.bucket_index, dtype)

        # First protocol half: P_r = M_r Q_prev, all-reduced and orthonormalised
        # into the shared left factor (cost carried by the payload's nbytes).
        p_hat = orthonormalize(np.mean(matrices @ q_prev, axis=0))
        # Second half: per-rank right factors, summable because p_hat is shared.
        q_factors = np.transpose(matrices, (0, 2, 1)) @ p_hat

        # Warm start: the aggregated right factor of *this* step seeds the
        # power iteration of the next one.  Columns that died this step — an
        # exactly-zero or rank-deficient bucket gradient zeroes the matching
        # p_hat (and hence q) columns — are re-seeded from the deterministic
        # initial basis, otherwise M @ q_prev would stay zero in those
        # directions forever and the bucket could never transmit again.
        q_next = np.mean(q_factors, axis=0)
        dead = np.linalg.norm(q_next, axis=0) == 0.0
        if np.any(dead):
            q_next[:, dead] = self._initial_q(n, rank, ctx.bucket_index, dtype)[:, dead]
        self._q_prev[ctx.bucket_index] = q_next
        ctx.shared[id(self)] = (p_hat, q_factors, numel)

    def encode(self, payload: WirePayload, ctx: EncodeContext, rank: int = 0) -> WirePayload:
        p_hat, q_factors, numel = ctx.shared[id(self)]
        return LowRankPayload(p=p_hat, q=q_factors[rank], numel=numel)

    def decode(self, payload: WirePayload) -> WirePayload:
        if isinstance(payload, LowRankPayload):
            return DensePayload(payload.densify())
        return payload

    def spec(self) -> str:
        return self.name


class DGCSelect(Codec):
    """Deep Gradient Compression selection (Lin et al., 2018).

    Momentum correction and local gradient accumulation run vectorised over a
    (world, numel) matrix per bucket; the top-k selection over the accumulated
    buffers is a single batched ``argpartition``.  Like :class:`TopK` the
    per-rank selections differ, so aggregation uses all-gather.
    """

    allreduce_compatible = False
    lossless = False
    #: DGC's local gradient accumulation *is* error feedback (on the
    #: momentum-corrected gradient) and cannot be separated from the
    #: algorithm; the driver refuses to layer or strip EF around this stage.
    self_compensating = True

    def __init__(
        self,
        ratio: float = 0.01,
        momentum: float = 0.9,
        clip_norm: Optional[float] = None,
    ) -> None:
        if not 0.0 < ratio <= 1.0:
            raise ValueError("ratio must be in (0, 1]")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.ratio = ratio
        self.momentum = momentum
        self.clip_norm = clip_norm
        self.name = f"dgc{ratio:g}"
        # Per-bucket (world, numel) momentum (u) and accumulation (v) buffers.
        self._momentum: Dict[int, np.ndarray] = {}
        self._accum: Dict[int, np.ndarray] = {}

    def reset(self) -> None:
        self._momentum.clear()
        self._accum.clear()

    def resize_world(
        self, old_ranks: Sequence[int], new_ranks: Sequence[int], policy: str = "carry"
    ) -> None:
        remap_rank_rows(self._momentum, old_ranks, new_ranks, policy)
        remap_rank_rows(self._accum, old_ranks, new_ranks, policy)

    def _clip_rows(self, matrix: np.ndarray) -> np.ndarray:
        if self.clip_norm is None:
            return matrix
        norms = np.linalg.norm(matrix, axis=1, keepdims=True)
        factors = np.where(norms > self.clip_norm, self.clip_norm / np.maximum(norms, 1e-30), 1.0)
        return matrix * factors

    def prepare(self, inputs: List[WirePayload], ctx: EncodeContext) -> None:
        matrix = self._clip_rows(_stacked_inputs(inputs, ctx, "DGC"))
        numel = matrix.shape[1]
        k = max(1, int(round(numel * self.ratio)))

        momentum = self._momentum.get(ctx.bucket_index)
        accum = self._accum.get(ctx.bucket_index)
        if momentum is None or momentum.shape != matrix.shape:
            momentum = np.zeros_like(matrix)
        if accum is None or accum.shape != matrix.shape:
            accum = np.zeros_like(matrix)

        # Momentum correction: accumulate velocity locally, then accumulate the
        # velocity into the unsent-gradient buffer.
        momentum = self.momentum * momentum + matrix
        accum = accum + momentum

        indices = batched_top_k_indices(accum, k)
        values = np.take_along_axis(accum, indices, axis=1)

        # Clear the transmitted coordinates from both buffers (momentum factor
        # masking from the DGC paper).
        np.put_along_axis(accum, indices, 0.0, axis=1)
        np.put_along_axis(momentum, indices, 0.0, axis=1)
        self._momentum[ctx.bucket_index] = momentum
        self._accum[ctx.bucket_index] = accum

        ctx.shared[id(self)] = (indices, values, numel)

    def encode(self, payload: WirePayload, ctx: EncodeContext, rank: int = 0) -> WirePayload:
        indices, values, numel = ctx.shared[id(self)]
        return SparsePayload(
            indices[rank], values[rank], numel,
            indices_on_wire=True, shared_selection=False,
        )

    def decode(self, payload: WirePayload) -> WirePayload:
        if isinstance(payload, SparsePayload):
            return DensePayload(payload.densify())
        return payload
