"""Gradient compressors.

Every compressor implements the :class:`repro.compression.base.Compressor`
interface: given one gradient bucket (per-rank flat tensors) and a process
group, produce the aggregated average gradient while issuing the collectives it
actually needs — all-reduce for all-reduce-compatible schemes, all-gather for
schemes (TopK, DGC) whose per-rank payloads cannot be summed element-wise.
The process group charges modeled time and bytes for whichever collective is
used, which is how Table 1's "compatibility" column turns into Fig. 3's TTA
differences.

Implemented baselines (paper §IV.C and Table 1):

* :class:`NoCompression`       — native fp32 all-reduce
* :class:`FP16Compressor`      — half-precision all-reduce
* :class:`TopKCompressor`      — per-rank top-k selection, all-gather exchange
* :class:`RandomKCompressor`   — random-k selection, all-gather exchange
* :class:`TernGradCompressor`  — ternary quantisation (Wen et al., 2017)
* :class:`DGCCompressor`       — Deep Gradient Compression (Lin et al., 2018)

The PacTrain compressor lives in :mod:`repro.pactrain` and is registered here
for convenience through :func:`build_compressor`.
"""

from repro.compression.base import Compressor, CompressionStats
from repro.compression.none import NoCompression
from repro.compression.fp16 import FP16Compressor
from repro.compression.topk import TopKCompressor
from repro.compression.randomk import RandomKCompressor
from repro.compression.terngrad import TernGradCompressor
from repro.compression.dgc import DGCCompressor
from repro.compression.registry import COMPRESSOR_REGISTRY, build_compressor, register_compressor

__all__ = [
    "Compressor",
    "CompressionStats",
    "NoCompression",
    "FP16Compressor",
    "TopKCompressor",
    "RandomKCompressor",
    "TernGradCompressor",
    "DGCCompressor",
    "COMPRESSOR_REGISTRY",
    "build_compressor",
    "register_compressor",
]
