"""Gradient compressors and the encode/reduce/decode codec subsystem.

Every compressor implements the :class:`repro.compression.base.Compressor`
interface: given one gradient bucket (per-rank flat tensors) and a process
group, produce the aggregated average gradient while issuing the collectives it
actually needs.  The built-in compressors are all
:class:`~repro.compression.base.CodecCompressor` instances — a codec
:class:`~repro.compression.codec.Pipeline` bound to the shared
encode → reduce/gather → decode driver.  Encoded
:class:`~repro.compression.codec.WirePayload` objects go straight to the
collective layer, which charges modeled time and bytes from
``payload.nbytes`` — how Table 1's "compatibility" column turns into Fig. 3's
TTA differences, with byte accounting measured from the wire representation.

Implemented baselines (paper §IV.C and Table 1):

* :class:`NoCompression`       — native fp32 all-reduce
* :class:`FP16Compressor`      — half-precision all-reduce
* :class:`TopKCompressor`      — per-rank top-k selection, all-gather exchange
* :class:`RandomKCompressor`   — shared-seed random-k, all-reduce
* :class:`TernGradCompressor`  — ternary quantisation (Wen et al., 2017)
* :class:`DGCCompressor`       — Deep Gradient Compression (Lin et al., 2018)

The PacTrain compressor lives in :mod:`repro.pactrain` and is registered here
for convenience through :func:`build_compressor`, which also accepts arbitrary
codec pipeline specs such as ``"topk0.01+terngrad"``.
"""

from repro.compression.base import (
    CodecCompressor,
    CompressionStats,
    Compressor,
    exact_average,
)
from repro.compression.codec import (
    BitmaskPayload,
    Codec,
    DensePayload,
    EncodeContext,
    HalfPayload,
    LowRankPayload,
    Pipeline,
    SignPayload,
    SparsePayload,
    TernaryPayload,
    WirePayload,
    as_payload,
    parse_codec_spec,
    parse_compressor_spec,
)
from repro.compression.none import NoCompression
from repro.compression.fp16 import FP16Compressor
from repro.compression.topk import TopKCompressor
from repro.compression.randomk import RandomKCompressor
from repro.compression.terngrad import TernGradCompressor
from repro.compression.dgc import DGCCompressor
from repro.compression.registry import COMPRESSOR_REGISTRY, build_compressor, register_compressor

__all__ = [
    "Compressor",
    "CodecCompressor",
    "CompressionStats",
    "exact_average",
    "WirePayload",
    "DensePayload",
    "HalfPayload",
    "SparsePayload",
    "TernaryPayload",
    "BitmaskPayload",
    "SignPayload",
    "LowRankPayload",
    "as_payload",
    "Codec",
    "EncodeContext",
    "Pipeline",
    "parse_codec_spec",
    "parse_compressor_spec",
    "NoCompression",
    "FP16Compressor",
    "TopKCompressor",
    "RandomKCompressor",
    "TernGradCompressor",
    "DGCCompressor",
    "COMPRESSOR_REGISTRY",
    "build_compressor",
    "register_compressor",
]
