"""Deep Gradient Compression (Lin et al., 2018).

DGC combines aggressive top-k sparsification (99%+ sparsity) with four
techniques that preserve accuracy: momentum correction, local gradient
accumulation (error feedback on the momentum-corrected gradient), gradient
clipping and masking of stale momentum.  Like plain top-k it exchanges
per-rank (index, value) pairs and is therefore *not* all-reduce compatible —
the property the PacTrain paper's Table 1 records.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.comm.process_group import ProcessGroup
from repro.compression.base import Compressor, FP32_BYTES, INDEX_BYTES
from repro.compression.topk import top_k_indices
from repro.ddp.bucket import GradBucket


class DGCCompressor(Compressor):
    """Deep Gradient Compression with momentum correction and accumulation."""

    allreduce_compatible = False
    lossless = False

    def __init__(
        self,
        ratio: float = 0.01,
        momentum: float = 0.9,
        clip_norm: Optional[float] = None,
    ) -> None:
        super().__init__()
        if not 0.0 < ratio <= 1.0:
            raise ValueError("ratio must be in (0, 1]")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.ratio = ratio
        self.momentum = momentum
        self.clip_norm = clip_norm
        self.name = f"dgc-{ratio:g}"
        # Per (bucket, rank) momentum (u) and accumulation (v) buffers.
        self._momentum_buf: Dict[tuple, np.ndarray] = {}
        self._accum_buf: Dict[tuple, np.ndarray] = {}

    def reset(self) -> None:
        super().reset()
        self._momentum_buf.clear()
        self._accum_buf.clear()

    def _clip(self, grad: np.ndarray) -> np.ndarray:
        if self.clip_norm is None:
            return grad
        norm = float(np.linalg.norm(grad))
        if norm <= self.clip_norm or norm == 0.0:
            return grad
        return grad * (self.clip_norm / norm)

    def aggregate(self, bucket: GradBucket, group: ProcessGroup, iteration: int = 0) -> np.ndarray:
        numel = bucket.numel
        world_size = bucket.world_size
        k = max(1, int(round(numel * self.ratio)))

        per_rank_values = []
        per_rank_indices = []
        for rank, flat in enumerate(bucket.buffers):
            key = (bucket.index, rank)
            grad = self._clip(flat)

            momentum = self._momentum_buf.get(key)
            if momentum is None:
                momentum = np.zeros(numel, dtype=np.float64)
            accum = self._accum_buf.get(key)
            if accum is None:
                accum = np.zeros(numel, dtype=np.float64)

            # Momentum correction: accumulate velocity locally, then accumulate
            # the velocity into the unsent-gradient buffer.
            momentum = self.momentum * momentum + grad
            accum = accum + momentum

            indices = top_k_indices(accum, k)
            values = accum[indices]

            # Clear the transmitted coordinates from both buffers
            # (momentum factor masking from the DGC paper).
            accum[indices] = 0.0
            momentum[indices] = 0.0

            self._momentum_buf[key] = momentum
            self._accum_buf[key] = accum
            per_rank_values.append(values)
            per_rank_indices.append(indices)

        payload = [values.astype(np.float64) for values in per_rank_values]
        group.all_gather(payload, element_bytes=FP32_BYTES + INDEX_BYTES)

        aggregated = np.zeros(numel, dtype=np.float64)
        for values, indices in zip(per_rank_values, per_rank_indices):
            np.add.at(aggregated, indices, values)
        aggregated /= world_size

        self._record(
            bucket,
            wire_bytes_per_element=FP32_BYTES + INDEX_BYTES,
            payload_elements=k,
            used_allgather=True,
        )
        return aggregated
