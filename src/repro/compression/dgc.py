"""Deep Gradient Compression (Lin et al., 2018).

DGC combines aggressive top-k sparsification (99%+ sparsity) with four
techniques that preserve accuracy: momentum correction, local gradient
accumulation (error feedback on the momentum-corrected gradient), gradient
clipping and masking of stale momentum.  Like plain top-k it exchanges
per-rank (index, value) sparse payloads and is therefore *not* all-reduce
compatible — the property the PacTrain paper's Table 1 records.

The momentum/accumulation state lives in the
:class:`~repro.compression.codec.stages.DGCSelect` stage as one
(world, numel) matrix per bucket, so the correction and the top-k selection
both run as single vectorised operations across all ranks.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.compression.base import CodecCompressor
from repro.compression.codec import DGCSelect, Pipeline


class DGCCompressor(CodecCompressor):
    """Deep Gradient Compression with momentum correction and accumulation."""

    def __init__(
        self,
        ratio: float = 0.01,
        momentum: float = 0.9,
        clip_norm: Optional[float] = None,
    ) -> None:
        self._stage = DGCSelect(ratio=ratio, momentum=momentum, clip_norm=clip_norm)
        super().__init__(Pipeline([self._stage]), name=f"dgc-{ratio:g}")

    @property
    def ratio(self) -> float:
        return self._stage.ratio

    @property
    def momentum(self) -> float:
        return self._stage.momentum

    @property
    def clip_norm(self) -> Optional[float]:
        return self._stage.clip_norm

    @property
    def _momentum_buf(self) -> Dict[int, np.ndarray]:
        return self._stage._momentum

    @property
    def _accum_buf(self) -> Dict[int, np.ndarray]:
        return self._stage._accum
