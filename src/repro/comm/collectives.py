"""Collective communication operations over simulated ranks.

Each collective takes the per-rank buffers (a list indexed by rank) — either
raw numpy arrays or first-class :class:`~repro.compression.codec.payloads.WirePayload`
objects — computes the mathematically exact result and returns it together
with a :class:`CollectiveEvent` describing the modeled cost: which algorithm
ran, how many bytes each worker put on the wire, and how long the operation
took under the :class:`repro.comm.network.NetworkModel`.

When payloads are passed, the wire size is **derived from the encoded
representation** (``payload.nbytes``): a sparse payload is charged for its
(index, value) pairs, a ternary payload for two bits per element, and so on.
The legacy raw-array path keeps the ``element_bytes`` override for tests and
ad-hoc modeling, but the compression stack itself always communicates
payloads, so byte accounting is measured rather than asserted.

The numerical results are exact (no simulation of per-step partial sums is
needed for correctness), while the *costs* follow the standard ring-based
algorithms — this mirrors how NCCL behaves from the training loop's point of
view: the right answer arrives after a bandwidth/latency dependent delay.
Reductions accumulate rank by rank into one preallocated buffer, so peak
memory stays O(numel) instead of the O(world × numel) of a stack-then-sum.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence, Union

import numpy as np

from repro.comm.network import NetworkModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.compression.codec.payloads import WirePayload

Buffers = Sequence[Union[np.ndarray, "WirePayload"]]


_WIRE_PAYLOAD_CLS = None


def _is_payload(value) -> bool:
    # Deferred import: repro.compression.base imports the process group, so a
    # module-level import here would be circular.  By the time payloads reach a
    # collective the compression package is importable; cache the class so the
    # hot path pays the import machinery only once.
    global _WIRE_PAYLOAD_CLS
    if _WIRE_PAYLOAD_CLS is None:
        from repro.compression.codec.payloads import WirePayload  # noqa: PLC0415

        _WIRE_PAYLOAD_CLS = WirePayload
    return isinstance(value, _WIRE_PAYLOAD_CLS)


@dataclass
class CollectiveEvent:
    """Record of one collective operation for the timeline and statistics."""

    op: str
    bytes_per_worker: float
    time_seconds: float
    world_size: int
    payload_elements: int = 0
    metadata: dict = field(default_factory=dict)


def _is_payload_sequence(buffers: Buffers) -> bool:
    if len(buffers) == 0:
        raise ValueError("collective called with no buffers")
    payload_count = sum(1 for b in buffers if _is_payload(b))
    if 0 < payload_count < len(buffers):
        raise ValueError(
            f"collective received a mix of {payload_count} WirePayloads and "
            f"{len(buffers) - payload_count} raw arrays; pass one kind per call"
        )
    return payload_count == len(buffers)


def _check_buffers(buffers: Sequence[np.ndarray]) -> None:
    if len(buffers) == 0:
        raise ValueError("collective called with no buffers")
    shape = buffers[0].shape
    for index, buffer in enumerate(buffers):
        if buffer.shape != shape:
            raise ValueError(
                f"rank {index} buffer shape {buffer.shape} differs from rank 0 shape {shape}"
            )


def _check_payloads(payloads: Sequence[WirePayload]) -> None:
    head = payloads[0]
    for index, payload in enumerate(payloads[1:], start=1):
        if not head.reducible_with(payload):
            raise ValueError(
                f"rank {index} payload ({type(payload).__name__}) is not element-wise "
                f"reducible with rank 0 ({type(head).__name__}); aggregate per-rank "
                "selections with all_gather instead"
            )


def accumulate_sum(arrays) -> np.ndarray:
    """Sum an iterable of equal-shaped arrays into one compute-dtype buffer.

    Accumulates item by item (accepts a lazy generator), so peak memory stays
    O(numel) regardless of how many ranks contribute.  The accumulator dtype
    follows the first array's floating dtype (float64 for non-float inputs),
    so float32 gradients reduce in float32 while the historical float64 path
    is untouched.  Shared by the raw and payload collective paths and by
    :func:`repro.compression.base.exact_average`.
    """
    from repro.tensorlib.dtypes import float_dtype_of  # noqa: PLC0415

    total: Optional[np.ndarray] = None
    for array in arrays:
        if total is None:
            array = np.asarray(array)
            total = np.zeros(array.shape, dtype=float_dtype_of(array))
        np.add(total, array, out=total, casting="unsafe")
    if total is None:
        raise ValueError("accumulate_sum called with no arrays")
    return total


def ring_all_reduce_time(network: NetworkModel, num_bytes: float) -> float:
    """Expose the network model's all-reduce cost (used by planners/tests)."""
    return network.ring_all_reduce_time(num_bytes)


def all_gather_time(network: NetworkModel, num_bytes: float) -> float:
    """Expose the network model's all-gather cost."""
    return network.all_gather_time(num_bytes)


def all_reduce(
    buffers: Buffers,
    network: Optional[NetworkModel] = None,
    average: bool = True,
    element_bytes: Optional[float] = None,
) -> tuple:
    """Sum (or average) the per-rank buffers via a modeled ring all-reduce.

    Parameters
    ----------
    buffers:
        One buffer per rank: raw arrays (all the same shape) or element-wise
        reducible :class:`WirePayload` objects.
    network:
        Cost model; if ``None``, time is reported as ``0`` (useful in unit tests).
    average:
        Divide by the world size (the DDP convention for gradients).
    element_bytes:
        Wire size per element for the raw-array path only.  Defaults to the
        buffer's dtype itemsize.  Ignored for payloads, whose wire size is
        ``payload.nbytes`` by construction.

    Returns
    -------
    ``(result, event)`` where ``result`` mirrors the input kind: a dense array
    for raw arrays, a reduced :class:`WirePayload` (same structure, reduced
    values) for payloads.
    """
    if _is_payload_sequence(buffers):
        payloads: Sequence[WirePayload] = buffers  # type: ignore[assignment]
        _check_payloads(payloads)
        world_size = len(payloads)
        # Lazy generator: only one decoded buffer is live at a time.
        total = accumulate_sum(payload.reduce_values() for payload in payloads)
        if average:
            total /= world_size
        reduced = payloads[0].with_reduced(total)

        num_bytes = max(payload.nbytes for payload in payloads)
        time = network.ring_all_reduce_time(num_bytes) if network is not None else 0.0
        event = CollectiveEvent(
            op="all_reduce",
            bytes_per_worker=2.0 * (world_size - 1) / world_size * num_bytes if world_size > 1 else 0.0,
            time_seconds=time,
            world_size=world_size,
            payload_elements=int(payloads[0].transmitted_elements),
            metadata={"payload": type(payloads[0]).__name__},
        )
        return reduced, event

    _check_buffers(buffers)
    world_size = len(buffers)
    result = accumulate_sum(buffers)
    if average:
        result /= world_size

    itemsize = element_bytes if element_bytes is not None else buffers[0].dtype.itemsize
    num_bytes = buffers[0].size * itemsize
    time = network.ring_all_reduce_time(num_bytes) if network is not None else 0.0
    event = CollectiveEvent(
        op="all_reduce",
        bytes_per_worker=2.0 * (world_size - 1) / world_size * num_bytes if world_size > 1 else 0.0,
        time_seconds=time,
        world_size=world_size,
        payload_elements=int(buffers[0].size),
    )
    return result, event


def all_gather(
    buffers: Buffers,
    network: Optional[NetworkModel] = None,
    element_bytes: Optional[float] = None,
) -> tuple:
    """Gather every rank's buffer (or payload) onto every rank.

    Unlike :func:`all_reduce`, buffers may have *different lengths* (as happens
    with per-rank top-k selections); the cost model charges the maximum
    per-rank payload, matching the padded all-gather used in practice.
    """
    world_size = len(buffers)
    if _is_payload_sequence(buffers):
        import copy as _copy  # noqa: PLC0415

        payloads: Sequence[WirePayload] = buffers  # type: ignore[assignment]
        num_bytes = max(payload.nbytes for payload in payloads)
        max_elements = max(int(p.transmitted_elements) for p in payloads)
        time = network.all_gather_time(num_bytes) if network is not None else 0.0
        event = CollectiveEvent(
            op="all_gather",
            bytes_per_worker=(world_size - 1) * num_bytes if world_size > 1 else 0.0,
            time_seconds=time,
            world_size=world_size,
            payload_elements=max_elements,
            metadata={"payload": type(payloads[0]).__name__},
        )
        # Independent copies, matching the raw-array path's semantics (the
        # inputs may hold views into a stage's internal state).
        return [_copy.deepcopy(payload) for payload in payloads], event

    gathered = [np.array(b, copy=True) for b in buffers]
    itemsize = element_bytes if element_bytes is not None else buffers[0].dtype.itemsize
    max_elements = max(b.size for b in buffers)
    num_bytes = max_elements * itemsize
    time = network.all_gather_time(num_bytes) if network is not None else 0.0
    event = CollectiveEvent(
        op="all_gather",
        bytes_per_worker=(world_size - 1) * num_bytes if world_size > 1 else 0.0,
        time_seconds=time,
        world_size=world_size,
        payload_elements=int(max_elements),
    )
    return gathered, event


def broadcast(
    buffer: Union[np.ndarray, WirePayload],
    world_size: int,
    network: Optional[NetworkModel] = None,
    element_bytes: Optional[float] = None,
) -> tuple:
    """Broadcast a root buffer or payload to all ranks (weight/mask sync)."""
    if world_size < 1:
        raise ValueError("world_size must be >= 1")
    if _is_payload(buffer):
        import copy as _copy  # noqa: PLC0415

        num_bytes = buffer.nbytes
        # Independent replicas, matching the raw-array path's copy semantics
        # (payload dataclasses are frozen but their ndarray fields are not).
        replicas: List = [_copy.deepcopy(buffer) for _ in range(world_size)]
        payload_elements = int(buffer.num_elements)
        metadata = {"payload": type(buffer).__name__}
    else:
        itemsize = element_bytes if element_bytes is not None else buffer.dtype.itemsize
        num_bytes = buffer.size * itemsize
        replicas = [np.array(buffer, copy=True) for _ in range(world_size)]
        payload_elements = int(buffer.size)
        metadata = {}
    time = network.broadcast_time(num_bytes) if network is not None else 0.0
    event = CollectiveEvent(
        op="broadcast",
        bytes_per_worker=num_bytes if world_size > 1 else 0.0,
        time_seconds=time,
        world_size=world_size,
        payload_elements=payload_elements,
        metadata=metadata,
    )
    return replicas, event


def reduce_scatter(
    buffers: Sequence[np.ndarray],
    network: Optional[NetworkModel] = None,
    average: bool = False,
    element_bytes: Optional[float] = None,
) -> tuple:
    """Reduce buffers across ranks and scatter equal chunks back to each rank."""
    _check_buffers(buffers)
    world_size = len(buffers)
    total = accumulate_sum(buffers)
    if average:
        total /= world_size
    flat = total.reshape(-1)
    chunks = np.array_split(flat, world_size)

    itemsize = element_bytes if element_bytes is not None else buffers[0].dtype.itemsize
    num_bytes = buffers[0].size * itemsize
    time = network.reduce_scatter_time(num_bytes) if network is not None else 0.0
    event = CollectiveEvent(
        op="reduce_scatter",
        bytes_per_worker=(world_size - 1) / world_size * num_bytes if world_size > 1 else 0.0,
        time_seconds=time,
        world_size=world_size,
        payload_elements=int(buffers[0].size),
    )
    return chunks, event
