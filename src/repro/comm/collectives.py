"""Collective communication operations over simulated ranks.

Each collective takes the per-rank numpy buffers (a list indexed by rank),
computes the mathematically exact result and returns it together with a
:class:`CollectiveEvent` describing the modeled cost: which algorithm ran, how
many bytes each worker put on the wire, and how long the operation took under
the :class:`repro.comm.network.NetworkModel`.

The numerical results are exact (no simulation of per-step partial sums is
needed for correctness), while the *costs* follow the standard ring-based
algorithms — this mirrors how NCCL behaves from the training loop's point of
view: the right answer arrives after a bandwidth/latency dependent delay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.comm.network import NetworkModel


@dataclass
class CollectiveEvent:
    """Record of one collective operation for the timeline and statistics."""

    op: str
    bytes_per_worker: float
    time_seconds: float
    world_size: int
    payload_elements: int = 0
    metadata: dict = field(default_factory=dict)


def _check_buffers(buffers: Sequence[np.ndarray]) -> None:
    if len(buffers) == 0:
        raise ValueError("collective called with no buffers")
    shape = buffers[0].shape
    for index, buffer in enumerate(buffers):
        if buffer.shape != shape:
            raise ValueError(
                f"rank {index} buffer shape {buffer.shape} differs from rank 0 shape {shape}"
            )


def ring_all_reduce_time(network: NetworkModel, num_bytes: float) -> float:
    """Expose the network model's all-reduce cost (used by planners/tests)."""
    return network.ring_all_reduce_time(num_bytes)


def all_gather_time(network: NetworkModel, num_bytes: float) -> float:
    """Expose the network model's all-gather cost."""
    return network.all_gather_time(num_bytes)


def all_reduce(
    buffers: Sequence[np.ndarray],
    network: Optional[NetworkModel] = None,
    average: bool = True,
    element_bytes: Optional[int] = None,
) -> tuple[np.ndarray, CollectiveEvent]:
    """Sum (or average) identical-shaped buffers across ranks via ring all-reduce.

    Parameters
    ----------
    buffers:
        One array per rank, all the same shape.
    network:
        Cost model; if ``None``, time is reported as ``0`` (useful in unit tests).
    average:
        Divide by the world size (the DDP convention for gradients).
    element_bytes:
        Wire size per element.  Defaults to the buffer's dtype itemsize; pass a
        smaller value to model quantised payloads (e.g. 2 for fp16) without
        changing the arithmetic dtype.
    """
    _check_buffers(buffers)
    world_size = len(buffers)
    result = np.sum(np.stack([np.asarray(b, dtype=np.float64) for b in buffers]), axis=0)
    if average:
        result = result / world_size

    itemsize = element_bytes if element_bytes is not None else buffers[0].dtype.itemsize
    num_bytes = buffers[0].size * itemsize
    time = network.ring_all_reduce_time(num_bytes) if network is not None else 0.0
    event = CollectiveEvent(
        op="all_reduce",
        bytes_per_worker=2.0 * (world_size - 1) / max(world_size, 1) * num_bytes if world_size > 1 else 0.0,
        time_seconds=time,
        world_size=world_size,
        payload_elements=int(buffers[0].size),
    )
    return result, event


def all_gather(
    buffers: Sequence[np.ndarray],
    network: Optional[NetworkModel] = None,
    element_bytes: Optional[int] = None,
) -> tuple[List[np.ndarray], CollectiveEvent]:
    """Gather every rank's buffer onto every rank.

    Unlike :func:`all_reduce`, buffers may have *different lengths* (as happens
    with per-rank top-k selections); the cost model charges the maximum
    per-rank payload, matching the padded all-gather used in practice.
    """
    if len(buffers) == 0:
        raise ValueError("collective called with no buffers")
    world_size = len(buffers)
    gathered = [np.array(b, copy=True) for b in buffers]

    itemsize = element_bytes if element_bytes is not None else buffers[0].dtype.itemsize
    max_elements = max(b.size for b in buffers)
    num_bytes = max_elements * itemsize
    time = network.all_gather_time(num_bytes) if network is not None else 0.0
    event = CollectiveEvent(
        op="all_gather",
        bytes_per_worker=(world_size - 1) * num_bytes if world_size > 1 else 0.0,
        time_seconds=time,
        world_size=world_size,
        payload_elements=int(max_elements),
    )
    return gathered, event


def broadcast(
    buffer: np.ndarray,
    world_size: int,
    network: Optional[NetworkModel] = None,
    element_bytes: Optional[int] = None,
) -> tuple[List[np.ndarray], CollectiveEvent]:
    """Broadcast a root buffer to all ranks (used for initial weight sync)."""
    if world_size < 1:
        raise ValueError("world_size must be >= 1")
    replicas = [np.array(buffer, copy=True) for _ in range(world_size)]
    itemsize = element_bytes if element_bytes is not None else buffer.dtype.itemsize
    num_bytes = buffer.size * itemsize
    time = network.broadcast_time(num_bytes) if network is not None else 0.0
    event = CollectiveEvent(
        op="broadcast",
        bytes_per_worker=num_bytes if world_size > 1 else 0.0,
        time_seconds=time,
        world_size=world_size,
        payload_elements=int(buffer.size),
    )
    return replicas, event


def reduce_scatter(
    buffers: Sequence[np.ndarray],
    network: Optional[NetworkModel] = None,
    average: bool = False,
    element_bytes: Optional[int] = None,
) -> tuple[List[np.ndarray], CollectiveEvent]:
    """Reduce buffers across ranks and scatter equal chunks back to each rank."""
    _check_buffers(buffers)
    world_size = len(buffers)
    total = np.sum(np.stack([np.asarray(b, dtype=np.float64) for b in buffers]), axis=0)
    if average:
        total = total / world_size
    flat = total.reshape(-1)
    chunks = np.array_split(flat, world_size)

    itemsize = element_bytes if element_bytes is not None else buffers[0].dtype.itemsize
    num_bytes = buffers[0].size * itemsize
    time = network.reduce_scatter_time(num_bytes) if network is not None else 0.0
    event = CollectiveEvent(
        op="reduce_scatter",
        bytes_per_worker=(world_size - 1) / max(world_size, 1) * num_bytes if world_size > 1 else 0.0,
        time_seconds=time,
        world_size=world_size,
        payload_elements=int(buffers[0].size),
    )
    return chunks, event
