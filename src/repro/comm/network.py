"""Alpha–beta network cost models.

Collective communication time in the experiments is computed analytically from
link bandwidth and latency (the "alpha–beta" model standard in the collective
communication literature): transferring ``n`` bytes over a link costs
``alpha + n / beta`` seconds, where ``alpha`` is the per-message latency and
``beta`` the bandwidth in bytes/second.

Every consumer of collective costs (the process group, the event-driven
simulation engine, planners) talks to the abstract :class:`CostModel`
interface; :class:`NetworkModel` is its flat single-bottleneck backend, and
:class:`repro.comm.topology.HierarchicalCostModel` the topology-aware one.

The bottleneck bandwidths used in the paper's evaluation (100 Mbps, 500 Mbps
and 1 Gbps WAN links between switches) are exposed as convenience constants.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

MBPS = 1e6 / 8.0   # bytes per second for one megabit/s
GBPS = 1e9 / 8.0   # bytes per second for one gigabit/s

#: Bandwidths evaluated in the paper (Fig. 3a–c), in bytes/second.
PAPER_BANDWIDTHS = {
    "100Mbps": 100 * MBPS,
    "500Mbps": 500 * MBPS,
    "1Gbps": 1 * GBPS,
}


@dataclass(frozen=True)
class LinkSpec:
    """A network link with a bandwidth (bytes/s) and a per-message latency (s)."""

    bandwidth: float
    latency: float = 100e-6

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency < 0:
            raise ValueError("latency must be non-negative")

    def transfer_time(self, num_bytes: float) -> float:
        """Time to move ``num_bytes`` over this link (alpha + n/beta)."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if num_bytes == 0:
            return 0.0
        return self.latency + num_bytes / self.bandwidth


class CostModel(ABC):
    """Collective cost interface shared by every network backend.

    Each collective method returns the modeled seconds for one collective over
    a per-worker payload of ``num_bytes``.  Collective costs must be monotone
    non-decreasing in ``num_bytes`` and (for fixed bytes) in ``world_size``,
    and must return ``0.0`` for a single worker or an empty payload — the
    engine and the property-based tests rely on those invariants.
    ``p2p_time`` is exempt from the ``world_size`` clause: it is a raw link
    transfer between two endpoints, so only the byte invariants apply (zero
    bytes still cost ``0.0`` via :meth:`LinkSpec.transfer_time`).
    """

    world_size: int

    @abstractmethod
    def p2p_time(self, num_bytes: float, cross_cluster: bool = True) -> float:
        """Time for a single point-to-point transfer of ``num_bytes``."""

    @abstractmethod
    def ring_all_reduce_time(self, num_bytes: float) -> float:
        """All-reduce of a ``num_bytes`` buffer resident on every worker."""

    @abstractmethod
    def all_gather_time(self, num_bytes: float) -> float:
        """All-gather where every worker contributes ``num_bytes``."""

    @abstractmethod
    def reduce_scatter_time(self, num_bytes: float) -> float:
        """Reduce-scatter of a ``num_bytes`` buffer."""

    @abstractmethod
    def broadcast_time(self, num_bytes: float) -> float:
        """Broadcast of ``num_bytes`` from one root to all workers."""

    @abstractmethod
    def reduce_time(self, num_bytes: float) -> float:
        """Reduce of ``num_bytes`` from all workers onto one root."""

    @abstractmethod
    def gather_time(self, num_bytes: float) -> float:
        """Gather where the root receives ``num_bytes`` from every worker."""


class NetworkModel(CostModel):
    """Cost model for a worker pool behind a shared bottleneck link.

    Parameters
    ----------
    world_size:
        Number of training workers.
    bottleneck:
        The slowest link on the aggregation path (the WAN link in Fig. 4).
    intra_link:
        The fast link between co-located workers and their switch; defaults to
        a 10 Gbps datacenter link.  Collective timing is dominated by the
        bottleneck, but the intra-cluster term matters at 1 Gbps.
    """

    def __init__(
        self,
        world_size: int,
        bottleneck: LinkSpec,
        intra_link: LinkSpec | None = None,
    ) -> None:
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        self.world_size = world_size
        self.bottleneck = bottleneck
        self.intra_link = intra_link or LinkSpec(bandwidth=10 * GBPS, latency=20e-6)

    # ------------------------------------------------------------------ #
    # Point-to-point
    # ------------------------------------------------------------------ #
    def p2p_time(self, num_bytes: float, cross_cluster: bool = True) -> float:
        """Time for a single point-to-point transfer of ``num_bytes``."""
        link = self.bottleneck if cross_cluster else self.intra_link
        return link.transfer_time(num_bytes)

    # ------------------------------------------------------------------ #
    # Collectives (per-worker payload of ``num_bytes``)
    # ------------------------------------------------------------------ #
    def ring_all_reduce_time(self, num_bytes: float) -> float:
        """Ring all-reduce of a ``num_bytes`` buffer resident on every worker.

        The standard ring algorithm sends ``2 (n-1)/n * num_bytes`` per worker
        across the slowest link, in ``2 (n-1)`` latency-bound steps.
        """
        n = self.world_size
        if n == 1 or num_bytes == 0:
            return 0.0
        steps = 2 * (n - 1)
        volume = 2.0 * (n - 1) / n * num_bytes
        return steps * self.bottleneck.latency + volume / self.bottleneck.bandwidth

    def all_gather_time(self, num_bytes: float) -> float:
        """All-gather where every worker contributes ``num_bytes``.

        Each worker ends up receiving ``(n-1) * num_bytes``; with a ring
        algorithm that is also the volume it forwards across the bottleneck.
        """
        n = self.world_size
        if n == 1 or num_bytes == 0:
            return 0.0
        steps = n - 1
        volume = (n - 1) * num_bytes
        return steps * self.bottleneck.latency + volume / self.bottleneck.bandwidth

    def reduce_scatter_time(self, num_bytes: float) -> float:
        """Reduce-scatter of a ``num_bytes`` buffer (half of a ring all-reduce)."""
        n = self.world_size
        if n == 1 or num_bytes == 0:
            return 0.0
        steps = n - 1
        volume = (n - 1) / n * num_bytes
        return steps * self.bottleneck.latency + volume / self.bottleneck.bandwidth

    def broadcast_time(self, num_bytes: float) -> float:
        """Binomial-tree broadcast of ``num_bytes`` from one root to all workers."""
        n = self.world_size
        if n == 1 or num_bytes == 0:
            return 0.0
        rounds = math.ceil(math.log2(n))
        return rounds * self.bottleneck.transfer_time(num_bytes)

    def reduce_time(self, num_bytes: float) -> float:
        """Binomial-tree reduce onto one root (the mirror image of broadcast).

        Each of the ``ceil(log2 n)`` rounds halves the number of senders; every
        round moves a full ``num_bytes`` message across the bottleneck.
        """
        n = self.world_size
        if n == 1 or num_bytes == 0:
            return 0.0
        rounds = math.ceil(math.log2(n))
        return rounds * self.bottleneck.transfer_time(num_bytes)

    def gather_time(self, num_bytes: float) -> float:
        """Gather where the root receives ``num_bytes`` from each other worker.

        The root's link serialises the ``n - 1`` incoming messages, so the cost
        is ``(n-1)`` latency terms plus ``(n-1) * num_bytes`` of volume.
        """
        n = self.world_size
        if n == 1 or num_bytes == 0:
            return 0.0
        steps = n - 1
        volume = (n - 1) * num_bytes
        return steps * self.bottleneck.latency + volume / self.bottleneck.bandwidth

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_bandwidth(
        cls,
        world_size: int,
        bandwidth_bytes_per_s: float,
        latency: float = 1e-3,
    ) -> "NetworkModel":
        """Build a model from a single bottleneck bandwidth figure."""
        return cls(world_size, LinkSpec(bandwidth=bandwidth_bytes_per_s, latency=latency))

    @classmethod
    def from_paper_setting(cls, world_size: int, setting: str) -> "NetworkModel":
        """Build a model for one of the paper's WAN settings.

        Parameters
        ----------
        setting:
            One of ``"100Mbps"``, ``"500Mbps"``, ``"1Gbps"``.
        """
        if setting not in PAPER_BANDWIDTHS:
            raise KeyError(f"unknown bandwidth setting {setting!r}; options: {sorted(PAPER_BANDWIDTHS)}")
        return cls.from_bandwidth(world_size, PAPER_BANDWIDTHS[setting])
