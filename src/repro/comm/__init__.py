"""Cluster, network and collective-communication substrate.

The paper's testbed (Fig. 4) is eight GPU servers attached to virtual switches
with configurable bottleneck links (100 Mbps / 500 Mbps / 1 Gbps).  This
package models that substrate:

* :mod:`repro.comm.topology` — the Fig. 4 topology as a networkx graph with
  per-link bandwidth/latency annotations;
* :mod:`repro.comm.network` — an alpha–beta cost model producing transfer
  times for point-to-point and collective operations over that topology;
* :mod:`repro.comm.collectives` — ring all-reduce, all-gather, broadcast and
  reduce-scatter over numpy arrays, returning both the mathematical result and
  a :class:`CollectiveEvent` with modeled time and bytes on the wire;
* :mod:`repro.comm.process_group` — a simulated process group tying the
  collectives to a fixed set of ranks, used by the DDP simulator.
"""

from repro.comm.network import CostModel, LinkSpec, NetworkModel, MBPS, GBPS
from repro.comm.topology import (
    ClusterTopology,
    HierarchicalCostModel,
    build_paper_topology,
    build_star_topology,
)
from repro.comm.collectives import (
    CollectiveEvent,
    all_reduce,
    all_gather,
    broadcast,
    reduce_scatter,
    ring_all_reduce_time,
    all_gather_time,
)
from repro.comm.process_group import ProcessGroup

__all__ = [
    "CostModel",
    "LinkSpec",
    "NetworkModel",
    "HierarchicalCostModel",
    "MBPS",
    "GBPS",
    "ClusterTopology",
    "build_paper_topology",
    "build_star_topology",
    "CollectiveEvent",
    "all_reduce",
    "all_gather",
    "broadcast",
    "reduce_scatter",
    "ring_all_reduce_time",
    "all_gather_time",
    "ProcessGroup",
]
