"""Cluster topology model (Fig. 4 of the paper).

The evaluation testbed attaches eight GPU servers (S1..S8) to virtual switches;
the two links between the switches are throttled to create the WAN bottleneck.
:class:`ClusterTopology` captures that structure as a networkx graph whose
edges carry :class:`repro.comm.network.LinkSpec` annotations and exposes two
views of it to the collective layer:

* :meth:`ClusterTopology.to_network_model` — the flat view: one bottleneck
  link shared by all servers (what the paper's single-number bandwidth sweep
  uses);
* :meth:`ClusterTopology.cost_model` — the hierarchical view
  (:class:`HierarchicalCostModel`): servers are grouped by their attached
  switch, collectives are charged an intra-LAN reduce/broadcast per group plus
  a WAN exchange between group leaders, so the Fig. 4 chain topology and the
  flat star stop being indistinguishable.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import networkx as nx

from repro.comm.network import CostModel, LinkSpec, NetworkModel, GBPS


class ClusterTopology:
    """A graph of servers and switches with per-edge link specifications."""

    def __init__(self) -> None:
        self.graph = nx.Graph()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_server(self, name: str) -> None:
        self.graph.add_node(name, kind="server")

    def add_switch(self, name: str) -> None:
        self.graph.add_node(name, kind="switch")

    def add_link(self, a: str, b: str, link: LinkSpec) -> None:
        if a not in self.graph or b not in self.graph:
            raise KeyError(f"both endpoints must exist before linking ({a!r}, {b!r})")
        self.graph.add_edge(a, b, link=link)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def servers(self) -> List[str]:
        return sorted(n for n, d in self.graph.nodes(data=True) if d.get("kind") == "server")

    @property
    def switches(self) -> List[str]:
        return sorted(n for n, d in self.graph.nodes(data=True) if d.get("kind") == "switch")

    def path(self, src: str, dst: str) -> List[str]:
        """Shortest path (fewest hops) between two nodes."""
        return nx.shortest_path(self.graph, src, dst)

    def path_links(self, src: str, dst: str) -> List[LinkSpec]:
        nodes = self.path(src, dst)
        return [self.graph.edges[a, b]["link"] for a, b in zip(nodes[:-1], nodes[1:])]

    def bottleneck_link(self, src: str, dst: str) -> LinkSpec:
        """The slowest link on the path between ``src`` and ``dst``."""
        links = self.path_links(src, dst)
        if not links:
            return LinkSpec(bandwidth=float("inf"), latency=0.0)
        return min(links, key=lambda link: link.bandwidth)

    def path_spec(self, src: str, dst: str) -> LinkSpec:
        """Collapse the ``src``→``dst`` path into one effective link.

        The effective bandwidth is the minimum along the path (the pipe
        narrows to its tightest hop); the effective latency is the sum of the
        per-hop latencies (each hop adds its own alpha term).
        """
        links = self.path_links(src, dst)
        if not links:
            return LinkSpec(bandwidth=float("inf"), latency=0.0)
        return LinkSpec(
            bandwidth=min(link.bandwidth for link in links),
            latency=sum(link.latency for link in links),
        )

    def path_cost(self, src: str, dst: str, num_bytes: float) -> float:
        """Per-hop-aware transfer time for ``num_bytes`` from ``src`` to ``dst``."""
        return self.path_spec(src, dst).transfer_time(num_bytes)

    def global_bottleneck(self) -> LinkSpec:
        """The minimax bottleneck over all server-to-server paths.

        For every pair of servers, the best possible route maximises the
        minimum link bandwidth (the "widest path"); the global bottleneck is
        the worst of those maxima — the link any all-to-all traversal of the
        servers cannot avoid.  Computed with a single maximum-spanning-tree
        style pass (Kruskal on descending bandwidth with union-find), which is
        ``O(E log E)`` instead of the all-pairs ``O(n^2)`` scan: whenever an
        edge first joins two components that both contain servers, it is the
        widest-path bottleneck for every server pair across that cut, and the
        last (slowest) such merge edge is the global minimax bottleneck.
        """
        servers = self.servers
        if len(servers) < 2:
            raise ValueError("topology has fewer than two servers")

        parent: Dict[str, str] = {node: node for node in self.graph.nodes}
        server_count: Dict[str, int] = {
            node: 1 if self.graph.nodes[node].get("kind") == "server" else 0
            for node in self.graph.nodes
        }

        def find(node: str) -> str:
            root = node
            while parent[root] != root:
                root = parent[root]
            while parent[node] != root:  # path compression
                parent[node], node = root, parent[node]
            return root

        edges = sorted(
            self.graph.edges(data="link"),
            key=lambda edge: edge[2].bandwidth,
            reverse=True,
        )
        worst: Optional[LinkSpec] = None
        for a, b, link in edges:
            root_a, root_b = find(a), find(b)
            if root_a == root_b:
                continue
            if server_count[root_a] > 0 and server_count[root_b] > 0:
                if worst is None or link.bandwidth < worst.bandwidth:
                    worst = link
            parent[root_b] = root_a
            server_count[root_a] += server_count[root_b]
        if worst is None or any(find(s) != find(servers[0]) for s in servers):
            raise ValueError("servers are not all connected")
        return worst

    # ------------------------------------------------------------------ #
    # Hierarchical structure
    # ------------------------------------------------------------------ #
    def attached_switch(self, server: str) -> Optional[str]:
        """The switch a server hangs off (fastest adjacent switch link)."""
        candidates = [
            (self.graph.edges[server, neighbor]["link"].bandwidth, neighbor)
            for neighbor in self.graph.neighbors(server)
            if self.graph.nodes[neighbor].get("kind") == "switch"
        ]
        if not candidates:
            return None
        return max(candidates)[1]

    def switch_groups(self) -> Dict[str, List[str]]:
        """Servers grouped by their attached switch (sorted, deterministic).

        Servers with no adjacent switch form singleton groups keyed by their
        own name, so every server belongs to exactly one group.
        """
        groups: Dict[str, List[str]] = {}
        for server in self.servers:
            key = self.attached_switch(server) or server
            groups.setdefault(key, []).append(server)
        return dict(sorted(groups.items()))

    def cost_model(self) -> "HierarchicalCostModel":
        """Topology-aware collective cost model (see :class:`HierarchicalCostModel`)."""
        return HierarchicalCostModel(self)

    def hierarchical_all_reduce_time(self, num_bytes: float) -> float:
        """All-reduce cost under the hierarchical (per-switch-group) model.

        For a single switch group this equals the flat
        :meth:`to_network_model` ring time exactly; for multi-switch
        topologies it charges the intra-LAN reduce/broadcast and the WAN
        exchange separately.
        """
        return self.cost_model().ring_all_reduce_time(num_bytes)

    def to_network_model(self) -> NetworkModel:
        """Collapse the topology into a flat :class:`NetworkModel` for collectives."""
        servers = self.servers
        bottleneck = self.global_bottleneck()
        intra_candidates = [
            self.graph.edges[a, b]["link"]
            for a, b in self.graph.edges
            if self.graph.nodes[a].get("kind") == "server" or self.graph.nodes[b].get("kind") == "server"
        ]
        intra = max(intra_candidates, key=lambda link: link.bandwidth) if intra_candidates else None
        return NetworkModel(world_size=len(servers), bottleneck=bottleneck, intra_link=intra)

    def describe(self) -> Dict[str, object]:
        """Summary dictionary used by examples and logging."""
        bottleneck = self.global_bottleneck()
        return {
            "servers": self.servers,
            "switches": self.switches,
            "num_links": self.graph.number_of_edges(),
            "bottleneck_bandwidth_mbps": bottleneck.bandwidth * 8 / 1e6,
            "bottleneck_latency_us": bottleneck.latency * 1e6,
        }


class HierarchicalCostModel(CostModel):
    """Topology-aware collective costing over switch groups.

    Servers are partitioned into groups by their attached switch.  With a
    single group (a star/rack topology) every method delegates to the flat
    :class:`NetworkModel` derived from the same topology, so star costs are
    *exactly* the flat costs.  With multiple groups, collectives decompose
    into the textbook hierarchical schedule:

    * **all-reduce** — intra-group tree reduce onto a group leader (LAN), ring
      all-reduce among the leaders (WAN, charged over the worst leader-to-
      leader path collapsed per hop), intra-group tree broadcast (LAN);
    * **broadcast / reduce / gather / all-gather / reduce-scatter** — the
      corresponding intra phase plus the leader-level WAN phase.

    Intra-group phases run concurrently across groups, so each phase charges
    the *slowest* group.
    """

    def __init__(self, topology: ClusterTopology) -> None:
        self.topology = topology
        servers = topology.servers
        if not servers:
            raise ValueError("topology has no servers")
        self.world_size = len(servers)
        self._flat = topology.to_network_model() if self.world_size >= 2 else None
        groups = topology.switch_groups()
        self.group_names: List[str] = list(groups)
        self.groups: List[List[str]] = [groups[name] for name in self.group_names]
        self.leaders: List[str] = [members[0] for members in self.groups]

        # Per-group flat models over the group's slowest member-to-switch link.
        self._group_models: List[NetworkModel] = []
        for name, members in zip(self.group_names, self.groups):
            links = [
                topology.graph.edges[server, name]["link"]
                for server in members
                if topology.graph.has_edge(server, name)
            ]
            intra = min(links, key=lambda link: link.bandwidth) if links else LinkSpec(float("inf"), 0.0)
            self._group_models.append(
                NetworkModel(world_size=len(members), bottleneck=intra, intra_link=intra)
            )

        # Leader-level model over the worst leader-to-leader effective path.
        if len(self.leaders) > 1:
            specs = [
                topology.path_spec(a, b)
                for i, a in enumerate(self.leaders)
                for b in self.leaders[i + 1 :]
            ]
            wan = min(specs, key=lambda spec: (spec.bandwidth, -spec.latency))
            self._inter = NetworkModel(world_size=len(self.leaders), bottleneck=wan, intra_link=wan)
        else:
            self._inter = None

    # ------------------------------------------------------------------ #
    @property
    def num_groups(self) -> int:
        return len(self.groups)

    @property
    def is_flat(self) -> bool:
        """True when hierarchy adds nothing (one switch group or one server)."""
        return self._inter is None

    def _max_over_groups(self, method: str, num_bytes: float) -> float:
        return max(getattr(model, method)(num_bytes) for model in self._group_models)

    # ------------------------------------------------------------------ #
    # CostModel interface
    # ------------------------------------------------------------------ #
    def p2p_time(self, num_bytes: float, cross_cluster: bool = True) -> float:
        if self.is_flat or not cross_cluster:
            model = self._flat or self._group_models[0]
            return model.p2p_time(num_bytes, cross_cluster=cross_cluster)
        return self._inter.bottleneck.transfer_time(num_bytes)

    def ring_all_reduce_time(self, num_bytes: float) -> float:
        if self.is_flat:
            return self._flat.ring_all_reduce_time(num_bytes) if self._flat else 0.0
        return (
            self._max_over_groups("reduce_time", num_bytes)
            + self._inter.ring_all_reduce_time(num_bytes)
            + self._max_over_groups("broadcast_time", num_bytes)
        )

    def all_gather_time(self, num_bytes: float) -> float:
        if self.is_flat:
            return self._flat.all_gather_time(num_bytes) if self._flat else 0.0
        max_group = max(len(members) for members in self.groups)
        return (
            self._max_over_groups("gather_time", num_bytes)
            + self._inter.all_gather_time(max_group * num_bytes)
            + self._max_over_groups("broadcast_time", self.world_size * num_bytes)
        )

    def reduce_scatter_time(self, num_bytes: float) -> float:
        if self.is_flat:
            return self._flat.reduce_scatter_time(num_bytes) if self._flat else 0.0
        return (
            self._max_over_groups("reduce_time", num_bytes)
            + self._inter.reduce_scatter_time(num_bytes)
        )

    def broadcast_time(self, num_bytes: float) -> float:
        if self.is_flat:
            return self._flat.broadcast_time(num_bytes) if self._flat else 0.0
        return (
            self._inter.broadcast_time(num_bytes)
            + self._max_over_groups("broadcast_time", num_bytes)
        )

    def reduce_time(self, num_bytes: float) -> float:
        if self.is_flat:
            return self._flat.reduce_time(num_bytes) if self._flat else 0.0
        return (
            self._max_over_groups("reduce_time", num_bytes)
            + self._inter.reduce_time(num_bytes)
        )

    def gather_time(self, num_bytes: float) -> float:
        if self.is_flat:
            return self._flat.gather_time(num_bytes) if self._flat else 0.0
        max_group = max(len(members) for members in self.groups)
        return (
            self._max_over_groups("gather_time", num_bytes)
            + self._inter.gather_time(max_group * num_bytes)
        )


def build_paper_topology(
    wan_bandwidth: float = 1 * GBPS,
    wan_latency: float = 1e-3,
    lan_bandwidth: float = 10 * GBPS,
    lan_latency: float = 20e-6,
    num_servers: int = 8,
    num_switches: int = 3,
) -> ClusterTopology:
    """Build the Fig. 4 evaluation topology.

    Eight servers are spread round-robin across three vSwitches; the switches
    are chained with throttled WAN links (the experiment's bottleneck), while
    server-to-switch links are fast LAN links.
    """
    if num_servers < 1 or num_switches < 1:
        raise ValueError("need at least one server and one switch")
    topo = ClusterTopology()
    switches = [f"vswitch{i}" for i in range(num_switches)]
    for switch in switches:
        topo.add_switch(switch)
    for i in range(num_switches - 1):
        topo.add_link(switches[i], switches[i + 1], LinkSpec(wan_bandwidth, wan_latency))

    lan = LinkSpec(lan_bandwidth, lan_latency)
    for index in range(num_servers):
        server = f"S{index + 1}"
        topo.add_server(server)
        topo.add_link(server, switches[index % num_switches], lan)
    return topo


def build_star_topology(
    num_servers: int,
    link: LinkSpec,
) -> ClusterTopology:
    """All servers attached to one switch with identical links (datacenter rack)."""
    topo = ClusterTopology()
    topo.add_switch("switch0")
    for index in range(num_servers):
        server = f"S{index + 1}"
        topo.add_server(server)
        topo.add_link(server, "switch0", link)
    return topo
