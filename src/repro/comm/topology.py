"""Cluster topology model (Fig. 4 of the paper).

The evaluation testbed attaches eight GPU servers (S1..S8) to virtual switches;
the two links between the switches are throttled to create the WAN bottleneck.
:class:`ClusterTopology` captures that structure as a networkx graph whose
edges carry :class:`repro.comm.network.LinkSpec` annotations, and computes the
bottleneck bandwidth along the path between any two servers — which is what the
:class:`repro.comm.network.NetworkModel` needs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.comm.network import LinkSpec, NetworkModel, GBPS, MBPS


class ClusterTopology:
    """A graph of servers and switches with per-edge link specifications."""

    def __init__(self) -> None:
        self.graph = nx.Graph()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_server(self, name: str) -> None:
        self.graph.add_node(name, kind="server")

    def add_switch(self, name: str) -> None:
        self.graph.add_node(name, kind="switch")

    def add_link(self, a: str, b: str, link: LinkSpec) -> None:
        if a not in self.graph or b not in self.graph:
            raise KeyError(f"both endpoints must exist before linking ({a!r}, {b!r})")
        self.graph.add_edge(a, b, link=link)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def servers(self) -> List[str]:
        return sorted(n for n, d in self.graph.nodes(data=True) if d.get("kind") == "server")

    @property
    def switches(self) -> List[str]:
        return sorted(n for n, d in self.graph.nodes(data=True) if d.get("kind") == "switch")

    def path(self, src: str, dst: str) -> List[str]:
        """Shortest path (fewest hops) between two nodes."""
        return nx.shortest_path(self.graph, src, dst)

    def path_links(self, src: str, dst: str) -> List[LinkSpec]:
        nodes = self.path(src, dst)
        return [self.graph.edges[a, b]["link"] for a, b in zip(nodes[:-1], nodes[1:])]

    def bottleneck_link(self, src: str, dst: str) -> LinkSpec:
        """The slowest link on the path between ``src`` and ``dst``."""
        links = self.path_links(src, dst)
        if not links:
            return LinkSpec(bandwidth=float("inf"), latency=0.0)
        return min(links, key=lambda link: link.bandwidth)

    def global_bottleneck(self) -> LinkSpec:
        """The slowest link on any server-to-server path (ring traversal bound)."""
        servers = self.servers
        worst: Optional[LinkSpec] = None
        for i, src in enumerate(servers):
            for dst in servers[i + 1 :]:
                candidate = self.bottleneck_link(src, dst)
                if worst is None or candidate.bandwidth < worst.bandwidth:
                    worst = candidate
        if worst is None:
            raise ValueError("topology has fewer than two servers")
        return worst

    def to_network_model(self) -> NetworkModel:
        """Collapse the topology into a :class:`NetworkModel` for collectives."""
        servers = self.servers
        bottleneck = self.global_bottleneck()
        intra_candidates = [
            self.graph.edges[a, b]["link"]
            for a, b in self.graph.edges
            if self.graph.nodes[a].get("kind") == "server" or self.graph.nodes[b].get("kind") == "server"
        ]
        intra = max(intra_candidates, key=lambda link: link.bandwidth) if intra_candidates else None
        return NetworkModel(world_size=len(servers), bottleneck=bottleneck, intra_link=intra)

    def describe(self) -> Dict[str, object]:
        """Summary dictionary used by examples and logging."""
        bottleneck = self.global_bottleneck()
        return {
            "servers": self.servers,
            "switches": self.switches,
            "num_links": self.graph.number_of_edges(),
            "bottleneck_bandwidth_mbps": bottleneck.bandwidth * 8 / 1e6,
            "bottleneck_latency_us": bottleneck.latency * 1e6,
        }


def build_paper_topology(
    wan_bandwidth: float = 1 * GBPS,
    wan_latency: float = 1e-3,
    lan_bandwidth: float = 10 * GBPS,
    lan_latency: float = 20e-6,
    num_servers: int = 8,
    num_switches: int = 3,
) -> ClusterTopology:
    """Build the Fig. 4 evaluation topology.

    Eight servers are spread round-robin across three vSwitches; the switches
    are chained with throttled WAN links (the experiment's bottleneck), while
    server-to-switch links are fast LAN links.
    """
    if num_servers < 1 or num_switches < 1:
        raise ValueError("need at least one server and one switch")
    topo = ClusterTopology()
    switches = [f"vswitch{i}" for i in range(num_switches)]
    for switch in switches:
        topo.add_switch(switch)
    for i in range(num_switches - 1):
        topo.add_link(switches[i], switches[i + 1], LinkSpec(wan_bandwidth, wan_latency))

    lan = LinkSpec(lan_bandwidth, lan_latency)
    for index in range(num_servers):
        server = f"S{index + 1}"
        topo.add_server(server)
        topo.add_link(server, switches[index % num_switches], lan)
    return topo


def build_star_topology(
    num_servers: int,
    link: LinkSpec,
) -> ClusterTopology:
    """All servers attached to one switch with identical links (datacenter rack)."""
    topo = ClusterTopology()
    topo.add_switch("switch0")
    for index in range(num_servers):
        server = f"S{index + 1}"
        topo.add_server(server)
        topo.add_link(server, "switch0", link)
    return topo
