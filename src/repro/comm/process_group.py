"""Simulated process group.

A :class:`ProcessGroup` binds a world size to a network model and keeps a log
of every collective issued through it.  The DDP simulator and the compressors
call collectives through the group so that the experiment driver can later ask
"how many bytes went over the wire?" and "how much simulated time did gradient
synchronisation take?" — the two quantities behind every figure in the paper.

Collectives accept either raw numpy arrays (charged per ``element_bytes``) or
:class:`~repro.compression.codec.payloads.WirePayload` objects, whose wire
size is derived from the encoded representation (``payload.nbytes``) — the
path every compressor uses, so the byte log is measured, not asserted.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.comm.collectives import (
    Buffers,
    CollectiveEvent,
    all_gather,
    all_reduce,
    broadcast,
    reduce_scatter,
)
from repro.comm.network import NetworkModel


class ProcessGroup:
    """A fixed set of ranks sharing a network model and an event log.

    ``events`` is a *per-step* buffer: the DDP wrapper drains the events each
    bucket's hook issued as part of every synchronisation, so the list stays
    bounded by one iteration's collectives no matter how long the run is.
    Whole-run accounting lives in the ``lifetime_*`` counters, which are
    updated on every append and survive draining.
    """

    def __init__(self, world_size: int, network: Optional[NetworkModel] = None) -> None:
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        self.world_size = world_size
        self.network = network
        self.events: List[CollectiveEvent] = []
        #: Whole-run aggregates (never reset by draining the per-step buffer).
        self.lifetime_events: int = 0
        self.lifetime_time_seconds: float = 0.0
        self.lifetime_bytes_per_worker: float = 0.0

    def _log(self, event: CollectiveEvent) -> None:
        self.events.append(event)
        self.lifetime_events += 1
        self.lifetime_time_seconds += event.time_seconds
        self.lifetime_bytes_per_worker += event.bytes_per_worker

    # ------------------------------------------------------------------ #
    # Collectives
    # ------------------------------------------------------------------ #
    def all_reduce(
        self,
        buffers: Buffers,
        average: bool = True,
        element_bytes: Optional[float] = None,
    ):
        """Reduce per-rank buffers/payloads; returns the reduced value.

        Raw arrays reduce to a dense array; payloads reduce to a payload of
        the same structure carrying the reduced values.
        """
        self._check_world(buffers)
        result, event = all_reduce(buffers, self.network, average=average, element_bytes=element_bytes)
        self._log(event)
        return result

    def all_gather(
        self,
        buffers: Buffers,
        element_bytes: Optional[float] = None,
    ) -> List:
        self._check_world(buffers)
        gathered, event = all_gather(buffers, self.network, element_bytes=element_bytes)
        self._log(event)
        return gathered

    def broadcast(self, buffer, element_bytes: Optional[float] = None) -> List:
        replicas, event = broadcast(buffer, self.world_size, self.network, element_bytes=element_bytes)
        self._log(event)
        return replicas

    def reduce_scatter(
        self,
        buffers: Sequence[np.ndarray],
        average: bool = False,
        element_bytes: Optional[float] = None,
    ) -> List[np.ndarray]:
        self._check_world(buffers)
        chunks, event = reduce_scatter(buffers, self.network, average=average, element_bytes=element_bytes)
        self._log(event)
        return chunks

    def _check_world(self, buffers: Sequence) -> None:
        if len(buffers) != self.world_size:
            raise ValueError(
                f"expected one buffer per rank ({self.world_size}), got {len(buffers)}"
            )

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #
    def reset_log(self) -> None:
        self.events.clear()

    @property
    def total_time(self) -> float:
        """Total modeled communication time across all logged collectives."""
        return float(sum(event.time_seconds for event in self.events))

    @property
    def total_bytes_per_worker(self) -> float:
        """Total bytes each worker put on the wire across all logged collectives."""
        return float(sum(event.bytes_per_worker for event in self.events))

    def pop_events(self) -> List[CollectiveEvent]:
        """Return and clear the event log (one DDP iteration's worth)."""
        events = list(self.events)
        self.events.clear()
        return events
