"""Simulated process group.

A :class:`ProcessGroup` binds a world size to a network model and keeps a log
of every collective issued through it.  The DDP simulator and the compressors
call collectives through the group so that the experiment driver can later ask
"how many bytes went over the wire?" and "how much simulated time did gradient
synchronisation take?" — the two quantities behind every figure in the paper.

Collectives accept either raw numpy arrays (charged per ``element_bytes``) or
:class:`~repro.compression.codec.payloads.WirePayload` objects, whose wire
size is derived from the encoded representation (``payload.nbytes``) — the
path every compressor uses, so the byte log is measured, not asserted.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.comm.collectives import (
    Buffers,
    CollectiveEvent,
    all_gather,
    all_reduce,
    broadcast,
    reduce_scatter,
)
from repro.comm.network import NetworkModel


class ProcessGroup:
    """A fixed set of ranks sharing a network model and an event log."""

    def __init__(self, world_size: int, network: Optional[NetworkModel] = None) -> None:
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        self.world_size = world_size
        self.network = network
        self.events: List[CollectiveEvent] = []

    # ------------------------------------------------------------------ #
    # Collectives
    # ------------------------------------------------------------------ #
    def all_reduce(
        self,
        buffers: Buffers,
        average: bool = True,
        element_bytes: Optional[float] = None,
    ):
        """Reduce per-rank buffers/payloads; returns the reduced value.

        Raw arrays reduce to a dense array; payloads reduce to a payload of
        the same structure carrying the reduced values.
        """
        self._check_world(buffers)
        result, event = all_reduce(buffers, self.network, average=average, element_bytes=element_bytes)
        self.events.append(event)
        return result

    def all_gather(
        self,
        buffers: Buffers,
        element_bytes: Optional[float] = None,
    ) -> List:
        self._check_world(buffers)
        gathered, event = all_gather(buffers, self.network, element_bytes=element_bytes)
        self.events.append(event)
        return gathered

    def broadcast(self, buffer, element_bytes: Optional[float] = None) -> List:
        replicas, event = broadcast(buffer, self.world_size, self.network, element_bytes=element_bytes)
        self.events.append(event)
        return replicas

    def reduce_scatter(
        self,
        buffers: Sequence[np.ndarray],
        average: bool = False,
        element_bytes: Optional[float] = None,
    ) -> List[np.ndarray]:
        self._check_world(buffers)
        chunks, event = reduce_scatter(buffers, self.network, average=average, element_bytes=element_bytes)
        self.events.append(event)
        return chunks

    def _check_world(self, buffers: Sequence) -> None:
        if len(buffers) != self.world_size:
            raise ValueError(
                f"expected one buffer per rank ({self.world_size}), got {len(buffers)}"
            )

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #
    def reset_log(self) -> None:
        self.events.clear()

    @property
    def total_time(self) -> float:
        """Total modeled communication time across all logged collectives."""
        return float(sum(event.time_seconds for event in self.events))

    @property
    def total_bytes_per_worker(self) -> float:
        """Total bytes each worker put on the wire across all logged collectives."""
        return float(sum(event.bytes_per_worker for event in self.events))

    def pop_events(self) -> List[CollectiveEvent]:
        """Return and clear the event log (one DDP iteration's worth)."""
        events = list(self.events)
        self.events.clear()
        return events
