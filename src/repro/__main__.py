"""``python -m repro`` — campaign CLI entry point (run / sweep / report)."""

import sys

from repro.campaign.cli import main

if __name__ == "__main__":
    sys.exit(main())
