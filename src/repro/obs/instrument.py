"""Instrumentation adapters: the observed backend wrapper and sim-span emitters.

Three pieces live here, all activated only while tracing is enabled:

* :class:`ObservedBackend` wraps any array backend and times the routed hot
  kernels (:data:`~repro.tensorlib.backend.HOT_KERNELS`): per-kernel call
  counters, elapsed seconds, operand bytes, a latency histogram, and — when
  bound to a tracer — one wall span per call.  Everything else forwards to
  the wrapped backend untouched, so numerics are bit-identical.
* :func:`install_backend_observer` plugs the wrapper into the single
  ``get_backend()`` seam (``repro.tensorlib.backend._OBSERVER``); kernel
  degradation and fallback diagnoses are emitted as instant events the first
  time each backend instance is observed.
* :func:`emit_simulated_iteration` converts one engine
  :class:`~repro.simulation.engine.IterationTrace` into simulated-clock
  spans: per-rank backward segments (one track per simulated rank),
  per-bucket reduce windows + ready markers on the link-channel track, and
  the iteration critical path on the schedule track.

:func:`backend_kernel_counters` is the ``python -m repro backends
--counters`` engine: it runs a tiny forward/backward smoke step per backend
under a private registry (no global tracer state touched) and returns the
per-kernel usage table.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import SIM_CHANNEL_TID, SIM_SCHEDULE_TID

__all__ = [
    "ObservedBackend",
    "install_backend_observer",
    "uninstall_backend_observer",
    "emit_simulated_iteration",
    "emit_ps_update",
    "backend_kernel_counters",
]


class ObservedBackend:
    """A backend proxy that meters the hot kernels and forwards the rest.

    The wrapper never re-implements a kernel — results come byte-for-byte
    from the wrapped backend — so observing cannot change numerics, only
    record where the wall time went.
    """

    def __init__(
        self,
        inner,
        tracer=None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self._inner = inner
        self._tracer = tracer
        self._registry = registry if registry is not None else MetricsRegistry()

    def __getattr__(self, name: str):
        return getattr(self._inner, name)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ObservedBackend({self._inner!r})"


def _kernel_method(kernel: str):
    def method(self: ObservedBackend, *args, **kwargs):
        start = time.perf_counter()
        result = getattr(self._inner, kernel)(*args, **kwargs)
        elapsed = time.perf_counter() - start
        nbytes = 0
        for arg in args:
            argbytes = getattr(arg, "nbytes", None)
            if argbytes is not None:
                nbytes += int(argbytes)
        prefix = f"backend.{self._inner.name}.{kernel}"
        registry = self._registry
        registry.inc(prefix + ".calls")
        registry.inc(prefix + ".seconds", elapsed)
        registry.inc(prefix + ".bytes", float(nbytes))
        registry.observe(f"backend.{kernel}.seconds", elapsed)
        if self._tracer is not None:
            self._tracer.emit_wall_span(
                f"kernel/{kernel}", "backend", start, elapsed,
                {"backend": self._inner.name, "bytes": nbytes},
            )
        return result

    method.__name__ = kernel
    return method


def _install_kernel_methods() -> None:
    from repro.tensorlib.backend import HOT_KERNELS  # noqa: PLC0415

    for kernel in HOT_KERNELS:
        setattr(ObservedBackend, kernel, _kernel_method(kernel))


_install_kernel_methods()


# --------------------------------------------------------------------------- #
# The get_backend() seam
# --------------------------------------------------------------------------- #
_WRAPPERS: Dict[int, ObservedBackend] = {}


def _emit_backend_diagnostics(tracer, backend) -> None:
    """Instant events for fallback and per-kernel JIT probe outcomes."""
    if getattr(backend, "fallback_from", None):
        tracer.instant(
            "backend/fallback", cat="backend",
            backend=backend.name, requested=backend.fallback_from,
            reason=getattr(backend, "fallback_reason", None) or "",
        )
    if backend.name == "numpy" and not getattr(backend, "fallback_from", None):
        return
    for kernel, note in sorted(backend.kernel_status().items()):
        degraded = note.startswith("numpy")
        tracer.instant(
            "backend/kernel_probe", cat="backend",
            backend=backend.name, kernel=kernel, note=note, degraded=degraded,
        )


def install_backend_observer(tracer) -> None:
    """Route ``get_backend()`` through an :class:`ObservedBackend` wrapper."""
    from repro.tensorlib import backend as backend_module  # noqa: PLC0415

    def observe(active):
        if isinstance(active, ObservedBackend):
            return active
        wrapper = _WRAPPERS.get(id(active))
        if wrapper is None or wrapper._inner is not active:
            wrapper = ObservedBackend(active, tracer=tracer, registry=tracer.metrics)
            _WRAPPERS[id(active)] = wrapper
            _emit_backend_diagnostics(tracer, active)
        return wrapper

    backend_module._OBSERVER = observe


def uninstall_backend_observer() -> None:
    from repro.tensorlib import backend as backend_module  # noqa: PLC0415

    backend_module._OBSERVER = None
    _WRAPPERS.clear()


# --------------------------------------------------------------------------- #
# Simulated-clock spans from one engine iteration
# --------------------------------------------------------------------------- #
def emit_simulated_iteration(
    tracer,
    base: float,
    trace,
    bucket_fractions: Sequence[float],
    iteration: int,
) -> None:
    """Emit sim-clock spans for one :class:`IterationTrace` starting at ``base``.

    ``base`` is the simulated time at which the iteration starts (the
    timeline's total before this iteration was added); ``bucket_fractions``
    are the cumulative completion fractions the engine scheduled with, so
    each rank's backward splits into per-bucket segments exactly where the
    engine declared the bucket's gradients ready.
    """
    for rank, total in enumerate(trace.per_rank_compute):
        previous = 0.0
        for index, fraction in enumerate(bucket_fractions):
            end = total * fraction
            tracer.sim_span(
                f"backward b{index}", "sim", base + previous, end - previous,
                rank, rank=rank, bucket=index, iteration=iteration,
            )
            previous = end
        if not bucket_fractions:
            tracer.sim_span(
                "backward", "sim", base, total, rank, rank=rank, iteration=iteration
            )
    for bucket in trace.buckets:
        tracer.instant(
            f"ready b{bucket.index}", cat="sim", clock="sim",
            ts=base + bucket.ready_time, tid=SIM_CHANNEL_TID,
            bucket=bucket.index, iteration=iteration,
        )
        tracer.sim_span(
            f"reduce b{bucket.index}", "sim",
            base + bucket.start_time, bucket.end_time - bucket.start_time,
            SIM_CHANNEL_TID,
            bucket=bucket.index, iteration=iteration,
            comm_seconds=bucket.comm_seconds, queue_delay=bucket.queue_delay,
        )
    tracer.sim_span(
        f"iteration {iteration}", "sim", base, trace.wall_time, SIM_SCHEDULE_TID,
        iteration=iteration, compute_span=trace.compute_span,
        comm_busy=trace.comm_busy, overlap_saved=trace.overlap_saved,
        straggler_slack=trace.straggler_slack,
    )


def emit_ps_update(
    tracer,
    *,
    rank: int,
    pull,
    compute_seconds: float,
    push,
    staleness: int,
    update_index: int,
    payload_bytes: float,
    pull_bytes: float,
) -> None:
    """Emit sim-clock spans for one async parameter-server update.

    One worker's update is three intervals on the simulated clock — the
    parameter pull ``(start, end)``, the local backward pass, and the
    gradient push ``(start, end)`` — drawn on the worker's own rank track,
    plus an apply instant (carrying the measured staleness) on the schedule
    track at the moment the push landed.  The staleness also feeds the
    ``regime.staleness`` metrics histogram, so ``trace metrics`` summarises
    the staleness distribution without replaying the event log.
    """
    pull_start, pull_end = pull
    push_start, push_end = push
    tracer.sim_span(
        "regime/pull", "regime", pull_start, pull_end - pull_start, rank,
        rank=rank, update=update_index, bytes=pull_bytes,
    )
    tracer.sim_span(
        "regime/compute", "regime", pull_end, compute_seconds, rank,
        rank=rank, update=update_index,
    )
    tracer.sim_span(
        "regime/push", "regime", push_start, push_end - push_start, rank,
        rank=rank, update=update_index, bytes=payload_bytes,
        queue_delay=push_start - (pull_end + compute_seconds),
    )
    tracer.instant(
        "regime/apply", cat="regime", clock="sim",
        ts=push_end, tid=SIM_SCHEDULE_TID,
        rank=rank, update=update_index, staleness=staleness,
    )
    tracer.metrics.observe("regime.staleness", float(staleness))


# --------------------------------------------------------------------------- #
# ``backends --counters`` smoke step
# --------------------------------------------------------------------------- #
def _smoke_step(batch: int, image_size: int, seed: int) -> None:
    """One tiny conv forward/backward touching every routed hot kernel."""
    import numpy as np  # noqa: PLC0415
    from repro.nn import SGD  # noqa: PLC0415
    from repro.nn.models import build_model  # noqa: PLC0415
    from repro.tensorlib import Tensor, functional as F  # noqa: PLC0415

    rng = np.random.default_rng(seed)
    images = rng.standard_normal((batch, 3, image_size, image_size))
    labels = rng.integers(0, 10, size=batch)
    model = build_model("resnet18", num_classes=10, seed=seed)
    optimizer = SGD(model.parameters(), lr=0.1)
    model.zero_grad()
    loss = F.cross_entropy(model(Tensor(images)), labels)
    loss.backward()
    optimizer.step()


def backend_kernel_counters(
    names: Optional[Sequence[str]] = None,
    batch: int = 2,
    image_size: int = 8,
    seed: int = 0,
) -> Dict[str, dict]:
    """Per-kernel usage of a tiny smoke step, per backend.

    Returns ``{requested_name: {"executed": actual_name, "kernels":
    {kernel: {"calls", "seconds", "bytes"}}}}``.  Each backend runs under a
    private registry and a scoped ``use_backend``, so the call leaves global
    tracer/backend state untouched.  A backend whose library is missing
    resolves to its numpy fallback — the counters then describe what
    actually executed (``executed`` names it).
    """
    from repro.tensorlib.backend import (  # noqa: PLC0415
        HOT_KERNELS,
        available_backends,
        shared_backend,
        use_backend,
    )

    results: Dict[str, dict] = {}
    for name in names if names is not None else available_backends():
        try:
            inner = shared_backend(name)
        except KeyError:
            continue
        registry = MetricsRegistry()
        wrapped = ObservedBackend(inner, tracer=None, registry=registry)
        with use_backend(wrapped):
            _smoke_step(batch, image_size, seed)
        prefix = f"backend.{inner.name}."
        kernels: Dict[str, Dict[str, float]] = {}
        for kernel in HOT_KERNELS:
            calls = registry.counters.get(f"{prefix}{kernel}.calls", 0.0)
            if not calls:
                continue
            kernels[kernel] = {
                "calls": calls,
                "seconds": registry.counters.get(f"{prefix}{kernel}.seconds", 0.0),
                "bytes": registry.counters.get(f"{prefix}{kernel}.bytes", 0.0),
            }
        results[name] = {"executed": inner.name, "kernels": kernels}
    return results
