"""``repro.obs`` — the process-wide dual-clock observability layer.

One tracer (:data:`TRACER`), one metrics registry (its ``.metrics``), one
event stream.  Disabled by default behind a single module-level guard
(``TRACER.enabled``); ``python -m repro run|sweep --trace PATH`` enables it
and ``python -m repro trace report|validate PATH`` consumes the output.

See :mod:`repro.obs.tracer` for the event model, :mod:`repro.obs.export`
for the JSONL / Chrome Trace Event / summary exporters, and
:mod:`repro.obs.instrument` for the backend wrapper and simulated-clock
span emitters.
"""

from repro.obs.metrics import BUCKET_BOUNDS, Histogram, MetricsRegistry
from repro.obs.tracer import (
    SIM_CHANNEL_TID,
    SIM_PID,
    SIM_SCHEDULE_TID,
    TRACER,
    Tracer,
)

__all__ = [
    "BUCKET_BOUNDS",
    "Histogram",
    "MetricsRegistry",
    "SIM_PID",
    "SIM_CHANNEL_TID",
    "SIM_SCHEDULE_TID",
    "TRACER",
    "Tracer",
    "enable",
    "disable",
    "is_enabled",
]


def enable(path=None, role="main") -> None:
    """Enable the process tracer (see :meth:`Tracer.enable`)."""
    TRACER.enable(path=path, role=role)


def disable() -> None:
    """Disable the process tracer, flushing metrics and closing the sink."""
    TRACER.disable()


def is_enabled() -> bool:
    return TRACER.enabled
