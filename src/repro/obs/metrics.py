"""Deterministic metrics registry: counters, gauges, log-bucket histograms.

Subsystems publish into one :class:`MetricsRegistry` (usually the tracer's,
see :mod:`repro.obs.tracer`).  Everything here is stdlib-only and
deterministic by construction:

* counters and gauges are plain floats keyed by name;
* histograms use **fixed** log-scale bucket boundaries (quarter-decades from
  1e-9 to 1e12, covering nanoseconds through gigabytes) computed once at
  import — two processes observing the same values always produce the same
  bucket counts, so histogram snapshots can be merged across workers and
  compared across runs without tolerance fudging.

Snapshots serialise to the same JSONL event stream as spans
(``{"kind": "metric", ...}`` lines); the exporter takes the *last* snapshot
per ``(pid, name)`` and aggregates across processes (counters sum, gauges
last-write-wins, histogram buckets add).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, Iterable, List, Optional

__all__ = ["BUCKET_BOUNDS", "Histogram", "MetricsRegistry"]

#: Fixed histogram bucket upper bounds: quarter-decade log scale, 1e-9..1e12
#: (one scheme serves both latencies in seconds and payloads in bytes).
#: Values above the last bound land in a final +inf overflow bucket.
BUCKET_BOUNDS: tuple = tuple(10.0 ** (k / 4.0) for k in range(-36, 49))


class Histogram:
    """A fixed-bucket log-scale histogram (see :data:`BUCKET_BOUNDS`)."""

    __slots__ = ("counts", "count", "sum")

    def __init__(self) -> None:
        self.counts: List[int] = [0] * (len(BUCKET_BOUNDS) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_right(BUCKET_BOUNDS, value)] += 1
        self.count += 1
        self.sum += value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile: the upper bound of the bucket holding rank q.

        Exact enough for a summary table (buckets are a quarter-decade wide);
        deterministic because the boundaries are.
        """
        if not self.count:
            return 0.0
        rank = max(1, int(q * self.count + 0.5))
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= rank:
                if index >= len(BUCKET_BOUNDS):
                    return float("inf")
                return BUCKET_BOUNDS[index]
        return BUCKET_BOUNDS[-1]

    def to_buckets(self) -> List[List[object]]:
        """Non-empty buckets as ``[upper_bound_or_"inf", count]`` pairs."""
        out: List[List[object]] = []
        for index, bucket_count in enumerate(self.counts):
            if bucket_count:
                bound = "inf" if index >= len(BUCKET_BOUNDS) else BUCKET_BOUNDS[index]
                out.append([bound, bucket_count])
        return out

    def merge_buckets(self, buckets: Iterable[Iterable[object]]) -> None:
        """Add a serialised bucket list (from :meth:`to_buckets`) into this one."""
        for bound, bucket_count in buckets:
            if bound == "inf":
                index = len(BUCKET_BOUNDS)
            else:
                # The boundaries are computed identically everywhere, so the
                # serialised bound is bit-equal to a member of BUCKET_BOUNDS.
                index = bisect_right(BUCKET_BOUNDS, float(bound)) - 1
                if index < 0 or BUCKET_BOUNDS[index] != float(bound):
                    index = bisect_right(BUCKET_BOUNDS, float(bound))
            self.counts[index] += int(bucket_count)


class MetricsRegistry:
    """Process-local metric store: counters, gauges and histograms by name."""

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------ #
    def inc(self, name: str, value: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + value

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        histogram.observe(value)

    # ------------------------------------------------------------------ #
    def snapshot_events(self, pid: Optional[int] = None) -> List[dict]:
        """Serialise the current state as metric event dicts (JSONL lines)."""
        events: List[dict] = []
        for name in sorted(self.counters):
            events.append(
                {"kind": "metric", "metric": "counter", "name": name,
                 "value": self.counters[name], "pid": pid}
            )
        for name in sorted(self.gauges):
            events.append(
                {"kind": "metric", "metric": "gauge", "name": name,
                 "value": self.gauges[name], "pid": pid}
            )
        for name in sorted(self.histograms):
            histogram = self.histograms[name]
            events.append(
                {"kind": "metric", "metric": "histogram", "name": name,
                 "count": histogram.count, "sum": histogram.sum,
                 "buckets": histogram.to_buckets(), "pid": pid}
            )
        return events
