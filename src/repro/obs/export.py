"""Trace exporters: JSONL loading, Chrome Trace Event JSON, text summaries.

The raw event stream (one dict per line, see :mod:`repro.obs.tracer`) is the
source of truth; everything here is a pure function over a list of those
dicts:

* :func:`load_events` reads a ``.jsonl`` stream (or the in-memory list);
* :func:`chrome_trace` converts to the Chrome Trace Event format — one
  Perfetto track per simulated rank (plus the link channel and the schedule)
  and one per real process — with both clocks mapped onto the shared
  microsecond axis (wall timestamps are rebased to the earliest wall event,
  sim timestamps start at 0);
* :func:`validate_chrome_trace` checks the structural invariants the tests
  and ``python -m repro trace validate`` gate on (required fields, proper
  span nesting, monotone per-track timestamps);
* :func:`summary` renders the text table ``python -m repro trace report``
  prints: span aggregates per clock plus the merged metrics.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import Histogram
from repro.obs.tracer import SIM_CHANNEL_TID, SIM_PID, SIM_SCHEDULE_TID

__all__ = [
    "load_events",
    "chrome_trace",
    "write_chrome",
    "validate_chrome_trace",
    "summary",
]

#: Microseconds per second (Chrome trace timestamps are in microseconds).
_US = 1e6
_VALID_PH = frozenset("XiIMBEC")


def load_events(path: str) -> List[dict]:
    """Read a raw JSONL event stream (one event dict per line)."""
    events: List[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def write_jsonl(events: Sequence[dict], path: str) -> None:
    """Write events as one JSON object per line (round-trips load_events)."""
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event, separators=(",", ":")) + "\n")


# --------------------------------------------------------------------------- #
# Chrome Trace Event conversion
# --------------------------------------------------------------------------- #
def _sim_thread_name(tid: int) -> str:
    if tid == SIM_CHANNEL_TID:
        return "link channel"
    if tid == SIM_SCHEDULE_TID:
        return "schedule"
    return f"rank {tid}"


def chrome_trace(events: Sequence[dict]) -> dict:
    """Convert a raw event stream to a Chrome Trace Event document.

    Wall timestamps are rebased so the earliest wall event sits at t=0;
    simulated timestamps already start at 0, so the two clock domains share
    one microsecond axis (they are *different clocks* — the alignment is for
    side-by-side reading, not causality).  Timestamps stay floats: rounding
    to integer microseconds could make an exactly-nested child span appear
    to overrun its parent.
    """
    wall_ts = [
        event["ts"]
        for event in events
        if event.get("kind") in ("span", "instant") and event.get("clock") == "wall"
    ]
    wall_base = min(wall_ts) if wall_ts else 0.0

    trace_events: List[dict] = []
    tracks: Dict[Tuple[int, int], bool] = {}
    process_names: Dict[int, str] = {}

    for event in events:
        kind = event.get("kind")
        if kind == "meta" and event.get("meta") == "process_name":
            process_names[event["pid"]] = event.get("name", f"pid {event['pid']}")
            continue
        if kind not in ("span", "instant"):
            continue
        is_wall = event.get("clock") == "wall"
        ts = (event["ts"] - wall_base) * _US if is_wall else event["ts"] * _US
        pid = int(event["pid"])
        tid = int(event.get("tid", 0))
        tracks[(pid, tid)] = True
        args = dict(event.get("args") or {})
        if is_wall and "sim_at" in event:
            args["sim_at"] = event["sim_at"]
        if not is_wall and "wall_at" in event:
            args["wall_at"] = event["wall_at"]
        args["clock"] = event.get("clock", "wall")
        entry = {
            "name": event.get("name", "?"),
            "cat": event.get("cat", "repro"),
            "pid": pid,
            "tid": tid,
            "ts": ts,
            "args": args,
        }
        if kind == "span":
            entry["ph"] = "X"
            entry["dur"] = max(0.0, event.get("dur", 0.0)) * _US
        else:
            entry["ph"] = "i"
            entry["s"] = "t"
        trace_events.append(entry)

    # Chrome sorts tracks and the validator checks monotonicity in file
    # order, so emit spans ordered within each track.
    trace_events.sort(key=lambda e: (e["pid"], e["tid"], e["ts"], -e.get("dur", 0.0)))

    metadata: List[dict] = []
    pids = sorted({pid for pid, _ in tracks})
    for pid in pids:
        if pid <= SIM_PID:
            name = process_names.get(pid, "simulated cluster")
        else:
            name = process_names.get(pid, f"repro process {pid}")
        metadata.append(
            {"ph": "M", "name": "process_name", "pid": pid, "tid": 0, "ts": 0.0,
             "args": {"name": name}}
        )
    for pid, tid in sorted(tracks):
        name = _sim_thread_name(tid) if pid <= SIM_PID else "main"
        metadata.append(
            {"ph": "M", "name": "thread_name", "pid": pid, "tid": tid, "ts": 0.0,
             "args": {"name": name}}
        )

    return {"traceEvents": metadata + trace_events, "displayTimeUnit": "ms"}


def write_chrome(events: Sequence[dict], path: str) -> dict:
    """Convert and write a Chrome trace JSON file; returns the document."""
    document = chrome_trace(events)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
    return document


# --------------------------------------------------------------------------- #
# Validation
# --------------------------------------------------------------------------- #
def validate_chrome_trace(document: dict) -> List[str]:
    """Structural validation of a Chrome Trace Event document.

    Returns a list of error strings (empty = valid).  Checks the fields the
    viewers require (``ph``/``ts``/``pid``/``tid``/``name``; ``dur`` on
    complete events), that per-track timestamps are monotone in file order,
    and that complete spans on one track nest properly (no partial overlap).
    """
    errors: List[str] = []
    if not isinstance(document, dict):
        return ["document is not a JSON object"]
    trace_events = document.get("traceEvents")
    if not isinstance(trace_events, list):
        return ["missing 'traceEvents' list"]

    last_ts: Dict[Tuple[int, int], float] = {}
    spans_by_track: Dict[Tuple[int, int], List[Tuple[float, float, str]]] = {}

    for position, event in enumerate(trace_events):
        where = f"traceEvents[{position}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in _VALID_PH:
            errors.append(f"{where}: bad or missing ph {ph!r}")
            continue
        for field in ("name", "pid", "tid"):
            if field not in event:
                errors.append(f"{where}: missing {field!r}")
        if not isinstance(event.get("pid"), int) or not isinstance(event.get("tid"), int):
            errors.append(f"{where}: pid/tid must be integers")
            continue
        if ph == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            errors.append(f"{where}: missing numeric ts")
            continue
        track = (event["pid"], event["tid"])
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: X event needs dur >= 0")
                continue
            if ts < last_ts.get(track, float("-inf")):
                errors.append(
                    f"{where}: timestamps not monotone on track pid={track[0]} tid={track[1]}"
                )
            last_ts[track] = ts
            spans_by_track.setdefault(track, []).append((ts, dur, event.get("name", "?")))

    # Proper nesting: on one track, a span starting inside another must also
    # end inside it (equal boundaries allowed — adjacent segments touch).
    for track, spans in spans_by_track.items():
        spans.sort(key=lambda span: (span[0], -span[1]))
        stack: List[Tuple[float, float, str]] = []
        for ts, dur, name in spans:
            while stack and ts >= stack[-1][0] + stack[-1][1] - 1e-9:
                stack.pop()
            if stack:
                parent_end = stack[-1][0] + stack[-1][1]
                if ts + dur > parent_end + 1e-6:
                    errors.append(
                        f"span {name!r} on track pid={track[0]} tid={track[1]} "
                        f"overlaps {stack[-1][2]!r} without nesting"
                    )
            stack.append((ts, dur, name))
    return errors


# --------------------------------------------------------------------------- #
# Text summary
# --------------------------------------------------------------------------- #
def _table(header: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    widths = [len(str(column)) for column in header]
    for row in rows:
        widths = [max(width, len(str(cell))) for width, cell in zip(widths, row)]
    lines = [
        "  ".join(str(cell).ljust(width) for cell, width in zip(header, widths)),
        "  ".join("-" * width for width in widths),
    ]
    lines.extend(
        "  ".join(str(cell).ljust(width) for cell, width in zip(row, widths)) for row in rows
    )
    return "\n".join(lines)


def merge_metrics(events: Sequence[dict]) -> dict:
    """Aggregate metric snapshot events across processes.

    The last snapshot per ``(pid, name)`` wins (workers flush cumulative
    snapshots repeatedly), then counters sum across processes, gauges keep
    the last value seen, and histogram buckets add.
    """
    last: Dict[Tuple[Optional[int], str, str], dict] = {}
    for event in events:
        if event.get("kind") == "metric":
            last[(event.get("pid"), event["metric"], event["name"])] = event

    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, Histogram] = {}
    for (_, metric, name), event in sorted(last.items(), key=lambda item: str(item[0])):
        if metric == "counter":
            counters[name] = counters.get(name, 0.0) + event["value"]
        elif metric == "gauge":
            gauges[name] = event["value"]
        elif metric == "histogram":
            histogram = histograms.setdefault(name, Histogram())
            histogram.merge_buckets(event.get("buckets", []))
            histogram.sum += event.get("sum", 0.0)
            histogram.count = sum(histogram.counts)
    return {"counters": counters, "gauges": gauges, "histograms": histograms}


def summary(events: Sequence[dict]) -> str:
    """Human-readable roll-up: span aggregates per clock + merged metrics."""
    wall: Dict[str, List[float]] = {}
    sim: Dict[str, List[float]] = {}
    for event in events:
        if event.get("kind") != "span":
            continue
        target = wall if event.get("clock") == "wall" else sim
        target.setdefault(event.get("name", "?"), []).append(event.get("dur", 0.0))

    sections: List[str] = []

    def span_section(title: str, spans: Dict[str, List[float]], unit_scale: float, unit: str):
        if not spans:
            return
        rows = []
        for name in sorted(spans, key=lambda n: -sum(spans[n])):
            durations = spans[name]
            total = sum(durations)
            rows.append(
                (name, len(durations), f"{total * unit_scale:.3f}",
                 f"{total / len(durations) * unit_scale:.3f}",
                 f"{max(durations) * unit_scale:.3f}")
            )
        sections.append(
            f"== {title} ==\n"
            + _table(("span", "count", f"total {unit}", f"mean {unit}", f"max {unit}"), rows)
        )

    span_section("spans (wall clock)", wall, 1e3, "ms")
    span_section("spans (simulated clock)", sim, 1.0, "s")

    metrics = merge_metrics(events)
    if metrics["counters"]:
        rows = [(name, f"{value:g}") for name, value in sorted(metrics["counters"].items())]
        sections.append("== counters ==\n" + _table(("counter", "value"), rows))
    if metrics["gauges"]:
        rows = [(name, f"{value:g}") for name, value in sorted(metrics["gauges"].items())]
        sections.append("== gauges ==\n" + _table(("gauge", "value"), rows))
    if metrics["histograms"]:
        rows = []
        for name, histogram in sorted(metrics["histograms"].items()):
            rows.append(
                (name, histogram.count, f"{histogram.mean:.3g}",
                 f"{histogram.quantile(0.5):.3g}", f"{histogram.quantile(0.99):.3g}")
            )
        sections.append(
            "== histograms ==\n"
            + _table(("histogram", "count", "mean", "~p50", "~p99"), rows)
        )

    instants = sum(1 for event in events if event.get("kind") == "instant")
    spans_total = sum(len(v) for v in wall.values()) + sum(len(v) for v in sim.values())
    sections.append(f"{spans_total} spans, {instants} instants, {len(events)} raw events")
    return "\n\n".join(sections)
