"""Dual-clock span tracer: wall time and simulated time in one event stream.

The process-wide singleton :data:`TRACER` is the observability bus every
subsystem reports into.  It is **disabled by default** and every hot call
site guards on the single module-level flag (``TRACER.enabled`` — one
attribute read), so the disabled path adds nothing measurable to the
training step (``python -m repro perf --check`` gates this).

Two clocks, one trace:

* **wall** spans measure real host work (kernel calls, encode/decode CPU
  time, campaign cells).  They are stamped with an absolute epoch-based
  timestamp — workers in a multiprocessing pool share the wall clock, so
  their tracks align in the viewer — and additionally carry ``sim_at``, the
  simulated-clock reading when the span started.
* **sim** spans live on the modeled cluster's clock (the discrete-event
  engine's schedule: per-rank backward segments, per-bucket reduce windows,
  iteration critical paths).  They carry ``wall_at``, the wall-clock reading
  when they were emitted.

Events stream to an append-only JSONL sink when a path is configured (each
line is one ``json.dumps`` + flush, so concurrent pool workers appending to
the same file interleave whole lines), or accumulate in memory otherwise
(tests, ``backends --counters``).  :mod:`repro.obs.export` turns either into
Chrome Trace Event JSON and text summaries.
"""

from __future__ import annotations

import json
import os
import time
from typing import IO, List, Optional

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "SIM_PID",
    "SIM_CHANNEL_TID",
    "SIM_SCHEDULE_TID",
    "NULL_SPAN",
    "Tracer",
    "TRACER",
]

#: Default synthetic "process" holding the simulated cluster's tracks.
#: Each traced experiment allocates its own sim pid (:meth:`Tracer.new_sim_process`)
#: so two cells of one sweep never overlay their schedules on one track.
SIM_PID = 0
#: Track (tid) of the shared link channel inside the simulated process.
SIM_CHANNEL_TID = 1_000_000
#: Track (tid) of the iteration schedule (critical path) inside it.
SIM_SCHEDULE_TID = 1_000_001


class _NullSpan:
    """Reusable no-op context manager returned when tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()

#: Public no-op span: hot call sites that pre-compute span arguments can
#: branch on ``TRACER.enabled`` themselves and fall back to this shared
#: context manager, paying nothing for argument construction when disabled.
NULL_SPAN = _NULL_SPAN


class _Span:
    """Context manager measuring one wall-clock span on the current process."""

    __slots__ = ("_tracer", "_name", "_cat", "_args", "_start")

    def __init__(self, tracer: "Tracer", name: str, cat: str, args: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._args = args

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self._tracer.emit_wall_span(
            self._name, self._cat, self._start,
            time.perf_counter() - self._start, self._args,
        )
        return False


class Tracer:
    """The dual-clock tracer + metrics registry (one per process).

    Use the module singleton :data:`TRACER`; constructing private instances
    is only useful in tests.
    """

    def __init__(self) -> None:
        self.enabled = False
        self.metrics = MetricsRegistry()
        #: Current simulated-clock reading; advanced by the training loop so
        #: wall spans can be stamped with both clocks.
        self.sim_now = 0.0
        self.sink_path: Optional[str] = None
        self.chrome_path: Optional[str] = None
        self._sink: Optional[IO[str]] = None
        self._events: List[dict] = []
        self._pid = 0
        self._epoch = 0.0
        self._perf0 = 0.0
        self._sim_pid = SIM_PID
        self._sim_serial = 0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def enable(self, path: Optional[str] = None, role: str = "main") -> None:
        """Start tracing.

        ``path`` of ``None`` records in memory (:meth:`events`).  A path
        ending in ``.jsonl`` streams raw events there; any other path is
        treated as the Chrome-trace destination, with raw events streamed to
        a ``<path>.jsonl`` sidecar (the exporter converts at :meth:`finish`).
        """
        if self.enabled:
            self.disable()
        self.metrics = MetricsRegistry()
        self._events = []
        self.sim_now = 0.0
        self._pid = os.getpid()
        self._sim_pid = SIM_PID
        self._sim_serial = 0
        self._perf0 = time.perf_counter()
        self._epoch = time.time()
        self.sink_path = self.chrome_path = None
        self._sink = None
        if path is not None:
            path = os.fspath(path)
            if path.endswith(".jsonl"):
                self.sink_path = path
            else:
                self.sink_path = path + ".jsonl"
                self.chrome_path = path
            directory = os.path.dirname(self.sink_path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._sink = open(self.sink_path, "a", encoding="utf-8")
        self.enabled = True
        self._emit(
            {"kind": "meta", "meta": "process_name", "pid": self._pid,
             "name": f"repro {role} {self._pid}"}
        )
        # Route backend kernel calls through the observing wrapper.
        from repro.obs.instrument import install_backend_observer  # noqa: PLC0415

        install_backend_observer(self)

    def disable(self) -> None:
        """Stop tracing: flush metrics, close the sink, uninstall hooks."""
        if not self.enabled:
            return
        self.flush_metrics()
        from repro.obs.instrument import uninstall_backend_observer  # noqa: PLC0415

        uninstall_backend_observer()
        self.enabled = False
        if self._sink is not None:
            self._sink.close()
            self._sink = None

    def finish(self) -> dict:
        """Stop tracing and return ``{"jsonl": ..., "chrome": ...}`` paths."""
        paths = {"jsonl": self.sink_path, "chrome": self.chrome_path}
        self.disable()
        return paths

    # ------------------------------------------------------------------ #
    # Emission
    # ------------------------------------------------------------------ #
    def _emit(self, event: dict) -> None:
        if self._sink is not None:
            self._sink.write(json.dumps(event, separators=(",", ":")) + "\n")
            self._sink.flush()
        else:
            self._events.append(event)

    def events(self) -> List[dict]:
        """In-memory events (empty when streaming to a JSONL sink)."""
        return list(self._events)

    def wall_now(self) -> float:
        """Absolute wall-clock seconds (epoch-based, perf_counter-resolved)."""
        return self._epoch + (time.perf_counter() - self._perf0)

    def span(self, name: str, cat: str = "repro", **args):
        """Context manager timing a wall-clock span; no-op when disabled."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, cat, args)

    def emit_wall_span(
        self, name: str, cat: str, start_perf: float, duration: float, args: dict
    ) -> None:
        """Record an already-measured wall span (``start_perf`` from perf_counter)."""
        if not self.enabled:
            return
        self._emit(
            {"kind": "span", "name": name, "cat": cat, "clock": "wall",
             "ts": self._epoch + (start_perf - self._perf0), "dur": duration,
             "pid": self._pid, "tid": 0, "sim_at": self.sim_now,
             "args": args or {}}
        )

    def new_sim_process(self, label: str) -> int:
        """Open a fresh simulated-cluster track group (one per experiment).

        Returns the synthetic pid subsequent :meth:`sim_span` calls use.
        Sim pids are negative and derived from the real pid plus a serial,
        so concurrent pool workers appending to one JSONL sink never collide
        — and two sequential experiments never overlay their schedules on
        the same tracks.
        """
        if not self.enabled:
            return SIM_PID
        self._sim_serial += 1
        self._sim_pid = -(self._pid * 10_000 + self._sim_serial)
        self.sim_now = 0.0
        self._emit(
            {"kind": "meta", "meta": "process_name", "pid": self._sim_pid,
             "name": f"sim: {label}"}
        )
        return self._sim_pid

    def sim_span(
        self, name: str, cat: str, ts: float, dur: float, tid: int, **args
    ) -> None:
        """Record a span on the simulated clock (``ts``/``dur`` in sim seconds)."""
        if not self.enabled:
            return
        self._emit(
            {"kind": "span", "name": name, "cat": cat, "clock": "sim",
             "ts": ts, "dur": max(0.0, dur), "pid": self._sim_pid, "tid": tid,
             "wall_at": self.wall_now(), "args": args or {}}
        )

    def instant(
        self,
        name: str,
        cat: str = "repro",
        clock: str = "wall",
        ts: Optional[float] = None,
        pid: Optional[int] = None,
        tid: int = 0,
        **args,
    ) -> None:
        """Record a zero-duration marker on either clock."""
        if not self.enabled:
            return
        if clock == "wall":
            if ts is None:
                ts = self.wall_now()
            if pid is None:
                pid = self._pid
        else:
            if ts is None:
                ts = self.sim_now
            if pid is None:
                pid = self._sim_pid
        self._emit(
            {"kind": "instant", "name": name, "cat": cat, "clock": clock,
             "ts": ts, "pid": pid, "tid": tid, "args": args or {}}
        )

    def flush_metrics(self) -> None:
        """Write a cumulative metrics snapshot into the event stream.

        Safe to call repeatedly (pool workers flush after every cell); the
        exporter keeps only the last snapshot per ``(pid, name)``.
        """
        if not self.enabled:
            return
        for event in self.metrics.snapshot_events(self._pid):
            self._emit(event)


#: The process-wide tracer every instrumented call site guards on.
TRACER = Tracer()
