"""Golden-trace regression fixtures for the paper's methods.

A *golden trace* freezes the externally observable behaviour of one tiny
training run — the per-epoch accuracy/time trace, the bytes each worker put on
the wire, the simulated time and the weight sparsity — as a committed JSON
fixture.  The tier-1 test ``tests/test_golden_traces.py`` re-runs every frozen
cell and compares **bit-identically** (floats survive the JSON round trip
exactly: the shortest-repr encoding parses back to the same double), so any
drift in the numerics of the training stack — codec payloads, collectives,
the event engine, the optimiser — fails loudly with a readable field-by-field
diff instead of silently shifting the paper's figures.

The frozen grid is deliberately tiny (a 4-rank MLP run of a few iterations per
method, plus one 2-rank mini-ResNet cell) so the whole golden suite re-trains
in seconds; it covers the five methods of the paper's evaluation plus one
composed codec spec — together exercising every wire payload and both
aggregation paths — and one convolutional cell that pins the conv/pool/norm
kernel stack accelerated backends route through.

Regenerate fixtures after an *intentional* numerical change with::

    PYTHONPATH=src python -m repro golden --update

and commit the rewritten ``tests/golden/*.json`` together with the change that
explains them.
"""

from __future__ import annotations

import json
import math
import os
import re
from typing import Dict, List, Optional, Sequence, Tuple

from repro.simulation.cluster import ClusterSpec
from repro.simulation.experiment import (
    PAPER_METHODS,
    ExperimentConfig,
    ExperimentResult,
    MethodSpec,
    run_experiment,
)

#: Default fixture directory, resolved relative to the repository root (the
#: parent of ``src``); overridable everywhere for tests and external use.
DEFAULT_GOLDEN_DIR = os.path.normpath(
    os.path.join(os.path.dirname(__file__), "..", "..", "tests", "golden")
)

#: The tiny frozen workload.  Small enough that re-running every golden cell
#: costs well under a second, but real training end to end: pre-training,
#: pruning (for PacTrain), multi-bucket DDP synchronisation and per-epoch
#: evaluation all execute exactly as in the full-size benchmarks.
GOLDEN_CONFIG = ExperimentConfig(
    model="mlp",
    dataset="cifar10",
    cluster=ClusterSpec(world_size=4, bandwidth="100Mbps"),
    epochs=3,
    batch_size=8,
    dataset_samples=48,
    image_size=8,
    pretrain_iterations=2,
    max_iterations_per_epoch=3,
    seed=0,
)

#: A convolutional golden cell: a 2-rank mini-ResNet run exercising the whole
#: conv/pool/batch-norm kernel stack — the im2col gather, the overlapping
#: col2im scatter-add (stride-2 3x3 convs), pooling window reductions and
#: batch-norm statistics — none of which the MLP cells touch.  This is the
#: cell that pins accelerated backends: it must pass bit-identically under
#: ``REPRO_BACKEND=numba``.
GOLDEN_CONV_CONFIG = ExperimentConfig(
    model="resnet18",
    dataset="cifar10",
    cluster=ClusterSpec(world_size=2, bandwidth="100Mbps"),
    epochs=2,
    batch_size=4,
    dataset_samples=16,
    image_size=8,
    pretrain_iterations=1,
    max_iterations_per_epoch=2,
    seed=0,
)

#: The frozen methods: the paper's five plus one composed codec spec (which
#: exercises sparse + ternary payload composition through the gather path),
#: the convolutional cell above, and the two non-synchronous training regimes
#: (compressed-delta local SGD and the stale-gradient parameter server) so
#: regime numerics are pinned exactly like synchronous ones.
GOLDEN_METHODS: Dict[str, MethodSpec] = {
    **PAPER_METHODS,
    "topk0.01+terngrad": MethodSpec(
        name="topk0.01+terngrad", compressor="topk0.01+terngrad"
    ),
    "conv-all-reduce": MethodSpec(name="conv-all-reduce", compressor="allreduce"),
    "localsgd-h4": MethodSpec(
        name="localsgd-h4", compressor="topk-0.01", sync_schedule="localsgd:4:delta"
    ),
    "async-ps": MethodSpec(
        name="async-ps", compressor="topk-0.01", sync_schedule="ps:2"
    ),
}

#: Per-method config overrides; anything absent runs under GOLDEN_CONFIG.
GOLDEN_CONFIGS: Dict[str, ExperimentConfig] = {
    "conv-all-reduce": GOLDEN_CONV_CONFIG,
}


def golden_config_for(method_name: str) -> ExperimentConfig:
    """The frozen config one golden method runs under."""
    return GOLDEN_CONFIGS.get(method_name, GOLDEN_CONFIG)

#: Scalar result fields frozen in every fixture, in diff-report order.
TRACE_FIELDS: Tuple[str, ...] = (
    "final_accuracy",
    "best_accuracy",
    "simulated_time",
    "compute_time",
    "comm_time",
    "comm_bytes_per_worker",
    "weight_sparsity",
    "compression_ratio",
    "iterations_run",
    "epochs_run",
)


def fixture_name(method_name: str) -> str:
    """Filesystem-safe fixture file name for one method."""
    return re.sub(r"[^A-Za-z0-9_.-]+", "-", method_name) + ".json"


def fixture_path(method_name: str, directory: Optional[str] = None) -> str:
    return os.path.join(directory or DEFAULT_GOLDEN_DIR, fixture_name(method_name))


def compute_trace(
    method: MethodSpec, config: Optional[ExperimentConfig] = None
) -> Dict:
    """Run one golden cell and distil the result into a frozen trace dict."""
    config = config or golden_config_for(method.name)
    result = run_experiment(config, method)
    return trace_from_result(result, method, config)


def trace_from_result(
    result: ExperimentResult, method: MethodSpec, config: ExperimentConfig
) -> Dict:
    """The JSON-ready trace dict frozen for one (config, method) cell.

    ``accuracy_trace`` keeps the per-epoch ``(simulated_time, accuracy)``
    pairs — the exact points the paper's TTA figures are drawn from — and
    ``loss_trace`` the per-epoch mean training losses.
    """
    trace = {field: getattr(result, field) for field in TRACE_FIELDS}
    trace["accuracy_trace"] = [list(point) for point in result.accuracy_trace]
    trace["loss_trace"] = list(result.loss_trace)
    return {
        "golden_schema": 1,
        "method": method.name,
        "method_spec": method.to_dict(),
        "config": config.to_dict(),
        "trace": trace,
    }


def _float_equal(expected, actual, rtol: float) -> bool:
    if isinstance(expected, float) or isinstance(actual, float):
        expected_f, actual_f = float(expected), float(actual)
        if math.isnan(expected_f) and math.isnan(actual_f):
            return True
        if rtol == 0.0:
            return expected_f == actual_f
        return math.isclose(expected_f, actual_f, rel_tol=rtol, abs_tol=rtol)
    return expected == actual


def _compare_value(path: str, expected, actual, rtol: float, diffs: List[str]) -> None:
    if isinstance(expected, list) and isinstance(actual, list):
        if len(expected) != len(actual):
            diffs.append(f"{path}: length {len(expected)} -> {len(actual)}")
            return
        for index, (exp, act) in enumerate(zip(expected, actual)):
            _compare_value(f"{path}[{index}]", exp, act, rtol, diffs)
        return
    if isinstance(expected, dict) and isinstance(actual, dict):
        for key in sorted(set(expected) | set(actual)):
            if key not in expected:
                diffs.append(f"{path}.{key}: unexpected new field {actual[key]!r}")
            elif key not in actual:
                diffs.append(f"{path}.{key}: missing (expected {expected[key]!r})")
            else:
                _compare_value(f"{path}.{key}", expected[key], actual[key], rtol, diffs)
        return
    if not _float_equal(expected, actual, rtol):
        diffs.append(f"{path}: expected {expected!r}, got {actual!r}")


def _canonical_spec(data, cls) -> Dict:
    """Round-trip a frozen spec dict through its dataclass.

    Fixtures are written once and read forever: when a later PR adds a new
    ``MethodSpec``/``ExperimentConfig`` field *with a default*, old fixtures
    simply lack the key, and the defaulted round trip makes them comparable
    without regeneration.  Unknown keys (a genuinely incompatible fixture)
    still fail loudly inside ``from_dict``.
    """
    if not isinstance(data, dict):
        return data
    return cls.from_dict(data).to_dict()


def compare_traces(expected: Dict, actual: Dict, rtol: float = 0.0) -> List[str]:
    """Field-by-field diff of two trace dicts; empty when identical.

    ``rtol=0.0`` (the default, and what the regression test uses) demands
    bit-identical floats.  A non-zero tolerance is available for
    cross-platform comparisons where BLAS rounding may differ in the last ulp.
    """
    diffs: List[str] = []
    _compare_value("trace", expected.get("trace"), actual.get("trace"), rtol, diffs)
    # The frozen spec must match too: a fixture regenerated under a different
    # tiny config would otherwise "pass" while freezing a different workload.
    _compare_value(
        "method_spec",
        _canonical_spec(expected.get("method_spec"), MethodSpec),
        _canonical_spec(actual.get("method_spec"), MethodSpec),
        0.0,
        diffs,
    )
    _compare_value(
        "config",
        _canonical_spec(expected.get("config"), ExperimentConfig),
        _canonical_spec(actual.get("config"), ExperimentConfig),
        0.0,
        diffs,
    )
    return diffs


def format_diff(method_name: str, diffs: Sequence[str]) -> str:
    """Readable multi-line report of one method's drift."""
    lines = [
        f"golden trace drift for method {method_name!r} ({len(diffs)} difference"
        f"{'s' if len(diffs) != 1 else ''}):"
    ]
    lines.extend(f"  {diff}" for diff in diffs)
    lines.append(
        "  (if this change is intentional, regenerate fixtures with "
        "`python -m repro golden --update` and commit them)"
    )
    return "\n".join(lines)


def load_fixture(method_name: str, directory: Optional[str] = None) -> Dict:
    path = fixture_path(method_name, directory)
    if not os.path.exists(path):
        raise FileNotFoundError(
            f"missing golden fixture {path!r}; generate it with "
            "`python -m repro golden --update`"
        )
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def write_fixture(trace: Dict, directory: Optional[str] = None) -> str:
    directory = directory or DEFAULT_GOLDEN_DIR
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, fixture_name(trace["method"]))
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def regenerate(
    directory: Optional[str] = None,
    progress=None,
    only: Optional[List[str]] = None,
) -> List[str]:
    """Recompute and rewrite golden fixtures; returns the written paths.

    ``only`` restricts the rewrite to the named methods — the tool for adding
    a *new* golden cell without touching the other committed fixtures (whose
    serialised bytes would otherwise churn when a spec gains a defaulted
    field; ``_canonical_spec`` keeps old fixtures comparable unregenerated).
    """
    if only is not None:
        unknown = sorted(set(only) - set(GOLDEN_METHODS))
        if unknown:
            raise KeyError(f"unknown golden methods: {', '.join(unknown)}")
    paths = []
    for name, method in GOLDEN_METHODS.items():
        if only is not None and name not in only:
            continue
        trace = compute_trace(method)
        paths.append(write_fixture(trace, directory))
        if progress is not None:
            progress(name, paths[-1])
    return paths


def verify(
    directory: Optional[str] = None,
    rtol: float = 0.0,
    only: Optional[List[str]] = None,
) -> Dict[str, List[str]]:
    """Re-run every golden cell (or the ``only`` subset) against its fixture.

    Returns ``{method_name: [diff lines]}`` for the methods that drifted
    (missing fixtures report as a single diff line); empty dict means every
    trace is still bit-identical.
    """
    if only is not None:
        unknown = sorted(set(only) - set(GOLDEN_METHODS))
        if unknown:
            raise KeyError(f"unknown golden methods: {', '.join(unknown)}")
    drifted: Dict[str, List[str]] = {}
    for name, method in GOLDEN_METHODS.items():
        if only is not None and name not in only:
            continue
        try:
            expected = load_fixture(name, directory)
        except FileNotFoundError as error:
            drifted[name] = [str(error)]
            continue
        diffs = compare_traces(expected, compute_trace(method), rtol=rtol)
        if diffs:
            drifted[name] = diffs
    return drifted
