"""Pruning masks.

A :class:`PruningMask` maps parameter names to boolean arrays (``True`` =
keep).  Masks are created by the pruning criteria in
:mod:`repro.pruning.magnitude` / :mod:`repro.pruning.grasp`, applied to model
weights (zeroing pruned entries) and re-applied to gradients by GSE so the
pruned coordinates stay at exactly zero throughout training — the property the
PacTrain compressor exploits.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.nn.module import Module


class PruningMask:
    """Named boolean keep-masks over a model's parameters."""

    def __init__(self, masks: Optional[Dict[str, np.ndarray]] = None) -> None:
        self.masks: Dict[str, np.ndarray] = {}
        self._version = 0
        if masks:
            for name, mask in masks.items():
                self.masks[name] = np.asarray(mask, dtype=bool)

    @property
    def version(self) -> int:
        """Monotone counter bumped whenever a layer mask is (re)assigned.

        Consumers that derive expensive quantities from the mask (e.g. the
        cached weight-sparsity scan in the experiment driver) use this to
        invalidate only when the mask actually changed.
        """
        return self._version

    # ------------------------------------------------------------------ #
    # Mapping interface
    # ------------------------------------------------------------------ #
    def __contains__(self, name: str) -> bool:
        return name in self.masks

    def __getitem__(self, name: str) -> np.ndarray:
        return self.masks[name]

    def __setitem__(self, name: str, mask: np.ndarray) -> None:
        self.masks[name] = np.asarray(mask, dtype=bool)
        self._version += 1

    def __len__(self) -> int:
        return len(self.masks)

    def items(self) -> Iterator[Tuple[str, np.ndarray]]:
        return iter(self.masks.items())

    def get(self, name: str, default=None):
        return self.masks.get(name, default)

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #
    @property
    def total_elements(self) -> int:
        return int(sum(mask.size for mask in self.masks.values()))

    @property
    def kept_elements(self) -> int:
        return int(sum(mask.sum() for mask in self.masks.values()))

    @property
    def sparsity(self) -> float:
        """Fraction of parameters pruned (0 = dense, 1 = everything pruned)."""
        total = self.total_elements
        if total == 0:
            return 0.0
        return 1.0 - self.kept_elements / total

    @property
    def density(self) -> float:
        """Fraction of parameters kept."""
        return 1.0 - self.sparsity

    def per_layer_sparsity(self) -> Dict[str, float]:
        return {
            name: 1.0 - float(mask.sum()) / mask.size if mask.size else 0.0
            for name, mask in self.masks.items()
        }

    # ------------------------------------------------------------------ #
    # Application
    # ------------------------------------------------------------------ #
    def apply_to_weights(self, model: Module) -> None:
        """Zero out pruned weight entries in place."""
        for name, param in model.named_parameters():
            mask = self.masks.get(name)
            if mask is None:
                continue
            if mask.shape != param.data.shape:
                raise ValueError(
                    f"mask shape {mask.shape} does not match parameter {name!r} shape {param.data.shape}"
                )
            param.data = param.data * mask

    def apply_to_gradients(self, model: Module) -> None:
        """Zero out gradients of pruned entries in place (one GSE application)."""
        for name, param in model.named_parameters():
            mask = self.masks.get(name)
            if mask is None or param.grad is None:
                continue
            param.grad = param.grad * mask

    def check_weights_consistent(self, model: Module, atol: float = 0.0) -> bool:
        """Return True if every pruned weight is (numerically) zero."""
        for name, param in model.named_parameters():
            mask = self.masks.get(name)
            if mask is None:
                continue
            pruned_values = param.data[~mask]
            if pruned_values.size and np.max(np.abs(pruned_values)) > atol:
                return False
        return True

    # ------------------------------------------------------------------ #
    # Construction / serialisation
    # ------------------------------------------------------------------ #
    @classmethod
    def dense(cls, model: Module) -> "PruningMask":
        """All-keep mask matching a model's parameters."""
        return cls({name: np.ones(param.shape, dtype=bool) for name, param in model.named_parameters()})

    @classmethod
    def from_weights(cls, model: Module, atol: float = 0.0) -> "PruningMask":
        """Infer the mask from which weights are currently (near) zero."""
        return cls(
            {
                name: np.abs(param.data) > atol
                for name, param in model.named_parameters()
            }
        )

    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: mask.copy() for name, mask in self.masks.items()}

    @classmethod
    def from_state_dict(cls, state: Dict[str, np.ndarray]) -> "PruningMask":
        return cls(state)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"PruningMask(layers={len(self.masks)}, sparsity={self.sparsity:.3f})"
