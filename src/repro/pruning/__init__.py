"""Neural-network pruning and gradient-sparsity enforcement.

PacTrain's first contribution is that *pruning can be used to enhance gradient
compression*: an unstructured pruning step makes the weights — and, through
Gradient Sparsity Enforcement (GSE), the gradients — sparse with a sparsity
pattern that is identical on every worker.

This package provides:

* :class:`PruningMask` — a named boolean mask over model parameters with
  application, statistics and (de)serialisation helpers;
* magnitude-based unstructured pruning, global or per-layer
  (:mod:`repro.pruning.magnitude`);
* GraSP importance scores (Wang et al., 2020), used by the paper to pick which
  weights to keep (:mod:`repro.pruning.grasp`);
* GSE (:mod:`repro.pruning.gse`), the ``grad = (weight != 0) * grad`` step of
  Eq. (2) applied after every backward pass.
"""

from repro.pruning.mask import PruningMask
from repro.pruning.magnitude import magnitude_prune, magnitude_mask, prunable_parameters
from repro.pruning.grasp import grasp_scores, grasp_prune
from repro.pruning.gse import apply_gse, gse_from_weights, gradient_sparsity

__all__ = [
    "PruningMask",
    "magnitude_prune",
    "magnitude_mask",
    "prunable_parameters",
    "grasp_scores",
    "grasp_prune",
    "apply_gse",
    "gse_from_weights",
    "gradient_sparsity",
]
