"""Gradient Sparsity Enforcement (GSE).

Pruning zeroes weights once, but gradient descent would immediately regrow
them: the gradient of a pruned weight is generally non-zero.  GSE (Eq. (2) of
the paper) closes that loop by masking the gradient with the weight's
zero-pattern after every backward pass:

    grad = (weight != 0) * grad

Applied every iteration, GSE keeps the weight sparsity pattern fixed, which in
turn makes the *gradient* sparsity pattern fixed and globally known — the
property the PacTrain compressor and Mask Tracker rely on.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.nn.module import Module
from repro.pruning.mask import PruningMask


def gse_from_weights(model: Module, atol: float = 0.0) -> PruningMask:
    """Derive the GSE mask from the model's current zero weights."""
    return PruningMask.from_weights(model, atol=atol)


def apply_gse(
    model: Module,
    mask: Optional[PruningMask] = None,
    grads: Optional[Dict[str, np.ndarray]] = None,
) -> Optional[Dict[str, np.ndarray]]:
    """Apply Eq. (2): zero the gradients of pruned (zero) weights.

    Two usage modes:

    * ``apply_gse(model, mask)`` — mask the ``param.grad`` buffers in place
      (the mode used inside the training loop);
    * ``apply_gse(model, mask, grads=...)`` — return a masked copy of an
      external ``name -> gradient`` dict without touching the model (used when
      gradients have already been extracted, e.g. per-rank dictionaries in the
      DDP simulator).  World-batched ``(world, *shape)`` gradient stacks work
      unchanged: the ``(*shape)`` mask broadcasts over the leading world axis,
      multiplying each rank's slice exactly as the per-rank path does.

    If ``mask`` is omitted it is derived from the current weights, which is the
    literal reading of Eq. (2).
    """
    if mask is None:
        mask = gse_from_weights(model)

    if grads is None:
        mask.apply_to_gradients(model)
        return None

    masked: Dict[str, np.ndarray] = {}
    for name, grad in grads.items():
        keep = mask.get(name)
        masked[name] = grad * keep if keep is not None else grad
    return masked


def gradient_sparsity(model: Module) -> float:
    """Fraction of exactly-zero entries across all present gradients."""
    total = 0
    zeros = 0
    for _, param in model.named_parameters():
        if param.grad is None:
            continue
        total += param.grad.size
        zeros += int(np.sum(param.grad == 0.0))
    return zeros / total if total else 0.0
