"""GraSP pruning scores (Wang, Zhang & Grosse, 2020).

The PacTrain paper (Eq. (4)) uses GraSP — "picking winning tickets before
training by preserving gradient flow" — to decide which parameters to keep:

    S = -theta  *  (H  grad_l(theta))

where ``H`` is the Hessian of the loss.  Weights with the *largest* score are
the ones whose removal most increases gradient flow, i.e. the safest to prune;
weights with small (very negative) scores carry the gradient signal and are
kept.

The Hessian-vector product is computed with the standard finite-difference
approximation ``H v ~= (grad(theta + eps*v) - grad(theta)) / eps`` using
``v = grad(theta)``, which requires only two backward passes and no explicit
second-order machinery.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

import numpy as np

from repro.nn.module import Module
from repro.pruning.magnitude import prunable_parameters
from repro.pruning.mask import PruningMask
from repro.tensorlib import Tensor


def _compute_gradients(
    model: Module,
    batch: Tuple[np.ndarray, np.ndarray],
    loss_fn: Callable[[Tensor, np.ndarray], Tensor],
) -> Dict[str, np.ndarray]:
    images, labels = batch
    model.zero_grad()
    logits = model(Tensor(images))
    loss = loss_fn(logits, labels)
    loss.backward()
    return {
        name: (param.grad.copy() if param.grad is not None else np.zeros_like(param.data))
        for name, param in model.named_parameters()
    }


def grasp_scores(
    model: Module,
    batch: Tuple[np.ndarray, np.ndarray],
    loss_fn: Callable[[Tensor, np.ndarray], Tensor],
    epsilon: float = 1e-2,
) -> Dict[str, np.ndarray]:
    """Compute per-parameter GraSP scores ``S = -theta * (H g)``.

    The model's weights are restored to their original values before returning.
    """
    params = dict(model.named_parameters())
    original = {name: param.data.copy() for name, param in params.items()}

    grads = _compute_gradients(model, batch, loss_fn)

    # Scale of the perturbation direction: normalise by the gradient norm so
    # epsilon has a consistent meaning across models.
    flat_norm = np.sqrt(sum(float(np.sum(g * g)) for g in grads.values()))
    scale = epsilon / (flat_norm + 1e-12)

    try:
        for name, param in params.items():
            param.data = param.data + scale * grads[name]
        perturbed_grads = _compute_gradients(model, batch, loss_fn)
    finally:
        for name, param in params.items():
            param.data = original[name]

    scores: Dict[str, np.ndarray] = {}
    for name, param in params.items():
        hessian_vector = (perturbed_grads[name] - grads[name]) / scale
        scores[name] = -param.data * hessian_vector
    model.zero_grad()
    return scores


def grasp_prune(
    model: Module,
    batch: Tuple[np.ndarray, np.ndarray],
    loss_fn: Callable[[Tensor, np.ndarray], Tensor],
    pruning_ratio: float,
    epsilon: float = 1e-2,
) -> PruningMask:
    """Prune ``pruning_ratio`` of the prunable weights by GraSP score (in place).

    The weights with the highest scores (least useful for gradient flow) are
    removed globally across all prunable layers.
    """
    if not 0.0 <= pruning_ratio < 1.0:
        raise ValueError("pruning_ratio must be in [0, 1)")
    mask = PruningMask.dense(model)
    if pruning_ratio == 0.0:
        return mask

    scores = grasp_scores(model, batch, loss_fn, epsilon=epsilon)
    targets = prunable_parameters(model)
    if not targets:
        return mask

    all_scores = np.concatenate([scores[name].reshape(-1) for name, _ in targets])
    k = int(round(pruning_ratio * all_scores.size))
    if k <= 0:
        return mask
    # Prune exactly the k highest-scoring coordinates.  Selecting indices (rather
    # than thresholding on the score value) keeps the ratio exact even when many
    # scores tie — e.g. coordinates with a zero Hessian-vector product.
    prune_indices = np.argpartition(all_scores, all_scores.size - k)[all_scores.size - k:]
    keep_flat = np.ones(all_scores.size, dtype=bool)
    keep_flat[prune_indices] = False
    offset = 0
    for name, param in targets:
        numel = param.size
        mask[name] = keep_flat[offset: offset + numel].reshape(param.shape)
        offset += numel
    mask.apply_to_weights(model)
    return mask
