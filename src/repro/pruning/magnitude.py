"""Unstructured magnitude pruning.

The paper's pruning step removes the smallest-magnitude weights of a
pre-trained model (§II.B "the absolute value of the weights" criterion) either
globally — one threshold over all prunable weights — or per layer.  Bias and
normalisation parameters are excluded by default: they are a negligible
fraction of the communication volume and pruning them disproportionately hurts
accuracy.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.nn.module import Module, Parameter
from repro.pruning.mask import PruningMask


def prunable_parameters(
    model: Module,
    min_ndim: int = 2,
    exclude_substrings: Iterable[str] = ("bias", "bn", "norm", "cls_token", "pos_embed"),
) -> List[Tuple[str, Parameter]]:
    """Parameters eligible for pruning.

    By default only weight matrices / convolution kernels (``ndim >= 2``) that
    are not normalisation or embedding-token parameters are pruned, matching
    common unstructured-pruning practice.
    """
    selected = []
    for name, param in model.named_parameters():
        lowered = name.lower()
        if param.ndim < min_ndim:
            continue
        if any(token in lowered for token in exclude_substrings):
            continue
        selected.append((name, param))
    return selected


def magnitude_mask(
    model: Module,
    pruning_ratio: float,
    scope: str = "global",
) -> PruningMask:
    """Build a keep-mask that prunes the smallest-magnitude weights.

    Parameters
    ----------
    pruning_ratio:
        Fraction of *prunable* weights to remove (0 = keep everything,
        0.99 = keep 1 %), as swept in the paper's Fig. 6.
    scope:
        ``"global"`` ranks all prunable weights together; ``"layer"`` prunes
        each layer to the same ratio independently.
    """
    if not 0.0 <= pruning_ratio < 1.0:
        raise ValueError("pruning_ratio must be in [0, 1)")
    if scope not in ("global", "layer"):
        raise ValueError("scope must be 'global' or 'layer'")

    mask = PruningMask.dense(model)
    targets = prunable_parameters(model)
    if pruning_ratio == 0.0 or not targets:
        return mask

    if scope == "global":
        all_magnitudes = np.concatenate([np.abs(param.data).reshape(-1) for _, param in targets])
        k = int(round(pruning_ratio * all_magnitudes.size))
        if k <= 0:
            return mask
        threshold = np.partition(all_magnitudes, k - 1)[k - 1]
        for name, param in targets:
            mask[name] = np.abs(param.data) > threshold
    else:
        for name, param in targets:
            magnitudes = np.abs(param.data).reshape(-1)
            k = int(round(pruning_ratio * magnitudes.size))
            if k <= 0:
                continue
            threshold = np.partition(magnitudes, k - 1)[k - 1]
            mask[name] = np.abs(param.data) > threshold
    return mask


def magnitude_prune(
    model: Module,
    pruning_ratio: float,
    scope: str = "global",
) -> PruningMask:
    """Prune a model in place and return the mask that was applied."""
    mask = magnitude_mask(model, pruning_ratio, scope=scope)
    mask.apply_to_weights(model)
    return mask


def model_sparsity(model: Module) -> float:
    """Fraction of exactly-zero parameters in the model."""
    total = 0
    zeros = 0
    for _, param in model.named_parameters():
        total += param.size
        zeros += int(np.sum(param.data == 0.0))
    return zeros / total if total else 0.0


def layer_magnitude_summary(model: Module) -> Dict[str, Dict[str, float]]:
    """Per-layer weight magnitude statistics (used by examples/diagnostics)."""
    summary: Dict[str, Dict[str, float]] = {}
    for name, param in model.named_parameters():
        data = param.data
        summary[name] = {
            "numel": float(data.size),
            "mean_abs": float(np.mean(np.abs(data))) if data.size else 0.0,
            "max_abs": float(np.max(np.abs(data))) if data.size else 0.0,
            "zero_fraction": float(np.mean(data == 0.0)) if data.size else 0.0,
        }
    return summary
