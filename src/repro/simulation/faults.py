"""Declarative fault-injection scenarios for the simulated cluster.

A :class:`FaultPlan` describes, on the *simulated* clock, everything that can
go wrong with a training cluster: ranks crashing and re-joining, the
bottleneck link degrading (or recovering) over time, and stochastic straggler
churn.  The plan is pure data — a tuple of :class:`FaultEvent` records plus
churn parameters — and entirely seed-deterministic: replaying the same plan
against the same cluster produces bit-identical schedules, which keeps fault
studies cacheable and comparable like every other campaign axis.

The plan is *interpreted* by the training driver
(:func:`repro.simulation.experiment.train_distributed`): before each
iteration it asks the plan which ranks are alive and what the link factor is
at the current simulated time, then runs that iteration's collectives over
the surviving membership with the degraded link cost.  An **empty plan is
inert by construction** — the driver takes exactly the historical code path,
so golden traces and the perf gate are bit-identical to a build without this
module.

Event grammar (also accepted, as a compact string, anywhere a plan is
configured — CLI ``--set faults=...``, campaign files, ``ClusterSpec``
construction)::

    crash:R@T          rank R dies at simulated time T
    rejoin:R@T         rank R re-joins at simulated time T
    link:F@T0-T1       link bandwidth is multiplied by F in [T0, T1)
    link:F@T0          ... from T0 onward (open-ended)
    churn:P[:F[:S]]    each iteration each live rank independently straggles
                       (compute x F, default 3.0) with probability P, drawn
                       from a counter-based RNG seeded by S (default 0)
    policy:carry|zero  residual policy on membership change (default carry)

Events are comma-separated: ``"crash:3@0.5,rejoin:3@2.0,link:0.25@1.0-2.0"``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = ["FaultEvent", "FaultPlan", "EMPTY_FAULT_PLAN"]

#: Residual policies applied when the world shrinks or grows mid-run.
RESIDUAL_POLICIES = ("carry", "zero")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault on the simulated clock.

    ``kind`` is ``"crash"``, ``"rejoin"`` or ``"link"``.  ``at`` is the
    simulated time the event fires.  ``rank`` applies to crash/rejoin;
    ``factor``/``until`` apply to link events (bandwidth is multiplied by
    ``factor`` from ``at`` until ``until``, or forever when ``until`` is
    ``None``).
    """

    kind: str
    at: float
    rank: int = -1
    factor: float = 1.0
    until: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in ("crash", "rejoin", "link"):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.at < 0.0:
            raise ValueError(f"fault time must be >= 0, got {self.at}")
        if self.kind in ("crash", "rejoin"):
            if self.rank < 0:
                raise ValueError(f"{self.kind} event needs a rank >= 0, got {self.rank}")
        else:
            if self.factor <= 0.0:
                raise ValueError(f"link factor must be positive, got {self.factor}")
            if self.until is not None and self.until <= self.at:
                raise ValueError(
                    f"link window must end after it starts, got [{self.at}, {self.until})"
                )

    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        data = {"kind": self.kind, "at": self.at}
        if self.kind in ("crash", "rejoin"):
            data["rank"] = self.rank
        else:
            data["factor"] = self.factor
            data["until"] = self.until
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "FaultEvent":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise KeyError(f"unknown FaultEvent fields {sorted(unknown)}; known: {sorted(known)}")
        return cls(**data)


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of cluster faults (see module docstring).

    ``events`` fire at fixed simulated times; ``churn_probability`` adds
    stochastic per-iteration straggling on top (each live rank independently
    runs ``churn_factor`` x slower with that probability, drawn from a
    counter-based generator seeded by ``(churn_seed, iteration)`` so the
    draw for iteration *i* never depends on how many iterations ran before
    it).  ``residual_policy`` picks what happens to error-feedback residuals
    and other per-rank compressor state when membership changes: ``"carry"``
    keeps each surviving rank's rows (re-joining ranks start from zero),
    ``"zero"`` clears everything.
    """

    events: Tuple[FaultEvent, ...] = ()
    churn_probability: float = 0.0
    churn_factor: float = 3.0
    churn_seed: int = 0
    residual_policy: str = "carry"

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        if not 0.0 <= self.churn_probability <= 1.0:
            raise ValueError(
                f"churn_probability must be in [0, 1], got {self.churn_probability}"
            )
        if self.churn_factor <= 0.0:
            raise ValueError(f"churn_factor must be positive, got {self.churn_factor}")
        if self.residual_policy not in RESIDUAL_POLICIES:
            raise ValueError(
                f"residual_policy must be one of {RESIDUAL_POLICIES}, "
                f"got {self.residual_policy!r}"
            )

    # ------------------------------------------------------------------ #
    @property
    def is_empty(self) -> bool:
        """Whether this plan can never perturb a run (the inert default)."""
        return not self.events and self.churn_probability == 0.0

    def sorted_events(self) -> List[FaultEvent]:
        """Events in firing order (time, then kind, then rank — deterministic)."""
        return sorted(self.events, key=lambda e: (e.at, e.kind, e.rank))

    def validate_for_world(self, world_size: int) -> None:
        """Check ranks are addressable and membership never empties.

        Replays the crash/rejoin schedule and raises ``ValueError`` if any
        event names a rank outside ``[0, world_size)``, crashes an
        already-dead rank, re-joins a live one, or would leave zero live
        ranks (the simulated job would simply be gone — reject the plan
        instead of modeling an impossible cluster).
        """
        alive = set(range(world_size))
        for event in self.sorted_events():
            if event.kind == "link":
                continue
            if not 0 <= event.rank < world_size:
                raise ValueError(
                    f"fault event {event.kind}:{event.rank} names a rank outside "
                    f"world_size={world_size}"
                )
            if event.kind == "crash":
                if event.rank not in alive:
                    raise ValueError(
                        f"rank {event.rank} crashes at t={event.at} but is already dead"
                    )
                alive.discard(event.rank)
                if not alive:
                    raise ValueError(
                        f"fault plan kills every rank by t={event.at}; at least one "
                        "rank must survive"
                    )
            else:
                if event.rank in alive:
                    raise ValueError(
                        f"rank {event.rank} re-joins at t={event.at} but is still alive"
                    )
                alive.add(event.rank)

    def validate_for_regime(self, regime: str) -> None:
        """Reject plan/regime combinations the driver cannot interpret.

        Fault events are applied at collective boundaries (the synchronous
        and local-SGD loops interpret them between iterations).  The async
        parameter-server loop has no such boundary — workers are mid-flight
        at arbitrary event times — so a non-empty plan there would silently
        never fire.  Fail loudly instead.
        """
        if regime == "ps" and not self.is_empty:
            raise ValueError(
                "fault plans are not supported in async parameter-server mode: "
                "the ps regime has no collective boundary at which membership "
                "changes could apply; use the 'sync' or 'localsgd:H' regimes "
                "for fault studies"
            )

    # ------------------------------------------------------------------ #
    # Interpretation
    # ------------------------------------------------------------------ #
    def active_ranks(self, world_size: int, time: float) -> List[int]:
        """Ranks alive at simulated ``time`` (events at exactly ``time`` included)."""
        alive = set(range(world_size))
        for event in self.sorted_events():
            if event.at > time:
                break
            if event.kind == "crash":
                alive.discard(event.rank)
            elif event.kind == "rejoin":
                alive.add(event.rank)
        return sorted(alive)

    def link_factor(self, time: float) -> float:
        """Product of all link-degradation factors whose window covers ``time``."""
        factor = 1.0
        for event in self.events:
            if event.kind != "link":
                continue
            if event.at <= time and (event.until is None or time < event.until):
                factor *= event.factor
        return factor

    def events_between(self, start: float, end: float) -> List[FaultEvent]:
        """Events firing in the half-open window ``(start, end]`` (firing order)."""
        return [e for e in self.sorted_events() if start < e.at <= end]

    def churn_multipliers(self, world_size: int, iteration: int) -> np.ndarray:
        """Per-rank compute multipliers for one iteration's straggler churn.

        Counter-based: the generator is seeded from ``(churn_seed,
        iteration)``, so the multipliers of iteration *i* are a pure function
        of the plan and *i* — independent of execution order, re-runs and
        other random state.  All-ones when churn is disabled.
        """
        if self.churn_probability <= 0.0:
            return np.ones(world_size)
        rng = np.random.default_rng([self.churn_seed, iteration])
        straggles = rng.random(world_size) < self.churn_probability
        return np.where(straggles, self.churn_factor, 1.0)

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        return {
            "events": [event.to_dict() for event in self.events],
            "churn_probability": self.churn_probability,
            "churn_factor": self.churn_factor,
            "churn_seed": self.churn_seed,
            "residual_policy": self.residual_policy,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise KeyError(f"unknown FaultPlan fields {sorted(unknown)}; known: {sorted(known)}")
        kwargs = dict(data)
        kwargs["events"] = tuple(
            event if isinstance(event, FaultEvent) else FaultEvent.from_dict(event)
            for event in kwargs.get("events", ())
        )
        return cls(**kwargs)

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from the compact event grammar (module docstring).

        >>> FaultPlan.parse("crash:3@0.5,rejoin:3@2.0,link:0.25@1.0-2.0")
        ... # rank 3 dies at t=0.5, returns at t=2.0; link at 25% in [1, 2)
        """
        events: List[FaultEvent] = []
        churn: Dict[str, float] = {}
        policy = "carry"
        for token in spec.split(","):
            token = token.strip()
            if not token:
                continue
            try:
                kind, _, rest = token.partition(":")
                if kind == "policy":
                    policy = rest
                elif kind == "churn":
                    parts = rest.split(":")
                    churn["churn_probability"] = float(parts[0])
                    if len(parts) > 1:
                        churn["churn_factor"] = float(parts[1])
                    if len(parts) > 2:
                        churn["churn_seed"] = int(parts[2])
                elif kind in ("crash", "rejoin"):
                    rank_text, _, at_text = rest.partition("@")
                    events.append(FaultEvent(kind=kind, rank=int(rank_text), at=float(at_text)))
                elif kind == "link":
                    factor_text, _, window = rest.partition("@")
                    start_text, dash, end_text = window.partition("-")
                    events.append(
                        FaultEvent(
                            kind="link",
                            factor=float(factor_text),
                            at=float(start_text),
                            until=float(end_text) if dash else None,
                        )
                    )
                else:
                    raise ValueError(f"unknown fault token kind {kind!r}")
            except (ValueError, IndexError) as error:
                raise ValueError(
                    f"cannot parse fault token {token!r} (grammar: crash:R@T, "
                    f"rejoin:R@T, link:F@T0[-T1], churn:P[:F[:S]], "
                    f"policy:carry|zero): {error}"
                ) from error
        return cls(events=tuple(events), residual_policy=policy, **churn)

    @classmethod
    def coerce(cls, value) -> Optional["FaultPlan"]:
        """Normalise any accepted ``faults`` representation to a plan.

        ``None`` stays ``None`` (the inert default); strings go through
        :meth:`parse`; dicts through :meth:`from_dict`; plans pass through.
        """
        if value is None or isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls.parse(value)
        if isinstance(value, dict):
            return cls.from_dict(value)
        raise TypeError(
            f"faults must be a FaultPlan, grammar string, dict or None, "
            f"got {type(value).__name__}"
        )


#: The inert plan a faultless cluster behaves as.
EMPTY_FAULT_PLAN = FaultPlan()
