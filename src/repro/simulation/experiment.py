"""Configuration-driven experiment driver.

Every benchmark in this repository is a thin wrapper around
:func:`run_experiment`: it builds the dataset, model, cluster and compression
method described by an :class:`ExperimentConfig` / :class:`MethodSpec` pair,
runs real distributed (simulated-time) training and returns an
:class:`ExperimentResult` containing the accuracy-versus-time trace, the TTA
and the communication accounting — the quantities plotted in Figs. 3, 5 and 6
and tabulated in Table 1.
"""

from __future__ import annotations

import copy
import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.compression.base import FP32_BYTES, CodecCompressor, Compressor
from repro.compression.registry import build_compressor
from repro.data import DataLoader, DistributedSampler, make_dataset, train_test_split
from repro.ddp import DistributedDataParallel
from repro.ddp.bucket import DEFAULT_BUCKET_CAP_BYTES
from repro.nn import SGD
from repro.nn.models import build_model
from repro.nn.module import Module
from repro.obs.tracer import TRACER
from repro.pruning import PruningMask, apply_gse, grasp_prune, magnitude_prune
from repro.simulation.cluster import ClusterSpec
from repro.simulation.engine import EventHeap, LinkChannel, SimEvent, SimulationEngine
from repro.simulation.regimes import (
    ReplicaSet,
    SyncSchedule,
    TrainingCheckpoint,
    parse_sync_schedule,
)
from repro.simulation.timeline import TrainingTimeline
from repro.tensorlib import Tensor, default_dtype, functional as F, no_grad, use_backend
from repro.tensorlib.backend import KNOWN_BACKENDS
from repro.tensorlib.dtypes import SUPPORTED_DTYPES


# --------------------------------------------------------------------------- #
# Method and experiment descriptions
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class MethodSpec:
    """One gradient-synchronisation method, as named in the paper's figures.

    ``compressor`` is a registry name (see :mod:`repro.compression.registry`)
    or a ``+``-separated codec pipeline spec such as ``"topk0.01+terngrad"``,
    ``"ef+signsgd"`` or ``"powersgd-rank4"`` — arbitrary codec compositions
    run end-to-end without a dedicated compressor class.  ``error_feedback``
    is tri-state: ``None`` (default) keeps whatever the compressor spec says,
    ``True`` switches on the driver-level per-bucket residual state
    (equivalent to, and composing idempotently with, a leading ``"ef"`` spec
    token) and ``False`` forces every form of error feedback off — including
    the stage-internal compensation top-k carries in its paper form — which
    makes ``error_feedback`` a uniform on/off campaign axis.  Pruning-related
    fields only take effect for methods that prune (PacTrain); the baselines
    keep the dense model.

    ``sync_schedule`` selects the training regime (see
    :mod:`repro.simulation.regimes` for the grammar): ``None``/``"sync"`` is
    synchronous data-parallel, ``"localsgd:H"`` averages parameters every H
    local steps (``"localsgd:H:delta"`` compresses the model delta through
    the method's codec pipeline instead), and ``"ps[:S]"`` runs the
    stale-gradient async parameter server with staleness bound S.
    """

    name: str
    compressor: str = "allreduce"
    pruning_ratio: float = 0.0
    pruning_method: str = "magnitude"
    gse: bool = False
    quantize: bool = False
    stability_threshold: int = 3
    min_sparsity: float = 0.05
    warmup_iterations: int = 0
    #: Driver-level error feedback: the compressor keeps a per-(bucket, rank)
    #: residual of the gradient mass its encoding dropped and adds it to the
    #: next iteration's input.  ``None`` defers to the compressor spec;
    #: ``True``/``False`` force it on/off (codec-pipeline compressors only).
    error_feedback: Optional[bool] = None
    #: Training-regime schedule spec (``None`` = synchronous; grammar in
    #: :func:`repro.simulation.regimes.parse_sync_schedule`).
    sync_schedule: Optional[str] = None

    def __post_init__(self) -> None:
        if self.sync_schedule == "":
            object.__setattr__(self, "sync_schedule", None)
        # Validate eagerly so a bad schedule fails at spec-construction time
        # (campaign expansion), not minutes into a sweep.
        parse_sync_schedule(self.sync_schedule)

    def schedule(self) -> SyncSchedule:
        """The parsed sync schedule (the synchronous default when unset)."""
        return parse_sync_schedule(self.sync_schedule)

    def build_compressor(self, seed: int = 0) -> Compressor:
        if self.compressor.startswith("pactrain"):
            # Imported lazily: repro.pactrain.trainer itself builds on this module.
            from repro.pactrain.compressor import PacTrainCompressor  # noqa: PLC0415

            if self.error_feedback is not None:
                raise ValueError(
                    f"error_feedback={self.error_feedback} is not supported for "
                    "PacTrain methods: its compacted aggregation is already "
                    "lossless w.r.t. the masked gradient, so there is no dropped "
                    "mass to feed back (and nothing to strip); leave the field "
                    "at None"
                )
            return PacTrainCompressor(
                stability_threshold=self.stability_threshold,
                min_sparsity=self.min_sparsity,
                quantize=self.quantize,
                seed=seed,
                warmup_iterations=self.warmup_iterations,
            )
        # Registry names and codec pipeline specs receive the same per-run
        # seed, so stochastic codecs (random-k selection, ternary rounding)
        # actually vary across multi-seed sweeps.
        compressor = build_compressor(self.compressor, seed=seed)
        if self.error_feedback is None:
            return compressor
        if not isinstance(compressor, CodecCompressor):
            raise TypeError(
                f"error_feedback={self.error_feedback} needs a codec-pipeline "
                f"compressor, got {type(compressor).__name__} for {self.compressor!r}"
            )
        if self.error_feedback:
            if not compressor.error_feedback:
                compressor.enable_error_feedback()
        else:
            compressor.disable_error_feedback()
        return compressor

    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict:
        """JSON-ready dict that :meth:`from_dict` restores exactly."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "MethodSpec":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise KeyError(f"unknown MethodSpec fields {sorted(unknown)}; known: {sorted(known)}")
        return cls(**data)


#: The five methods compared throughout the paper's evaluation (Figs. 3 and 5).
#: PacTrain uses the paper's default configuration: pruning ratio 0.5, GSE every
#: iteration and ternary quantisation of the compacted gradients (§III.D).
PAPER_METHODS: Dict[str, MethodSpec] = {
    "all-reduce": MethodSpec(name="all-reduce", compressor="allreduce"),
    "fp16": MethodSpec(name="fp16", compressor="fp16"),
    "topk-0.1": MethodSpec(name="topk-0.1", compressor="topk-0.1"),
    "topk-0.01": MethodSpec(name="topk-0.01", compressor="topk-0.01"),
    "pactrain": MethodSpec(
        name="pactrain", compressor="pactrain", pruning_ratio=0.5, gse=True, quantize=True
    ),
}

#: PacTrain without ternary quantisation (lossless w.r.t. the masked gradient);
#: used by the ablation benchmark.
PACTRAIN_FP32 = MethodSpec(
    name="pactrain-fp32", compressor="pactrain", pruning_ratio=0.5, gse=True, quantize=False
)


@dataclass
class ExperimentConfig:
    """Workload + cluster + optimisation settings for one training run."""

    model: str = "resnet18"
    dataset: str = "cifar10"
    num_classes: int = 10
    cluster: ClusterSpec = field(default_factory=ClusterSpec)
    epochs: int = 10
    batch_size: int = 32
    lr: float = 0.05
    momentum: float = 0.9
    weight_decay: float = 0.0
    target_accuracy: Optional[float] = None
    dataset_samples: int = 512
    image_size: int = 8
    #: Per-sample noise of the synthetic dataset.  Larger values make the task
    #: harder, so convergence takes more epochs and the convergence-speed
    #: differences between compression schemes become visible.
    noise_std: float = 0.6
    test_fraction: float = 0.25
    pretrain_iterations: int = 3
    max_iterations_per_epoch: Optional[int] = None
    seed: int = 0
    stop_at_target: bool = False
    #: Gradient bucket capacity.  PyTorch's 25 MiB default keeps the mini
    #: models in a single bucket; set a smaller cap to get the multi-bucket
    #: layout that per-bucket compute/comm overlap needs.
    bucket_cap_bytes: int = DEFAULT_BUCKET_CAP_BYTES
    #: Compute precision of the whole run: ``"float64"`` (default — every
    #: result bit-identical to the historical float64-only behaviour) or
    #: ``"float32"`` (the fast path: ~half the memory traffic and roughly
    #: double the SIMD throughput, accuracy within the documented tolerance).
    #: Wire-byte accounting models the fp32 wire format either way, so
    #: communication volumes and modeled times do not depend on this.  Also a
    #: campaign axis (``"dtype": ["float32", "float64"]``).
    dtype: str = "float64"
    #: Host-side execution strategy for the per-iteration forward/backward:
    #: ``"batched"`` (default) evaluates all ranks in one world-batched pass,
    #: ``"looped"`` keeps the per-rank Python loop.  Float64 results are
    #: bit-identical either way (dropout excepted); modeled time is
    #: execution-independent, so this is purely a wall-clock knob.
    execution: str = "batched"
    #: Array backend for the tensor kernels (``repro.tensorlib.backend``):
    #: ``None`` keeps the process-wide default (``REPRO_BACKEND`` env or
    #: numpy); ``"numba"``/``"torch"``/``"cupy"`` opt into accelerated
    #: kernels, degrading to numpy with a warning when the library is absent.
    backend: Optional[str] = None

    def __post_init__(self) -> None:
        if self.dtype not in SUPPORTED_DTYPES:
            raise ValueError(
                f"dtype must be one of {sorted(SUPPORTED_DTYPES)}, got {self.dtype!r}"
            )
        if self.execution not in ("batched", "looped"):
            raise ValueError(
                f"execution must be 'batched' or 'looped', got {self.execution!r}"
            )
        if self.backend is not None and self.backend not in KNOWN_BACKENDS:
            raise ValueError(
                f"backend must be None or one of {sorted(KNOWN_BACKENDS)}, got {self.backend!r}"
            )
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.dataset_samples < 2:
            raise ValueError(
                "dataset_samples must be >= 2 (the train/test split needs at least "
                f"one sample on each side), got {self.dataset_samples}"
            )
        if not 0.0 < self.test_fraction < 1.0:
            raise ValueError(f"test_fraction must be in (0, 1), got {self.test_fraction}")
        if self.target_accuracy is not None and not isinstance(self.target_accuracy, (int, float)):
            raise TypeError(
                f"target_accuracy must be a float or None, got {self.target_accuracy!r} "
                "(resolve named targets such as 'per-model' before building the config)"
            )

    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict:
        """JSON-ready dict that :meth:`from_dict` restores exactly.

        The nested :class:`ClusterSpec` serialises through its own
        ``to_dict``; everything else is plain scalars.  This representation is
        what the campaign result store hashes, so it must stay stable and
        canonical (no derived/duplicated fields).
        """
        data = dataclasses.asdict(self)
        data["cluster"] = self.cluster.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "ExperimentConfig":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise KeyError(f"unknown ExperimentConfig fields {sorted(unknown)}; known: {sorted(known)}")
        kwargs = dict(data)
        if "cluster" in kwargs and isinstance(kwargs["cluster"], dict):
            kwargs["cluster"] = ClusterSpec.from_dict(kwargs["cluster"])
        return cls(**kwargs)


@dataclass
class ExperimentResult:
    """Everything a benchmark needs to report about one training run."""

    method: str
    model: str
    dataset: str
    bandwidth_mbps: float
    world_size: int
    epochs_run: int
    iterations_run: int
    simulated_time: float
    compute_time: float
    comm_time: float
    comm_bytes_per_worker: float
    final_accuracy: float
    best_accuracy: float
    tta: Optional[float]
    target_accuracy: Optional[float]
    accuracy_trace: List[Tuple[float, float]]
    loss_trace: List[float]
    compression_ratio: float
    weight_sparsity: float
    gradient_density: float
    #: Whether the run hit ``target_accuracy`` at any epoch (even if training
    #: continued afterwards because ``stop_at_target`` was off).
    reached_target: bool = False
    #: Fraction of communication hidden behind backward compute by the
    #: event-driven per-bucket schedule (0.0 with overlap disabled).
    overlap_fraction: float = 0.0
    #: Sum of per-iteration critical paths from the engine's schedule; equals
    #: ``simulated_time`` up to float rounding of the per-iteration sums.
    critical_path_time: float = 0.0
    #: Simulated seconds the fastest worker spent idle waiting for stragglers.
    straggler_time: float = 0.0
    #: Fault/recovery accounting (all zero on a healthy cluster).  Fault
    #: events interpreted during the run (crashes, re-joins, link changes):
    fault_events: int = 0
    #: Iterations that ran over a shrunken (degraded) membership.
    degraded_iterations: int = 0
    #: Rank-seconds of capacity lost to dead ranks.
    downtime_rank_seconds: float = 0.0
    #: Simulated seconds spent re-synchronising re-joined ranks (included in
    #: ``simulated_time``).
    rejoin_cost_time: float = 0.0
    #: Fraction of the cluster's rank-seconds spent training rather than lost
    #: to downtime or re-join synchronisation (1.0 when healthy).
    goodput_fraction: float = 1.0
    #: Training-regime accounting (all zero on the synchronous path).
    #: Averaging collectives run by the local-SGD regime:
    sync_rounds: int = 0
    #: Communication-free local optimiser steps between collectives.
    local_steps: int = 0
    #: Updates applied by the async parameter server.
    ps_updates: int = 0
    #: Mean / max per-update staleness (server updates applied between a
    #: worker's parameter pull and its gradient's application).
    staleness_mean: float = 0.0
    staleness_max: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    def tta_or_total(self) -> float:
        """TTA if the target was reached, otherwise total simulated time.

        ``reached_target`` (not ``tta is None``) decides which: the paper
        reports relative TTA, and runs that never reach the target are charged
        their full training time (a conservative lower bound on their
        disadvantage).
        """
        if self.reached_target and self.tta is not None:
            return self.tta
        return self.simulated_time

    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict:
        """JSON-ready dict that :meth:`from_dict` restores exactly.

        Floats survive the round trip bit-identically (JSON serialises the
        shortest repr, which Python parses back to the same double; ``nan`` and
        ``inf`` use the non-strict JSON literals).  Tuples in
        ``accuracy_trace`` come back as tuples via ``from_dict``.
        """
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "ExperimentResult":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise KeyError(f"unknown ExperimentResult fields {sorted(unknown)}; known: {sorted(known)}")
        kwargs = dict(data)
        kwargs["accuracy_trace"] = [tuple(point) for point in kwargs.get("accuracy_trace", [])]
        return cls(**kwargs)


# --------------------------------------------------------------------------- #
# Helpers
# --------------------------------------------------------------------------- #
def evaluate_accuracy(model: Module, loader: DataLoader) -> float:
    """Top-1 accuracy of ``model`` over a data loader (evaluation mode)."""
    model.eval()
    correct = 0
    total = 0
    with no_grad():
        for images, labels in loader:
            logits = model(Tensor(images))
            predictions = logits.data.argmax(axis=-1)
            correct += int((predictions == labels).sum())
            total += len(labels)
    model.train()
    return correct / total if total else 0.0


def _pretrain(model: Module, loader: DataLoader, iterations: int, lr: float) -> None:
    """Brief single-worker warm-up so magnitude/GraSP scores are informative.

    Mirrors the paper's setup of starting from a (pre-)trained model before
    pruning (Fig. 1): a handful of SGD steps on the generic data is enough to
    differentiate weight magnitudes for the mini models.
    """
    if iterations <= 0:
        return
    optimizer = SGD(model.parameters(), lr=lr)
    done = 0
    while done < iterations:
        for images, labels in loader:
            model.zero_grad()
            loss = F.cross_entropy(model(Tensor(images)), labels)
            loss.backward()
            optimizer.step()
            done += 1
            if done >= iterations:
                break


def _prune_model(
    model: Module,
    method: MethodSpec,
    sample_batch: Tuple[np.ndarray, np.ndarray],
) -> Optional[PruningMask]:
    """Apply the method's pruning step and return the mask (None if dense)."""
    if method.pruning_ratio <= 0.0:
        return None
    if method.pruning_method == "grasp":
        return grasp_prune(model, sample_batch, F.cross_entropy, method.pruning_ratio)
    return magnitude_prune(model, method.pruning_ratio)


def _weight_sparsity(model: Module) -> float:
    total = sum(p.size for p in model.parameters())
    zeros = sum(int(np.sum(p.data == 0.0)) for p in model.parameters())
    return zeros / total if total else 0.0


class _WeightSparsityCache:
    """Memoised :func:`_weight_sparsity`, invalidated by the mask version.

    With a pruning mask in force the zero pattern of the weights is pinned —
    GSE masks every gradient and ``apply_to_weights`` re-zeroes after every
    optimiser step — so the O(parameters) sparsity scan only needs to re-run
    when the mask itself changes (:attr:`PruningMask.version`).  Without a
    mask the weights drift freely and every query scans, exactly as before.
    """

    def __init__(self) -> None:
        self._version: Optional[int] = None
        self._value: Optional[float] = None

    def value(self, model: Module, mask: Optional[PruningMask]) -> float:
        if mask is None:
            return _weight_sparsity(model)
        version = mask.version
        if self._value is None or version != self._version:
            self._version = version
            self._value = _weight_sparsity(model)
        return self._value


# --------------------------------------------------------------------------- #
# Core training loop
# --------------------------------------------------------------------------- #
class _FaultState:
    """Per-run fault-plan interpreter shared by the sync and local-SGD loops.

    An empty plan keeps :attr:`faulty` False and :meth:`advance` is a no-op
    returning ``(None, None)``, so healthy runs take exactly the historical
    code path (golden traces stay bit-identical).
    """

    def __init__(
        self,
        plan,
        cluster: ClusterSpec,
        world_size: int,
        ddp: DistributedDataParallel,
        compressor: Compressor,
        timeline: TrainingTimeline,
        model_wire_bytes: float,
    ) -> None:
        self.plan = plan
        self.cluster = cluster
        self.world_size = world_size
        self.ddp = ddp
        self.compressor = compressor
        self.timeline = timeline
        self.model_wire_bytes = model_wire_bytes
        self.faulty = not plan.is_empty
        self.cursor = -1.0
        self.active = list(range(world_size))
        self.link = 1.0

    def advance(self, now: float, global_iteration: int, on_rejoin=None):
        """Interpret the plan up to simulated time ``now``.

        Events scheduled up to "now" have fired, so the next iteration runs
        over the surviving membership with the current link factor.  Returns
        ``(active_set, churn)`` for the iteration — ``(None, None)`` when the
        plan is empty.  ``on_rejoin`` (if given) is called with the list of
        ranks that re-joined, after their broadcast cost has been charged —
        the local-SGD loop uses it to refresh the returning replica.
        """
        if not self.faulty:
            return None, None
        plan = self.plan
        fired = plan.events_between(self.cursor, now)
        self.cursor = now
        active = plan.active_ranks(self.world_size, now)
        link = plan.link_factor(now)
        if fired:
            self.timeline.fault_events += len(fired)
            if TRACER.enabled:
                from repro.obs.tracer import SIM_SCHEDULE_TID  # noqa: PLC0415

                for event in fired:
                    TRACER.instant(
                        f"fault/{event.kind}", cat="fault", clock="sim",
                        ts=event.at, tid=SIM_SCHEDULE_TID,
                        rank=event.rank, factor=event.factor,
                    )
        if active != self.active or link != self.link:
            if active != self.active:
                self.compressor.resize_world(self.active, active, plan.residual_policy)
            if len(active) == self.world_size and link == 1.0:
                self.ddp.set_active_ranks(None)
            else:
                from repro.comm.process_group import ProcessGroup  # noqa: PLC0415

                degraded_model = self.cluster.cost_model_for(len(active), link)
                self.ddp.set_active_ranks(
                    active, ProcessGroup(len(active), degraded_model)
                )
            # A re-joining rank pulls the current model state before it can
            # participate: charge one broadcast over the new membership per
            # re-join and advance the simulated clock.
            rejoined = []
            for event in fired:
                if event.kind != "rejoin" or event.rank not in active:
                    continue
                cost = self.cluster.cost_model_for(len(active), link).broadcast_time(
                    self.model_wire_bytes
                )
                self.timeline.add_rejoin_cost(cost)
                rejoined.append(event.rank)
                if TRACER.enabled:
                    from repro.obs.tracer import SIM_SCHEDULE_TID  # noqa: PLC0415

                    TRACER.sim_span(
                        "fault/rejoin-sync", "fault", ts=now, dur=cost,
                        tid=SIM_SCHEDULE_TID, rank=event.rank,
                        bytes=self.model_wire_bytes,
                    )
            if rejoined and on_rejoin is not None:
                on_rejoin(rejoined)
            self.active, self.link = active, link
        return set(self.active), plan.churn_multipliers(self.world_size, global_iteration)


def train_distributed(
    model: Module,
    train_dataset,
    test_loader: DataLoader,
    method: MethodSpec,
    cluster: ClusterSpec,
    epochs: int,
    batch_size: int,
    lr: float,
    momentum: float = 0.9,
    weight_decay: float = 0.0,
    mask: Optional[PruningMask] = None,
    target_accuracy: Optional[float] = None,
    stop_at_target: bool = False,
    max_iterations_per_epoch: Optional[int] = None,
    seed: int = 0,
    bucket_cap_bytes: int = DEFAULT_BUCKET_CAP_BYTES,
    sparsity_cache: Optional["_WeightSparsityCache"] = None,
    execution: str = "batched",
    checkpoint_at: Optional[int] = None,
    checkpoint_box: Optional[List[TrainingCheckpoint]] = None,
    resume_from: Optional[TrainingCheckpoint] = None,
) -> Tuple[TrainingTimeline, DistributedDataParallel, Compressor, bool]:
    """Run distributed training with modeled time under the method's regime.

    The method's ``sync_schedule`` selects the training loop: synchronous
    data-parallel (the default — every iteration is scheduled by the
    event-driven :class:`~repro.simulation.engine.SimulationEngine`, and with
    ``cluster.overlap`` off the schedule degenerates to the seed
    ``compute + comm`` sum bit-identically), local SGD with periodic
    (optionally delta-compressed) averaging, or the stale-gradient async
    parameter server.  ``localsgd:1`` routes through the synchronous loop —
    averaging after every step *is* synchronous training — which the
    regime-parity tests pin bit-identically.

    ``execution`` picks the host-side strategy for the per-rank passes:
    ``"batched"`` (default) runs one world-batched forward/backward,
    ``"looped"`` the per-rank Python loop; float64 losses, gradients and
    traces are bit-identical either way, and modeled time — which measures
    the *simulated* cluster — never depends on it.  Ragged tail batches
    (unequal shapes across ranks) fall back to the loop for that iteration.
    Local-SGD windows always loop (diverged replicas cannot share one
    world-batched pass).

    ``checkpoint_at``/``checkpoint_box`` capture a
    :class:`~repro.simulation.regimes.TrainingCheckpoint` just before global
    iteration ``checkpoint_at`` executes (appended to the box; the run then
    continues normally); ``resume_from`` restores one and continues
    bit-identically to the uninterrupted run.  Synchronous schedules only.

    Returns the timeline (accuracy/time trace), the DDP wrapper, the
    compressor (whose statistics record bytes on the wire) and whether the
    target accuracy was reached at any epoch.
    """
    if execution not in ("batched", "looped"):
        raise ValueError(f"unknown execution strategy {execution!r}")
    schedule = parse_sync_schedule(method.sync_schedule)
    world_size = cluster.world_size
    plan = cluster.fault_plan()
    plan.validate_for_regime(schedule.regime)
    if (checkpoint_at is not None or resume_from is not None) and not schedule.is_synchronous:
        raise ValueError(
            "checkpoint/restore is only supported on the synchronous path "
            f"(sync or localsgd:1 schedules), got {method.sync_schedule!r}"
        )
    process_group = cluster.process_group()
    compressor = method.build_compressor(seed=seed)
    if resume_from is not None:
        # The compressor's residual/momentum state is part of the checkpoint;
        # hand the DDP wrapper the restored instance from the start.  Deep-
        # copied so one checkpoint can seed several resumes.
        compressor = copy.deepcopy(resume_from.compressor)
    if schedule.regime == "ps" and not isinstance(compressor, CodecCompressor):
        raise ValueError(
            "async parameter-server mode needs a codec-pipeline compressor "
            f"(its pushes are encoded per worker), got {type(compressor).__name__} "
            f"for {method.compressor!r}"
        )
    if (
        schedule.regime == "localsgd"
        and schedule.delta
        and not schedule.is_synchronous
        and not isinstance(compressor, CodecCompressor)
    ):
        raise ValueError(
            "localsgd delta mode compresses model deltas through a codec "
            f"pipeline, got {type(compressor).__name__} for {method.compressor!r}"
        )
    ddp = DistributedDataParallel(
        model,
        world_size=world_size,
        process_group=process_group,
        bucket_cap_bytes=bucket_cap_bytes,
        comm_hook=compressor,
    )
    optimizer = SGD(model.parameters(), lr=lr, momentum=momentum, weight_decay=weight_decay)
    compute_model = cluster.compute_model()
    engine = SimulationEngine(overlap=cluster.overlap)
    timeline = TrainingTimeline()
    if TRACER.enabled:
        # One simulated-cluster track group per training run, so sweeps
        # never overlay two schedules on the same Perfetto tracks.
        TRACER.new_sim_process(f"{method.name} world={world_size}")

    input_shape = train_dataset.input_shape
    sparsity_cache = sparsity_cache or _WeightSparsityCache()
    weight_sparsity = sparsity_cache.value(model, mask)
    per_rank_compute = cluster.per_rank_iteration_times(
        model, input_shape, batch_size, weight_sparsity=weight_sparsity
    )
    bucket_fractions = compute_model.bucket_completion_fractions(
        model, input_shape, ddp.buckets
    )

    # One loader per rank over disjoint shards.
    rank_loaders = [
        DataLoader(
            train_dataset,
            batch_size=batch_size,
            sampler=DistributedSampler(len(train_dataset), world_size, rank, seed=seed),
        )
        for rank in range(world_size)
    ]

    shared = dict(
        model=model,
        test_loader=test_loader,
        method=method,
        cluster=cluster,
        epochs=epochs,
        mask=mask,
        target_accuracy=target_accuracy,
        stop_at_target=stop_at_target,
        max_iterations_per_epoch=max_iterations_per_epoch,
        world_size=world_size,
        plan=plan,
        compressor=compressor,
        ddp=ddp,
        optimizer=optimizer,
        timeline=timeline,
        per_rank_compute=per_rank_compute,
        rank_loaders=rank_loaders,
    )
    if schedule.regime == "ps":
        return _train_async_ps(schedule=schedule, seed=seed, **shared)
    if schedule.regime == "localsgd" and not schedule.is_synchronous:
        return _train_localsgd(
            schedule=schedule,
            lr=lr,
            momentum=momentum,
            weight_decay=weight_decay,
            engine=engine,
            bucket_fractions=bucket_fractions,
            **shared,
        )
    return _train_synchronous(
        execution=execution,
        engine=engine,
        bucket_fractions=bucket_fractions,
        checkpoint_at=checkpoint_at,
        checkpoint_box=checkpoint_box,
        resume_from=resume_from,
        **shared,
    )


def _train_synchronous(
    *,
    model: Module,
    test_loader: DataLoader,
    method: MethodSpec,
    cluster: ClusterSpec,
    epochs: int,
    mask: Optional[PruningMask],
    target_accuracy: Optional[float],
    stop_at_target: bool,
    max_iterations_per_epoch: Optional[int],
    world_size: int,
    plan,
    compressor: Compressor,
    ddp: DistributedDataParallel,
    optimizer: SGD,
    engine: SimulationEngine,
    timeline: TrainingTimeline,
    per_rank_compute: List[float],
    bucket_fractions: List[float],
    rank_loaders: List[DataLoader],
    execution: str,
    checkpoint_at: Optional[int] = None,
    checkpoint_box: Optional[List[TrainingCheckpoint]] = None,
    resume_from: Optional[TrainingCheckpoint] = None,
) -> Tuple[TrainingTimeline, DistributedDataParallel, Compressor, bool]:
    """The synchronous data-parallel loop (the historical code path)."""
    # Re-join cost model: the returning rank pulls the current parameters
    # (fp32 wire format) via a broadcast over the post-join membership.
    model_wire_bytes = float(sum(p.size for p in model.parameters()) * 4)
    faults = _FaultState(
        plan, cluster, world_size, ddp, compressor, timeline, model_wire_bytes
    )
    global_iteration = 0
    reached_target = False
    start_epoch = 0
    resume_iteration = 0
    resumed_losses: List[float] = []
    if resume_from is not None:
        ck = resume_from
        ddp.restore_parameters(ck.params)
        optimizer.load_state_arrays(ck.velocities)
        timeline = copy.deepcopy(ck.timeline)
        faults.timeline = timeline
        faults.cursor = ck.fault_cursor
        faults.active = list(ck.active_ranks)
        faults.link = ck.link_factor
        if len(ck.active_ranks) != world_size or ck.link_factor != 1.0:
            from repro.comm.process_group import ProcessGroup  # noqa: PLC0415

            degraded_model = cluster.cost_model_for(
                len(ck.active_ranks), ck.link_factor
            )
            ddp.set_active_ranks(
                list(ck.active_ranks),
                ProcessGroup(len(ck.active_ranks), degraded_model),
            )
        ddp.hook_state.iteration = ck.hook_iteration
        global_iteration = ck.global_iteration
        reached_target = ck.reached_target
        start_epoch = ck.epoch
        resume_iteration = ck.iteration_in_epoch
        resumed_losses = list(ck.epoch_losses)
        # The modeled per-rank times were computed from the *initial* weights
        # (weight sparsity drifts during training on unmasked models); replay
        # the captured values so resumed timing is bit-identical.
        per_rank_compute = list(ck.per_rank_compute)
        bucket_fractions = list(ck.bucket_fractions)
    captured = checkpoint_at is None or checkpoint_box is None
    for epoch in range(start_epoch, epochs):
        for loader in rank_loaders:
            loader.set_epoch(epoch)
        iterators = [iter(loader) for loader in rank_loaders]
        epoch_losses: List[float] = []
        iteration = 0
        if resume_from is not None and epoch == start_epoch:
            # Fast-forward the deterministic samplers to the captured
            # position; the consumed batches were already trained on.
            for _ in range(resume_iteration):
                for it in iterators:
                    next(it)
            iteration = resume_iteration
            epoch_losses = resumed_losses
        while True:
            if max_iterations_per_epoch is not None and iteration >= max_iterations_per_epoch:
                break
            if not captured and global_iteration == checkpoint_at:
                checkpoint_box.append(
                    TrainingCheckpoint.capture(
                        ddp=ddp,
                        optimizer=optimizer,
                        compressor=compressor,
                        timeline=timeline,
                        epoch=epoch,
                        iteration_in_epoch=iteration,
                        global_iteration=global_iteration,
                        epoch_losses=epoch_losses,
                        fault_cursor=faults.cursor,
                        active_ranks=faults.active,
                        link_factor=faults.link,
                        reached_target=reached_target,
                        per_rank_compute=per_rank_compute,
                        bucket_fractions=bucket_fractions,
                    )
                )
                captured = True
            try:
                batches = [next(it) for it in iterators]
            except StopIteration:
                break

            active_set, churn = faults.advance(timeline.total_time, global_iteration)

            with TRACER.span("train/backward", cat="train", epoch=epoch, iteration=iteration):
                if (
                    execution == "batched"
                    and not ddp.is_degraded
                    and DistributedDataParallel._stackable(batches)
                ):
                    images = np.stack([batch[0] for batch in batches])
                    labels = np.stack([np.asarray(batch[1]) for batch in batches])
                    per_rank_losses, grads = ddp.compute_batched_gradients(
                        (images, labels), F.cross_entropy
                    )
                    if method.gse and mask is not None:
                        # keep masks broadcast over the leading world axis:
                        # (world, *shape) * (*shape) multiplies each rank's
                        # slice exactly as the looped path does.
                        grads = apply_gse(model, mask, grads=grads)
                    ddp.stage_world_gradients(grads)
                else:
                    per_rank_losses = []
                    for rank, batch in enumerate(batches):
                        if active_set is not None and rank not in active_set:
                            # Dead rank: its shard's batch is consumed (data
                            # order stays deterministic) but contributes no
                            # gradient, loss or compute this iteration.
                            continue
                        # copy=False is safe because each rank's gradients are
                        # staged into the arena before the next rank's backward
                        # pass runs (GSE, when active, reads them in the same
                        # window).
                        loss_value, grads = ddp.compute_local_gradients(
                            batch, F.cross_entropy, copy=False
                        )
                        if method.gse and mask is not None:
                            grads = apply_gse(model, mask, grads=grads)
                        ddp.stage_rank_gradients(rank, grads)
                        per_rank_losses.append(loss_value)

            with TRACER.span("train/sync", cat="train", epoch=epoch, iteration=iteration):
                aggregated, bucket_events = ddp.synchronize_staged()
            with TRACER.span("train/apply", cat="train", epoch=epoch, iteration=iteration):
                ddp.apply_aggregated_gradients(aggregated)
                optimizer.step()
                if mask is not None:
                    # Guard against regrowth through momentum / weight decay.
                    mask.apply_to_weights(model)

            # Flat sums over the events in issue order — the same accumulation
            # order (and therefore the same floats) as the drained group log.
            comm_seconds = float(
                sum(e.time_seconds for per_bucket in bucket_events for e in per_bucket)
            )
            comm_bytes = float(
                sum(e.bytes_per_worker for per_bucket in bucket_events for e in per_bucket)
            )
            per_bucket_seconds = [
                float(sum(e.time_seconds for e in per_bucket)) for per_bucket in bucket_events
            ]
            iteration_compute = per_rank_compute
            if faults.faulty:
                # Survivors only, each scaled by this iteration's churn draw
                # (counter-based, so the draw depends only on the iteration
                # index — never on how the run got here).
                iteration_compute = [
                    per_rank_compute[rank] * churn[rank] for rank in faults.active
                ]
            trace = engine.run_iteration(
                iteration_compute,
                bucket_fractions,
                per_bucket_seconds,
            )
            sim_base = timeline.total_time
            timeline.add_iteration(trace.compute_span, comm_seconds, comm_bytes, trace=trace)
            if faults.faulty:
                timeline.note_degraded_iteration(
                    world_size - len(faults.active), trace.wall_time
                )
                if TRACER.enabled and len(faults.active) < world_size:
                    from repro.obs.tracer import SIM_SCHEDULE_TID  # noqa: PLC0415

                    TRACER.sim_span(
                        "fault/degraded-world", "fault", ts=sim_base,
                        dur=trace.wall_time, tid=SIM_SCHEDULE_TID,
                        alive=len(faults.active),
                        dead=world_size - len(faults.active),
                    )
            if TRACER.enabled:
                # Simulated-clock tracks: per-rank backward segments, the
                # link channel's per-bucket reduce windows, the iteration
                # critical path.  The increment of the timeline total is
                # exactly trace.wall_time, so iterations tile the sim axis.
                from repro.obs.instrument import emit_simulated_iteration  # noqa: PLC0415

                emit_simulated_iteration(
                    TRACER, sim_base, trace, bucket_fractions, timeline.iterations - 1
                )
                TRACER.sim_now = timeline.total_time
            ddp.hook_state.iteration += 1
            global_iteration += 1
            epoch_losses.append(float(np.mean(per_rank_losses)))
            iteration += 1

        accuracy = evaluate_accuracy(model, test_loader)
        mean_loss = float(np.mean(epoch_losses)) if epoch_losses else float("nan")
        timeline.snapshot_epoch(epoch, mean_loss, accuracy)

        if target_accuracy is not None and accuracy >= target_accuracy:
            reached_target = True
            if stop_at_target:
                break
    return timeline, ddp, compressor, reached_target


def _train_localsgd(
    *,
    model: Module,
    test_loader: DataLoader,
    method: MethodSpec,
    schedule: SyncSchedule,
    cluster: ClusterSpec,
    epochs: int,
    lr: float,
    momentum: float,
    weight_decay: float,
    mask: Optional[PruningMask],
    target_accuracy: Optional[float],
    stop_at_target: bool,
    max_iterations_per_epoch: Optional[int],
    world_size: int,
    plan,
    compressor: Compressor,
    ddp: DistributedDataParallel,
    optimizer: SGD,
    engine: SimulationEngine,
    timeline: TrainingTimeline,
    per_rank_compute: List[float],
    bucket_fractions: List[float],
    rank_loaders: List[DataLoader],
) -> Tuple[TrainingTimeline, DistributedDataParallel, Compressor, bool]:
    """Local SGD: H local optimiser steps per rank between averaging rounds.

    Each rank trains on its own diverged parameter/velocity replica
    (:class:`~repro.simulation.regimes.ReplicaSet`); every ``schedule.period``
    iterations the replicas are reconciled through one collective.  In delta
    mode each rank stages its *model delta* (parameters minus the last synced
    anchor) through the method's codec pipeline — error feedback then carries
    the delta mass the encoding dropped, and fault-driven membership changes
    remap residuals through the same elastic seam as gradients.  Dense mode
    all-reduces the raw fp32 parameters (the method's compressor is not
    consulted at the boundary — FedAvg-style exact averaging).

    ``optimizer`` (the shared-model optimiser built by the dispatcher) is
    unused: local steps go through the per-rank replicas' optimisers.
    """
    del optimizer  # per-rank optimisers live in the ReplicaSet
    period = schedule.period
    model_wire_bytes = float(sum(p.size for p in model.parameters()) * 4)
    faults = _FaultState(
        plan, cluster, world_size, ddp, compressor, timeline, model_wire_bytes
    )
    replicas = ReplicaSet(
        model, world_size, lr=lr, momentum=momentum, weight_decay=weight_decay
    )
    anchor = ddp.snapshot_parameters()
    use_gse = method.gse and mask is not None

    def on_rejoin(ranks: List[int]) -> None:
        # A returning rank starts from the last synced state with fresh
        # momentum (its broadcast cost was already charged by the fault
        # interpreter).
        for rank in ranks:
            replicas.assign(rank, anchor)
            replicas.reset_velocity(rank)

    def sync_round(active: List[int]):
        """Average the active replicas; returns (comm_s, comm_bytes, per_bucket_s)."""
        nonlocal anchor
        for rank in active:
            if schedule.delta:
                ddp.stage_rank_gradients(rank, replicas.delta(rank, anchor))
            else:
                ddp.stage_rank_gradients(rank, replicas.params_dict(rank))
        if schedule.delta:
            aggregated, bucket_events = ddp.synchronize_staged()
            new_params = {
                name: anchor[name] + aggregated[name] for name in anchor
            }
        else:
            # Dense parameter averaging: swap in the native all-reduce hook
            # for this collective so the raw fp32 parameters go on the wire.
            ddp.register_comm_hook(None)
            try:
                aggregated, bucket_events = ddp.synchronize_staged()
            finally:
                ddp.register_comm_hook(compressor)
            new_params = aggregated
        for name, param in model.named_parameters():
            param.data = new_params[name]
        if mask is not None:
            mask.apply_to_weights(model)
        anchor = ddp.snapshot_parameters()
        replicas.reset_all(anchor, active)
        comm_seconds = float(
            sum(e.time_seconds for per_bucket in bucket_events for e in per_bucket)
        )
        comm_bytes = float(
            sum(e.bytes_per_worker for per_bucket in bucket_events for e in per_bucket)
        )
        per_bucket_seconds = [
            float(sum(e.time_seconds for e in per_bucket)) for per_bucket in bucket_events
        ]
        return comm_seconds, comm_bytes, per_bucket_seconds

    global_iteration = 0
    window = 0  # local steps since the last averaging round
    reached_target = False
    for epoch in range(epochs):
        for loader in rank_loaders:
            loader.set_epoch(epoch)
        iterators = [iter(loader) for loader in rank_loaders]
        epoch_losses: List[float] = []
        iteration = 0
        while True:
            if max_iterations_per_epoch is not None and iteration >= max_iterations_per_epoch:
                break
            try:
                batches = [next(it) for it in iterators]
            except StopIteration:
                break

            active_set, churn = faults.advance(
                timeline.total_time, global_iteration, on_rejoin=on_rejoin
            )
            active = faults.active if faults.faulty else list(range(world_size))

            per_rank_losses: List[float] = []
            with TRACER.span("train/backward", cat="train", epoch=epoch, iteration=iteration):
                for rank, batch in enumerate(batches):
                    if active_set is not None and rank not in active_set:
                        # Dead rank: its shard's batch is consumed (data
                        # order stays deterministic) but it takes no step.
                        continue
                    replicas.load(rank)
                    loss_value, grads = ddp.compute_local_gradients(
                        batch, F.cross_entropy, copy=False
                    )
                    if use_gse:
                        grads = apply_gse(model, mask, grads=grads)
                        ddp.apply_aggregated_gradients(grads)
                    replicas.step(rank)
                    if mask is not None:
                        mask.apply_to_weights(model)
                    replicas.save(rank)
                    per_rank_losses.append(loss_value)

            window += 1
            is_boundary = window >= period
            if is_boundary:
                with TRACER.span(
                    "regime/localsgd-sync", cat="regime",
                    epoch=epoch, iteration=iteration, window=window,
                ):
                    comm_seconds, comm_bytes, per_bucket_seconds = sync_round(active)
                timeline.sync_rounds += 1
                window = 0
            else:
                comm_seconds, comm_bytes, per_bucket_seconds = 0.0, 0.0, []
                timeline.local_steps += 1

            iteration_compute = per_rank_compute
            if faults.faulty:
                iteration_compute = [
                    per_rank_compute[rank] * churn[rank] for rank in faults.active
                ]
            if is_boundary:
                trace = engine.run_iteration(
                    iteration_compute, bucket_fractions, per_bucket_seconds
                )
            else:
                trace = engine.run_local_iteration(iteration_compute)
            sim_base = timeline.total_time
            timeline.add_iteration(trace.compute_span, comm_seconds, comm_bytes, trace=trace)
            if faults.faulty:
                timeline.note_degraded_iteration(
                    world_size - len(faults.active), trace.wall_time
                )
            if TRACER.enabled:
                from repro.obs.instrument import emit_simulated_iteration  # noqa: PLC0415

                emit_simulated_iteration(
                    TRACER, sim_base, trace,
                    bucket_fractions if is_boundary else [],
                    timeline.iterations - 1,
                )
                TRACER.sim_now = timeline.total_time
            ddp.hook_state.iteration += 1
            global_iteration += 1
            epoch_losses.append(float(np.mean(per_rank_losses)))
            iteration += 1

        if window > 0:
            # Flush a partially filled window so evaluation (and the final
            # model) sees the averaged parameters, not one rank's replica.
            active = faults.active if faults.faulty else list(range(world_size))
            with TRACER.span("regime/localsgd-flush", cat="regime", epoch=epoch, window=window):
                comm_seconds, comm_bytes, _ = sync_round(active)
            timeline.add_sync_round(comm_seconds, comm_bytes)
            window = 0

        accuracy = evaluate_accuracy(model, test_loader)
        mean_loss = float(np.mean(epoch_losses)) if epoch_losses else float("nan")
        timeline.snapshot_epoch(epoch, mean_loss, accuracy)

        if target_accuracy is not None and accuracy >= target_accuracy:
            reached_target = True
            if stop_at_target:
                break
    return timeline, ddp, compressor, reached_target


def _train_async_ps(
    *,
    model: Module,
    test_loader: DataLoader,
    method: MethodSpec,
    schedule: SyncSchedule,
    cluster: ClusterSpec,
    epochs: int,
    seed: int,
    mask: Optional[PruningMask],
    target_accuracy: Optional[float],
    stop_at_target: bool,
    max_iterations_per_epoch: Optional[int],
    world_size: int,
    plan,
    compressor: Compressor,
    ddp: DistributedDataParallel,
    optimizer: SGD,
    timeline: TrainingTimeline,
    per_rank_compute: List[float],
    rank_loaders: List[DataLoader],
) -> Tuple[TrainingTimeline, DistributedDataParallel, Compressor, bool]:
    """Stale-gradient asynchronous parameter server on the event engine.

    A logical PS rank holds the parameters; workers cycle pull → compute →
    push with no barrier, serialised FCFS on the server's access link
    (:class:`~repro.simulation.engine.LinkChannel`).  Gradients are computed
    against the parameters as of the worker's pull and applied whenever the
    push lands — the measured staleness (server updates applied in between)
    is recorded per update.  ``schedule.staleness`` bounds the progress skew:
    a worker may start update ``k`` only while ``k - min_progress <= S``
    (stale synchronous parallel); blocked workers re-enter in rank order as
    laggards apply.

    Each worker encodes its pushes through its own codec-pipeline instance
    (independent stage state, per-worker error-feedback residuals); pulls
    carry the dense fp32 parameters.  Busy compute/comm time accumulates per
    update, and the timeline total is reconciled to the event clock at every
    epoch snapshot (see ``TrainingTimeline.reconcile_async_total``).
    """
    if mask is not None or method.gse:
        raise ValueError(
            "async parameter-server mode does not support pruning/GSE methods: "
            "the mask lifecycle assumes a synchronous view of the parameters"
        )
    assert isinstance(compressor, CodecCompressor)  # dispatcher validated
    staleness_bound = schedule.staleness
    cost_model = cluster.cost_model_for(world_size)
    model_wire_bytes = float(sum(p.size for p in model.parameters()) * 4)
    pull_seconds = cost_model.p2p_time(model_wire_bytes)

    iters_per_epoch = min(len(loader) for loader in rank_loaders)
    if max_iterations_per_epoch is not None:
        iters_per_epoch = min(iters_per_epoch, max_iterations_per_epoch)
    reached_target = False
    if iters_per_epoch == 0:
        for epoch in range(epochs):
            accuracy = evaluate_accuracy(model, test_loader)
            timeline.snapshot_epoch(epoch, float("nan"), accuracy)
            if target_accuracy is not None and accuracy >= target_accuracy:
                reached_target = True
                if stop_at_target:
                    break
        return timeline, ddp, compressor, reached_target
    total_per_worker = epochs * iters_per_epoch

    # Per-worker codec pipelines: stage state (low-rank warm starts, stage
    # seeds) and error-feedback residuals must not be shared across workers
    # pushing at different versions.  Worker 0 reuses the dispatcher's
    # instance, which doubles as the run's stats carrier.
    worker_codecs: List[CodecCompressor] = [compressor]
    for _ in range(1, world_size):
        clone = method.build_compressor(seed=seed)
        assert isinstance(clone, CodecCompressor)
        worker_codecs.append(clone)
    driver_ef = compressor.error_feedback
    buckets = ddp.buckets
    residuals: List[List[Optional[np.ndarray]]] = [
        [None] * len(buckets) for _ in range(world_size)
    ]

    from repro.compression.codec import EncodeContext  # noqa: PLC0415

    heap = EventHeap()
    channel = LinkChannel()
    completed = [0] * world_size  # applied updates per worker
    version_at_pull = [0] * world_size
    pending: List[Optional[Dict]] = [None] * world_size
    blocked: set = set()
    applies = 0
    epoch_loss_buckets: List[List[float]] = [[] for _ in range(epochs)]
    worker_epoch = [-1] * world_size
    worker_iters: List[Optional[object]] = [None] * world_size
    snapshots_done = 0
    stop = False

    def batch_for(rank: int, update_index: int):
        epoch = update_index // iters_per_epoch
        if worker_epoch[rank] != epoch:
            rank_loaders[rank].set_epoch(epoch)
            worker_iters[rank] = iter(rank_loaders[rank])
            worker_epoch[rank] = epoch
        return next(worker_iters[rank])

    def admissible(rank: int) -> bool:
        if staleness_bound is None:
            return True
        return completed[rank] - min(completed) <= staleness_bound

    for rank in range(world_size):
        heap.push(SimEvent(time=0.0, kind="ps-request", rank=rank))

    while heap and not stop:
        event = heap.pop()
        now = event.time
        rank = event.rank
        if event.kind == "ps-request":
            if admissible(rank):
                start, end = channel.acquire(now, pull_seconds)
                pending[rank] = {"pull": (start, end)}
                heap.push(SimEvent(time=end, kind="ps-pulled", rank=rank))
            else:
                blocked.add(rank)
        elif event.kind == "ps-pulled":
            # Events are processed in time order, so every apply scheduled
            # before this pull's completion has already landed — the shared
            # model holds exactly the parameters this worker pulls.
            state = pending[rank]
            version_at_pull[rank] = applies
            update_index = completed[rank]
            batch = batch_for(rank, update_index)
            loss_value, grads = ddp.compute_local_gradients(
                batch, F.cross_entropy, copy=False
            )
            codec = worker_codecs[rank]
            decoded: List[np.ndarray] = []
            payload_bytes = 0.0
            for bucket in buckets:
                flat = bucket.flatten(grads)
                res = residuals[rank][bucket.index]
                if driver_ef:
                    if res is None:
                        res = residuals[rank][bucket.index] = np.zeros_like(flat)
                    np.add(flat, res, out=flat)  # flatten returned a fresh buffer
                context = EncodeContext(
                    world_size=1,
                    bucket_index=bucket.index,
                    iteration=update_index,
                )
                payload = codec.pipeline.encode_all([flat], context)[0]
                out = codec.pipeline.decode(payload)
                if driver_ef:
                    residuals[rank][bucket.index] = flat - out
                payload_bytes += float(payload.nbytes)
                decoded.append(out)
                # Mirror CodecCompressor._record on the shared stats carrier:
                # one aggregation of this bucket, fp32 raw bytes, wire bytes.
                compressor.stats.iterations += 1
                compressor.stats.raw_bytes += bucket.numel * FP32_BYTES
                compressor.stats.wire_bytes += float(payload.nbytes)
            compute_seconds = per_rank_compute[rank]
            state.update(
                decoded=decoded,
                payload_bytes=payload_bytes,
                loss=loss_value,
                compute=compute_seconds,
                epoch=update_index // iters_per_epoch,
            )
            heap.push(SimEvent(time=now + compute_seconds, kind="ps-push", rank=rank))
        elif event.kind == "ps-push":
            state = pending[rank]
            push_seconds = cost_model.p2p_time(state["payload_bytes"])
            start, end = channel.acquire(now, push_seconds)
            state["push"] = (start, end)
            state["push_seconds"] = push_seconds
            heap.push(SimEvent(time=end, kind="ps-apply", rank=rank))
        elif event.kind == "ps-apply":
            state = pending[rank]
            aggregated: Dict[str, np.ndarray] = {}
            for bucket, flat in zip(buckets, state["decoded"]):
                aggregated.update(bucket.unflatten(flat))
            ddp.apply_aggregated_gradients(aggregated)
            optimizer.step()
            staleness = applies - version_at_pull[rank]
            applies += 1
            completed[rank] += 1
            timeline.record_staleness(staleness)
            timeline.add_iteration(
                state["compute"],
                pull_seconds + state["push_seconds"],
                (model_wire_bytes + state["payload_bytes"]) / world_size,
            )
            epoch_loss_buckets[state["epoch"]].append(state["loss"])
            if TRACER.enabled:
                from repro.obs.instrument import emit_ps_update  # noqa: PLC0415

                emit_ps_update(
                    TRACER,
                    rank=rank,
                    pull=state["pull"],
                    compute_seconds=state["compute"],
                    push=state["push"],
                    staleness=staleness,
                    update_index=completed[rank] - 1,
                    payload_bytes=state["payload_bytes"],
                    pull_bytes=model_wire_bytes,
                )
                TRACER.sim_now = now
            ddp.hook_state.iteration += 1
            while (
                snapshots_done < epochs
                and min(completed) >= (snapshots_done + 1) * iters_per_epoch
            ):
                timeline.reconcile_async_total(now)
                accuracy = evaluate_accuracy(model, test_loader)
                losses = epoch_loss_buckets[snapshots_done]
                mean_loss = float(np.mean(losses)) if losses else float("nan")
                timeline.snapshot_epoch(snapshots_done, mean_loss, accuracy)
                snapshots_done += 1
                if target_accuracy is not None and accuracy >= target_accuracy:
                    reached_target = True
                    if stop_at_target:
                        stop = True  # in-flight work is discarded
            if not stop and completed[rank] < total_per_worker:
                heap.push(SimEvent(time=now, kind="ps-request", rank=rank))
            # This apply raised min-progress (or freed the channel): re-admit
            # blocked workers in rank order for determinism.
            for other in sorted(blocked):
                if admissible(other):
                    blocked.discard(other)
                    heap.push(SimEvent(time=now, kind="ps-request", rank=other))
        else:  # pragma: no cover - no other kinds are scheduled
            raise RuntimeError(f"unexpected event kind {event.kind!r}")

    return timeline, ddp, compressor, reached_target


# --------------------------------------------------------------------------- #
# Config-driven wrapper
# --------------------------------------------------------------------------- #
def run_experiment(config: ExperimentConfig, method: MethodSpec) -> ExperimentResult:
    """Build the workload described by ``config``, train it with ``method``.

    The entire run — dataset materialisation, model construction, training,
    evaluation — executes under ``config.dtype`` (see
    :func:`repro.tensorlib.dtypes.default_dtype`) and, when
    ``config.backend`` is set, under that array backend
    (:func:`repro.tensorlib.backend.use_backend`); both are restored on exit
    even when the run raises.
    """
    with default_dtype(config.dtype), use_backend(config.backend):
        with TRACER.span(
            "experiment", cat="experiment",
            model=config.model, method=method.name, world=config.cluster.world_size,
        ):
            return _run_experiment(config, method)


def _run_experiment(config: ExperimentConfig, method: MethodSpec) -> ExperimentResult:
    dataset = make_dataset(
        config.dataset,
        num_samples=config.dataset_samples,
        image_size=config.image_size,
        noise_std=config.noise_std,
        seed=config.seed,
    )
    train_set, test_set = train_test_split(dataset, test_fraction=config.test_fraction, seed=config.seed)
    test_loader = DataLoader(test_set, batch_size=config.batch_size)

    model = build_model(config.model, num_classes=dataset.num_classes, seed=config.seed)

    # Pre-train briefly (stand-in for "start from a pre-trained model"), then prune.
    pretrain_loader = DataLoader(train_set, batch_size=config.batch_size, shuffle=True, seed=config.seed)
    _pretrain(model, pretrain_loader, config.pretrain_iterations, config.lr)
    sample_batch = next(iter(pretrain_loader))
    mask = _prune_model(model, method, sample_batch)
    sparsity_cache = _WeightSparsityCache()

    timeline, ddp, compressor, reached_target = train_distributed(
        model=model,
        train_dataset=train_set,
        test_loader=test_loader,
        method=method,
        cluster=config.cluster,
        epochs=config.epochs,
        batch_size=config.batch_size,
        lr=config.lr,
        momentum=config.momentum,
        weight_decay=config.weight_decay,
        mask=mask,
        target_accuracy=config.target_accuracy,
        stop_at_target=config.stop_at_target,
        max_iterations_per_epoch=config.max_iterations_per_epoch,
        seed=config.seed,
        bucket_cap_bytes=config.bucket_cap_bytes,
        sparsity_cache=sparsity_cache,
        execution=config.execution,
    )

    gradient_density = 1.0
    if mask is not None:
        gradient_density = mask.density

    from repro.pactrain.compressor import PacTrainCompressor  # noqa: PLC0415

    extra: Dict[str, float] = {}
    if isinstance(compressor, PacTrainCompressor):
        extra["compact_fraction"] = compressor.compact_fraction
        extra["full_iterations"] = float(compressor.full_iterations)
        extra["compact_iterations"] = float(compressor.compact_iterations)

    return ExperimentResult(
        method=method.name,
        model=config.model,
        dataset=config.dataset,
        bandwidth_mbps=config.cluster.bandwidth_bytes_per_second() * 8 / 1e6,
        world_size=config.cluster.world_size,
        epochs_run=len(timeline.epochs),
        iterations_run=timeline.iterations,
        simulated_time=timeline.total_time,
        compute_time=timeline.compute_time,
        comm_time=timeline.comm_time,
        comm_bytes_per_worker=timeline.comm_bytes_per_worker,
        final_accuracy=timeline.final_accuracy(),
        best_accuracy=timeline.best_accuracy(),
        tta=timeline.time_to_accuracy(config.target_accuracy) if config.target_accuracy else None,
        target_accuracy=config.target_accuracy,
        accuracy_trace=timeline.accuracy_trace(),
        loss_trace=[record.train_loss for record in timeline.epochs],
        compression_ratio=compressor.stats.compression_ratio,
        weight_sparsity=sparsity_cache.value(model, mask),
        gradient_density=gradient_density,
        reached_target=reached_target,
        overlap_fraction=timeline.overlap_fraction,
        critical_path_time=timeline.critical_path_time(),
        straggler_time=timeline.straggler_time,
        fault_events=timeline.fault_events,
        degraded_iterations=timeline.degraded_iterations,
        downtime_rank_seconds=timeline.downtime_rank_seconds,
        rejoin_cost_time=timeline.rejoin_cost_time,
        goodput_fraction=timeline.goodput_fraction(config.cluster.world_size),
        sync_rounds=timeline.sync_rounds,
        local_steps=timeline.local_steps,
        ps_updates=timeline.ps_updates,
        staleness_mean=timeline.mean_staleness,
        staleness_max=timeline.staleness_max,
        extra=extra,
    )


def run_method_comparison(
    config: ExperimentConfig,
    methods: Optional[Sequence[MethodSpec]] = None,
    jobs: int = 1,
    store=None,
) -> Dict[str, ExperimentResult]:
    """Run the same workload under several methods (defaults to the paper's five).

    The comparison is one campaign over the method axis, executed by the
    :mod:`repro.campaign` runner: ``jobs > 1`` trains the methods in parallel
    worker processes, and an optional :class:`~repro.campaign.store.ResultStore`
    serves unchanged cells from cache.  A failing cell re-raises its error (the
    pre-campaign behaviour of the plain loop this used to be).
    """
    # Imported lazily: repro.campaign builds on this module.
    from repro.campaign.runner import run_campaign  # noqa: PLC0415
    from repro.campaign.spec import CampaignCell  # noqa: PLC0415

    methods = list(methods) if methods is not None else list(PAPER_METHODS.values())
    cells = [CampaignCell(config=config, method=method) for method in methods]
    report = run_campaign(cells, store=store, jobs=jobs)
    report.raise_failures()
    return {outcome.result.method: outcome.result for outcome in report.outcomes}
