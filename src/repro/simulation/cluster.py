"""Cluster specification.

A :class:`ClusterSpec` bundles everything the experiment driver needs to know
about "where" training runs: how many workers, what device they compute on and
what network connects them.  The default reproduces the paper's testbed —
eight workers behind the Fig. 4 topology with a configurable WAN bottleneck.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.comm.network import NetworkModel, PAPER_BANDWIDTHS, LinkSpec
from repro.comm.process_group import ProcessGroup
from repro.comm.topology import ClusterTopology, build_paper_topology
from repro.simulation.compute import ComputeModel, DeviceSpec


@dataclass
class ClusterSpec:
    """Description of the simulated training cluster.

    Attributes
    ----------
    world_size:
        Number of training workers (the paper uses 8).
    bandwidth:
        Bottleneck bandwidth: either one of the paper's named settings
        (``"100Mbps"``, ``"500Mbps"``, ``"1Gbps"``) or a float in bytes/second.
    device:
        Device preset name or :class:`DeviceSpec` for the compute model.
    latency:
        Per-message latency of the bottleneck link, in seconds.
    """

    world_size: int = 8
    bandwidth: Union[str, float] = "1Gbps"
    device: Union[str, DeviceSpec] = "sim-gpu"
    #: Per-message latency of the bottleneck link.  The default (100 us) keeps
    #: the mini models in the same bandwidth-bound regime as the paper's
    #: full-size models; see DESIGN.md (Substitutions).
    latency: float = 1e-4
    sparse_compute_speedup: bool = False

    def __post_init__(self) -> None:
        if self.world_size < 1:
            raise ValueError("world_size must be >= 1")

    # ------------------------------------------------------------------ #
    def bandwidth_bytes_per_second(self) -> float:
        if isinstance(self.bandwidth, str):
            if self.bandwidth not in PAPER_BANDWIDTHS:
                raise KeyError(
                    f"unknown bandwidth setting {self.bandwidth!r}; options: {sorted(PAPER_BANDWIDTHS)}"
                )
            return PAPER_BANDWIDTHS[self.bandwidth]
        return float(self.bandwidth)

    def network_model(self) -> NetworkModel:
        """Alpha-beta model of the bottleneck implied by this cluster."""
        return NetworkModel.from_bandwidth(
            self.world_size, self.bandwidth_bytes_per_second(), latency=self.latency
        )

    def topology(self) -> ClusterTopology:
        """Fig. 4 topology with the requested bottleneck bandwidth."""
        return build_paper_topology(
            wan_bandwidth=self.bandwidth_bytes_per_second(),
            wan_latency=self.latency,
            num_servers=self.world_size,
        )

    def process_group(self) -> ProcessGroup:
        """Process group whose collectives are costed by this cluster's network."""
        return ProcessGroup(self.world_size, self.network_model())

    def compute_model(self) -> ComputeModel:
        return ComputeModel(self.device, sparse_speedup=self.sparse_compute_speedup)

    # ------------------------------------------------------------------ #
    def describe(self) -> dict:
        bandwidth = self.bandwidth_bytes_per_second()
        return {
            "world_size": self.world_size,
            "bandwidth_mbps": bandwidth * 8 / 1e6,
            "latency_ms": self.latency * 1e3,
            "device": self.device if isinstance(self.device, str) else self.device.name,
        }
