"""Cluster specification.

A :class:`ClusterSpec` bundles everything the experiment driver needs to know
about "where" training runs: how many workers, what device they compute on and
what network connects them.  The default reproduces the paper's testbed —
eight homogeneous workers behind the Fig. 4 topology with a configurable WAN
bottleneck, no compute/comm overlap and a flat (single-bottleneck) collective
cost model, which keeps every pre-engine figure bit-identical.

Heterogeneity knobs (all optional):

* ``devices`` — one device preset / :class:`DeviceSpec` per worker;
* ``straggler`` — compute-time multiplier for the last worker (2.0 = twice as
  slow), the simplest one-straggler scenario;
* ``straggler_factors`` — full per-worker multiplier list, overriding
  ``straggler``;
* ``overlap`` — schedule each gradient bucket's collective the moment its
  gradients are ready (the event-driven engine's per-bucket overlap model);
* ``hierarchical`` — cost collectives per switch group over the Fig. 4
  topology instead of through one flat bottleneck link;
* ``faults`` — a :class:`~repro.simulation.faults.FaultPlan` of rank
  crashes/re-joins, time-varying link degradation and straggler churn,
  interpreted on the simulated clock by the training driver.  ``None`` (the
  default) is inert: runs are bit-identical to a faultless cluster.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from repro.comm.network import CostModel, NetworkModel, PAPER_BANDWIDTHS
from repro.comm.process_group import ProcessGroup
from repro.comm.topology import ClusterTopology, build_paper_topology
from repro.simulation.compute import ComputeModel, DeviceSpec
from repro.simulation.faults import EMPTY_FAULT_PLAN, FaultPlan


@dataclass
class ClusterSpec:
    """Description of the simulated training cluster.

    Attributes
    ----------
    world_size:
        Number of training workers (the paper uses 8).
    bandwidth:
        Bottleneck bandwidth: either one of the paper's named settings
        (``"100Mbps"``, ``"500Mbps"``, ``"1Gbps"``) or a float in bytes/second.
    device:
        Device preset name or :class:`DeviceSpec` for the compute model,
        shared by all workers unless ``devices`` is given.
    latency:
        Per-message latency of the bottleneck link, in seconds.
    """

    world_size: int = 8
    bandwidth: Union[str, float] = "1Gbps"
    device: Union[str, DeviceSpec] = "sim-gpu"
    #: Per-message latency of the bottleneck link.  The default (100 us) keeps
    #: the mini models in the same bandwidth-bound regime as the paper's
    #: full-size models.
    latency: float = 1e-4
    sparse_compute_speedup: bool = False
    #: Per-worker device list (length ``world_size``); overrides ``device``.
    devices: Optional[Sequence[Union[str, DeviceSpec]]] = None
    #: Compute-time multiplier for the *last* worker (>= any value > 0); 1.0
    #: keeps the cluster homogeneous.
    straggler: float = 1.0
    #: Per-worker compute-time multipliers (length ``world_size``); overrides
    #: ``straggler``.
    straggler_factors: Optional[Sequence[float]] = None
    #: Schedule per-bucket collectives as soon as their gradients are ready
    #: (event-driven overlap).  Off by default: the seed time model.
    overlap: bool = False
    #: Cost collectives hierarchically per switch group of the Fig. 4
    #: topology instead of over one flat bottleneck link.
    hierarchical: bool = False
    #: Fault-injection scenario for this cluster, on the simulated clock.
    #: ``None`` (default) is a healthy static cluster — bit-identical to the
    #: pre-fault engine.  Accepts a :class:`~repro.simulation.faults.FaultPlan`,
    #: a dict (``FaultPlan.from_dict``), or a compact grammar string::
    #:
    #:     crash:R@T          rank R dies at simulated time T
    #:     rejoin:R@T         rank R re-joins at simulated time T
    #:     link:F@T0-T1       link bandwidth x F in [T0, T1) (omit -T1: forever)
    #:     churn:P[:F[:S]]    per-iteration straggler churn (prob P, factor F,
    #:                        seed S), counter-based and seed-deterministic
    #:     policy:carry|zero  EF-residual policy on membership change
    #:
    #: tokens comma-separated, e.g. ``"crash:3@0.5,rejoin:3@2.0,link:0.25@1.0"``.
    #: Also a campaign axis (``"faults": ["", "crash:3@0.5,rejoin:3@2.0"]``).
    faults: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        if self.world_size < 1:
            raise ValueError("world_size must be >= 1")
        if self.devices is not None and len(self.devices) != self.world_size:
            raise ValueError(
                f"devices must list one entry per worker ({self.world_size}), got {len(self.devices)}"
            )
        if self.straggler <= 0:
            raise ValueError("straggler factor must be positive")
        if self.straggler_factors is not None:
            if len(self.straggler_factors) != self.world_size:
                raise ValueError(
                    f"straggler_factors must list one entry per worker ({self.world_size}), "
                    f"got {len(self.straggler_factors)}"
                )
            if any(f <= 0 for f in self.straggler_factors):
                raise ValueError("straggler factors must be positive")
        if self.faults == "":
            # The empty campaign-axis value: identical to "no faults", so the
            # two spell the same fingerprint.
            self.faults = None
        self.faults = FaultPlan.coerce(self.faults)
        if self.faults is not None:
            self.faults.validate_for_world(self.world_size)

    # ------------------------------------------------------------------ #
    def bandwidth_bytes_per_second(self) -> float:
        if isinstance(self.bandwidth, str):
            if self.bandwidth not in PAPER_BANDWIDTHS:
                raise KeyError(
                    f"unknown bandwidth setting {self.bandwidth!r}; options: {sorted(PAPER_BANDWIDTHS)}"
                )
            return PAPER_BANDWIDTHS[self.bandwidth]
        return float(self.bandwidth)

    def network_model(self) -> NetworkModel:
        """Flat alpha-beta model of the bottleneck implied by this cluster."""
        return NetworkModel.from_bandwidth(
            self.world_size, self.bandwidth_bytes_per_second(), latency=self.latency
        )

    def topology(self) -> ClusterTopology:
        """Fig. 4 topology with the requested bottleneck bandwidth."""
        return build_paper_topology(
            wan_bandwidth=self.bandwidth_bytes_per_second(),
            wan_latency=self.latency,
            num_servers=self.world_size,
        )

    def cost_model(self) -> CostModel:
        """Collective cost backend: flat by default, per-switch-group when
        ``hierarchical`` is set."""
        if self.hierarchical:
            return self.topology().cost_model()
        return self.network_model()

    def cost_model_for(
        self, world_size: Optional[int] = None, bandwidth_factor: float = 1.0
    ) -> CostModel:
        """Cost model for a (possibly degraded) view of this cluster.

        ``world_size`` restricts to the surviving membership size and
        ``bandwidth_factor`` scales the bottleneck (a fault plan's
        time-varying link factor).  The defaults reproduce
        :meth:`cost_model` exactly — a 1.0 factor preserves the bandwidth
        bits — so faultless callers can route through this unconditionally.
        """
        n = self.world_size if world_size is None else world_size
        bandwidth = self.bandwidth_bytes_per_second() * bandwidth_factor
        if self.hierarchical:
            return build_paper_topology(
                wan_bandwidth=bandwidth, wan_latency=self.latency, num_servers=n
            ).cost_model()
        return NetworkModel.from_bandwidth(n, bandwidth, latency=self.latency)

    def fault_plan(self) -> FaultPlan:
        """The cluster's fault plan (the shared inert plan when unset)."""
        return self.faults if self.faults is not None else EMPTY_FAULT_PLAN

    def process_group(self) -> ProcessGroup:
        """Process group whose collectives are costed by this cluster's network."""
        return ProcessGroup(self.world_size, self.cost_model())

    # ------------------------------------------------------------------ #
    # Compute heterogeneity
    # ------------------------------------------------------------------ #
    def compute_model(self) -> ComputeModel:
        return ComputeModel(self.device, sparse_speedup=self.sparse_compute_speedup)

    def compute_models(self) -> List[ComputeModel]:
        """One compute model per worker (heterogeneous if ``devices`` is set)."""
        if self.devices is None:
            return [self.compute_model()] * self.world_size
        return [
            ComputeModel(device, sparse_speedup=self.sparse_compute_speedup)
            for device in self.devices
        ]

    def straggler_multipliers(self) -> List[float]:
        """Per-worker compute-time multipliers (1.0 everywhere when homogeneous)."""
        if self.straggler_factors is not None:
            return [float(f) for f in self.straggler_factors]
        factors = [1.0] * self.world_size
        factors[-1] = float(self.straggler)
        return factors

    @property
    def is_heterogeneous(self) -> bool:
        """Whether any worker computes at a different speed than the others."""
        if self.devices is not None and len(set(map(str, self.devices))) > 1:
            return True
        multipliers = self.straggler_multipliers()
        return any(m != multipliers[0] for m in multipliers)

    def per_rank_iteration_times(
        self,
        model,
        input_shape: Tuple[int, int, int],
        batch_size: int,
        weight_sparsity: float = 0.0,
    ) -> List[float]:
        """Modeled forward+backward seconds for each worker.

        For a homogeneous cluster every entry is exactly the shared
        ``compute_model().iteration_time(...)`` value (multiplying by the 1.0
        straggler factor preserves the bits), so the engine's ``max`` over
        ranks reproduces the seed's single compute term bit-identically.
        """
        multipliers = self.straggler_multipliers()
        if self.devices is None:
            base = self.compute_model().iteration_time(
                model, input_shape, batch_size, weight_sparsity=weight_sparsity
            )
            return [base * multiplier for multiplier in multipliers]
        return [
            compute.iteration_time(model, input_shape, batch_size, weight_sparsity=weight_sparsity)
            * multiplier
            for compute, multiplier in zip(self.compute_models(), multipliers)
        ]

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """JSON-ready dict that :meth:`from_dict` restores exactly.

        ``DeviceSpec`` entries become nested dicts; preset names stay strings,
        so the round trip preserves how the device was specified (the campaign
        store hashes this representation).
        """

        def _device(value: Union[str, DeviceSpec]) -> Union[str, dict]:
            return value if isinstance(value, str) else value.to_dict()

        return {
            "world_size": self.world_size,
            "bandwidth": self.bandwidth,
            "device": _device(self.device),
            "latency": self.latency,
            "sparse_compute_speedup": self.sparse_compute_speedup,
            "devices": None if self.devices is None else [_device(d) for d in self.devices],
            "straggler": self.straggler,
            "straggler_factors": (
                None if self.straggler_factors is None else [float(f) for f in self.straggler_factors]
            ),
            "overlap": self.overlap,
            "hierarchical": self.hierarchical,
            "faults": None if self.faults is None else self.faults.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ClusterSpec":
        def _device(value) -> Union[str, DeviceSpec]:
            return DeviceSpec.from_dict(value) if isinstance(value, dict) else value

        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise KeyError(f"unknown ClusterSpec fields {sorted(unknown)}; known: {sorted(known)}")
        kwargs = dict(data)
        if kwargs.get("device") is not None:
            kwargs["device"] = _device(kwargs["device"])
        if kwargs.get("devices") is not None:
            kwargs["devices"] = [_device(d) for d in kwargs["devices"]]
        return cls(**kwargs)

    # ------------------------------------------------------------------ #
    def describe(self) -> dict:
        bandwidth = self.bandwidth_bytes_per_second()
        return {
            "world_size": self.world_size,
            "bandwidth_mbps": bandwidth * 8 / 1e6,
            "latency_ms": self.latency * 1e3,
            "device": self.device if isinstance(self.device, str) else self.device.name,
            "overlap": self.overlap,
            "hierarchical": self.hierarchical,
            "heterogeneous": self.is_heterogeneous,
            "straggler_factors": self.straggler_multipliers(),
        }
