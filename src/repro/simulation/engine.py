"""Discrete-event simulation engine for one training iteration.

The seed time model summed two scalars per iteration (``compute + comm``),
which cannot express the two effects the paper's testbed is built around:

* DDP's reverse-order gradient bucketing exists precisely so that the
  collective for a *late* bucket (early in reverse order — the classifier
  head) overlaps with the backward computation of *early* layers;
* heterogeneous (straggler) workers make the iteration finish at the slowest
  rank, not at an average.

This module replaces the scalar sum with an event-driven schedule:

* :class:`EventHeap` — a deterministic min-heap of :class:`SimEvent` objects
  (ties broken by insertion order, so runs are reproducible);
* :class:`LinkChannel` — occupancy of the shared communication channel (one
  in-flight collective at a time, matching NCCL's single comm stream);
* per-rank clocks — every rank finishes its backward pass at its own time,
  and a bucket's collective becomes *ready* only when the slowest rank has
  produced that bucket's gradients;
* :class:`SimulationEngine` — runs the heap to completion and emits an
  :class:`IterationTrace` with the compute/comm/overlap/straggler breakdown.

Equivalence guarantee: with ``overlap=False`` the engine reports
``wall_time = compute_span + comm_busy`` where ``comm_busy`` is the flat sum
of the collective times in issue order — bit-identical to the seed model, so
all pre-refactor figures remain valid.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple


# --------------------------------------------------------------------------- #
# Events
# --------------------------------------------------------------------------- #
#: Event kinds, in the order they may legally occur for one bucket.
RANK_DONE = "rank_done"          # one rank finished its full backward pass
BUCKET_READY = "bucket_ready"    # all ranks produced one bucket's gradients
COMM_START = "comm_start"        # the bucket's collective left the queue
COMM_END = "comm_end"            # the bucket's collective completed


@dataclass(frozen=True)
class SimEvent:
    """One timestamped occurrence inside the engine."""

    time: float
    kind: str
    rank: int = -1       # RANK_DONE only
    bucket: int = -1     # bucket-scoped kinds only


class EventHeap:
    """Min-heap of :class:`SimEvent` with deterministic tie-breaking.

    Events at equal times pop in insertion order (a monotone sequence number
    is part of the heap key), so the schedule — and therefore every reported
    time — is reproducible run to run.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, SimEvent]] = []
        self._seq = 0

    def push(self, event: SimEvent) -> None:
        if event.time < 0:
            raise ValueError("event time must be non-negative")
        heapq.heappush(self._heap, (event.time, self._seq, event))
        self._seq += 1

    def pop(self) -> SimEvent:
        if not self._heap:
            raise IndexError("pop from empty event heap")
        return heapq.heappop(self._heap)[2]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class LinkChannel:
    """Occupancy of the shared communication channel.

    Collectives serialise: a transfer admitted while the channel is busy
    starts when the channel frees up.  ``acquire`` returns the actual
    ``(start, end)`` interval and advances the channel clock.
    """

    def __init__(self) -> None:
        self.available_at = 0.0
        self.busy_seconds = 0.0

    def acquire(self, ready_time: float, duration: float) -> Tuple[float, float]:
        if duration < 0:
            raise ValueError("duration must be non-negative")
        start = max(ready_time, self.available_at)
        end = start + duration
        self.available_at = end
        self.busy_seconds += duration
        return start, end


# --------------------------------------------------------------------------- #
# Traces
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class BucketTrace:
    """Timeline of one gradient bucket's collective within an iteration."""

    index: int
    ready_time: float     # slowest rank produced this bucket's gradients
    start_time: float     # collective admitted onto the channel
    end_time: float       # collective completed
    comm_seconds: float   # channel busy time of the bucket's collective(s)

    @property
    def queue_delay(self) -> float:
        """Time the ready bucket waited for the channel."""
        return self.start_time - self.ready_time


@dataclass
class IterationTrace:
    """Compute/comm/overlap/straggler breakdown of one training iteration."""

    per_rank_compute: List[float]
    compute_span: float       # slowest rank's compute (the compute critical path)
    comm_busy: float          # sum of collective busy times (issue order)
    wall_time: float          # iteration end = last event on the critical path
    overlap_saved: float      # (compute_span + comm_busy) - wall_time, >= 0
    straggler_slack: float    # compute_span - fastest rank's compute
    buckets: List[BucketTrace] = field(default_factory=list)

    @property
    def overlap_fraction(self) -> float:
        """Fraction of communication hidden behind backward compute."""
        return self.overlap_saved / self.comm_busy if self.comm_busy > 0 else 0.0

    @property
    def comm_exposed(self) -> float:
        """Communication time actually visible on the critical path."""
        return self.comm_busy - self.overlap_saved


# --------------------------------------------------------------------------- #
# Engine
# --------------------------------------------------------------------------- #
class SimulationEngine:
    """Event-driven scheduler for one iteration's compute and collectives.

    Parameters
    ----------
    overlap:
        When ``True``, each bucket's collective is admitted the moment the
        slowest rank has produced that bucket's gradients (real DDP overlap).
        When ``False``, every bucket waits for the full backward pass of
        every rank — reproducing the seed ``compute + comm`` model
        bit-identically.
    """

    def __init__(self, overlap: bool = True) -> None:
        self.overlap = overlap

    def run_local_iteration(self, per_rank_compute: Sequence[float]) -> IterationTrace:
        """Schedule one communication-free iteration (local-SGD inner step).

        Zero buckets is a valid schedule — the wall time is just the slowest
        rank's backward pass — so local steps flow through the same trace
        bookkeeping (straggler slack, per-rank clocks) as synchronised ones.
        """
        return self.run_iteration(per_rank_compute, [], [])

    def run_iteration(
        self,
        per_rank_compute: Sequence[float],
        bucket_fractions: Sequence[float],
        bucket_comm_times: Sequence[float],
    ) -> IterationTrace:
        """Schedule one iteration and return its trace.

        Parameters
        ----------
        per_rank_compute:
            Seconds of forward+backward compute per rank (heterogeneous ranks
            pass different values).
        bucket_fractions:
            Cumulative completion fraction of the pass at which each bucket's
            gradients are ready, in bucket (reverse-parameter) order; the last
            entry must be ``1.0``.  Rank ``r``'s bucket ``b`` is ready at
            ``per_rank_compute[r] * bucket_fractions[b]``.
        bucket_comm_times:
            Channel busy seconds of each bucket's collective(s), same order.
        """
        if len(bucket_fractions) != len(bucket_comm_times):
            raise ValueError("need one completion fraction per bucket")
        if not per_rank_compute:
            raise ValueError("need at least one rank")
        for value in per_rank_compute:
            if value < 0:
                raise ValueError("compute times must be non-negative")
        for value in bucket_comm_times:
            if value < 0:
                raise ValueError("comm times must be non-negative")
        previous = 0.0
        for fraction in bucket_fractions:
            if not previous <= fraction <= 1.0:
                raise ValueError("bucket fractions must be non-decreasing and <= 1.0")
            previous = fraction

        compute = list(per_rank_compute)
        compute_span = max(compute)
        straggler_slack = compute_span - min(compute)
        # Flat float sum in issue order: bit-identical to the seed's
        # ``sum(e.time_seconds for e in events)``.
        comm_busy = float(sum(bucket_comm_times))

        if not self.overlap:
            # Serial fast path — the schedule is fully determined (every
            # bucket ready at the backward end, collectives back to back), so
            # skip the heap and emit the identical trace directly.  This is
            # also the bit-identical-to-seed case: wall = compute + flat sum.
            traces = []
            clock = compute_span
            for index, duration in enumerate(bucket_comm_times):
                traces.append(
                    BucketTrace(
                        index=index,
                        ready_time=compute_span,
                        start_time=clock,
                        end_time=clock + duration,
                        comm_seconds=duration,
                    )
                )
                clock += duration
            return IterationTrace(
                per_rank_compute=compute,
                compute_span=compute_span,
                comm_busy=comm_busy,
                wall_time=compute_span + comm_busy,
                overlap_saved=0.0,
                straggler_slack=straggler_slack,
                buckets=traces,
            )

        heap = EventHeap()
        channel = LinkChannel()
        num_buckets = len(bucket_comm_times)

        # Per-rank clocks: when each rank finishes each bucket's gradients.
        for rank, total in enumerate(compute):
            for index, fraction in enumerate(bucket_fractions):
                heap.push(SimEvent(time=total * fraction, kind=RANK_DONE, rank=rank, bucket=index))

        pending: Dict[int, int] = {index: len(compute) for index in range(num_buckets)}
        ready_times: Dict[int, float] = {}
        traces: List[BucketTrace] = []
        next_to_launch = 0
        wall = compute_span

        while heap:
            event = heap.pop()
            if event.kind == RANK_DONE:
                pending[event.bucket] -= 1
                if pending[event.bucket] == 0:
                    ready_times[event.bucket] = event.time
                    heap.push(SimEvent(time=event.time, kind=BUCKET_READY, bucket=event.bucket))
            elif event.kind == BUCKET_READY:
                # Collectives launch in bucket order on the single channel,
                # matching NCCL's in-order launch on one comm stream.  Bucket
                # ready times are monotone in the index (fractions are
                # non-decreasing), so the next bucket is always the popped one.
                while next_to_launch < num_buckets and next_to_launch in ready_times:
                    index = next_to_launch
                    start, end = channel.acquire(ready_times[index], bucket_comm_times[index])
                    traces.append(
                        BucketTrace(
                            index=index,
                            ready_time=ready_times[index],
                            start_time=start,
                            end_time=end,
                            comm_seconds=bucket_comm_times[index],
                        )
                    )
                    heap.push(SimEvent(time=end, kind=COMM_END, bucket=index))
                    next_to_launch += 1
            elif event.kind == COMM_END:
                wall = max(wall, event.time)

        wall_time = wall
        overlap_saved = max(0.0, compute_span + comm_busy - wall_time)

        return IterationTrace(
            per_rank_compute=compute,
            compute_span=compute_span,
            comm_busy=comm_busy,
            wall_time=wall_time,
            overlap_saved=overlap_saved,
            straggler_slack=straggler_slack,
            buckets=traces,
        )
