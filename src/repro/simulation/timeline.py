"""Training timeline: accumulation of modeled compute and communication time.

The timeline is fed one :class:`~repro.simulation.engine.IterationTrace` per
iteration by the experiment driver.  Three accumulators decompose the run:

* ``compute_time`` — the compute critical path (slowest rank per iteration);
* ``comm_time`` — collective busy time (what the collectives cost end to end);
* ``overlap_saved`` — communication hidden behind backward compute by the
  event-driven engine's per-bucket schedule.

``total_time = compute_time + comm_time - overlap_saved``: with overlap
disabled every trace reports ``overlap_saved == 0.0`` and the total reduces
bit-identically to the seed ``compute + comm`` model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.simulation.engine import IterationTrace


@dataclass
class EpochRecord:
    """Snapshot taken at the end of one training epoch."""

    epoch: int
    simulated_time: float
    train_loss: float
    test_accuracy: float
    comm_time: float
    compute_time: float
    comm_bytes_per_worker: float
    overlap_saved: float = 0.0
    straggler_time: float = 0.0


class TrainingTimeline:
    """Accumulates modeled time and per-epoch snapshots for one training run.

    Compute on the simulated ranks happens in parallel, so one iteration adds
    a *single* compute-time term (the slowest rank's) plus the communication
    time of that iteration's collectives, minus whatever communication the
    engine managed to hide behind backward compute.
    """

    def __init__(self) -> None:
        self.compute_time = 0.0
        self.comm_time = 0.0
        self.comm_bytes_per_worker = 0.0
        self.overlap_saved = 0.0
        self.straggler_time = 0.0
        self.iterations = 0
        self.epochs: List[EpochRecord] = []
        self.traces: List[IterationTrace] = []
        # Fault/recovery accounting (all 0.0 on a healthy cluster, in which
        # case total_time reduces bit-identically to the pre-fault model).
        #: Simulated seconds spent re-synchronising re-joining ranks (state
        #: broadcast); part of :attr:`total_time`.
        self.rejoin_cost_time = 0.0
        #: Rank-seconds of capacity lost to dead ranks (sum over iterations
        #: of dead-rank count x iteration wall time).
        self.downtime_rank_seconds = 0.0
        #: Iterations that ran over a shrunken membership.
        self.degraded_iterations = 0
        #: Fault events interpreted so far (crashes, re-joins, link changes).
        self.fault_events = 0
        # Regime accounting (all zero on the synchronous path, in which case
        # total_time reduces bit-identically to the pre-regime model).
        #: Averaging collectives run by the local-SGD regime.
        self.sync_rounds = 0
        #: Local (communication-free) optimiser steps taken between collectives.
        self.local_steps = 0
        #: Parameter-server updates applied by the async regime.
        self.ps_updates = 0
        #: Sum / max of per-update staleness (server updates applied between a
        #: worker's parameter pull and its gradient's application).
        self.staleness_sum = 0.0
        self.staleness_max = 0
        #: Async idle time: simulated seconds the event clock advanced beyond
        #: the busy compute+comm accumulators (blocked-on-staleness waits and
        #: channel queueing in parameter-server mode); part of
        #: :attr:`total_time`.
        self.async_wait_time = 0.0

    # ------------------------------------------------------------------ #
    @property
    def total_time(self) -> float:
        return (
            self.compute_time
            + self.comm_time
            - self.overlap_saved
            + self.rejoin_cost_time
            + self.async_wait_time
        )

    def goodput_fraction(self, world_size: int) -> float:
        """Productive capacity fraction: 1 minus downtime and re-join overhead.

        ``1.0`` on a healthy run; under faults, the fraction of the cluster's
        rank-seconds that went into training rather than being lost to dead
        ranks or re-join synchronisation.
        """
        total = self.total_time
        if total <= 0.0 or world_size <= 0:
            return 1.0
        capacity = total * world_size
        lost = self.downtime_rank_seconds + self.rejoin_cost_time * world_size
        return max(0.0, 1.0 - lost / capacity)

    def add_rejoin_cost(self, seconds: float) -> None:
        """Charge the simulated cost of re-integrating a re-joined rank."""
        if seconds < 0:
            raise ValueError("rejoin cost must be non-negative")
        self.rejoin_cost_time += seconds

    @property
    def overlap_fraction(self) -> float:
        """Fraction of all communication hidden behind backward compute."""
        return self.overlap_saved / self.comm_time if self.comm_time > 0 else 0.0

    def critical_path_time(self) -> float:
        """Sum of per-iteration critical paths (wall time of each schedule).

        Falls back to :attr:`total_time` when no traces were recorded (e.g.
        when iterations are added through the legacy scalar interface).
        """
        if not self.traces:
            return self.total_time
        return float(sum(trace.wall_time for trace in self.traces))

    def add_iteration(
        self,
        compute_seconds: float,
        comm_seconds: float,
        comm_bytes: float = 0.0,
        trace: Optional[IterationTrace] = None,
    ) -> None:
        if compute_seconds < 0 or comm_seconds < 0:
            raise ValueError("iteration times must be non-negative")
        self.compute_time += compute_seconds
        self.comm_time += comm_seconds
        self.comm_bytes_per_worker += comm_bytes
        if trace is not None:
            self.overlap_saved += trace.overlap_saved
            self.straggler_time += trace.straggler_slack
            self.traces.append(trace)
        self.iterations += 1

    def add_sync_round(self, comm_seconds: float, comm_bytes: float = 0.0) -> None:
        """Charge one averaging collective that is not tied to an iteration.

        Local SGD flushes a partially filled window at the epoch boundary so
        evaluation sees the averaged model; that collective costs time and
        bytes but does not advance the iteration count.
        """
        if comm_seconds < 0 or comm_bytes < 0:
            raise ValueError("sync round cost must be non-negative")
        self.comm_time += comm_seconds
        self.comm_bytes_per_worker += comm_bytes
        self.sync_rounds += 1

    def record_staleness(self, staleness: int) -> None:
        """Record one parameter-server update's measured staleness."""
        if staleness < 0:
            raise ValueError("staleness must be non-negative")
        self.ps_updates += 1
        self.staleness_sum += staleness
        if staleness > self.staleness_max:
            self.staleness_max = staleness

    @property
    def mean_staleness(self) -> float:
        return self.staleness_sum / self.ps_updates if self.ps_updates else 0.0

    def reconcile_async_total(self, final_time: float) -> None:
        """Pin :attr:`total_time` to the async event clock.

        The parameter-server loop accumulates per-update compute and comm
        busy time, but the run's end-to-end duration is the event clock —
        overlapping updates make it shorter than the busy sum, staleness
        blocking makes it longer.  The difference lands in
        :attr:`overlap_saved` or :attr:`async_wait_time` so the standard
        decomposition still adds up.
        """
        if final_time < 0:
            raise ValueError("final time must be non-negative")
        busy = self.compute_time + self.comm_time + self.rejoin_cost_time
        self.overlap_saved = max(0.0, busy - final_time)
        self.async_wait_time = max(0.0, final_time - busy)

    def note_degraded_iteration(self, dead_ranks: int, wall_seconds: float) -> None:
        """Account one iteration that ran with ``dead_ranks`` workers down."""
        if dead_ranks > 0:
            self.degraded_iterations += 1
            self.downtime_rank_seconds += dead_ranks * wall_seconds

    def snapshot_epoch(self, epoch: int, train_loss: float, test_accuracy: float) -> EpochRecord:
        record = EpochRecord(
            epoch=epoch,
            simulated_time=self.total_time,
            train_loss=train_loss,
            test_accuracy=test_accuracy,
            comm_time=self.comm_time,
            compute_time=self.compute_time,
            comm_bytes_per_worker=self.comm_bytes_per_worker,
            overlap_saved=self.overlap_saved,
            straggler_time=self.straggler_time,
        )
        self.epochs.append(record)
        return record

    # ------------------------------------------------------------------ #
    def accuracy_trace(self) -> List[tuple]:
        """(simulated_time, test_accuracy) pairs, one per recorded epoch."""
        return [(record.simulated_time, record.test_accuracy) for record in self.epochs]

    def time_to_accuracy(self, target_accuracy: float) -> Optional[float]:
        """Earliest simulated time at which the target accuracy was reached."""
        for record in self.epochs:
            if record.test_accuracy >= target_accuracy:
                return record.simulated_time
        return None

    def best_accuracy(self) -> float:
        return max((record.test_accuracy for record in self.epochs), default=0.0)

    def final_accuracy(self) -> float:
        return self.epochs[-1].test_accuracy if self.epochs else 0.0
