"""Training timeline: accumulation of modeled compute and communication time."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class EpochRecord:
    """Snapshot taken at the end of one training epoch."""

    epoch: int
    simulated_time: float
    train_loss: float
    test_accuracy: float
    comm_time: float
    compute_time: float
    comm_bytes_per_worker: float


class TrainingTimeline:
    """Accumulates modeled time and per-epoch snapshots for one training run.

    Compute on the simulated ranks happens in parallel, so one iteration adds
    a *single* compute-time term (all ranks take the same modeled time) plus
    the communication time of that iteration's collectives.
    """

    def __init__(self) -> None:
        self.compute_time = 0.0
        self.comm_time = 0.0
        self.comm_bytes_per_worker = 0.0
        self.iterations = 0
        self.epochs: List[EpochRecord] = []

    # ------------------------------------------------------------------ #
    @property
    def total_time(self) -> float:
        return self.compute_time + self.comm_time

    def add_iteration(self, compute_seconds: float, comm_seconds: float, comm_bytes: float = 0.0) -> None:
        if compute_seconds < 0 or comm_seconds < 0:
            raise ValueError("iteration times must be non-negative")
        self.compute_time += compute_seconds
        self.comm_time += comm_seconds
        self.comm_bytes_per_worker += comm_bytes
        self.iterations += 1

    def snapshot_epoch(self, epoch: int, train_loss: float, test_accuracy: float) -> EpochRecord:
        record = EpochRecord(
            epoch=epoch,
            simulated_time=self.total_time,
            train_loss=train_loss,
            test_accuracy=test_accuracy,
            comm_time=self.comm_time,
            compute_time=self.compute_time,
            comm_bytes_per_worker=self.comm_bytes_per_worker,
        )
        self.epochs.append(record)
        return record

    # ------------------------------------------------------------------ #
    def accuracy_trace(self) -> List[tuple]:
        """(simulated_time, test_accuracy) pairs, one per recorded epoch."""
        return [(record.simulated_time, record.test_accuracy) for record in self.epochs]

    def time_to_accuracy(self, target_accuracy: float) -> Optional[float]:
        """Earliest simulated time at which the target accuracy was reached."""
        for record in self.epochs:
            if record.test_accuracy >= target_accuracy:
                return record.simulated_time
        return None

    def best_accuracy(self) -> float:
        return max((record.test_accuracy for record in self.epochs), default=0.0)

    def final_accuracy(self) -> float:
        return self.epochs[-1].test_accuracy if self.epochs else 0.0
