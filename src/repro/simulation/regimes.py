"""Training-regime schedules: synchronous, local-SGD and async parameter server.

A :class:`SyncSchedule` describes *when* the simulated ranks synchronise —
orthogonally to *what* they put on the wire (the compressor spec).  It is
carried as a compact string on :class:`~repro.simulation.experiment.MethodSpec`
(``sync_schedule``), making the regime a first-class campaign axis, and parsed
with the same registry-of-parsers style as the codec spec grammar
(:func:`repro.compression.codec.parse_compressor_spec`).

Grammar (case-insensitive; ``None`` and ``""`` mean the synchronous default)::

    sync                synchronous data-parallel (the historical behaviour)
    localsgd:H          local SGD / periodic averaging: every rank takes H
                        local optimiser steps, then the replicas are averaged
                        (dense fp32 parameter all-reduce)
    localsgd:H:delta    ... but the collective compresses each rank's *model
                        delta* (parameters minus the last synced state)
                        through the method's codec pipeline — error feedback,
                        elastic residual resizing and wire-byte accounting all
                        compose exactly as they do for gradients
    ps[:S]              stale-gradient asynchronous parameter server: workers
                        pull parameters and push compressed gradients with no
                        barrier; ``S`` bounds the progress skew between the
                        fastest and slowest worker (stale synchronous
                        parallel), unbounded when omitted

``localsgd:1`` (with or without ``:delta``) *is* synchronous training — a
collective after every single local step leaves nothing to accumulate — so the
driver routes it through the unmodified synchronous path.  The regime-parity
tests pin this bit-identically for every golden method.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.nn import SGD
from repro.nn.module import Module

__all__ = [
    "SyncSchedule",
    "parse_sync_schedule",
    "register_regime",
    "REGIME_PARSERS",
    "ReplicaSet",
    "TrainingCheckpoint",
]

#: The regimes the training driver knows how to interpret.
KNOWN_REGIMES = ("sync", "localsgd", "ps")


@dataclass(frozen=True)
class SyncSchedule:
    """One parsed synchronisation schedule (see module docstring).

    ``period`` is the local-SGD averaging period H (always 1 outside the
    local-SGD regime); ``delta`` selects model-delta compression at the
    averaging collective; ``staleness`` is the async-PS progress-skew bound
    (``None`` = unbounded).
    """

    regime: str = "sync"
    period: int = 1
    delta: bool = False
    staleness: Optional[int] = None

    def __post_init__(self) -> None:
        if self.regime not in KNOWN_REGIMES:
            raise ValueError(
                f"unknown training regime {self.regime!r}; known: {KNOWN_REGIMES}"
            )
        if not isinstance(self.period, int) or self.period < 1:
            raise ValueError(f"sync period must be an integer >= 1, got {self.period!r}")
        if self.regime != "localsgd":
            if self.period != 1:
                raise ValueError(f"period only applies to localsgd, got {self.regime}:{self.period}")
            if self.delta:
                raise ValueError(f"delta mode only applies to localsgd, got regime {self.regime!r}")
        if self.staleness is not None:
            if self.regime != "ps":
                raise ValueError(
                    f"staleness only applies to the ps regime, got {self.regime!r}"
                )
            if not isinstance(self.staleness, int) or self.staleness < 0:
                raise ValueError(
                    f"staleness bound must be an integer >= 0, got {self.staleness!r}"
                )

    # ------------------------------------------------------------------ #
    @property
    def is_synchronous(self) -> bool:
        """Whether the driver takes the (bit-identical) synchronous path.

        ``localsgd:1`` degenerates to synchronous training: averaging after
        every local step is exactly one gradient step from the shared state,
        so the canonical implementation is the synchronous loop itself.
        """
        return self.regime == "sync" or (self.regime == "localsgd" and self.period == 1)

    def spec(self) -> str:
        """Canonical spec string that parses back to this schedule."""
        if self.regime == "localsgd":
            base = f"localsgd:{self.period}"
            return base + ":delta" if self.delta else base
        if self.regime == "ps":
            return "ps" if self.staleness is None else f"ps:{self.staleness}"
        return "sync"


_SYNC = SyncSchedule()


def _parse_int(text: str, what: str, spec: str) -> int:
    try:
        return int(text, 10)
    except ValueError:
        raise ValueError(
            f"invalid sync schedule {spec!r}: {what} must be an integer, got {text!r}"
        ) from None


def _parse_sync(spec: str, rest: List[str]) -> SyncSchedule:
    if rest:
        raise ValueError(f"invalid sync schedule {spec!r}: 'sync' takes no parameters")
    return _SYNC


def _parse_localsgd(spec: str, rest: List[str]) -> SyncSchedule:
    if not rest or len(rest) > 2:
        raise ValueError(
            f"invalid sync schedule {spec!r}: expected 'localsgd:H' or 'localsgd:H:delta'"
        )
    period = _parse_int(rest[0], "the averaging period H", spec)
    if period < 1:
        raise ValueError(f"invalid sync schedule {spec!r}: H must be >= 1, got {period}")
    delta = False
    if len(rest) == 2:
        if rest[1] != "delta":
            raise ValueError(
                f"invalid sync schedule {spec!r}: the third token must be 'delta', "
                f"got {rest[1]!r}"
            )
        delta = True
    return SyncSchedule(regime="localsgd", period=period, delta=delta)


def _parse_ps(spec: str, rest: List[str]) -> SyncSchedule:
    if len(rest) > 1:
        raise ValueError(f"invalid sync schedule {spec!r}: expected 'ps' or 'ps:S'")
    staleness: Optional[int] = None
    if rest:
        staleness = _parse_int(rest[0], "the staleness bound S", spec)
        if staleness < 0:
            raise ValueError(
                f"invalid sync schedule {spec!r}: staleness must be >= 0, got {staleness}"
            )
    return SyncSchedule(regime="ps", staleness=staleness)


#: Leading-token registry, mirroring the codec spec's stage-factory table:
#: the first ``:``-separated token selects the parser for the rest.
REGIME_PARSERS: Dict[str, Callable[[str, List[str]], SyncSchedule]] = {
    "sync": _parse_sync,
    "localsgd": _parse_localsgd,
    "local-sgd": _parse_localsgd,
    "ps": _parse_ps,
    "async-ps": _parse_ps,
}


def register_regime(name: str, parser: Callable[[str, List[str]], SyncSchedule]) -> None:
    """Register a schedule parser under a leading token (case-insensitive)."""
    REGIME_PARSERS[name.lower()] = parser


def parse_sync_schedule(spec: Optional[str]) -> SyncSchedule:
    """Parse a ``sync_schedule`` spec string (module docstring grammar).

    ``None`` and blank strings mean the synchronous default.  Raises
    ``ValueError`` for unknown regimes, non-integer or out-of-range
    parameters, and trailing garbage — campaign axes fail at expansion time,
    not mid-run.
    """
    if spec is None:
        return _SYNC
    text = str(spec).strip().lower()
    if not text:
        return _SYNC
    tokens = [token.strip() for token in text.split(":")]
    parser = REGIME_PARSERS.get(tokens[0])
    if parser is None:
        raise ValueError(
            f"unknown training regime {tokens[0]!r} in sync schedule {spec!r}; "
            f"known: {sorted(REGIME_PARSERS)}"
        )
    return parser(spec, tokens[1:])


# --------------------------------------------------------------------------- #
# Local-SGD replica state
# --------------------------------------------------------------------------- #
class ReplicaSet:
    """Per-rank parameter/velocity replicas for local-SGD windows.

    The simulator shares one model across ranks because synchronous DDP makes
    every rank apply the identical aggregated gradient.  Local SGD breaks that
    identity: between averaging collectives each rank's parameters (and its
    momentum buffer) diverge.  This class owns the diverged state — one
    parameter-array list and one :class:`~repro.nn.SGD` instance per rank —
    and swaps it through the shared model for each rank's local step
    (``load``, then forward/backward/step, then ``save``).

    Normalisation running statistics (non-parameter buffers) stay shared
    across ranks, matching the synchronous simulator's single-model design.
    """

    def __init__(
        self,
        model: Module,
        world_size: int,
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        self.model = model
        self.world_size = world_size
        self._named = list(model.named_parameters())
        self.replicas: List[List[np.ndarray]] = [
            [param.data.copy() for _, param in self._named] for _ in range(world_size)
        ]
        self.optimizers: List[SGD] = [
            SGD(
                [param for _, param in self._named],
                lr=lr,
                momentum=momentum,
                weight_decay=weight_decay,
            )
            for _ in range(world_size)
        ]

    # ------------------------------------------------------------------ #
    def load(self, rank: int) -> None:
        """Point the shared model's parameters at ``rank``'s replica arrays."""
        for (_, param), stored in zip(self._named, self.replicas[rank]):
            param.data = stored

    def save(self, rank: int) -> None:
        """Store the model's current parameter arrays back into ``rank``'s replica."""
        self.replicas[rank] = [param.data for _, param in self._named]

    def step(self, rank: int) -> None:
        """Apply ``rank``'s local optimiser step (its own velocity buffers)."""
        self.optimizers[rank].step()

    # ------------------------------------------------------------------ #
    def params_dict(self, rank: int) -> Dict[str, np.ndarray]:
        """``{name: array}`` view of one rank's replica (no copies)."""
        return {
            name: stored for (name, _), stored in zip(self._named, self.replicas[rank])
        }

    def delta(self, rank: int, anchor: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """One rank's model delta relative to the last synced ``anchor`` state."""
        return {
            name: stored - anchor[name]
            for (name, _), stored in zip(self._named, self.replicas[rank])
        }

    def assign(self, rank: int, params: Dict[str, np.ndarray]) -> None:
        """Reset one rank's replica to copies of ``params`` (e.g. on re-join)."""
        self.replicas[rank] = [params[name].copy() for name, _ in self._named]

    def reset_all(self, params: Dict[str, np.ndarray], ranks) -> None:
        """Reset the given ranks' replicas to copies of the averaged ``params``."""
        for rank in ranks:
            self.assign(rank, params)

    def reset_velocity(self, rank: int) -> None:
        """Zero one rank's momentum state (a re-joining rank starts fresh)."""
        optimizer = self.optimizers[rank]
        optimizer.load_state_arrays([None] * len(optimizer.parameters))


# --------------------------------------------------------------------------- #
# Checkpoint/restore on the elastic seam
# --------------------------------------------------------------------------- #
@dataclass
class TrainingCheckpoint:
    """Everything needed to resume a synchronous run bit-identically.

    Captured mid-run by :func:`repro.simulation.experiment.train_distributed`
    (``checkpoint_at`` / ``checkpoint_box``) and consumed by ``resume_from``.
    All array state is deep-copied at capture *and* at restore, so one
    checkpoint can seed several resumes and outlive the run that wrote it.
    Fault-interpreter state (cursor, surviving membership, link factor) rides
    along, so a checkpoint taken inside a degraded window resumes onto the
    same shrunken world — the elastic seam (``set_active_ranks`` +
    ``resize_world``) is re-applied, not replayed.
    """

    params: Dict[str, np.ndarray]
    velocities: List[Optional[np.ndarray]]
    compressor: object
    timeline: object
    epoch: int
    iteration_in_epoch: int
    global_iteration: int
    epoch_losses: List[float]
    fault_cursor: float
    active_ranks: List[int]
    link_factor: float
    reached_target: bool
    hook_iteration: int
    #: Frozen at capture so a resume never recomputes them from the evolved
    #: weights (the modeled per-rank times depend on weight sparsity, which
    #: drifts during training on unmasked models).
    per_rank_compute: List[float]
    bucket_fractions: List[float]

    @classmethod
    def capture(
        cls,
        *,
        ddp,
        optimizer: SGD,
        compressor,
        timeline,
        epoch: int,
        iteration_in_epoch: int,
        global_iteration: int,
        epoch_losses: List[float],
        fault_cursor: float,
        active_ranks: List[int],
        link_factor: float,
        reached_target: bool,
        per_rank_compute,
        bucket_fractions,
    ) -> "TrainingCheckpoint":
        return cls(
            params=ddp.snapshot_parameters(),
            velocities=optimizer.state_arrays(),
            compressor=copy.deepcopy(compressor),
            timeline=copy.deepcopy(timeline),
            epoch=epoch,
            iteration_in_epoch=iteration_in_epoch,
            global_iteration=global_iteration,
            epoch_losses=list(epoch_losses),
            fault_cursor=fault_cursor,
            active_ranks=list(active_ranks),
            link_factor=link_factor,
            reached_target=reached_target,
            hook_iteration=ddp.hook_state.iteration,
            per_rank_compute=list(per_rank_compute),
            bucket_fractions=list(bucket_fractions),
        )
