"""End-to-end training-time simulation.

The paper's headline metric is Time-To-Accuracy (TTA) measured on a physical
testbed.  Here, wall-clock time is replaced by a modeled timeline:

    iteration time = compute time (FLOPs / device throughput)
                   + communication time (collective cost model)

Accuracy, on the other hand, is *real*: models are actually trained on
per-rank data shards, so convergence differences between compression schemes
(the other half of TTA) emerge from the optimisation itself rather than being
assumed.

Modules:

* :mod:`repro.simulation.compute`  — analytic FLOP estimates and device specs;
* :mod:`repro.simulation.cluster`  — cluster description (workers, device, network);
* :mod:`repro.simulation.timeline` — accumulation of compute/communication time;
* :mod:`repro.simulation.experiment` — configuration-driven experiment driver
  used by every benchmark.
"""

from repro.simulation.compute import DeviceSpec, ComputeModel, estimate_model_flops
from repro.simulation.cluster import ClusterSpec
from repro.simulation.timeline import TrainingTimeline, EpochRecord
from repro.simulation.experiment import (
    MethodSpec,
    ExperimentConfig,
    ExperimentResult,
    run_experiment,
    train_distributed,
    evaluate_accuracy,
    PAPER_METHODS,
)

__all__ = [
    "DeviceSpec",
    "ComputeModel",
    "estimate_model_flops",
    "ClusterSpec",
    "TrainingTimeline",
    "EpochRecord",
    "MethodSpec",
    "ExperimentConfig",
    "ExperimentResult",
    "run_experiment",
    "train_distributed",
    "evaluate_accuracy",
    "PAPER_METHODS",
]
