"""End-to-end training-time simulation.

The paper's headline metric is Time-To-Accuracy (TTA) measured on a physical
testbed.  Here, wall-clock time is replaced by a modeled timeline driven by a
discrete-event engine: per-rank backward completion times and per-bucket
collective costs feed an event heap, and each iteration's time is the
schedule's critical path —

    iteration time = max over ranks of (compute, per-bucket collectives
                     overlapped with backward, straggler waits)

which degenerates to the seed ``compute + comm`` sum when overlap is disabled.
Accuracy, on the other hand, is *real*: models are actually trained on
per-rank data shards, so convergence differences between compression schemes
(the other half of TTA) emerge from the optimisation itself rather than being
assumed.

Modules:

* :mod:`repro.simulation.compute`  — analytic FLOP estimates, device specs and
  per-bucket backward completion fractions;
* :mod:`repro.simulation.engine`   — event heap, link occupancy and the
  per-iteration schedule (compute/comm/overlap/straggler breakdown);
* :mod:`repro.simulation.cluster`  — cluster description (workers, devices,
  stragglers, network, overlap/hierarchical toggles);
* :mod:`repro.simulation.timeline` — accumulation of compute/communication/
  overlap time and per-iteration traces;
* :mod:`repro.simulation.experiment` — configuration-driven experiment driver
  used by every benchmark.
"""

from repro.simulation.compute import (
    DeviceSpec,
    ComputeModel,
    estimate_model_flops,
    estimate_parameter_flops,
)
from repro.simulation.engine import (
    BucketTrace,
    EventHeap,
    IterationTrace,
    LinkChannel,
    SimulationEngine,
)
from repro.simulation.cluster import ClusterSpec
from repro.simulation.timeline import TrainingTimeline, EpochRecord
from repro.simulation.experiment import (
    MethodSpec,
    ExperimentConfig,
    ExperimentResult,
    run_experiment,
    train_distributed,
    evaluate_accuracy,
    PAPER_METHODS,
)

__all__ = [
    "DeviceSpec",
    "ComputeModel",
    "estimate_model_flops",
    "estimate_parameter_flops",
    "BucketTrace",
    "EventHeap",
    "IterationTrace",
    "LinkChannel",
    "SimulationEngine",
    "ClusterSpec",
    "TrainingTimeline",
    "EpochRecord",
    "MethodSpec",
    "ExperimentConfig",
    "ExperimentResult",
    "run_experiment",
    "train_distributed",
    "evaluate_accuracy",
    "PAPER_METHODS",
]
