"""Compute-time model.

Per-iteration compute time is estimated analytically as

    time = flops(forward) * backward_factor * batch_size / device_throughput

where the forward FLOPs are derived from the model's actual layer shapes.  The
default device spec is calibrated so that the *ratio* of compute time to
communication time for the mini models matches the ratio the paper's full-size
models exhibit on A40 GPUs — that ratio, not the absolute numbers, is what
shapes the relative-TTA figures (compression helps most when communication
dominates; its advantage shrinks as bandwidth grows and compute becomes a
larger fraction of the iteration).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.nn.layers import Conv2d, Linear, MultiHeadAttention, BatchNorm2d, LayerNorm
from repro.nn.module import Module

#: Backward pass costs roughly twice the forward pass.
BACKWARD_FACTOR = 3.0


@dataclass(frozen=True)
class DeviceSpec:
    """A training device characterised by its effective throughput.

    ``flops_per_second`` is the *achieved* (not peak) throughput for the
    workload.  ``sim_gpu`` is the default used with the mini models: it keeps
    the compute:communication balance of the full-scale workloads (see module
    docstring); ``a40`` carries the paper's hardware figure for use with the
    full-size models.
    """

    name: str
    flops_per_second: float

    def __post_init__(self) -> None:
        if self.flops_per_second <= 0:
            raise ValueError("flops_per_second must be positive")

    def to_dict(self) -> Dict[str, float]:
        return {"name": self.name, "flops_per_second": self.flops_per_second}

    @classmethod
    def from_dict(cls, data: Dict) -> "DeviceSpec":
        return cls(name=data["name"], flops_per_second=float(data["flops_per_second"]))


#: Effective throughput presets.
DEVICE_PRESETS = {
    # Scaled device matched to the mini models (see module docstring).
    "sim-gpu": DeviceSpec("sim-gpu", 2.0e9),
    # NVIDIA A40, ~37 TFLOP/s peak fp32, ~50% utilisation.
    "a40": DeviceSpec("a40", 18.0e12),
}


def _conv_output_hw(size: int, kernel: int, stride: int, padding: int) -> int:
    return (size + 2 * padding - kernel) // stride + 1


def _walk_module_flops(
    model: Module,
    input_shape: Tuple[int, int, int],
) -> Iterator[Tuple[str, Module, float]]:
    """Yield ``(name, module, forward_flops)`` for every counted module.

    The single source of the per-layer counting rules: convolutions, linear
    layers, attention projections and normalisation layers are counted from
    their parameter shapes; cheap elementwise layers are skipped.  Spatial
    sizes for convolutions are tracked approximately by walking the module
    tree in registration order, which is exact for the sequential backbones
    used here and a close bound for residual models.
    """
    _, height, _ = input_shape
    spatial = height  # assume square inputs

    for name, module in model.named_modules():
        if isinstance(module, Conv2d):
            out_hw = _conv_output_hw(spatial, module.kernel_size, module.stride, module.padding)
            kernel_flops = 2.0 * module.in_channels * module.kernel_size ** 2
            yield name, module, kernel_flops * module.out_channels * out_hw * out_hw
            if module.stride > 1:
                spatial = max(1, out_hw)
        elif isinstance(module, Linear):
            yield name, module, 2.0 * module.in_features * module.out_features
        elif isinstance(module, MultiHeadAttention):
            # QK^T and attention-weighted V, on top of the qkv/proj Linears
            # which are counted separately above.
            yield name, module, 4.0 * module.embed_dim * module.embed_dim
        elif isinstance(module, (BatchNorm2d, LayerNorm)):
            yield name, module, 4.0 * sum(p.size for p in module.parameters())


def estimate_model_flops(
    model: Module,
    input_shape: Tuple[int, int, int],
    batch_size: int = 1,
) -> float:
    """Estimate forward-pass FLOPs for one batch (see :func:`_walk_module_flops`)."""
    flops = 0.0
    for _, _, module_flops in _walk_module_flops(model, input_shape):
        flops += module_flops
    return flops * batch_size


def estimate_parameter_flops(
    model: Module,
    input_shape: Tuple[int, int, int],
) -> Dict[str, float]:
    """Attribute each module's forward FLOPs to its parameters, by name.

    Uses the same walk as :func:`estimate_model_flops` and splits each
    module's FLOPs across its parameters proportionally to parameter size (a
    module with no direct parameters, e.g. the attention score computation,
    spreads its cost over its descendants' parameters).  The result maps the
    names produced by ``model.named_parameters()`` to FLOP shares; parameters
    of uncounted (cheap, elementwise) modules map to ``0.0``.

    The per-bucket backward completion fractions that drive the overlap
    engine are derived from these shares — backward work for a parameter is
    proportional to the forward FLOPs of the layer it belongs to.
    """
    shares: Dict[str, float] = {name: 0.0 for name, _ in model.named_parameters()}

    for prefix, module, flops in _walk_module_flops(model, input_shape):
        direct = [
            ((f"{prefix}.{local}" if prefix else local), param)
            for local, param in module._parameters.items()
        ]
        targets = direct or list(module.named_parameters(prefix))
        total = float(sum(param.size for _, param in targets))
        if not targets or total == 0.0:
            continue
        for name, param in targets:
            shares[name] += flops * (param.size / total)
    return shares


class ComputeModel:
    """Convert a model + batch size into per-iteration compute seconds.

    Modeled time describes one rank of the *simulated* cluster, so it is
    deliberately independent of how the host evaluates the replicas —
    per-rank loop or world-batched pass (``ExperimentConfig.execution``) —
    and of which array backend executes the kernels.  Only the workload
    (model, batch, device, sparsity) moves these numbers.
    """

    def __init__(
        self,
        device: DeviceSpec | str = "sim-gpu",
        backward_factor: float = BACKWARD_FACTOR,
        sparse_speedup: bool = False,
    ) -> None:
        if isinstance(device, str):
            if device not in DEVICE_PRESETS:
                raise KeyError(f"unknown device preset {device!r}; options: {sorted(DEVICE_PRESETS)}")
            device = DEVICE_PRESETS[device]
        self.device = device
        self.backward_factor = backward_factor
        #: Whether pruning also shrinks compute time (optional extension; the
        #: paper's evaluation keeps dense kernels, so the default is False).
        self.sparse_speedup = sparse_speedup

    def iteration_time(
        self,
        model: Module,
        input_shape: Tuple[int, int, int],
        batch_size: int,
        weight_sparsity: float = 0.0,
    ) -> float:
        """Modeled seconds of compute for one forward+backward pass on one rank."""
        flops = estimate_model_flops(model, input_shape, batch_size) * self.backward_factor
        if self.sparse_speedup and weight_sparsity > 0.0:
            # Unstructured sparsity rarely converts 1:1 into speedup; assume
            # half of the theoretical reduction is realised.
            flops *= 1.0 - 0.5 * weight_sparsity
        return flops / self.device.flops_per_second

    @property
    def forward_fraction(self) -> float:
        """Fraction of an iteration spent in the forward pass (before any
        gradient exists).  With the default ``backward_factor`` of 3 the
        forward pass is one third of the iteration and backward the rest."""
        return 1.0 / self.backward_factor

    def bucket_completion_fractions(
        self,
        model: Module,
        input_shape: Tuple[int, int, int],
        buckets: Sequence,
    ) -> List[float]:
        """Cumulative iteration-completion fraction at which each bucket is ready.

        ``buckets`` follow :func:`repro.ddp.bucket.build_buckets` order —
        reverse parameter order, so bucket 0 (the classifier head) finishes
        its backward computation *first*.  Each bucket's backward cost is the
        FLOP share of its parameters (:func:`estimate_parameter_flops`, with a
        parameter-count fallback for models whose layers are all uncounted);
        the returned fractions are

            ``forward_fraction + backward_fraction * cumulative_share``

        and the last entry is exactly ``1.0``, so a single-bucket model is
        ready only when the whole pass ends (no overlap possible).
        """
        buckets = list(buckets)
        if not buckets:
            return []
        shares = estimate_parameter_flops(model, input_shape)
        weights = [
            sum(shares.get(piece.param_name, 0.0) for piece in bucket.slices)
            for bucket in buckets
        ]
        total = sum(weights)
        if total <= 0.0:
            weights = [float(bucket.numel) for bucket in buckets]
            total = sum(weights)
        if total <= 0.0:
            return [1.0 for _ in buckets]

        forward = self.forward_fraction
        backward = 1.0 - forward
        fractions: List[float] = []
        cumulative = 0.0
        for weight in weights:
            cumulative += weight
            fractions.append(min(1.0, forward + backward * (cumulative / total)))
        fractions[-1] = 1.0
        return fractions
