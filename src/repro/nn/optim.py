"""Optimisers.

Only SGD (with momentum and weight decay) is provided, matching the optimiser
used for the paper's CIFAR training runs.  The optimiser operates on the
parameter list of a model replica; in distributed training the DDP simulator
replaces each parameter's ``grad`` with the aggregated gradient before
``step()`` is called, so the optimiser itself is oblivious to compression.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base optimiser holding a parameter list."""

    def __init__(self, parameters: Iterable[Parameter]) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimiser constructed with no parameters")

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay.

    Parameters
    ----------
    parameters:
        Iterable of :class:`repro.nn.Parameter`.
    lr:
        Learning rate.
    momentum:
        Classical momentum factor; ``0`` disables the velocity buffer.
    weight_decay:
        L2 penalty added to the gradient before the momentum update.
    """

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: List[Optional[np.ndarray]] = [None] * len(self.parameters)

    def step(self) -> None:
        for index, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            grad = param.grad
            if grad.shape != param.data.shape:
                # Catches un-aggregated (world, *shape) stacks from the
                # world-batched execution path leaking into the optimiser:
                # those must go through the DDP arena/hook reduction first.
                raise ValueError(
                    f"gradient shape {grad.shape} does not match parameter shape "
                    f"{param.data.shape}; world-batched per-rank gradient stacks must "
                    "be aggregated (repro.ddp) before the optimiser step"
                )
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity = self._velocity[index]
                if velocity is None:
                    velocity = self._velocity[index] = np.zeros_like(param.data)
                # In-place v = momentum * v + grad: the same two ufuncs (and
                # therefore the same floats) as the out-of-place update,
                # without reallocating the velocity buffer every step.
                np.multiply(velocity, self.momentum, out=velocity)
                np.add(velocity, grad, out=velocity)
                grad = velocity
            param.data = param.data - self.lr * grad

    def set_lr(self, lr: float) -> None:
        """Update the learning rate (used by simple step schedules)."""
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr

    # ------------------------------------------------------------------ #
    # Checkpoint support: the velocity buffers are the optimiser's only
    # mutable state, exposed as position-indexed array copies so a resumed
    # run replays the exact same momentum floats.
    def state_arrays(self) -> List[Optional[np.ndarray]]:
        """Copies of the per-parameter velocity buffers (``None`` = unused)."""
        return [None if v is None else v.copy() for v in self._velocity]

    def load_state_arrays(self, velocities: List[Optional[np.ndarray]]) -> None:
        """Restore velocity buffers captured by :meth:`state_arrays`."""
        if len(velocities) != len(self.parameters):
            raise ValueError(
                f"expected {len(self.parameters)} velocity entries, "
                f"got {len(velocities)}"
            )
        self._velocity = [None if v is None else v.copy() for v in velocities]
