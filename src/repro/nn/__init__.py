"""Neural-network layers, losses, optimisers and the evaluation model zoo.

This package plays the role PyTorch's ``torch.nn`` plays in the paper's
prototype.  It is deliberately small but complete enough to express the four
evaluation architectures (VGG19, ResNet-18, ResNet-152, ViT-Base-16) and to be
wrapped by the distributed data-parallel simulator in :mod:`repro.ddp`.
"""

from repro.nn.module import Module, Parameter, Sequential, ModuleList
from repro.nn.layers import (
    Linear,
    Conv2d,
    BatchNorm2d,
    LayerNorm,
    ReLU,
    GELU,
    Dropout,
    Flatten,
    MaxPool2d,
    AvgPool2d,
    AdaptiveAvgPool2d,
    Identity,
    MultiHeadAttention,
)
from repro.nn.losses import CrossEntropyLoss, MSELoss
from repro.nn.optim import SGD, Optimizer

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "ModuleList",
    "Linear",
    "Conv2d",
    "BatchNorm2d",
    "LayerNorm",
    "ReLU",
    "GELU",
    "Dropout",
    "Flatten",
    "MaxPool2d",
    "AvgPool2d",
    "AdaptiveAvgPool2d",
    "Identity",
    "MultiHeadAttention",
    "CrossEntropyLoss",
    "MSELoss",
    "SGD",
    "Optimizer",
]
