"""VGG family (Simonyan & Zisserman, 2015) adapted to CIFAR-sized inputs.

The paper trains VGG19 on CIFAR-10/100.  The standard CIFAR adaptation uses
3×3 convolutions with batch normalisation and a single fully connected
classifier head after global pooling.  The ``width_scale`` argument shrinks
every channel count proportionally so that CPU-only experiments remain
tractable; the layer *structure* (16 conv layers + head for VGG19) is
unchanged, which is what matters for gradient-distribution behaviour.

The forward pass is built entirely from world-batched-capable layers, so the
models accept a 5-D ``(world, N, C, H, W)`` input under
:func:`repro.nn.batched.replica_views` with no model-level changes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

import numpy as np

from repro.nn.module import Module, Sequential
from repro.nn.layers import Conv2d, BatchNorm2d, ReLU, MaxPool2d, Linear, AdaptiveAvgPool2d, Flatten
from repro.tensorlib import Tensor

# Channel plans: integers are conv output channels, "M" is a 2x2 max pool.
VGG_CONFIGS: Dict[str, List[Union[int, str]]] = {
    "vgg11": [64, "M", 128, "M", 256, 256, "M", 512, 512, "M", 512, 512, "M"],
    "vgg16": [64, 64, "M", 128, 128, "M", 256, 256, 256, "M",
              512, 512, 512, "M", 512, 512, 512, "M"],
    "vgg19": [64, 64, "M", 128, 128, "M", 256, 256, 256, 256, "M",
              512, 512, 512, 512, "M", 512, 512, 512, 512, "M"],
}


class VGG(Module):
    """VGG backbone with batch normalisation and a linear classifier head."""

    def __init__(
        self,
        config: str = "vgg19",
        num_classes: int = 10,
        in_channels: int = 3,
        width_scale: float = 1.0,
        seed: Optional[int] = None,
        max_pools: Optional[int] = None,
    ) -> None:
        super().__init__()
        if config not in VGG_CONFIGS:
            raise ValueError(f"unknown VGG config {config!r}; expected one of {sorted(VGG_CONFIGS)}")
        rng = np.random.default_rng(seed)
        self.config_name = config
        plan = VGG_CONFIGS[config]

        layers: List[Module] = []
        channels = in_channels
        pools_used = 0
        for entry in plan:
            if entry == "M":
                if max_pools is not None and pools_used >= max_pools:
                    continue
                layers.append(MaxPool2d(kernel_size=2, stride=2))
                pools_used += 1
                continue
            out_channels = max(4, int(round(entry * width_scale)))
            layers.append(Conv2d(channels, out_channels, kernel_size=3, padding=1, bias=False, rng=rng))
            layers.append(BatchNorm2d(out_channels))
            layers.append(ReLU())
            channels = out_channels

        self.features = Sequential(*layers)
        self.pool = AdaptiveAvgPool2d(1)
        self.flatten = Flatten()
        self.classifier = Linear(channels, num_classes, rng=rng)
        self.num_classes = num_classes

    def forward(self, x: Tensor) -> Tensor:
        x = self.features(x)
        x = self.pool(x)
        x = self.flatten(x)
        return self.classifier(x)


def vgg19(num_classes: int = 10, seed: Optional[int] = None) -> VGG:
    """Full-width VGG19 (CIFAR adaptation)."""
    return VGG("vgg19", num_classes=num_classes, width_scale=1.0, seed=seed)


def vgg19_mini(num_classes: int = 10, seed: Optional[int] = None) -> VGG:
    """VGG19 structure at 1/8 width, for CPU-scale experiments.

    The number of max-pool stages is capped so the network also accepts the
    8×8 synthetic images used by the benchmarks.
    """
    return VGG("vgg19", num_classes=num_classes, width_scale=0.125, seed=seed, max_pools=3)


def vgg11_mini(num_classes: int = 10, seed: Optional[int] = None) -> VGG:
    """Narrow VGG11 used in integration tests."""
    return VGG("vgg11", num_classes=num_classes, width_scale=0.125, seed=seed, max_pools=3)
