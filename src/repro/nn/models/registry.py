"""Model registry mapping workload names to factory functions.

The benchmark harness refers to models by the names used in the paper's figures
("vgg19", "resnet18", "resnet152", "vit-base-16"); each maps to the mini
variant by default (CPU-feasible) with a ``full`` flag to request the
paper-sized architecture.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.nn.module import Module
from repro.nn.models.mlp import mlp_tiny
from repro.nn.models.vgg import vgg19, vgg19_mini, vgg11_mini
from repro.nn.models.resnet import resnet18, resnet152, resnet18_mini, resnet152_mini
from repro.nn.models.vit import vit_base_16, vit_base_16_mini

ModelFactory = Callable[..., Module]

MODEL_REGISTRY: Dict[str, Dict[str, ModelFactory]] = {
    "mlp": {"mini": mlp_tiny, "full": mlp_tiny},
    "vgg11": {"mini": vgg11_mini, "full": vgg11_mini},
    "vgg19": {"mini": vgg19_mini, "full": vgg19},
    "resnet18": {"mini": resnet18_mini, "full": resnet18},
    "resnet152": {"mini": resnet152_mini, "full": resnet152},
    "vit-base-16": {"mini": vit_base_16_mini, "full": vit_base_16},
}


def register_model(name: str, mini: ModelFactory, full: Optional[ModelFactory] = None) -> None:
    """Register a new model family under ``name``.

    Parameters
    ----------
    name:
        Workload name used by experiment configurations.
    mini:
        Factory for the CPU-scale variant.
    full:
        Factory for the paper-scale variant; defaults to ``mini``.
    """
    MODEL_REGISTRY[name] = {"mini": mini, "full": full or mini}


def build_model(name: str, num_classes: int = 10, seed: Optional[int] = None, full: bool = False) -> Module:
    """Instantiate a registered model by name.

    Raises
    ------
    KeyError
        If ``name`` is not registered.
    """
    key = name.lower()
    if key not in MODEL_REGISTRY:
        raise KeyError(f"unknown model {name!r}; registered models: {sorted(MODEL_REGISTRY)}")
    factory = MODEL_REGISTRY[key]["full" if full else "mini"]
    return factory(num_classes=num_classes, seed=seed)
