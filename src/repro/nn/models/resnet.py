"""ResNet family (He et al., 2015) adapted to CIFAR-sized inputs.

Both evaluation depths from the paper are provided:

* ResNet-18 — ``BasicBlock`` with layer plan ``[2, 2, 2, 2]``;
* ResNet-152 — ``Bottleneck`` with layer plan ``[3, 8, 36, 3]``.

The forward pass is built entirely from world-batched-capable layers
(conv/norm/pool/flatten/linear), so these models accept a 5-D
``(world, N, C, H, W)`` input under :func:`repro.nn.batched.replica_views`
with no model-level changes.

As with the VGG models, ``width_scale`` shrinks channel counts (and the
``*_mini`` factories additionally shrink the stage plan) so that CPU training
is feasible while preserving the residual structure that drives the "evenly
distributed gradient components" behaviour the paper attributes to ResNet-152.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.nn.module import Module, Sequential
from repro.nn.layers import Conv2d, BatchNorm2d, ReLU, Linear, AdaptiveAvgPool2d, Flatten, Identity
from repro.tensorlib import Tensor


class BasicBlock(Module):
    """Two 3×3 convolutions with an identity (or 1×1 projection) shortcut."""

    expansion = 1

    def __init__(
        self,
        in_channels: int,
        channels: int,
        stride: int = 1,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.conv1 = Conv2d(in_channels, channels, 3, stride=stride, padding=1, bias=False, rng=rng)
        self.bn1 = BatchNorm2d(channels)
        self.relu = ReLU()
        self.conv2 = Conv2d(channels, channels, 3, stride=1, padding=1, bias=False, rng=rng)
        self.bn2 = BatchNorm2d(channels)
        out_channels = channels * self.expansion
        if stride != 1 or in_channels != out_channels:
            self.shortcut = Sequential(
                Conv2d(in_channels, out_channels, 1, stride=stride, bias=False, rng=rng),
                BatchNorm2d(out_channels),
            )
        else:
            self.shortcut = Identity()

    def forward(self, x: Tensor) -> Tensor:
        out = self.relu(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        out = out + self.shortcut(x)
        return self.relu(out)


class Bottleneck(Module):
    """1×1 / 3×3 / 1×1 bottleneck block used by ResNet-50/101/152."""

    expansion = 4

    def __init__(
        self,
        in_channels: int,
        channels: int,
        stride: int = 1,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        out_channels = channels * self.expansion
        self.conv1 = Conv2d(in_channels, channels, 1, bias=False, rng=rng)
        self.bn1 = BatchNorm2d(channels)
        self.conv2 = Conv2d(channels, channels, 3, stride=stride, padding=1, bias=False, rng=rng)
        self.bn2 = BatchNorm2d(channels)
        self.conv3 = Conv2d(channels, out_channels, 1, bias=False, rng=rng)
        self.bn3 = BatchNorm2d(out_channels)
        self.relu = ReLU()
        if stride != 1 or in_channels != out_channels:
            self.shortcut = Sequential(
                Conv2d(in_channels, out_channels, 1, stride=stride, bias=False, rng=rng),
                BatchNorm2d(out_channels),
            )
        else:
            self.shortcut = Identity()

    def forward(self, x: Tensor) -> Tensor:
        out = self.relu(self.bn1(self.conv1(x)))
        out = self.relu(self.bn2(self.conv2(out)))
        out = self.bn3(self.conv3(out))
        out = out + self.shortcut(x)
        return self.relu(out)


class ResNet(Module):
    """Residual network over CIFAR-sized images.

    Parameters
    ----------
    block:
        ``BasicBlock`` or ``Bottleneck``.
    layers:
        Number of blocks in each of the four stages.
    width_scale:
        Multiplier applied to the canonical ``(64, 128, 256, 512)`` stage widths.
    """

    def __init__(
        self,
        block,
        layers: Sequence[int],
        num_classes: int = 10,
        in_channels: int = 3,
        width_scale: float = 1.0,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        widths = [max(4, int(round(w * width_scale))) for w in (64, 128, 256, 512)]

        self.stem_conv = Conv2d(in_channels, widths[0], 3, stride=1, padding=1, bias=False, rng=rng)
        self.stem_bn = BatchNorm2d(widths[0])
        self.relu = ReLU()

        self._in_channels = widths[0]
        self.layer1 = self._make_stage(block, widths[0], layers[0], stride=1, rng=rng)
        self.layer2 = self._make_stage(block, widths[1], layers[1], stride=2, rng=rng)
        self.layer3 = self._make_stage(block, widths[2], layers[2], stride=2, rng=rng)
        self.layer4 = self._make_stage(block, widths[3], layers[3], stride=2, rng=rng)

        self.pool = AdaptiveAvgPool2d(1)
        self.flatten = Flatten()
        self.fc = Linear(widths[3] * block.expansion, num_classes, rng=rng)
        self.num_classes = num_classes
        self.layer_plan = list(layers)

    def _make_stage(self, block, channels: int, blocks: int, stride: int, rng) -> Sequential:
        strides = [stride] + [1] * (blocks - 1)
        stage_blocks: List[Module] = []
        for s in strides:
            stage_blocks.append(block(self._in_channels, channels, stride=s, rng=rng))
            self._in_channels = channels * block.expansion
        return Sequential(*stage_blocks)

    def forward(self, x: Tensor) -> Tensor:
        x = self.relu(self.stem_bn(self.stem_conv(x)))
        x = self.layer1(x)
        x = self.layer2(x)
        x = self.layer3(x)
        x = self.layer4(x)
        x = self.pool(x)
        x = self.flatten(x)
        return self.fc(x)


def resnet18(num_classes: int = 10, seed: Optional[int] = None) -> ResNet:
    """Full-width ResNet-18 (CIFAR adaptation)."""
    return ResNet(BasicBlock, [2, 2, 2, 2], num_classes=num_classes, seed=seed)


def resnet152(num_classes: int = 10, seed: Optional[int] = None) -> ResNet:
    """Full-width ResNet-152 (CIFAR adaptation)."""
    return ResNet(Bottleneck, [3, 8, 36, 3], num_classes=num_classes, seed=seed)


def resnet18_mini(num_classes: int = 10, seed: Optional[int] = None) -> ResNet:
    """ResNet-18 structure at 1/8 width for CPU-scale experiments."""
    return ResNet(BasicBlock, [2, 2, 2, 2], num_classes=num_classes, width_scale=0.125, seed=seed)


def resnet152_mini(num_classes: int = 10, seed: Optional[int] = None) -> ResNet:
    """Deep bottleneck ResNet standing in for ResNet-152 at CPU scale.

    Keeps the bottleneck block type and a deeper-than-ResNet-18 stage plan while
    reducing width, so the gradient-distribution characteristics (many small,
    evenly sized parameter tensors) resemble the full model's.  The width is
    kept at 1/8 (not lower): the bottleneck 1x1 convolutions become too narrow
    to survive unstructured pruning below that.
    """
    return ResNet(Bottleneck, [2, 3, 4, 2], num_classes=num_classes, width_scale=0.125, seed=seed)
