"""A small multi-layer perceptron.

Not part of the paper's workload table, but used pervasively in the unit tests
and the Table 1 benchmark, where we need a model that converges in a handful of
CPU seconds while still exhibiting the gradient-sparsity behaviour that
pruning + GSE induce.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.nn.batched import active_world
from repro.nn.module import Module
from repro.nn.layers import Linear, ReLU, Dropout
from repro.tensorlib import Tensor


class MLP(Module):
    """Fully connected classifier for flattened image (or feature) inputs."""

    def __init__(
        self,
        input_dim: int,
        hidden_dims: Sequence[int],
        num_classes: int,
        dropout: float = 0.0,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        dims = [input_dim, *hidden_dims]
        self.blocks = []
        for index, (d_in, d_out) in enumerate(zip(dims[:-1], dims[1:])):
            linear = Linear(d_in, d_out, rng=rng)
            setattr(self, f"fc{index}", linear)
            relu = ReLU()
            setattr(self, f"act{index}", relu)
            self.blocks.append((linear, relu))
        self.dropout = Dropout(dropout, rng=rng) if dropout > 0 else None
        self.head = Linear(dims[-1], num_classes, rng=rng)
        self.input_dim = input_dim
        self.num_classes = num_classes

    def forward(self, x: Tensor) -> Tensor:
        # Under world-batched execution the leading world axis is bookkeeping:
        # flatten per sample, one axis later.
        lead = 2 if active_world() is not None else 1
        if x.ndim > lead + 1:
            x = x.flatten(start_dim=lead)
        for linear, act in self.blocks:
            x = act(linear(x))
        if self.dropout is not None:
            x = self.dropout(x)
        return self.head(x)


def mlp_tiny(num_classes: int = 10, input_dim: int = 3 * 8 * 8, seed: Optional[int] = None) -> MLP:
    """A two-hidden-layer MLP small enough for sub-second training iterations."""
    return MLP(input_dim=input_dim, hidden_dims=(64, 32), num_classes=num_classes, seed=seed)
