"""Model zoo used by the paper's evaluation.

All four evaluation architectures are provided, each with a ``scale`` knob that
shrinks channel widths / embedding dimensions so that CPU-only training runs
finish in reasonable time.  ``scale=1.0`` reproduces the standard architecture
sizes (VGG19's 143M parameters, ResNet-152's 60M, ViT-Base-16's 86M); the
benchmarks use the ``*_mini`` factories.

The registry (:func:`build_model`, :data:`MODEL_REGISTRY`) is the entry point
used by the experiment driver so that benchmark configurations can refer to
models by name, mirroring the paper's workload table.
"""

from repro.nn.models.mlp import MLP, mlp_tiny
from repro.nn.models.vgg import VGG, vgg19, vgg19_mini, vgg11_mini
from repro.nn.models.resnet import (
    ResNet,
    resnet18,
    resnet152,
    resnet18_mini,
    resnet152_mini,
)
from repro.nn.models.vit import VisionTransformer, vit_base_16, vit_base_16_mini
from repro.nn.models.registry import MODEL_REGISTRY, build_model, register_model

__all__ = [
    "MLP",
    "mlp_tiny",
    "VGG",
    "vgg19",
    "vgg19_mini",
    "vgg11_mini",
    "ResNet",
    "resnet18",
    "resnet152",
    "resnet18_mini",
    "resnet152_mini",
    "VisionTransformer",
    "vit_base_16",
    "vit_base_16_mini",
    "MODEL_REGISTRY",
    "build_model",
    "register_model",
]
