"""Vision Transformer (Dosovitskiy et al., 2021) adapted to CIFAR-sized inputs.

The paper's fourth evaluation model is ViT-Base-16 (12 encoder blocks, 768-d
embeddings, 12 heads, 16×16 patches).  The implementation below supports those
hyper-parameters at ``scale=1`` and offers a ``*_mini`` factory with a reduced
embedding dimension / depth and a patch size matched to the small synthetic
images used in CPU experiments.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.module import Module, ModuleList, Parameter
from repro.nn.layers import Linear, LayerNorm, GELU, Dropout, MultiHeadAttention
from repro.tensorlib import Tensor, init


class TransformerBlock(Module):
    """Pre-norm transformer encoder block: MHSA + MLP, both with residuals."""

    def __init__(
        self,
        embed_dim: int,
        num_heads: int,
        mlp_ratio: float = 4.0,
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        hidden = int(embed_dim * mlp_ratio)
        self.norm1 = LayerNorm(embed_dim)
        self.attn = MultiHeadAttention(embed_dim, num_heads, rng=rng)
        self.norm2 = LayerNorm(embed_dim)
        self.mlp_fc1 = Linear(embed_dim, hidden, rng=rng)
        self.mlp_act = GELU()
        self.mlp_fc2 = Linear(hidden, embed_dim, rng=rng)
        self.dropout = Dropout(dropout, rng=rng) if dropout > 0 else None

    def forward(self, x: Tensor) -> Tensor:
        attn_out = self.attn(self.norm1(x))
        if self.dropout is not None:
            attn_out = self.dropout(attn_out)
        x = x + attn_out
        mlp_out = self.mlp_fc2(self.mlp_act(self.mlp_fc1(self.norm2(x))))
        if self.dropout is not None:
            mlp_out = self.dropout(mlp_out)
        return x + mlp_out


class VisionTransformer(Module):
    """ViT classifier with learned positional embeddings and a class token."""

    def __init__(
        self,
        image_size: int = 32,
        patch_size: int = 4,
        in_channels: int = 3,
        embed_dim: int = 768,
        depth: int = 12,
        num_heads: int = 12,
        mlp_ratio: float = 4.0,
        num_classes: int = 10,
        dropout: float = 0.0,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        if image_size % patch_size != 0:
            raise ValueError("image_size must be divisible by patch_size")
        rng = np.random.default_rng(seed)
        self.image_size = image_size
        self.patch_size = patch_size
        self.embed_dim = embed_dim
        self.num_patches = (image_size // patch_size) ** 2
        patch_dim = in_channels * patch_size * patch_size

        self.patch_embed = Linear(patch_dim, embed_dim, rng=rng)
        self.cls_token = Parameter(init.truncated_normal((1, 1, embed_dim), rng))
        self.pos_embed = Parameter(init.truncated_normal((1, self.num_patches + 1, embed_dim), rng))
        self.blocks = ModuleList(
            TransformerBlock(embed_dim, num_heads, mlp_ratio, dropout, rng=rng) for _ in range(depth)
        )
        self.norm = LayerNorm(embed_dim)
        self.head = Linear(embed_dim, num_classes, rng=rng)
        self.num_classes = num_classes
        self.depth = depth

    def _patchify(self, x: Tensor) -> Tensor:
        """Rearrange ``(..., C, H, W)`` into ``(..., num_patches, C*p*p)``.

        Extra leading axes (the world axis of batched-rank execution) pass
        through untouched; each image is patchified exactly as in the 4-D case.
        """
        *lead, c, h, w = x.shape
        p = self.patch_size
        x = x.reshape(*lead, c, h // p, p, w // p, p)
        nl = len(lead)
        x = x.transpose(*range(nl), nl + 1, nl + 3, nl, nl + 2, nl + 4)
        return x.reshape(*lead, (h // p) * (w // p), c * p * p)

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim == 5:
            return self._forward_batched(x)
        n = x.shape[0]
        patches = self._patchify(x)
        tokens = self.patch_embed(patches)  # (N, P, D)

        cls = self.cls_token
        cls_batch = Tensor.cat(
            [cls[0:1] for _ in range(n)], axis=0
        ) if n > 1 else cls.reshape(1, 1, self.embed_dim)
        tokens = Tensor.cat([cls_batch, tokens], axis=1)
        tokens = tokens + self.pos_embed

        for block in self.blocks:
            tokens = block(tokens)
        tokens = self.norm(tokens)
        cls_out = tokens[:, 0, :]
        return self.head(cls_out)

    def _forward_batched(self, x: Tensor) -> Tensor:
        # World-batched (world, N, C, H, W) input with replica-view parameters
        # (world, 1, 1, D) / (world, 1, P+1, D): the same graph per world
        # slice — including the cls-token concat accumulation order — so
        # float64 per-rank gradients match the looped path bit-for-bit.
        world, n = x.shape[0], x.shape[1]
        patches = self._patchify(x)
        tokens = self.patch_embed(patches)  # (W, N, P, D)

        cls = self.cls_token
        cls_batch = Tensor.cat(
            [cls[:, 0:1] for _ in range(n)], axis=1
        ) if n > 1 else cls.reshape(world, 1, 1, self.embed_dim)
        tokens = Tensor.cat([cls_batch, tokens], axis=2)
        tokens = tokens + self.pos_embed

        for block in self.blocks:
            tokens = block(tokens)
        tokens = self.norm(tokens)
        cls_out = tokens[:, :, 0, :]
        return self.head(cls_out)


def vit_base_16(num_classes: int = 10, image_size: int = 32, seed: Optional[int] = None) -> VisionTransformer:
    """ViT-Base/16 hyper-parameters (patch size reduced to fit CIFAR images)."""
    return VisionTransformer(
        image_size=image_size,
        patch_size=4,
        embed_dim=768,
        depth=12,
        num_heads=12,
        num_classes=num_classes,
        seed=seed,
    )


def vit_base_16_mini(num_classes: int = 10, image_size: int = 8, seed: Optional[int] = None) -> VisionTransformer:
    """Reduced ViT (4 blocks, 48-d embeddings) for CPU-scale experiments."""
    return VisionTransformer(
        image_size=image_size,
        patch_size=2,
        embed_dim=48,
        depth=4,
        num_heads=4,
        mlp_ratio=2.0,
        num_classes=num_classes,
        seed=seed,
    )
