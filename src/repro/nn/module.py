"""Module and parameter abstractions.

The design mirrors ``torch.nn.Module`` where it matters for the reproduction:

* parameters are discovered recursively and exposed with dotted names
  (``features.0.weight``) via :meth:`Module.named_parameters` — the pruning and
  mask-tracking code keys masks by these names;
* :meth:`Module.parameters` returns parameters in **registration order**, which
  the DDP simulator reverses when building gradient buckets, exactly as PyTorch
  DDP fills buckets in (approximately) reverse order of the backward pass;
* ``state_dict`` / ``load_state_dict`` allow replicating a model across
  simulated ranks and broadcasting rank-0 weights.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.tensorlib import Tensor


class Parameter(Tensor):
    """A trainable tensor registered on a :class:`Module`."""

    def __init__(self, data, name: Optional[str] = None) -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all layers and models.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; they are registered automatically (in assignment order) and
    discovered by :meth:`named_parameters` / :meth:`named_modules`.
    """

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self._buffers: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self.training: bool = True

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-trainable array that is part of the module state
        (e.g. batch-norm running statistics)."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    def update_buffer(self, name: str, value: np.ndarray) -> None:
        """Update a previously registered buffer in place of re-registration."""
        if name not in self._buffers:
            raise KeyError(f"buffer {name!r} has not been registered")
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------ #
    # Traversal
    # ------------------------------------------------------------------ #
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (prefix + name if prefix == "" else f"{prefix}.{name}"), param
        for child_name, child in self._modules.items():
            child_prefix = child_name if prefix == "" else f"{prefix}.{child_name}"
            yield from child.named_parameters(child_prefix)

    def parameters(self) -> List[Parameter]:
        return [param for _, param in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix, self
        for child_name, child in self._modules.items():
            child_prefix = child_name if prefix == "" else f"{prefix}.{child_name}"
            yield from child.named_modules(child_prefix)

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name, buffer in self._buffers.items():
            yield (prefix + name if prefix == "" else f"{prefix}.{name}"), buffer
        for child_name, child in self._modules.items():
            child_prefix = child_name if prefix == "" else f"{prefix}.{child_name}"
            yield from child.named_buffers(child_prefix)

    def num_parameters(self) -> int:
        """Total number of trainable scalar parameters."""
        return int(sum(p.size for p in self.parameters()))

    # ------------------------------------------------------------------ #
    # Mode switching and gradient management
    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def to(self, dtype) -> "Module":
        """Cast all parameters, gradients and buffers to a compute dtype in place.

        Mirrors ``torch.nn.Module.to(dtype)`` for the supported compute dtypes
        (float32/float64); arrays already in the target dtype are left as-is.
        """
        from repro.tensorlib.dtypes import resolve_dtype  # noqa: PLC0415

        resolved = resolve_dtype(dtype)
        for _, param in self.named_parameters():
            param.data = np.asarray(param.data, dtype=resolved)
            if param.grad is not None:
                param.grad = np.asarray(param.grad, dtype=resolved)
        for _, owner, local in self._iter_buffer_owners():
            owner.update_buffer(local, np.asarray(owner._buffers[local], dtype=resolved))
        return self

    # ------------------------------------------------------------------ #
    # State management
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return copies of every parameter and buffer, keyed by dotted name."""
        state: Dict[str, np.ndarray] = {}
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for name, buffer in self.named_buffers():
            state[f"__buffer__.{name}"] = np.array(buffer, copy=True)
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameter values (and buffers) saved by :meth:`state_dict`."""
        params = dict(self.named_parameters())
        for name, value in state.items():
            if name.startswith("__buffer__."):
                continue
            if name not in params:
                raise KeyError(f"unexpected parameter {name!r} in state dict")
            if params[name].shape != value.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: model {params[name].shape} vs state {value.shape}"
                )
            params[name].data = value.copy()
        buffer_owners = list(self._iter_buffer_owners())
        buffer_map = {name: (owner, local) for name, owner, local in buffer_owners}
        for name, value in state.items():
            if not name.startswith("__buffer__."):
                continue
            key = name[len("__buffer__."):]
            if key in buffer_map:
                owner, local = buffer_map[key]
                owner.update_buffer(local, np.array(value, copy=True))

    def _iter_buffer_owners(self, prefix: str = "") -> Iterator[Tuple[str, "Module", str]]:
        for name in self._buffers:
            full = name if prefix == "" else f"{prefix}.{name}"
            yield full, self, name
        for child_name, child in self._modules.items():
            child_prefix = child_name if prefix == "" else f"{prefix}.{child_name}"
            yield from child._iter_buffer_owners(child_prefix)

    # ------------------------------------------------------------------ #
    # Forward
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(params={self.num_parameters()})"


class Sequential(Module):
    """Apply a list of modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._layers: List[Module] = []
        for index, module in enumerate(modules):
            setattr(self, str(index), module)
            self._layers.append(module)

    def append(self, module: Module) -> "Sequential":
        index = len(self._layers)
        setattr(self, str(index), module)
        self._layers.append(module)
        return self

    def __iter__(self):
        return iter(self._layers)

    def __getitem__(self, index: int) -> Module:
        return self._layers[index]

    def __len__(self) -> int:
        return len(self._layers)

    def forward(self, x):
        for layer in self._layers:
            x = layer(x)
        return x


class ModuleList(Module):
    """A list container whose elements are registered as submodules."""

    def __init__(self, modules=()) -> None:
        super().__init__()
        self._items: List[Module] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        index = len(self._items)
        setattr(self, str(index), module)
        self._items.append(module)
        return self

    def __iter__(self):
        return iter(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]

    def __len__(self) -> int:
        return len(self._items)

    def forward(self, *args, **kwargs):  # pragma: no cover - containers are not called
        raise RuntimeError("ModuleList is a container and cannot be called directly")
