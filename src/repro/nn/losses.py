"""Loss functions."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.tensorlib import Tensor, functional as F


class CrossEntropyLoss(Module):
    """Mean cross-entropy between raw logits and integer class labels.

    World-batched ``(world, N, C)`` logits return the per-world loss vector
    ``(world,)`` instead of a scalar — see
    :func:`repro.tensorlib.functional.cross_entropy`.
    """

    def forward(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        return F.cross_entropy(logits, targets)


class MSELoss(Module):
    """Mean squared error against a constant target array."""

    def forward(self, prediction: Tensor, target: np.ndarray) -> Tensor:
        return F.mse_loss(prediction, target)
